// BufferPool: a bounded, pin-counted cache of disk-resident values — the
// Sphinx-style buffer pool the paged sketch catalog faults cold sketches
// through (ROADMAP: "Resident-memory diet + 100k-sketch catalogs").
//
// Each key owns a frame that is cold (no value resident), loading (one
// thread runs the loader while others wait on the frame), or resident.
// Pin() returns an aliasing shared_ptr handle: the handle keeps the value
// alive AND holds a pin refcount on the frame, so eviction can never pull
// a value out from under an in-flight batch — a frame is only evictable
// once every handle has been dropped, which also means eviction genuinely
// frees the memory (the pool's resident-byte accounting equals physical
// residency, making the "peak never exceeds budget" property exactly
// checkable).
//
// Admission: a fault-in that would push resident bytes past the budget
// first evicts unpinned victims, coldest-first (lowest heat, least
// recently touched on ties); if everything resident is pinned it waits on
// the pool condvar for an unpin. Heat is a per-frame accumulator ticked
// by Pin (+1) and Touch (e.g. +answers served); every eviction halves the
// survivors' heat, so the ordering is an exponentially decayed
// answers/sec signal rather than an all-time total. Penalize() zeroes a
// frame's heat — the serve layer calls it when its error budget demotes a
// store, making that sketch the preferred victim.
//
// Thread-safe. The pool mutex covers all bookkeeping; the loader itself
// runs with the mutex dropped (disk I/O must not block unrelated hits)
// under a per-frame loading latch so concurrent requesters of one key
// single-load.
#ifndef NEUROSKETCH_UTIL_BUFFER_POOL_H_
#define NEUROSKETCH_UTIL_BUFFER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "util/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace neurosketch {

/// \brief Counters and residency accounting for one pool, snapshotted
/// under the pool mutex (exact, unlike the serve layer's relaxed scrape
/// contract — budget proofs need exactness).
struct BufferPoolStats {
  size_t resident_bytes = 0;
  size_t peak_resident_bytes = 0;
  size_t max_bytes = 0;
  size_t resident_entries = 0;
  size_t entries = 0;
  uint64_t faultins = 0;   // loader runs (cold -> resident transitions)
  uint64_t hits = 0;       // Pins served without touching the loader
  uint64_t evictions = 0;  // resident -> cold transitions
};

/// \brief What a loader hands back: the loaded value plus the resident
/// bytes it should be charged for.
template <typename Value>
struct BufferPoolLoaded {
  std::shared_ptr<const Value> value;
  size_t bytes = 0;
};

template <typename Key, typename Value>
class BufferPool {
 public:
  using Loaded = BufferPoolLoaded<Value>;
  using Handle = std::shared_ptr<const Value>;

  /// \brief `max_bytes` == 0 means unbounded (accounting only).
  explicit BufferPool(size_t max_bytes) : max_bytes_(max_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// \brief Fault in (or hit) the value for `key` and pin it. `loader`
  /// runs outside the pool mutex when the frame is cold; concurrent
  /// Pins of the same key wait for the one loader instead of re-reading
  /// disk. The returned handle unpins on destruction. Fails with the
  /// loader's status, or ResourceExhausted-style InvalidArgument when a
  /// single value can never fit the budget. May block waiting for
  /// another thread's unpin when everything resident is pinned.
  template <typename Loader>
  Result<Handle> Pin(const Key& key, Loader&& loader) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      Frame& f = frames_[key];
      if (f.value != nullptr) {
        ++hits_;
        return PinLocked(key, &f);
      }
      if (f.loading) {
        // Another thread is faulting this key in; wait for its verdict.
        cv_.wait(lock, [&] {
          auto it = frames_.find(key);
          return it == frames_.end() || !it->second.loading;
        });
        continue;  // re-find: the frame may have been admitted or failed
      }
      f.loading = true;
      lock.unlock();
      Timer load_timer;
      Result<Loaded> loaded = loader();
      const double load_us = load_timer.ElapsedSeconds() * 1e6;
      lock.lock();
      // The frame stays `loading` through admission below: admission may
      // drop the lock (cv_.wait for an unpin), and clearing the latch
      // early would let a concurrent Pin of this key start a second
      // loader and double-account the frame. Erase() also refuses
      // loading frames, so `lf` stays valid across the wait.
      Frame& lf = frames_[key];
      auto fail = [&](Status st) {
        lf.loading = false;
        cv_.notify_all();
        return st;
      };
      if (!loaded.ok()) return fail(loaded.status());
      Loaded got = std::move(loaded).value();
      if (got.value == nullptr) {
        return fail(Status::Unknown("buffer pool loader returned null"));
      }
      if (max_bytes_ != 0 && got.bytes > max_bytes_) {
        return fail(Status::InvalidArgument(
            "buffer pool entry larger than the whole budget (" +
            std::to_string(got.bytes) + " > " + std::to_string(max_bytes_) +
            " bytes)"));
      }
      // Admission: make room (evicting coldest unpinned frames, waiting
      // for unpins when necessary), then account and pin.
      EvictUntilFitLocked(got.bytes, &lock);
      lf.value = std::move(got.value);
      lf.loading = false;
      cv_.notify_all();
      lf.bytes = got.bytes;
      resident_bytes_ += lf.bytes;
      if (resident_bytes_ > peak_resident_bytes_) {
        peak_resident_bytes_ = resident_bytes_;
      }
      ++faultins_;
      faultin_latency_.Add(load_us);
      return PinLocked(key, &lf);
    }
  }

  /// \brief The resident value without pinning or faulting: nullptr when
  /// cold. (The value stays alive as long as the caller's shared_ptr
  /// does, but it no longer counts as pinned — eviction may drop the
  /// pool's reference.)
  Handle Peek(const Key& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    return it == frames_.end() ? nullptr : it->second.value;
  }

  /// \brief Add serving heat to a key's frame (e.g. answers delivered);
  /// no-op when the frame is cold.
  void Touch(const Key& key, double amount) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    if (it != frames_.end() && it->second.value != nullptr) {
      it->second.heat += amount;
    }
  }

  /// \brief Zero a frame's heat, making it the preferred eviction victim
  /// — the serve layer's error-budget demotion signal.
  void Penalize(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    if (it != frames_.end()) it->second.heat = 0.0;
  }

  /// \brief Drop a frame entirely (cold handle and all bookkeeping).
  /// Refuses while pinned; returns whether anything was erased.
  bool Erase(const Key& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = frames_.find(key);
    if (it == frames_.end() || it->second.pins != 0 || it->second.loading) {
      return false;
    }
    if (it->second.value != nullptr) {
      resident_bytes_ -= it->second.bytes;
      ++evictions_;
    }
    frames_.erase(it);
    cv_.notify_all();
    return true;
  }

  BufferPoolStats Stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    BufferPoolStats s;
    s.resident_bytes = resident_bytes_;
    s.peak_resident_bytes = peak_resident_bytes_;
    s.max_bytes = max_bytes_;
    s.entries = frames_.size();
    for (const auto& [k, f] : frames_) {
      (void)k;
      s.resident_entries += f.value != nullptr ? 1 : 0;
    }
    s.faultins = faultins_;
    s.hits = hits_;
    s.evictions = evictions_;
    return s;
  }

  /// \brief Fault-in (loader) latency distribution, microseconds. Stable
  /// address for the pool's lifetime; reads follow the LogHistogram
  /// scrape contract.
  const metrics::LogHistogram& faultin_latency() const {
    return faultin_latency_;
  }

  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Frame {
    std::shared_ptr<const Value> value;  // null = cold
    size_t bytes = 0;
    size_t pins = 0;
    bool loading = false;
    double heat = 0.0;
    uint64_t last_touch = 0;  // monotone Pin order, the heat tiebreak
  };

  /// Handle control block: owns the value reference and the pin; the last
  /// aliasing handle's destruction unpins (and wakes evict waiters).
  struct PinGuard {
    BufferPool* pool;
    Key key;
    std::shared_ptr<const Value> value;
    ~PinGuard() {
      std::lock_guard<std::mutex> lock(pool->mu_);
      auto it = pool->frames_.find(key);
      if (it != pool->frames_.end() && it->second.pins > 0) {
        --it->second.pins;
        if (it->second.pins == 0) pool->cv_.notify_all();
      }
    }
  };

  Handle PinLocked(const Key& key, Frame* f) {
    ++f->pins;
    f->heat += 1.0;
    f->last_touch = ++tick_;
    auto guard = std::make_shared<PinGuard>();
    guard->pool = this;
    guard->key = key;
    guard->value = f->value;
    // Aliasing constructor: the handle exposes the value but owns the
    // guard, so destruction runs the unpin exactly once per handle.
    const Value* raw = guard->value.get();
    return Handle(std::move(guard), raw);
  }

  /// Evicts coldest unpinned frames until `incoming` more bytes fit,
  /// waiting on the condvar for unpins when everything evictable is
  /// pinned. Caller holds `lock`.
  void EvictUntilFitLocked(size_t incoming,
                           std::unique_lock<std::mutex>* lock) {
    if (max_bytes_ == 0) return;
    while (resident_bytes_ + incoming > max_bytes_) {
      Frame* victim = nullptr;
      for (auto& [k, f] : frames_) {
        (void)k;
        if (f.value == nullptr || f.pins != 0 || f.loading) continue;
        if (victim == nullptr || f.heat < victim->heat ||
            (f.heat == victim->heat && f.last_touch < victim->last_touch)) {
          victim = &f;
        }
      }
      if (victim == nullptr) {
        // Everything resident is pinned (or loading): wait for an unpin.
        // Callers must size the budget above their pinned working set or
        // this blocks until another thread releases a handle.
        cv_.wait(*lock);
        continue;
      }
      resident_bytes_ -= victim->bytes;
      victim->value.reset();  // pins == 0, so this frees the memory
      victim->bytes = 0;
      ++evictions_;
      // Exponential decay: halve the survivors so heat tracks recent
      // traffic, not lifetime totals — a formerly hot store goes cold.
      for (auto& [k2, f2] : frames_) {
        (void)k2;
        f2.heat *= 0.5;
      }
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<Key, Frame> frames_;
  const size_t max_bytes_;
  size_t resident_bytes_ = 0;
  size_t peak_resident_bytes_ = 0;
  uint64_t tick_ = 0;
  uint64_t faultins_ = 0;
  uint64_t hits_ = 0;
  uint64_t evictions_ = 0;
  metrics::LogHistogram faultin_latency_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_BUFFER_POOL_H_
