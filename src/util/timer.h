// Wall-clock timer used by the evaluation harness.
#ifndef NEUROSKETCH_UTIL_TIMER_H_
#define NEUROSKETCH_UTIL_TIMER_H_

#include <chrono>

namespace neurosketch {

/// \brief Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_TIMER_H_
