#include "util/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace neurosketch {
namespace csv {

Result<NumericCsv> ReadNumeric(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  NumericCsv out;
  std::string line;
  size_t line_no = 0;
  size_t expected_fields = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = str::Trim(line);
    if (line.empty()) continue;
    std::vector<std::string> fields = str::Split(line, ',');
    if (line_no == 1 && has_header) {
      for (auto& f : fields) out.header.push_back(str::Trim(f));
      expected_fields = fields.size();
      continue;
    }
    if (expected_fields == 0) expected_fields = fields.size();
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument("row " + std::to_string(line_no) +
                                     " has wrong field count in " + path);
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      const std::string t = str::Trim(f);
      char* end = nullptr;
      double v = std::strtod(t.c_str(), &end);
      if (end == t.c_str() || *end != '\0') {
        return Status::InvalidArgument("non-numeric field '" + t + "' at row " +
                                       std::to_string(line_no) + " in " + path);
      }
      row.push_back(v);
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Status WriteNumeric(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<double>>& rows) {
  std::ofstream outf(path);
  if (!outf) return Status::IOError("cannot open " + path + " for writing");
  outf << str::Join(header, ",") << "\n";
  outf.precision(12);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) outf << ',';
      outf << row[i];
    }
    outf << "\n";
  }
  if (!outf) return Status::IOError("write failed for " + path);
  return Status::OK();
}

}  // namespace csv
}  // namespace neurosketch
