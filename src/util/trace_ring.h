// Slow-query trace ring: a fixed-capacity concurrent top-K store that
// keeps the K slowest queries seen so far, each with its per-stage
// latency breakdown. The common case — a query faster than the current
// K-th slowest — is rejected by one relaxed atomic load (lock-free, no
// stores); only a genuinely slow query (by construction a vanishing
// fraction once the ring is warm) takes the internal mutex to displace
// the current minimum. The top-K invariant is exact: every Offer above
// the kept minimum re-checks under the lock, so concurrent producers can
// never evict a slower entry with a faster one.
#ifndef NEUROSKETCH_UTIL_TRACE_RING_H_
#define NEUROSKETCH_UTIL_TRACE_RING_H_

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace neurosketch {
namespace metrics {

/// \brief One captured slow query: total submit->answer latency plus the
/// per-stage split (fulfill is the residual total - queue - assembly -
/// inference, so the four stages always sum to the total).
struct SlowQueryTrace {
  double total_us = 0.0;
  double queue_us = 0.0;      ///< enqueue -> picked into a micro-batch
  double assembly_us = 0.0;   ///< batch collection -> inference start
  double inference_us = 0.0;  ///< forward pass (or exact-engine batch)
  double fulfill_us = 0.0;    ///< residual: answer delivery
  std::string store;          ///< serve key, e.g. "taxi/avg(col 2)"
  std::string tier;           ///< precision tier or "exact" / "failed"
  size_t batch_size = 0;      ///< micro-batch this query rode in
  size_t shard = 0;           ///< dispatcher shard that served it — lets
                              ///< tail attribution separate a hot shard
                              ///< from a hot store
};

/// \brief Concurrent keep-the-K-slowest buffer. See file comment for the
/// locking discipline.
class SlowQueryRing {
 public:
  explicit SlowQueryRing(size_t capacity) : capacity_(capacity) {
    entries_.reserve(capacity_);
    min_kept_us_.store(EmptyThreshold(), std::memory_order_relaxed);
  }

  size_t capacity() const { return capacity_; }

  /// \brief The current admission threshold: a trace with total_us at or
  /// below this value cannot enter the ring. Exposed so callers can skip
  /// building a trace (which may allocate) for queries that would be
  /// rejected anyway; -1 while the ring is not yet full, +inf when
  /// capture is disabled (capacity 0).
  double min_kept_us() const {
    return min_kept_us_.load(std::memory_order_relaxed);
  }

  /// \brief Keep `t` iff it ranks among the K slowest so far. Returns
  /// true when the trace was kept. Never blocks on the fast (rejected)
  /// path.
  bool Offer(SlowQueryTrace t) {
    if (capacity_ == 0) return false;
    // Fast gate: strictly below the slowest-K threshold -> drop without
    // touching the lock. min_kept_us_ only ever rises, so a stale read
    // can only admit (never wrongly reject) a candidate; the exact
    // comparison re-runs under the lock.
    if (t.total_us <= min_kept_us_.load(std::memory_order_relaxed)) {
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() < capacity_) {
      entries_.push_back(std::move(t));
      std::push_heap(entries_.begin(), entries_.end(), SlowerThan);
      if (entries_.size() == capacity_) {
        min_kept_us_.store(entries_.front().total_us,
                           std::memory_order_relaxed);
      }
      return true;
    }
    if (t.total_us <= entries_.front().total_us) return false;  // lost race
    std::pop_heap(entries_.begin(), entries_.end(), SlowerThan);
    entries_.back() = std::move(t);
    std::push_heap(entries_.begin(), entries_.end(), SlowerThan);
    min_kept_us_.store(entries_.front().total_us, std::memory_order_relaxed);
    return true;
  }

  /// \brief The kept traces, slowest first.
  std::vector<SlowQueryTrace> SlowestFirst() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SlowQueryTrace> out = entries_;
    std::sort(out.begin(), out.end(), [](const SlowQueryTrace& a,
                                         const SlowQueryTrace& b) {
      return a.total_us > b.total_us;
    });
    return out;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    min_kept_us_.store(EmptyThreshold(), std::memory_order_relaxed);
  }

 private:
  double EmptyThreshold() const {
    return capacity_ == 0 ? std::numeric_limits<double>::infinity() : -1.0;
  }

  // Min-heap on total_us: front() is the fastest kept entry, i.e. the
  // eviction candidate.
  static bool SlowerThan(const SlowQueryTrace& a, const SlowQueryTrace& b) {
    return a.total_us > b.total_us;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryTrace> entries_;  // heap, guarded by mu_
  // -1 until the ring fills, so every early Offer passes the gate.
  std::atomic<double> min_kept_us_{-1.0};
};

}  // namespace metrics
}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_TRACE_RING_H_
