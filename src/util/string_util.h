// Small string helpers used by CSV parsing and report formatting.
#ifndef NEUROSKETCH_UTIL_STRING_UTIL_H_
#define NEUROSKETCH_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace neurosketch {
namespace str {

/// \brief Split on a delimiter; empty fields are preserved.
std::vector<std::string> Split(const std::string& s, char delim);

/// \brief Strip leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// \brief Join with a separator.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// \brief printf-style double formatting with the given precision.
std::string FormatDouble(double v, int precision = 6);

}  // namespace str
}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_STRING_UTIL_H_
