#include "util/random.h"

#include <numeric>

namespace neurosketch {

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double u = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  // Partial Fisher-Yates: O(n) memory, O(k) swaps.
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), size_t{0});
  if (k > n) k = n;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace neurosketch
