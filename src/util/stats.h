// Scalar statistics helpers shared by aggregates, generators and the
// evaluation harness.
#ifndef NEUROSKETCH_UTIL_STATS_H_
#define NEUROSKETCH_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace neurosketch {
namespace stats {

/// \brief Arithmetic mean; 0 for an empty input.
double Mean(const std::vector<double>& v);

/// \brief Population variance (divides by N); 0 for fewer than 1 element.
double Variance(const std::vector<double>& v);

/// \brief Population standard deviation.
double Stddev(const std::vector<double>& v);

/// \brief Median via nth_element (input copied). 0 for empty input.
double Median(std::vector<double> v);

/// \brief p-th percentile in [0, 100], linear interpolation between ranks.
double Percentile(std::vector<double> v, double p);

double Min(const std::vector<double>& v);
double Max(const std::vector<double>& v);
double Sum(const std::vector<double>& v);

/// \brief Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// \brief Mean absolute error between two equally sized series.
double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred);

/// \brief Paper's error metric (Sec. 5.1): mean |truth - pred| normalized by
/// the mean |truth| over the test set.
double NormalizedMae(const std::vector<double>& truth,
                     const std::vector<double>& pred);

/// \brief Streaming mean/variance accumulator (Welford). Numerically stable
/// single pass; used by the STD aggregate and evaluation loops.
class Welford {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// \brief Population variance; 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace stats
}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_STATS_H_
