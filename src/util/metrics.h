// Process-wide observability primitives: named counters, gauges, and
// log-bucketed histograms collected in a MetricsRegistry, with a
// Prometheus-style text exposition writer and a JSON writer. Hot-path
// updates (Counter::Inc, Gauge::Set, LogHistogram::Add) are single
// relaxed-atomic operations — safe and cheap to call from serving
// dispatchers; registration and exposition take a registry mutex and are
// meant for startup / polling paths only.
//
// Consistency contract (shared by every reader here): values are read
// with relaxed loads and no cross-metric synchronization, so an
// exposition or snapshot taken while writers are active may mix values
// from slightly different instants — each individual metric is exact,
// cross-metric invariants (e.g. sum of parts == total) may be off by
// the amount of in-flight work. That is the standard scrape contract.
#ifndef NEUROSKETCH_UTIL_METRICS_H_
#define NEUROSKETCH_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace neurosketch {
namespace metrics {

/// \brief Monotonic counter. Inc() is one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// \brief Overwrite the value — for mirroring an externally maintained
  /// counter (e.g. a ServeStats snapshot) into a registry, not for hot
  /// paths.
  void Set(uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// \brief Point-in-time value. Set() is one relaxed store.
class Gauge {
 public:
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  double Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// \brief Log-bucketed histogram of positive values (canonically
/// microseconds): 4 buckets per octave over [1, ~16.7e6], i.e. bucket
/// edges at powers of 2^(1/4). Add() is a single relaxed atomic
/// increment. PercentileUs interpolates linearly inside the bucket
/// containing the requested rank, so the worst-case quantile error is
/// one bucket width — at 4 buckets per octave that is a factor of
/// 2^(1/4), i.e. <= ~18.9% of the reported value (vs ~19% midpoint
/// error without interpolation, which also could not distinguish ranks
/// within one bucket; interpolation recovers sub-bucket resolution
/// whenever a bucket holds more than one sample).
class LogHistogram {
 public:
  static constexpr size_t kBucketsPerOctave = 4;
  static constexpr size_t kNumBuckets = 96;  // 24 octaves

  void Add(double us) {
    buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// \brief p in [0, 100]. Returns 0 when empty. See the class comment
  /// for the interpolation error bound.
  double PercentileUs(double p) const {
    std::array<uint64_t, kNumBuckets> counts;
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(total);
    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (counts[i] == 0) continue;
      cum += counts[i];
      if (static_cast<double>(cum) >= rank) {
        // Linear interpolation inside the bucket: rank position among
        // this bucket's samples maps onto [lo, hi).
        const double before = static_cast<double>(cum - counts[i]);
        const double frac =
            (rank - before) / static_cast<double>(counts[i]);
        const double lo = BucketLoUs(i);
        const double hi = BucketHiUs(i);
        return lo + (frac < 0.0 ? 0.0 : frac > 1.0 ? 1.0 : frac) * (hi - lo);
      }
    }
    return BucketHiUs(kNumBuckets - 1);
  }

  /// \brief Approximate sum of all recorded values, reconstructed from
  /// bucket midpoints (the hot path does not track an exact sum).
  double ApproxSumUs() const {
    double sum = 0.0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) {
        sum += static_cast<double>(c) * 0.5 * (BucketLoUs(i) + BucketHiUs(i));
      }
    }
    return sum;
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// \brief Overwrite this histogram with another's bucket counts
  /// (relaxed reads, so concurrent Adds on `other` may or may not land).
  void CopyFrom(const LogHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
  }

  /// \brief Accumulate another histogram's bucket counts into this one —
  /// how per-shard histograms fold into an engine-wide view (same relaxed
  /// scrape contract as CopyFrom).
  void AddFrom(const LogHistogram& other) {
    for (size_t i = 0; i < kNumBuckets; ++i) {
      const uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
    }
  }

  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// \brief Inclusive upper edge of bucket i, the exposition `le` bound.
  static double BucketHiUs(size_t i) {
    return std::exp2(static_cast<double>(i + 1) / kBucketsPerOctave);
  }
  /// \brief Lower edge of bucket i (bucket 0 also absorbs values <= 1,
  /// so its lower edge is 0 for interpolation purposes).
  static double BucketLoUs(size_t i) {
    return i == 0 ? 0.0 : std::exp2(static_cast<double>(i) / kBucketsPerOctave);
  }

 private:
  // floor(4 * log2(us)) via exponent/mantissa decomposition instead of a
  // libm log2 call: for us in [2^e, 2^(e+1)) the index is 4e + j, where
  // j counts how many of the intra-octave edges 2^(1/4), 2^(1/2),
  // 2^(3/4) the mantissa clears. Identical buckets (edge values may
  // differ from the libm result by at most the 1-ulp rounding of the
  // edge constants themselves), a few ns cheaper per Add — this runs
  // once per request on serving dispatcher threads.
  static size_t BucketIndex(double us) {
    if (!(us > 1.0)) return 0;
    uint64_t bits;
    std::memcpy(&bits, &us, sizeof(bits));
    const size_t e = static_cast<size_t>(bits >> 52) - 1023;
    if (e >= kNumBuckets / kBucketsPerOctave) return kNumBuckets - 1;
    const uint64_t mant = bits & ((uint64_t{1} << 52) - 1);
    // Mantissa fields of 2^(1/4), 2^(1/2), 2^(3/4) (see BucketHiUs).
    const size_t j = static_cast<size_t>(mant >= 0x306fe0a31b715ull) +
                     static_cast<size_t>(mant >= 0x6a09e667f3bcdull) +
                     static_cast<size_t>(mant >= 0xae89f995ad3adull);
    return e * kBucketsPerOctave + j;
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief A named collection of counters, gauges, and histograms.
///
/// Get*(name) registers the metric on first use and returns a stable
/// pointer thereafter (objects are never deallocated while the registry
/// lives), so callers resolve the pointer once at startup and update it
/// lock-free afterwards. Requesting an existing name as a different kind
/// returns nullptr. Names follow Prometheus conventions
/// ([a-zA-Z_][a-zA-Z0-9_]*, optionally followed by a {label="v",...}
/// suffix which the exposition writer merges with the histogram `le`
/// label).
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  LogHistogram* GetHistogram(const std::string& name,
                             const std::string& help = "");

  /// \brief Convenience for one-shot exports: register + set.
  void SetGauge(const std::string& name, double value,
                const std::string& help = "");
  void SetCounter(const std::string& name, uint64_t value,
                  const std::string& help = "");

  /// \brief Prometheus text exposition (v0.0.4): # HELP / # TYPE headers
  /// and one line per sample, metrics sorted by name. Histograms emit
  /// cumulative `_bucket{le=...}` series (empty buckets elided, +Inf
  /// always present), an approximate `_sum` (bucket midpoints; see
  /// LogHistogram::ApproxSumUs) and an exact `_count`.
  std::string TextExposition() const;

  /// \brief JSON object {"name": value, ...}; histograms become nested
  /// objects with count and interpolated p50/p95/p99/p999. Keys sorted.
  std::string Json() const;

  /// \brief Zero every registered metric (registrations stay).
  void ResetAll();

  size_t NumMetrics() const;

  /// \brief Shared process-wide registry for code without a better home.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // sorted => deterministic output
};

}  // namespace metrics
}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_METRICS_H_
