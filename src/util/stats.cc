#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace neurosketch {
namespace stats {

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size());
}

double Stddev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (hi + v[mid - 1]);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  std::sort(v.begin(), v.end());
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double Min(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::min_element(v.begin(), v.end());
}

double Max(const std::vector<double>& v) {
  return v.empty() ? 0.0 : *std::max_element(v.begin(), v.end());
}

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double MeanAbsoluteError(const std::vector<double>& truth,
                         const std::vector<double>& pred) {
  if (truth.empty() || truth.size() != pred.size()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < truth.size(); ++i) acc += std::fabs(truth[i] - pred[i]);
  return acc / static_cast<double>(truth.size());
}

double NormalizedMae(const std::vector<double>& truth,
                     const std::vector<double>& pred) {
  if (truth.empty() || truth.size() != pred.size()) return 0.0;
  double mae = MeanAbsoluteError(truth, pred);
  double scale = 0.0;
  for (double t : truth) scale += std::fabs(t);
  scale /= static_cast<double>(truth.size());
  if (scale == 0.0) return mae;
  return mae / scale;
}

void Welford::Add(double x) {
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Welford::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace stats
}  // namespace neurosketch
