// Fixed-size thread pool shared by the exact engine's batch path and the
// serving subsystem. Replaces ad-hoc per-call std::thread spawning: threads
// are created once and reused, so a serving loop issuing thousands of small
// batches per second does not pay thread-creation latency on the hot path.
#ifndef NEUROSKETCH_UTIL_THREAD_POOL_H_
#define NEUROSKETCH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace neurosketch {

/// \brief Fixed worker pool with a FIFO task queue. Threads start on
/// construction and join on destruction; Submit never blocks (the queue is
/// unbounded). Safe to use from multiple producer threads.
class ThreadPool {
 public:
  /// \brief `num_threads == 0` means hardware concurrency.
  explicit ThreadPool(size_t num_threads = 0) {
    if (num_threads == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      num_threads = hw == 0 ? 4 : hw;
    }
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// \brief Enqueue a task for asynchronous execution.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push(std::move(task));
    }
    cv_.notify_one();
  }

  /// \brief Run fn(0..n-1) with up to `max_parallelism` threads (0 = pool
  /// width + caller). The calling thread participates, so this completes
  /// even when every pool worker is busy (no nested-parallelism deadlock),
  /// and `max_parallelism <= 1` degenerates to a plain serial loop.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn) {
    if (n == 0) return;
    if (max_parallelism == 0) max_parallelism = num_threads() + 1;
    if (max_parallelism <= 1 || n == 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    struct SharedState {
      std::atomic<size_t> next{0};
      std::atomic<size_t> live_helpers{0};
      std::mutex mu;
      std::condition_variable done;
    };
    auto state = std::make_shared<SharedState>();
    // Caller counts toward the parallelism budget; helpers draw indices
    // from the shared counter so load balances across uneven items.
    const size_t helpers =
        std::min({max_parallelism - 1, n - 1, num_threads()});
    state->live_helpers.store(helpers);
    for (size_t h = 0; h < helpers; ++h) {
      // fn is captured by reference: the caller blocks below until every
      // helper has finished, keeping it alive.
      Submit([state, &fn, n] {
        for (;;) {
          const size_t i = state->next.fetch_add(1);
          if (i >= n) break;
          fn(i);
        }
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->live_helpers.fetch_sub(1);
        }
        state->done.notify_one();
      });
    }
    for (;;) {
      const size_t i = state->next.fetch_add(1);
      if (i >= n) break;
      fn(i);
    }
    // Wait for the helpers, stealing queued pool tasks meanwhile: if this
    // ParallelFor runs on a pool worker, the helpers it submitted may be
    // stuck behind it in the queue — draining the queue ourselves keeps
    // the no-deadlock guarantee.
    for (;;) {
      if (state->live_helpers.load() == 0) break;
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> plock(mu_);
        if (!tasks_.empty()) {
          task = std::move(tasks_.front());
          tasks_.pop();
        }
      }
      if (task) {
        task();
        continue;
      }
      // Queue empty: every remaining helper is running on some worker;
      // block until the last one signals.
      std::unique_lock<std::mutex> slock(state->mu);
      state->done.wait(slock,
                       [&] { return state->live_helpers.load() == 0; });
      break;
    }
  }

  /// \brief Sharded variant of ParallelFor for reductions: splits [0, n)
  /// into `NumShards(n, max_parallelism)` contiguous ranges and runs
  /// fn(shard, begin, end) for each, concurrently. Shard boundaries depend
  /// only on (n, max_parallelism) — never on scheduling — so a caller that
  /// keeps one accumulator per shard and combines them in shard order gets
  /// the same result on every run. Combining with max (or any operation
  /// that is associative and commutative over the shard partials, like
  /// integer sums) additionally reproduces the single-shard result
  /// bit-for-bit regardless of thread count.
  void ParallelForShards(
      size_t n, size_t max_parallelism,
      const std::function<void(size_t, size_t, size_t)>& fn) {
    const size_t shards = NumShards(n, max_parallelism);
    if (shards == 0) return;
    ParallelFor(shards, max_parallelism, [&](size_t s) {
      const size_t begin = n * s / shards;
      const size_t end = n * (s + 1) / shards;
      if (begin < end) fn(s, begin, end);
    });
  }

  /// \brief Shard count ParallelForShards will use: min(n, resolved
  /// parallelism), where 0 resolves to pool width + caller. Callers size
  /// their per-shard accumulator arrays with this.
  size_t NumShards(size_t n, size_t max_parallelism) const {
    if (max_parallelism == 0) max_parallelism = num_threads() + 1;
    if (max_parallelism < 1) max_parallelism = 1;
    return n < max_parallelism ? n : max_parallelism;
  }

  /// \brief Process-wide pool sized to hardware concurrency. Constructed
  /// on first use; never destroyed before main returns.
  static ThreadPool& Shared() {
    static ThreadPool pool(0);
    return pool;
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_THREAD_POOL_H_
