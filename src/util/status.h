// Status and Result<T>: lightweight error-propagation primitives in the
// style of Apache Arrow / RocksDB. Public library entry points that can
// fail return Status (or Result<T>); internal hot paths use plain values.
#ifndef NEUROSKETCH_UTIL_STATUS_H_
#define NEUROSKETCH_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace neurosketch {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kIOError = 3,
  kNotImplemented = 4,
  kFailedPrecondition = 5,
  kUnknown = 6,
};

/// \brief Outcome of a fallible operation: a code plus a human-readable
/// message. Copyable, cheap when OK (no allocation).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg)
      : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// \brief Render as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string msg_;
};

/// \brief Value-or-Status. Mirrors arrow::Result: either holds a T or a
/// non-OK Status explaining why the value is absent.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design,
  // mirrors arrow::Result ergonomics (`return value;`).
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// \brief Access the value. Undefined behaviour if !ok(); callers must
  /// check ok() (or use ValueOr) first.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

#define NS_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::neurosketch::Status _st = (expr);       \
    if (!_st.ok()) return _st;                \
  } while (false)

#define NS_CONCAT_INNER(a, b) a##b
#define NS_CONCAT(a, b) NS_CONCAT_INNER(a, b)

#define NS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define NS_ASSIGN_OR_RETURN(lhs, expr) \
  NS_ASSIGN_OR_RETURN_IMPL(NS_CONCAT(_ns_res_, __LINE__), lhs, expr)

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_STATUS_H_
