// Minimal CSV reader/writer for numeric tables. Used to import real
// datasets when available and to dump benchmark series for plotting.
#ifndef NEUROSKETCH_UTIL_CSV_H_
#define NEUROSKETCH_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace neurosketch {
namespace csv {

/// \brief Parsed numeric CSV: header names plus row-major values.
struct NumericCsv {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// \brief Read a CSV file whose body is entirely numeric. The first line is
/// treated as a header when `has_header` is true. Rows with a wrong field
/// count or non-numeric fields produce an InvalidArgument status.
Result<NumericCsv> ReadNumeric(const std::string& path, bool has_header = true);

/// \brief Write header + rows to `path`, 12 significant digits.
Status WriteNumeric(const std::string& path,
                    const std::vector<std::string>& header,
                    const std::vector<std::vector<double>>& rows);

}  // namespace csv
}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_CSV_H_
