#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace neurosketch {
namespace str {

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace str
}  // namespace neurosketch
