// Bounded multi-producer single-consumer ring with wait-free submission:
// a producer claims its slot with ONE unconditional fetch_add (no CAS
// loop, so a producer can never be forced to retry by other producers)
// and blocks only when the ring is genuinely full — the backpressure
// contract the serving engine wants: submission cost is constant under
// contention, and an overloaded shard pushes back instead of growing an
// unbounded queue. Slot hand-off follows the Vyukov sequence protocol:
// each slot carries a ticket counter; a producer with ticket t waits for
// seq == t (its lap is free), publishes with seq = t + 1, and the single
// consumer frees the slot for the next lap with seq = t + capacity.
// Because tickets are handed out by fetch_add, backpressure is FIFO: the
// oldest blocked producer is released first.
#ifndef NEUROSKETCH_UTIL_MPSC_QUEUE_H_
#define NEUROSKETCH_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>

namespace neurosketch {

/// \brief Bounded MPSC ring. Push is callable from any thread; TryPop /
/// Empty are single-consumer only. T must be default-constructible and
/// movable.
template <typename T>
class MpscRing {
 public:
  /// \brief Capacity is rounded up to a power of two (minimum 2).
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  size_t capacity() const { return capacity_; }

  /// \brief Enqueue `v`. The slot claim is one fetch_add (wait-free); the
  /// call blocks (spin + yield) only while the ring is full. Returns true
  /// when the slot was free immediately, false when the producer had to
  /// wait for backpressure — callers can count the latter as a saturation
  /// signal without timing anything.
  bool Push(T v) {
    const uint64_t pos = tail_.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots_[pos & mask_];
    bool immediate = true;
    // Full: our lap of this slot has not been freed by the consumer yet.
    while (s.seq.load(std::memory_order_acquire) != pos) {
      immediate = false;
      std::this_thread::yield();
    }
    s.value = std::move(v);
    s.seq.store(pos + 1, std::memory_order_release);
    return immediate;
  }

  /// \brief Single-consumer pop. Returns false when no published entry is
  /// ready at the head (the ring is empty, or the head producer is still
  /// mid-publish — in which case a later retry will see it).
  bool TryPop(T* out) {
    Slot& s = slots_[head_ & mask_];
    if (s.seq.load(std::memory_order_acquire) != head_ + 1) return false;
    *out = std::move(s.value);
    s.value = T();  // drop payload refs eagerly (promises, shared_ptrs)
    s.seq.store(head_ + capacity_, std::memory_order_release);
    ++head_;
    return true;
  }

  /// \brief Single-consumer emptiness check: true when the head slot has
  /// no published entry. Pair with a seq_cst fence for sleep/wake
  /// protocols (see ServeEngine::DispatchLoop).
  bool Empty() const {
    return slots_[head_ & mask_].seq.load(std::memory_order_acquire) !=
           head_ + 1;
  }

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    T value{};
  };

  size_t capacity_ = 0;
  uint64_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  alignas(64) std::atomic<uint64_t> tail_{0};  // producers
  alignas(64) uint64_t head_ = 0;              // consumer-owned
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_MPSC_QUEUE_H_
