#include "util/metrics.h"

#include <cstdio>

namespace neurosketch {
namespace metrics {

namespace {

/// Splits "name{label=\"v\"}" into the base name and the label body
/// ("label=\"v\"", empty when the name carries no labels).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  const size_t close = name.rfind('}');
  *labels = name.substr(brace + 1,
                        close == std::string::npos || close <= brace
                            ? std::string::npos
                            : close - brace - 1);
}

void AppendNumber(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *out += buf;
}

void AppendJsonKey(std::string* out, const std::string& key) {
  *out += '"';
  for (char c : key) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\": ";
}

}  // namespace

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kCounter;
    e.help = help;
    e.counter = std::make_unique<Counter>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  return it->second.kind == Kind::kCounter ? it->second.counter.get()
                                           : nullptr;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kGauge;
    e.help = help;
    e.gauge = std::make_unique<Gauge>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
}

LogHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                            const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = Kind::kHistogram;
    e.help = help;
    e.histogram = std::make_unique<LogHistogram>();
    it = entries_.emplace(name, std::move(e)).first;
  }
  return it->second.kind == Kind::kHistogram ? it->second.histogram.get()
                                             : nullptr;
}

void MetricsRegistry::SetGauge(const std::string& name, double value,
                               const std::string& help) {
  Gauge* g = GetGauge(name, help);
  if (g != nullptr) g->Set(value);
}

void MetricsRegistry::SetCounter(const std::string& name, uint64_t value,
                                 const std::string& help) {
  Counter* c = GetCounter(name, help);
  if (c != nullptr) c->Set(value);
}

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string prev_base;
  for (const auto& [name, e] : entries_) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    if (base != prev_base) {
      // One HELP/TYPE header per metric family; label variants of the
      // same base name sort adjacently and share it.
      if (!e.help.empty()) out += "# HELP " + base + " " + e.help + "\n";
      out += "# TYPE " + base + " ";
      out += e.kind == Kind::kCounter
                 ? "counter"
                 : e.kind == Kind::kGauge ? "gauge" : "histogram";
      out += "\n";
      prev_base = base;
    }
    const std::string label_suffix = labels.empty() ? "" : "{" + labels + "}";
    switch (e.kind) {
      case Kind::kCounter:
        out += base + label_suffix + " " +
               std::to_string(e.counter->Value()) + "\n";
        break;
      case Kind::kGauge:
        out += base + label_suffix + " ";
        AppendNumber(&out, e.gauge->Value());
        out += "\n";
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = *e.histogram;
        uint64_t cum = 0;
        for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
          const uint64_t c = h.BucketCount(i);
          if (c == 0) continue;  // elide empty buckets; cumulative stays right
          cum += c;
          out += base + "_bucket{";
          if (!labels.empty()) out += labels + ",";
          out += "le=\"";
          AppendNumber(&out, LogHistogram::BucketHiUs(i));
          out += "\"} " + std::to_string(cum) + "\n";
        }
        out += base + "_bucket{";
        if (!labels.empty()) out += labels + ",";
        out += "le=\"+Inf\"} " + std::to_string(cum) + "\n";
        out += base + "_sum" + label_suffix + " ";
        AppendNumber(&out, h.ApproxSumUs());
        out += "\n";
        out += base + "_count" + label_suffix + " " + std::to_string(cum) +
               "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::Json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, e] : entries_) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    switch (e.kind) {
      case Kind::kCounter:
        out += std::to_string(e.counter->Value());
        break;
      case Kind::kGauge:
        AppendNumber(&out, e.gauge->Value());
        break;
      case Kind::kHistogram: {
        const LogHistogram& h = *e.histogram;
        out += "{\"count\": " + std::to_string(h.TotalCount());
        out += ", \"p50_us\": ";
        AppendNumber(&out, h.PercentileUs(50));
        out += ", \"p95_us\": ";
        AppendNumber(&out, h.PercentileUs(95));
        out += ", \"p99_us\": ";
        AppendNumber(&out, h.PercentileUs(99));
        out += ", \"p999_us\": ";
        AppendNumber(&out, h.PercentileUs(99.9));
        out += "}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case Kind::kCounter:
        e.counter->Reset();
        break;
      case Kind::kGauge:
        e.gauge->Reset();
        break;
      case Kind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

}  // namespace metrics
}  // namespace neurosketch
