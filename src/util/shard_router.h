// Shard routing: a stable hash -> shard assignment used by the serving
// engine to pin every (dataset, query function) key to exactly one
// dispatcher shard. The assignment is a pure function of the key and the
// shard count — registering or removing OTHER stores can never move a
// key between shards, so a sketch's workspace arena stays warm on one
// core for the store's whole lifetime.
#ifndef NEUROSKETCH_UTIL_SHARD_ROUTER_H_
#define NEUROSKETCH_UTIL_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace neurosketch {

/// \brief FNV-1a over a byte range; the canonical incremental form so
/// heterogeneous key fields can be folded into one running hash.
inline uint64_t Fnv1a64(const void* data, size_t len,
                        uint64_t seed = 0xcbf29ce484222325ull) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline uint64_t Fnv1a64(const std::string& s,
                        uint64_t seed = 0xcbf29ce484222325ull) {
  return Fnv1a64(s.data(), s.size(), seed);
}

inline uint64_t Fnv1a64(uint64_t v, uint64_t seed = 0xcbf29ce484222325ull) {
  return Fnv1a64(&v, sizeof(v), seed);
}

/// \brief Maps 64-bit key hashes onto [0, num_shards). A fixmul spread
/// (multiply-shift by a golden-ratio constant) decorrelates the modulo
/// from low hash bits.
class ShardRouter {
 public:
  explicit ShardRouter(size_t num_shards)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  size_t num_shards() const { return num_shards_; }

  size_t ShardOf(uint64_t key_hash) const {
    key_hash *= 0x9e3779b97f4a7c15ull;  // golden-ratio mix
    key_hash ^= key_hash >> 32;
    return static_cast<size_t>(key_hash % num_shards_);
  }

 private:
  size_t num_shards_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_SHARD_ROUTER_H_
