// Deterministic random-number facility. Every stochastic component in the
// library takes an explicit Rng (or seed) so that tests and benchmark runs
// are reproducible bit-for-bit across invocations.
#ifndef NEUROSKETCH_UTIL_RANDOM_H_
#define NEUROSKETCH_UTIL_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace neurosketch {

/// \brief Seedable RNG wrapper over std::mt19937_64 with the distribution
/// helpers used across the library.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : gen_(seed) {}

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// \brief Gaussian with the given mean and standard deviation.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// \brief Uniform integer in [lo, hi] (inclusive).
  int64_t Int(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// \brief Uniform index in [0, n).
  size_t Index(size_t n) {
    return static_cast<size_t>(Int(0, static_cast<int64_t>(n) - 1));
  }

  /// \brief Bernoulli draw with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// \brief Exponential with rate lambda.
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(gen_);
  }

  /// \brief Sample an index according to (unnormalized) weights.
  size_t Categorical(const std::vector<double>& weights);

  /// \brief k distinct indices drawn uniformly from [0, n). k must be <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_UTIL_RANDOM_H_
