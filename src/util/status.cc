#include "util/status.h"

namespace neurosketch {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace neurosketch
