#include "data/normalizer.h"

#include <algorithm>

namespace neurosketch {

Normalizer Normalizer::Fit(const Table& table) {
  Normalizer out;
  const size_t ncols = table.num_columns();
  out.lo_.resize(ncols);
  out.hi_.resize(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    const auto& col = table.column(c);
    if (col.empty()) {
      out.lo_[c] = 0.0;
      out.hi_[c] = 1.0;
      continue;
    }
    auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    out.lo_[c] = *mn;
    out.hi_[c] = (*mx > *mn) ? *mx : *mn + 1.0;
  }
  return out;
}

Table Normalizer::Transform(const Table& table) const {
  Table out(table.schema());
  std::vector<std::vector<double>> cols(table.num_columns());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    cols[c].reserve(table.num_rows());
    const double lo = lo_[c], width = hi_[c] - lo_[c];
    for (double v : table.column(c)) cols[c].push_back((v - lo) / width);
  }
  Status st = out.SetColumns(std::move(cols));
  (void)st;  // Shapes are derived from `table`, cannot mismatch.
  return out;
}

double Normalizer::Normalize(size_t col, double v) const {
  return (v - lo_[col]) / (hi_[col] - lo_[col]);
}

double Normalizer::Denormalize(size_t col, double v) const {
  return lo_[col] + v * (hi_[col] - lo_[col]);
}

}  // namespace neurosketch
