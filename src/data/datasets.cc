#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "data/generators.h"
#include "util/random.h"

namespace neurosketch {

Dataset MakePmLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.columns = {"pm25", "temperature", "pressure", "dewpoint"};
  Table t(schema);
  for (size_t i = 0; i < n; ++i) {
    // Seasonal phase drives both weather and pollution episodes.
    const double season = rng.Uniform(0.0, 2.0 * M_PI);
    const double temp = 12.0 + 14.0 * std::sin(season) + rng.Normal(0.0, 5.0);
    const double pressure = 1016.0 - 0.6 * temp + rng.Normal(0.0, 4.0);
    const double dew = temp - std::fabs(rng.Normal(6.0, 4.0));
    // Pollution: log-normal base + winter-heating spikes -> heavy right
    // tail like Fig. 5 (mass near 0-100, tail to ~900).
    double pm = std::exp(rng.Normal(3.6, 0.8));
    if (std::sin(season) < -0.3 && rng.Bernoulli(0.25)) {
      pm += std::exp(rng.Normal(5.2, 0.5));  // episode spike
    }
    pm = std::clamp(pm, 0.0, 900.0);
    Status st = t.AppendRow({pm, temp, pressure, dew});
    (void)st;
  }
  return {"PM", std::move(t), 0};
}

Dataset MakeVerasetLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  // Downtown Houston bounding box (paper Sec. 5.1).
  const double lat_lo = 29.74, lat_hi = 29.78;
  const double lon_lo = -95.38, lon_hi = -95.34;

  // POI hotspots: each has a location, spatial spread and a characteristic
  // visit duration (e.g., offices ~8h, restaurants ~1h). Duration depends
  // on the hotspot, so the avg-visit-duration query function has sharp
  // spatial discontinuities (Fig. 1 / Fig. 16a).
  struct Poi {
    double lat, lon, spread, dur_mean, dur_sd;
  };
  const size_t num_pois = 24;
  std::vector<Poi> pois;
  pois.reserve(num_pois);
  for (size_t i = 0; i < num_pois; ++i) {
    Poi p;
    p.lat = rng.Uniform(lat_lo, lat_hi);
    p.lon = rng.Uniform(lon_lo, lon_hi);
    p.spread = rng.Uniform(0.0006, 0.003);
    // Bimodal durations: short-stay retail vs long-stay offices/homes.
    p.dur_mean = rng.Bernoulli(0.4) ? rng.Uniform(6.0, 12.0)
                                    : rng.Uniform(0.5, 3.0);
    p.dur_sd = 0.25 * p.dur_mean;
    pois.push_back(p);
  }

  Schema schema;
  schema.columns = {"latitude", "longitude", "duration"};
  Table t(schema);
  for (size_t i = 0; i < n; ++i) {
    const Poi& p = pois[rng.Index(num_pois)];
    const double lat = std::clamp(rng.Normal(p.lat, p.spread), lat_lo, lat_hi);
    const double lon = std::clamp(rng.Normal(p.lon, p.spread), lon_lo, lon_hi);
    // Visits below 15 minutes were filtered by stay-point detection.
    const double dur =
        std::clamp(rng.Normal(p.dur_mean, p.dur_sd), 0.25, 20.0);
    Status st = t.AppendRow({lat, lon, dur});
    (void)st;
  }
  return {"VS", std::move(t), 2};
}

Dataset MakeTpcLike(size_t n, uint64_t seed) {
  Rng rng(seed);
  Schema schema;
  schema.columns = {"quantity",       "wholesale_cost", "list_price",
                    "sales_price",    "ext_discount",   "ext_sales_price",
                    "ext_wholesale",  "ext_list_price", "ext_tax",
                    "coupon_amt",     "net_paid",       "net_paid_tax",
                    "net_profit"};
  Table t(schema);
  for (size_t i = 0; i < n; ++i) {
    const double quantity = static_cast<double>(rng.Int(1, 100));
    const double wholesale = rng.Uniform(1.0, 100.0);
    const double markup = rng.Uniform(1.0, 2.0);
    const double list_price = wholesale * markup;
    const double discount_pct = rng.Bernoulli(0.3) ? rng.Uniform(0.0, 0.9) : 0.0;
    const double sales_price = list_price * (1.0 - discount_pct);
    const double ext_sales = sales_price * quantity;
    const double ext_wholesale = wholesale * quantity;
    const double ext_list = list_price * quantity;
    const double ext_discount = (ext_list - ext_sales);
    const double tax_rate = rng.Uniform(0.0, 0.09);
    const double ext_tax = ext_sales * tax_rate;
    const double coupon = rng.Bernoulli(0.1) ? rng.Uniform(0.0, 0.3) * ext_sales
                                             : 0.0;
    const double net_paid = ext_sales - coupon;
    const double net_paid_tax = net_paid + ext_tax;
    const double net_profit = net_paid - ext_wholesale;
    Status st = t.AppendRow({quantity, wholesale, list_price, sales_price,
                             ext_discount, ext_sales, ext_wholesale, ext_list,
                             ext_tax, coupon, net_paid, net_paid_tax,
                             net_profit});
    (void)st;
  }
  return {"TPC", std::move(t), 12};
}

Dataset MakeGmmDataset(size_t n, size_t dim, size_t components,
                       uint64_t seed) {
  Rng comp_rng(seed);
  GmmDistribution gmm = GmmDistribution::MakeRandom(dim, components, &comp_rng);
  Table t = MakeGmmTable(gmm, n, seed + 1);
  return {"G" + std::to_string(dim), std::move(t), dim - 1};
}

Result<Dataset> MakeDatasetByName(const std::string& name, double scale,
                                  uint64_t seed) {
  auto scaled = [scale](double paper_n) {
    return static_cast<size_t>(std::max(100.0, paper_n * scale));
  };
  if (name == "PM") return MakePmLike(scaled(41700), seed);
  if (name == "VS") return MakeVerasetLike(scaled(100000), seed);
  if (name == "TPC1") {
    Dataset d = MakeTpcLike(scaled(2650000), seed);
    d.name = "TPC1";
    return d;
  }
  if (name == "TPC10") {
    Dataset d = MakeTpcLike(scaled(26500000), seed);
    d.name = "TPC10";
    return d;
  }
  if (name == "G5") return MakeGmmDataset(scaled(100000), 5, 100, seed);
  if (name == "G10") return MakeGmmDataset(scaled(100000), 10, 100, seed);
  if (name == "G20") return MakeGmmDataset(scaled(100000), 20, 100, seed);
  return Status::InvalidArgument("unknown dataset: " + name);
}

}  // namespace neurosketch
