// Min-max normalization of table attributes into [0,1] (paper Sec. 2:
// "A_i ∈ [0,1] ... otherwise the attributes can be normalized"). The
// normalizer remembers per-column ranges so query predicates and answers
// can be mapped between original and normalized coordinates.
#ifndef NEUROSKETCH_DATA_NORMALIZER_H_
#define NEUROSKETCH_DATA_NORMALIZER_H_

#include <vector>

#include "data/table.h"
#include "util/status.h"

namespace neurosketch {

/// \brief Per-column affine map x -> (x - lo) / (hi - lo).
class Normalizer {
 public:
  /// \brief Learn column ranges from a table. Constant columns get the
  /// degenerate range [lo, lo+1] so normalization stays well-defined.
  static Normalizer Fit(const Table& table);

  /// \brief New table with every column mapped into [0,1].
  Table Transform(const Table& table) const;

  /// \brief Map a single value of column `col` into [0,1].
  double Normalize(size_t col, double v) const;

  /// \brief Inverse map back to original units.
  double Denormalize(size_t col, double v) const;

  /// \brief Width (hi - lo) of column `col` in original units.
  double Width(size_t col) const { return hi_[col] - lo_[col]; }
  double lo(size_t col) const { return lo_[col]; }
  double hi(size_t col) const { return hi_[col]; }
  size_t num_columns() const { return lo_.size(); }

 private:
  std::vector<double> lo_, hi_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_DATA_NORMALIZER_H_
