#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace neurosketch {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;

Schema MakeDimSchema(size_t dim) {
  Schema s;
  for (size_t i = 0; i < dim; ++i) s.columns.push_back("x" + std::to_string(i));
  return s;
}
}  // namespace

GmmDistribution GmmDistribution::MakeRandom(size_t dim, size_t k, Rng* rng,
                                            double sigma_lo, double sigma_hi) {
  std::vector<GaussianComponent> comps;
  comps.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    GaussianComponent c;
    c.mean.resize(dim);
    c.stddev.resize(dim);
    for (size_t d = 0; d < dim; ++d) {
      c.mean[d] = rng->Uniform(0.1, 0.9);
      c.stddev[d] = rng->Uniform(sigma_lo, sigma_hi);
    }
    c.weight = rng->Uniform(0.5, 1.5);
    comps.push_back(std::move(c));
  }
  return GmmDistribution(std::move(comps));
}

GmmDistribution::GmmDistribution(std::vector<GaussianComponent> components)
    : components_(std::move(components)) {
  for (const auto& c : components_) weights_.push_back(c.weight);
}

std::vector<double> GmmDistribution::Sample(Rng* rng) const {
  const auto& c = components_[rng->Categorical(weights_)];
  std::vector<double> x(c.mean.size());
  for (size_t d = 0; d < x.size(); ++d) {
    x[d] = std::clamp(rng->Normal(c.mean[d], c.stddev[d]), 0.0, 1.0);
  }
  return x;
}

double GmmDistribution::MarginalPdf(size_t dim, double x) const {
  double total_w = 0.0, pdf = 0.0;
  for (const auto& c : components_) {
    total_w += c.weight;
    const double z = (x - c.mean[dim]) / c.stddev[dim];
    pdf += c.weight * kInvSqrt2Pi / c.stddev[dim] * std::exp(-0.5 * z * z);
  }
  return total_w > 0.0 ? pdf / total_w : 0.0;
}

Table MakeUniformTable(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Table t(MakeDimSchema(dim));
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) row[d] = rng.Uniform();
    Status st = t.AppendRow(row);
    (void)st;
  }
  return t;
}

Table MakeGaussianTable(size_t n, size_t dim, double mean, double sigma,
                        uint64_t seed) {
  Rng rng(seed);
  Table t(MakeDimSchema(dim));
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      row[d] = std::clamp(rng.Normal(mean, sigma), 0.0, 1.0);
    }
    Status st = t.AppendRow(row);
    (void)st;
  }
  return t;
}

Table MakeGmmTable(const GmmDistribution& gmm, size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t(MakeDimSchema(gmm.dim()));
  for (size_t i = 0; i < n; ++i) {
    Status st = t.AppendRow(gmm.Sample(&rng));
    (void)st;
  }
  return t;
}

}  // namespace neurosketch
