// Synthetic analogues of the paper's evaluation datasets (Table 1). Real
// PM2.5, Veraset and TPC-DS data are not redistributable/offline, so each
// generator reproduces the documented structure that drives the paper's
// results (marginal shapes of Fig. 5, spatial discontinuities of Fig. 1,
// column correlations of store_sales). See DESIGN.md "Substitutions".
#ifndef NEUROSKETCH_DATA_DATASETS_H_
#define NEUROSKETCH_DATA_DATASETS_H_

#include <cstdint>
#include <string>

#include "data/table.h"

namespace neurosketch {

/// \brief Dataset bundle: raw table, measure column id, and a display name.
struct Dataset {
  std::string name;
  Table table;
  size_t measure_col = 0;
};

/// \brief PM-like (Beijing PM2.5 [22]): 4 attrs — pm25 (measure), temp,
/// pressure, dewpoint. pm25 has the heavy right tail of Fig. 5 and is
/// correlated with weather attributes.
Dataset MakePmLike(size_t n, uint64_t seed);

/// \brief Veraset-like location visits (running example / Fig. 1): 3 attrs
/// — latitude, longitude, visit duration (measure). Points cluster around
/// POI hotspots; duration depends sharply on the hotspot, producing the
/// abrupt spatial changes of Fig. 16(a).
Dataset MakeVerasetLike(size_t n, uint64_t seed);

/// \brief TPC-DS-like store_sales: 13 numeric attrs ending in net_profit
/// (measure). A pricing chain (quantity, wholesale_cost, list_price,
/// sales_price, discount, tax, ...) yields correlated columns and a
/// near-symmetric net_profit around 0 (Fig. 5).
Dataset MakeTpcLike(size_t n, uint64_t seed);

/// \brief GMM dataset G<dim> (Table 1): `dim`-dimensional mixture with
/// `components` Gaussians; measure is the last column.
Dataset MakeGmmDataset(size_t n, size_t dim, size_t components, uint64_t seed);

/// \brief Dispatch by paper name: "PM", "VS", "TPC1", "TPC10", "G5",
/// "G10", "G20". Row counts are scaled down from the paper by `scale`
/// (1.0 = paper-documented sizes).
Result<Dataset> MakeDatasetByName(const std::string& name, double scale,
                                  uint64_t seed);

}  // namespace neurosketch

#endif  // NEUROSKETCH_DATA_DATASETS_H_
