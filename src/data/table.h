// In-memory columnar table: the storage substrate queries run against.
// Columns are dense double vectors; the library's problem setting (paper
// Sec. 2) normalizes every attribute to [0,1], handled by Normalizer.
#ifndef NEUROSKETCH_DATA_TABLE_H_
#define NEUROSKETCH_DATA_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace neurosketch {

/// \brief Column names; index in the vector is the column id.
struct Schema {
  std::vector<std::string> columns;

  size_t num_columns() const { return columns.size(); }
  /// \brief Column id by name, or -1 if absent.
  int Find(const std::string& name) const;
};

/// \brief Columnar table of doubles.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);

  static Result<Table> FromCsvFile(const std::string& path);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  const std::vector<double>& column(size_t i) const { return columns_[i]; }
  std::vector<double>& column(size_t i) { return columns_[i]; }

  double at(size_t row, size_t col) const { return columns_[col][row]; }

  /// \brief Append one row (must match column count).
  Status AppendRow(const std::vector<double>& row);

  /// \brief Bulk-append a full column set (resets the table contents).
  Status SetColumns(std::vector<std::vector<double>> columns);

  /// \brief Copy of a row as a vector.
  std::vector<double> Row(size_t row) const;

  /// \brief New table containing the given subset of rows.
  Table Select(const std::vector<size_t>& row_ids) const;

  /// \brief New table with only the given columns.
  Result<Table> Project(const std::vector<size_t>& col_ids) const;

  /// \brief Approximate in-memory footprint in bytes (the paper's storage
  /// metric for the raw data).
  size_t SizeBytes() const { return num_rows_ * columns_.size() * sizeof(double); }

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<std::vector<double>> columns_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_DATA_TABLE_H_
