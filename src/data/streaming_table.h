// StreamingTable: a compactable base table for streaming datasets. The
// serving contract keeps the table an ExactEngine scans immutable, which
// is why appended rows live in a per-dataset DeltaBuffer — but without a
// way to move trimmed delta rows *into* the base, nothing can ever call
// DeltaBuffer::Trim and the delta grows without bound. StreamingTable
// closes that gap: it holds an immutable Version (the table plus a fold
// watermark recording how many delta rows are baked into it) behind a
// shared_ptr, so SketchStore::Compact can build the next version off to
// the side (base copy + folded delta rows, in logical append order) and
// swap it in atomically. Readers pin a version for the duration of one
// batch; a pinned version stays alive across any number of swaps.
//
// Invariants:
// - `folded` is monotone non-decreasing across versions: delta logical
//   rows [0, folded) are appended to the original base rows in order, so
//   version N's table is always a prefix-extension of the same logical
//   history.
// - The column count never changes (it must match the delta buffer's).
// - Readers must take their delta snapshot BEFORE pinning: the snapshot's
//   begin can only be <= the pinned version's folded watermark, so
//   base(version) + delta[max(snapshot.begin, folded), end) covers the
//   logical history exactly once. Pinning first races a concurrent
//   compaction into losing rows from both views.
#ifndef NEUROSKETCH_DATA_STREAMING_TABLE_H_
#define NEUROSKETCH_DATA_STREAMING_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "data/table.h"
#include "util/status.h"

namespace neurosketch {

/// \brief Atomically swappable (table, fold watermark) pair for streaming
/// datasets. All methods are thread-safe; versions are immutable.
class StreamingTable {
 public:
  /// \brief One published state of the base table. Immutable once
  /// published; shared_ptr ownership keeps it alive for in-flight readers
  /// after a swap.
  struct Version {
    Table table;
    /// Delta logical rows [0, folded) are baked into `table` (appended
    /// after the original base rows, in logical order). Rows at logical
    /// index r < folded live at table row (original_rows + r).
    uint64_t folded = 0;
  };

  /// \brief Starts at version (base, folded = 0).
  explicit StreamingTable(Table base);

  /// \brief The current version: one shared_ptr copy under a short lock.
  /// Hold the result for the duration of one consistent unit of work (a
  /// serve batch, a refresh pass, a fold) — never re-Pin mid-unit.
  std::shared_ptr<const Version> Pin() const;

  /// \brief Current fold watermark (== Pin()->folded, without the copy).
  uint64_t folded() const;

  /// \brief Column count; invariant across versions.
  size_t num_columns() const { return num_columns_; }

  /// \brief Publish a new version. InvalidArgument when `folded` would
  /// move backwards or the column count changes — both would break the
  /// prefix-extension invariant readers rely on. In-flight pins keep the
  /// old version alive.
  Status Swap(Table table, uint64_t folded);

 private:
  const size_t num_columns_;
  mutable std::mutex mu_;
  std::shared_ptr<const Version> current_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_DATA_STREAMING_TABLE_H_
