// Synthetic distribution generators: uniform, Gaussian and Gaussian mixture
// models. These back the G5/G10/G20 datasets (Table 1) and the DQD
// experiments on synthetic data (Sec. 5.7 / Fig. 14), where LDQ has closed
// form for each family (Examples 3.2 and 3.3).
#ifndef NEUROSKETCH_DATA_GENERATORS_H_
#define NEUROSKETCH_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "util/random.h"

namespace neurosketch {

/// \brief A single multivariate Gaussian with diagonal covariance.
struct GaussianComponent {
  std::vector<double> mean;
  std::vector<double> stddev;
  double weight = 1.0;
};

/// \brief Gaussian mixture model over [0,1]^d (samples are clipped).
class GmmDistribution {
 public:
  /// \brief Random GMM: `k` components, means uniform in [0.1, 0.9],
  /// stddevs uniform in [sigma_lo, sigma_hi]. Mirrors the paper's "100
  /// components, random mean and co-variance".
  static GmmDistribution MakeRandom(size_t dim, size_t k, Rng* rng,
                                    double sigma_lo = 0.02,
                                    double sigma_hi = 0.15);

  /// \brief Explicit components (weights need not be normalized).
  explicit GmmDistribution(std::vector<GaussianComponent> components);

  std::vector<double> Sample(Rng* rng) const;

  /// \brief Marginal pdf of dimension `dim` at x (weights normalized).
  double MarginalPdf(size_t dim, double x) const;

  const std::vector<GaussianComponent>& components() const {
    return components_;
  }
  size_t dim() const {
    return components_.empty() ? 0 : components_[0].mean.size();
  }

 private:
  std::vector<GaussianComponent> components_;
  std::vector<double> weights_;
};

/// \brief n i.i.d. rows uniform in [0,1]^dim. Column names x0..x{dim-1}.
Table MakeUniformTable(size_t n, size_t dim, uint64_t seed);

/// \brief n i.i.d. rows from N(mean, sigma²) per dimension, clipped to
/// [0,1].
Table MakeGaussianTable(size_t n, size_t dim, double mean, double sigma,
                        uint64_t seed);

/// \brief n i.i.d. rows from the GMM, clipped to [0,1].
Table MakeGmmTable(const GmmDistribution& gmm, size_t n, uint64_t seed);

}  // namespace neurosketch

#endif  // NEUROSKETCH_DATA_GENERATORS_H_
