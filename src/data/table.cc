#include "data/table.h"

#include "util/csv.h"

namespace neurosketch {

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_columns());
}

Result<Table> Table::FromCsvFile(const std::string& path) {
  NS_ASSIGN_OR_RETURN(csv::NumericCsv parsed, csv::ReadNumeric(path));
  Schema schema;
  schema.columns = parsed.header;
  Table t(schema);
  for (const auto& row : parsed.rows) {
    NS_RETURN_NOT_OK(t.AppendRow(row));
  }
  return t;
}

Status Table::AppendRow(const std::vector<double>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row width " + std::to_string(row.size()) +
                                   " != column count " +
                                   std::to_string(columns_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
  ++num_rows_;
  return Status::OK();
}

Status Table::SetColumns(std::vector<std::vector<double>> columns) {
  if (columns.size() != schema_.num_columns()) {
    return Status::InvalidArgument("column count mismatch");
  }
  size_t n = columns.empty() ? 0 : columns[0].size();
  for (const auto& c : columns) {
    if (c.size() != n) return Status::InvalidArgument("ragged columns");
  }
  columns_ = std::move(columns);
  num_rows_ = n;
  return Status::OK();
}

std::vector<double> Table::Row(size_t row) const {
  std::vector<double> out(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) out[c] = columns_[c][row];
  return out;
}

Table Table::Select(const std::vector<size_t>& row_ids) const {
  Table out(schema_);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(row_ids.size());
    for (size_t r : row_ids) out.columns_[c].push_back(columns_[c][r]);
  }
  out.num_rows_ = row_ids.size();
  return out;
}

Result<Table> Table::Project(const std::vector<size_t>& col_ids) const {
  Schema schema;
  for (size_t c : col_ids) {
    if (c >= columns_.size()) {
      return Status::OutOfRange("column id " + std::to_string(c));
    }
    schema.columns.push_back(schema_.columns[c]);
  }
  Table out(schema);
  std::vector<std::vector<double>> cols;
  cols.reserve(col_ids.size());
  for (size_t c : col_ids) cols.push_back(columns_[c]);
  NS_RETURN_NOT_OK(out.SetColumns(std::move(cols)));
  return out;
}

}  // namespace neurosketch
