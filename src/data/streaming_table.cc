#include "data/streaming_table.h"

#include <utility>

namespace neurosketch {

StreamingTable::StreamingTable(Table base)
    : num_columns_(base.num_columns()) {
  auto v = std::make_shared<Version>();
  v->table = std::move(base);
  v->folded = 0;
  current_ = std::move(v);
}

std::shared_ptr<const StreamingTable::Version> StreamingTable::Pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t StreamingTable::folded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->folded;
}

Status StreamingTable::Swap(Table table, uint64_t folded) {
  if (table.num_columns() != num_columns_) {
    return Status::InvalidArgument("streaming table swap changes column count");
  }
  auto next = std::make_shared<Version>();
  next->table = std::move(table);
  next->folded = folded;
  std::lock_guard<std::mutex> lock(mu_);
  if (folded < current_->folded) {
    return Status::InvalidArgument(
        "streaming table fold watermark moved backwards");
  }
  current_ = std::move(next);
  return Status::OK();
}

}  // namespace neurosketch
