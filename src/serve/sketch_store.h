// SketchStore: the serving-side registry of trained NeuroSketches. Where
// core/SketchCatalog is the maintenance view (decide, train, rebuild), the
// store is the read-mostly runtime view: named datasets, versioned sketches
// per query function, and the exact engine to fall back to. All methods are
// thread-safe; lookups take a shared lock and hand out shared_ptrs so a
// sketch stays alive for in-flight batches even if a newer version lands.
#ifndef NEUROSKETCH_SERVE_SKETCH_STORE_H_
#define NEUROSKETCH_SERVE_SKETCH_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/neurosketch.h"
#include "data/streaming_table.h"
#include "query/engine.h"
#include "query/query.h"
#include "serve/delta_buffer.h"
#include "util/buffer_pool.h"
#include "util/status.h"

namespace neurosketch {
namespace serve {

/// \brief Store key: dataset name + query-function identity.
struct ServeKey {
  std::string dataset;
  QueryFunctionKey fn;

  bool operator<(const ServeKey& other) const {
    return std::tie(dataset, fn) < std::tie(other.dataset, other.fn);
  }
  bool operator==(const ServeKey& other) const {
    return !(*this < other) && !(other < *this);
  }

  /// \brief Stable 64-bit identity hash over every key field. This is
  /// what the serving engine routes shards by, so it is a pure function
  /// of the key — independent of registration order, store contents, or
  /// process lifetime.
  uint64_t Hash() const;

  static ServeKey From(const std::string& dataset,
                       const QueryFunctionSpec& spec) {
    return ServeKey{dataset, QueryFunctionKey::From(spec)};
  }
};

/// \brief One registered sketch version, for listings. `size_bytes` is
/// the serialized (on-disk) footprint; `resident_bytes` is what the
/// version actually occupies in memory right now — 0 for a cold paged
/// entry. The two were conflated before the paged catalog existed; they
/// differ by design now (a warm sketch drops its trainer and inactive
/// tiers, a cold one drops everything).
struct SketchListing {
  ServeKey key;
  uint64_t version = 0;
  size_t size_bytes = 0;      // serialized footprint (NeuroSketch::SizeBytes)
  size_t resident_bytes = 0;  // current in-memory footprint (0 when cold)
  size_t num_partitions = 0;
  bool compiled = false;  // serving from compiled inference plans
  /// Precision tier this version serves from (per-store selection: each
  /// registered sketch carries its own validated tier).
  PlanPrecision precision = PlanPrecision::kF64;
  /// True when the listing is a paged-catalog entry (cold listings report
  /// num_partitions/compiled/precision as defaults — inspecting structure
  /// would mean faulting the sketch in).
  bool paged = false;
};

/// \brief What the serving path needs for one answer, resolved in one
/// lookup: the latest sketch version, that version's per-leaf delta fold
/// watermarks, and the dataset's delta buffer. The (sketch, leaf_folded)
/// pair is copied from one map slot under the store lock, so the two can
/// never be observed mid-swap: a refresh registers them together and a
/// reader sees either the old pair or the new pair.
struct ServedView {
  std::shared_ptr<const NeuroSketch> sketch;
  /// Per-leaf fold watermark: delta rows below leaf_folded[leaf_id] are
  /// already baked into this version's leaf model and must NOT be
  /// corrected again. nullptr = nothing folded (watermark 0 everywhere).
  std::shared_ptr<const std::vector<uint64_t>> leaf_folded;
  /// The dataset's streaming delta, nullptr when streaming is not
  /// enabled for the dataset.
  std::shared_ptr<const DeltaBuffer> delta;
};

/// \brief What one SketchStore::Compact call did.
struct CompactionOutcome {
  bool compacted = false;  ///< rows were folded and a new table version swapped
  uint64_t safe = 0;       ///< the computed safe fold watermark
  size_t folded_rows = 0;  ///< delta rows folded into the table by this call
  size_t trimmed_rows = 0;  ///< rows dropped from the delta (chunk-granular,
                            ///< may be 0 right after a fold and catch up on
                            ///< the next call)
  std::string message;      ///< why nothing was folded (informational)
};

/// \brief Per-dataset compaction counters for the metric export
/// (nsketch_serve_delta_compactions_total / delta_folded_rows_total).
struct CompactionCounters {
  uint64_t compactions = 0;
  uint64_t folded_rows = 0;
};

/// \brief Knobs for attaching a paged catalog to a store.
struct PagedCatalogOptions {
  /// Resident-byte budget shared by every paged sketch in this store
  /// (ResidentBytes accounting). 0 = unbounded. Fixed by the first
  /// AttachPagedCatalog call; later attaches share the same pool.
  size_t max_resident_bytes = 0;
};

/// \brief Thread-safe registry of (dataset, query function) -> versioned
/// sketches plus per-dataset exact engines.
class SketchStore {
 public:
  /// \brief Register the exact engine serving fallback traffic for a
  /// dataset. The engine (and its table) must outlive the store.
  Status RegisterDataset(const std::string& dataset,
                         const ExactEngine* engine);

  /// \brief Register a sketch under (dataset, spec) with an explicit
  /// version; version 0 means "one past the current latest". Re-registering
  /// an existing version replaces it. `leaf_folded` records how many delta
  /// rows each leaf's model already reflects (see ServedView); it swaps in
  /// atomically with the sketch. When `leaf_folded` is nullptr and the
  /// dataset has a streaming table attached, the watermarks are filled
  /// with the table's current fold watermark — a sketch registered
  /// without watermarks is assumed trained on the CURRENT base table
  /// (train on a Pin() of it; registering a sketch trained on an older,
  /// since-compacted version needs explicit watermarks and is unsafe once
  /// the rows it would re-correct have been trimmed). Returns the version
  /// actually used.
  Result<uint64_t> Register(
      const std::string& dataset, const QueryFunctionSpec& spec,
      std::shared_ptr<const NeuroSketch> sketch, uint64_t version = 0,
      std::shared_ptr<const std::vector<uint64_t>> leaf_folded = nullptr);
  Result<uint64_t> Register(const std::string& dataset,
                            const QueryFunctionSpec& spec,
                            NeuroSketch sketch, uint64_t version = 0);

  /// \brief Deserialize a sketch from `path` (NeuroSketch::Load) and
  /// register it.
  Result<uint64_t> RegisterFromFile(const std::string& dataset,
                                    const QueryFunctionSpec& spec,
                                    const std::string& path,
                                    uint64_t version = 0);

  /// \brief Adopt every sketch the catalog has built, sharing ownership.
  /// Returns the number of sketches imported.
  size_t ImportFromCatalog(const std::string& dataset,
                           const SketchCatalog& catalog);

  /// \brief Attach a paged catalog file (WritePagedCatalog format): every
  /// entry becomes a cold, disk-resident sketch under (dataset, key) that
  /// faults in through the store's buffer pool on first Lookup. Paged
  /// entries act as version 1; an explicit Register of the same key
  /// shadows the cold copy (that shadowing — and the pool's own eviction
  /// — is the "atomic swap to the cold handle": in-flight batches keep
  /// their pinned shared_ptr, new lookups see the new state). The first
  /// attach fixes the pool budget from `opts`. Returns the number of
  /// entries attached.
  Result<size_t> AttachPagedCatalog(const std::string& dataset,
                                    const std::string& path,
                                    PagedCatalogOptions opts = {});

  /// \brief Latest version for the key, or nullptr when none registered.
  /// For a paged entry this may fault the sketch in from disk (admission
  /// may evict colder stores first); a fault-in failure serves as
  /// "no sketch" so traffic falls back to the exact engine.
  std::shared_ptr<const NeuroSketch> Lookup(const ServeKey& key) const;
  /// \brief A specific version, or nullptr. Version 1 reaches the paged
  /// entry when no registered version shadows it.
  std::shared_ptr<const NeuroSketch> Lookup(const ServeKey& key,
                                            uint64_t version) const;

  /// \brief The streaming serving view: latest sketch + its fold
  /// watermarks + the dataset's delta buffer, read consistently under one
  /// shared lock (paged fault-in happens off-lock as in Lookup). The
  /// sketch is nullptr when none is registered; the delta is nullptr when
  /// streaming is not enabled for the dataset.
  ServedView LookupServed(const ServeKey& key) const;

  /// \brief Turn on streaming ingest for a dataset: creates its (empty)
  /// delta buffer with `num_columns` matching the base table. Idempotent;
  /// InvalidArgument when already enabled with a different column count.
  Status EnableStreaming(const std::string& dataset, size_t num_columns,
                         size_t chunk_rows = 1024);

  /// \brief Append one row / a batch of rows to a dataset's delta buffer.
  /// FailedPrecondition when streaming was not enabled. Thread-safe;
  /// appended rows become visible to in-flight serving exactly (readers
  /// pick them up on their next delta snapshot).
  Status Append(const std::string& dataset, const std::vector<double>& row);
  Status AppendRows(const std::string& dataset,
                    const std::vector<std::vector<double>>& rows);

  /// \brief A dataset's delta buffer, or nullptr when streaming is off.
  std::shared_ptr<const DeltaBuffer> Delta(const std::string& dataset) const;

  /// \brief Attach the swappable base table compaction folds into. The
  /// table must be the one the dataset's registered ExactEngine scans
  /// (construct the engine over it) and must outlive the store. Requires
  /// EnableStreaming first with a matching column count.
  Status AttachStreamingTable(const std::string& dataset,
                              StreamingTable* table);

  /// \brief The dataset's streaming table, or nullptr when none attached.
  StreamingTable* StreamingTableFor(const std::string& dataset) const;

  /// \brief Fold trimmed-eligible delta rows into the dataset's streaming
  /// table and trim the delta. Computes the SAFE FOLD WATERMARK — the
  /// minimum over every leaf watermark of every registered version of
  /// every (dataset, fn) key sharing the dataset (a nullptr watermark
  /// vector and an unshadowed paged entry count as 0; a dataset with no
  /// keys at all may fold everything) — because folding past any live
  /// watermark double-counts rows in one key's answers and drops them
  /// from another's. Rows [folded, safe) are appended to a copy of the
  /// current table version off-lock, the copy swaps in atomically, and
  /// DeltaBuffer::Trim drops whole chunks below the watermark. Serving is
  /// never blocked and answers are bit-identical across the swap:
  /// in-flight batches keep their pinned version plus a delta snapshot
  /// that owns its chunks. Thread-safe; concurrent Compact calls
  /// serialize. Status errors only for infrastructure problems (streaming
  /// off, no table attached); "nothing to fold" is an OK outcome with
  /// compacted=false.
  Result<CompactionOutcome> Compact(const std::string& dataset);

  /// \brief Keep only the newest `keep_latest` versions per key (enforced
  /// at Register time; 0 = keep everything, the default). Old versions
  /// pin the safe fold watermark — a store that compacts should retain a
  /// small window. In-flight readers of a dropped version keep their
  /// shared_ptr.
  void SetVersionRetention(size_t keep_latest);

  /// \brief Per-dataset compaction counters, sorted by dataset name.
  std::vector<std::pair<std::string, CompactionCounters>> CompactionStats()
      const;

  /// \brief Per-dataset delta counters for the metric export, sorted by
  /// dataset name. Empty when no dataset streams.
  std::vector<std::pair<std::string, DeltaBufferStats>> DeltaStats() const;

  /// \brief Serving heat for the eviction policy: credit `answers`
  /// delivered from this key's sketch. No-op for non-paged keys.
  void NoteServed(const ServeKey& key, size_t answers) const;
  /// \brief Error-budget demotion signal: zero the key's heat so it
  /// becomes the preferred eviction victim. No-op for non-paged keys.
  void NotePenalized(const ServeKey& key) const;

  /// \brief Pool residency/faultin/eviction snapshot; zero-value struct
  /// when no paged catalog is attached.
  BufferPoolStats PagedStats() const;
  /// \brief Fault-in latency histogram (microseconds), or nullptr when no
  /// paged catalog is attached. Stable address once attached.
  const metrics::LogHistogram* FaultinLatency() const;

  /// \brief Drop all versions for a key. Returns how many were removed.
  size_t Unregister(const ServeKey& key);

  /// \brief Fallback engine for a dataset, or nullptr when unknown.
  const ExactEngine* Engine(const std::string& dataset) const;

  /// \brief Every registered (key, version), latest first per key.
  std::vector<SketchListing> List() const;

  size_t num_sketches() const;
  /// \brief Cold (paged) entries attached, independent of residency.
  size_t num_paged() const;

 private:
  struct PagedEntry {
    PagedCatalogEntry entry;
    std::shared_ptr<const PagedCatalogReader> reader;
  };

  /// One registered version: the sketch plus the delta fold watermarks it
  /// was registered with. Living in one map slot is what makes the
  /// refresh swap atomic for readers.
  struct VersionEntry {
    std::shared_ptr<const NeuroSketch> sketch;
    std::shared_ptr<const std::vector<uint64_t>> leaf_folded;
  };

  std::shared_ptr<const NeuroSketch> FaultIn(const ServeKey& key,
                                             const PagedEntry& pe) const;

  /// Safe fold watermark for a dataset whose delta currently publishes
  /// `delta_size` rows. Caller holds mu_ (shared or unique).
  uint64_t SafeWatermarkLocked(const std::string& dataset,
                               uint64_t delta_size) const;

  mutable std::shared_mutex mu_;
  std::map<ServeKey, std::map<uint64_t, VersionEntry>> sketches_;
  std::map<std::string, const ExactEngine*> engines_;
  /// Per-dataset streaming delta buffers (DeltaBuffer is internally
  /// thread-safe; the store lock only guards the map itself).
  std::map<std::string, std::shared_ptr<DeltaBuffer>> deltas_;
  /// Per-dataset swappable base tables (compaction folds into these).
  std::map<std::string, StreamingTable*> streaming_tables_;
  std::map<std::string, CompactionCounters> compaction_counters_;
  size_t version_retention_ = 0;  // 0 = unlimited
  /// Serializes Compact passes (the fold copy is the expensive step;
  /// overlapping folds of one dataset would race the swap monotonicity).
  std::mutex compact_mu_;
  std::map<ServeKey, PagedEntry> paged_;
  // Created by the first AttachPagedCatalog, never destroyed after —
  // Lookup reads the raw pointer under mu_ then faults in without it.
  // mutable: faulting in is logically const (read-side of the store).
  mutable std::unique_ptr<BufferPool<ServeKey, NeuroSketch>> pool_;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SKETCH_STORE_H_
