// SketchStore: the serving-side registry of trained NeuroSketches. Where
// core/SketchCatalog is the maintenance view (decide, train, rebuild), the
// store is the read-mostly runtime view: named datasets, versioned sketches
// per query function, and the exact engine to fall back to. All methods are
// thread-safe; lookups take a shared lock and hand out shared_ptrs so a
// sketch stays alive for in-flight batches even if a newer version lands.
#ifndef NEUROSKETCH_SERVE_SKETCH_STORE_H_
#define NEUROSKETCH_SERVE_SKETCH_STORE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/catalog.h"
#include "core/neurosketch.h"
#include "query/engine.h"
#include "query/query.h"
#include "util/status.h"

namespace neurosketch {
namespace serve {

/// \brief Store key: dataset name + query-function identity.
struct ServeKey {
  std::string dataset;
  QueryFunctionKey fn;

  bool operator<(const ServeKey& other) const {
    return std::tie(dataset, fn) < std::tie(other.dataset, other.fn);
  }
  bool operator==(const ServeKey& other) const {
    return !(*this < other) && !(other < *this);
  }

  /// \brief Stable 64-bit identity hash over every key field. This is
  /// what the serving engine routes shards by, so it is a pure function
  /// of the key — independent of registration order, store contents, or
  /// process lifetime.
  uint64_t Hash() const;

  static ServeKey From(const std::string& dataset,
                       const QueryFunctionSpec& spec) {
    return ServeKey{dataset, QueryFunctionKey::From(spec)};
  }
};

/// \brief One registered sketch version, for listings.
struct SketchListing {
  ServeKey key;
  uint64_t version = 0;
  size_t size_bytes = 0;
  size_t num_partitions = 0;
  bool compiled = false;  // serving from compiled inference plans
  /// Precision tier this version serves from (per-store selection: each
  /// registered sketch carries its own validated tier).
  PlanPrecision precision = PlanPrecision::kF64;
};

/// \brief Thread-safe registry of (dataset, query function) -> versioned
/// sketches plus per-dataset exact engines.
class SketchStore {
 public:
  /// \brief Register the exact engine serving fallback traffic for a
  /// dataset. The engine (and its table) must outlive the store.
  Status RegisterDataset(const std::string& dataset,
                         const ExactEngine* engine);

  /// \brief Register a sketch under (dataset, spec) with an explicit
  /// version; version 0 means "one past the current latest". Re-registering
  /// an existing version replaces it. Returns the version actually used.
  Result<uint64_t> Register(const std::string& dataset,
                            const QueryFunctionSpec& spec,
                            std::shared_ptr<const NeuroSketch> sketch,
                            uint64_t version = 0);
  Result<uint64_t> Register(const std::string& dataset,
                            const QueryFunctionSpec& spec,
                            NeuroSketch sketch, uint64_t version = 0);

  /// \brief Deserialize a sketch from `path` (NeuroSketch::Load) and
  /// register it.
  Result<uint64_t> RegisterFromFile(const std::string& dataset,
                                    const QueryFunctionSpec& spec,
                                    const std::string& path,
                                    uint64_t version = 0);

  /// \brief Adopt every sketch the catalog has built, sharing ownership.
  /// Returns the number of sketches imported.
  size_t ImportFromCatalog(const std::string& dataset,
                           const SketchCatalog& catalog);

  /// \brief Latest version for the key, or nullptr when none registered.
  std::shared_ptr<const NeuroSketch> Lookup(const ServeKey& key) const;
  /// \brief A specific version, or nullptr.
  std::shared_ptr<const NeuroSketch> Lookup(const ServeKey& key,
                                            uint64_t version) const;

  /// \brief Drop all versions for a key. Returns how many were removed.
  size_t Unregister(const ServeKey& key);

  /// \brief Fallback engine for a dataset, or nullptr when unknown.
  const ExactEngine* Engine(const std::string& dataset) const;

  /// \brief Every registered (key, version), latest first per key.
  std::vector<SketchListing> List() const;

  size_t num_sketches() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<ServeKey, std::map<uint64_t, std::shared_ptr<const NeuroSketch>>>
      sketches_;
  std::map<std::string, const ExactEngine*> engines_;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SKETCH_STORE_H_
