#include "serve/sketch_store.h"

#include <algorithm>
#include <mutex>

#include "util/shard_router.h"

namespace neurosketch {
namespace serve {

uint64_t ServeKey::Hash() const {
  uint64_t h = Fnv1a64(dataset);
  h = Fnv1a64(fn.predicate_name, h);
  h = Fnv1a64(static_cast<uint64_t>(fn.agg), h);
  h = Fnv1a64(static_cast<uint64_t>(fn.measure_col), h);
  return h;
}

Status SketchStore::RegisterDataset(const std::string& dataset,
                                    const ExactEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine for dataset " + dataset);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  engines_[dataset] = engine;
  return Status::OK();
}

Result<uint64_t> SketchStore::Register(
    const std::string& dataset, const QueryFunctionSpec& spec,
    std::shared_ptr<const NeuroSketch> sketch, uint64_t version,
    std::shared_ptr<const std::vector<uint64_t>> leaf_folded) {
  if (sketch == nullptr) {
    return Status::InvalidArgument("null sketch for dataset " + dataset);
  }
  if (spec.predicate == nullptr) {
    return Status::InvalidArgument("spec has no predicate");
  }
  if (leaf_folded != nullptr &&
      leaf_folded->size() != sketch->num_partitions()) {
    return Status::InvalidArgument("leaf_folded size != num_partitions");
  }
  const ServeKey key = ServeKey::From(dataset, spec);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (leaf_folded == nullptr) {
    // No watermarks means "trained on the current base table": fill with
    // its fold watermark so already-folded rows are not corrected again.
    // Without a streaming table the watermark is 0 and nullptr keeps its
    // historical meaning (nothing folded).
    auto tit = streaming_tables_.find(dataset);
    if (tit != streaming_tables_.end()) {
      const uint64_t folded = tit->second->folded();
      if (folded > 0) {
        leaf_folded = std::make_shared<const std::vector<uint64_t>>(
            sketch->num_partitions(), folded);
      }
    }
  }
  auto& versions = sketches_[key];
  if (version == 0) {
    version = versions.empty() ? 1 : versions.rbegin()->first + 1;
  }
  versions[version] = VersionEntry{std::move(sketch), std::move(leaf_folded)};
  if (version_retention_ > 0) {
    while (versions.size() > version_retention_) {
      versions.erase(versions.begin());
    }
  }
  return version;
}

Result<uint64_t> SketchStore::Register(const std::string& dataset,
                                       const QueryFunctionSpec& spec,
                                       NeuroSketch sketch, uint64_t version) {
  return Register(dataset, spec,
                  std::make_shared<const NeuroSketch>(std::move(sketch)),
                  version);
}

Result<uint64_t> SketchStore::RegisterFromFile(const std::string& dataset,
                                               const QueryFunctionSpec& spec,
                                               const std::string& path,
                                               uint64_t version) {
  NS_ASSIGN_OR_RETURN(NeuroSketch sketch, NeuroSketch::Load(path));
  return Register(dataset, spec, std::move(sketch), version);
}

size_t SketchStore::ImportFromCatalog(const std::string& dataset,
                                      const SketchCatalog& catalog) {
  size_t imported = 0;
  std::unique_lock<std::shared_mutex> lock(mu_);  // one atomic import
  uint64_t folded = 0;
  auto tit = streaming_tables_.find(dataset);
  if (tit != streaming_tables_.end()) folded = tit->second->folded();
  for (auto& [fn_key, sketch] : catalog.Sketches()) {
    auto& versions = sketches_[ServeKey{dataset, fn_key}];
    const uint64_t version =
        versions.empty() ? 1 : versions.rbegin()->first + 1;
    // Same assumption as Register without watermarks: catalog sketches
    // were trained on the current base table.
    auto leaf_folded =
        folded > 0 ? std::make_shared<const std::vector<uint64_t>>(
                         sketch->num_partitions(), folded)
                   : nullptr;
    versions[version] = VersionEntry{sketch, std::move(leaf_folded)};
    if (version_retention_ > 0) {
      while (versions.size() > version_retention_) {
        versions.erase(versions.begin());
      }
    }
    ++imported;
  }
  return imported;
}

Result<size_t> SketchStore::AttachPagedCatalog(const std::string& dataset,
                                               const std::string& path,
                                               PagedCatalogOptions opts) {
  NS_ASSIGN_OR_RETURN(PagedCatalogReader opened, PagedCatalogReader::Open(path));
  auto reader =
      std::make_shared<const PagedCatalogReader>(std::move(opened));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<BufferPool<ServeKey, NeuroSketch>>(
        opts.max_resident_bytes);
  }
  size_t attached = 0;
  for (const PagedCatalogEntry& entry : reader->entries()) {
    paged_[ServeKey{dataset, entry.key}] = PagedEntry{entry, reader};
    ++attached;
  }
  return attached;
}

std::shared_ptr<const NeuroSketch> SketchStore::FaultIn(
    const ServeKey& key, const PagedEntry& pe) const {
  Result<BufferPool<ServeKey, NeuroSketch>::Handle> pinned = pool_->Pin(
      key, [&pe]() -> Result<BufferPoolLoaded<NeuroSketch>> {
        NS_ASSIGN_OR_RETURN(NeuroSketch sketch, pe.reader->LoadEntry(pe.entry));
        BufferPoolLoaded<NeuroSketch> out;
        out.value = std::make_shared<const NeuroSketch>(std::move(sketch));
        // Charge what the warm sketch actually occupies (active tier
        // only — Load comes up lean), not its on-disk size.
        out.bytes = out.value->ResidentBytes();
        return out;
      });
  // A fault-in failure (unreadable file, value over the whole budget)
  // serves as "no sketch": callers fall back to the exact engine.
  if (!pinned.ok()) return nullptr;
  return std::move(pinned).value();
}

std::shared_ptr<const NeuroSketch> SketchStore::Lookup(
    const ServeKey& key) const {
  PagedEntry pe;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = sketches_.find(key);
    if (it != sketches_.end() && !it->second.empty()) {
      return it->second.rbegin()->second.sketch;
    }
    auto pit = paged_.find(key);
    if (pit == paged_.end()) return nullptr;
    pe = pit->second;
  }
  // Fault in without the store lock: disk I/O (and any admission wait)
  // must not block registrations or unrelated lookups.
  return FaultIn(key, pe);
}

std::shared_ptr<const NeuroSketch> SketchStore::Lookup(
    const ServeKey& key, uint64_t version) const {
  PagedEntry pe;
  bool paged = false;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = sketches_.find(key);
    if (it != sketches_.end()) {
      auto vit = it->second.find(version);
      if (vit != it->second.end()) return vit->second.sketch;
    }
    if (version == 1) {
      auto pit = paged_.find(key);
      if (pit != paged_.end()) {
        pe = pit->second;
        paged = true;
      }
    }
  }
  return paged ? FaultIn(key, pe) : nullptr;
}

ServedView SketchStore::LookupServed(const ServeKey& key) const {
  ServedView view;
  PagedEntry pe;
  bool paged = false;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto dit = deltas_.find(key.dataset);
    if (dit != deltas_.end()) view.delta = dit->second;
    auto it = sketches_.find(key);
    if (it != sketches_.end() && !it->second.empty()) {
      // One slot read: the (sketch, leaf_folded) pair can never be
      // observed mid-swap.
      const VersionEntry& entry = it->second.rbegin()->second;
      view.sketch = entry.sketch;
      view.leaf_folded = entry.leaf_folded;
      return view;
    }
    auto pit = paged_.find(key);
    if (pit != paged_.end()) {
      pe = pit->second;
      paged = true;
    }
  }
  if (paged) view.sketch = FaultIn(key, pe);
  return view;
}

Status SketchStore::EnableStreaming(const std::string& dataset,
                                    size_t num_columns, size_t chunk_rows) {
  if (num_columns == 0) {
    return Status::InvalidArgument("streaming needs at least one column");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = deltas_.find(dataset);
  if (it != deltas_.end()) {
    if (it->second->num_columns() != num_columns) {
      return Status::InvalidArgument(
          "streaming already enabled with a different column count for " +
          dataset);
    }
    return Status::OK();
  }
  deltas_[dataset] = std::make_shared<DeltaBuffer>(num_columns, chunk_rows);
  return Status::OK();
}

Status SketchStore::Append(const std::string& dataset,
                           const std::vector<double>& row) {
  std::shared_ptr<DeltaBuffer> delta;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = deltas_.find(dataset);
    if (it == deltas_.end()) {
      return Status::FailedPrecondition("streaming not enabled for " + dataset);
    }
    delta = it->second;
  }
  delta->Append(row);
  return Status::OK();
}

Status SketchStore::AppendRows(const std::string& dataset,
                               const std::vector<std::vector<double>>& rows) {
  std::shared_ptr<DeltaBuffer> delta;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = deltas_.find(dataset);
    if (it == deltas_.end()) {
      return Status::FailedPrecondition("streaming not enabled for " + dataset);
    }
    delta = it->second;
  }
  delta->AppendRows(rows);
  return Status::OK();
}

std::shared_ptr<const DeltaBuffer> SketchStore::Delta(
    const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = deltas_.find(dataset);
  return it == deltas_.end() ? nullptr : it->second;
}

std::vector<std::pair<std::string, DeltaBufferStats>> SketchStore::DeltaStats()
    const {
  std::vector<std::pair<std::string, DeltaBufferStats>> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.reserve(deltas_.size());
  for (const auto& [dataset, delta] : deltas_) {
    out.emplace_back(dataset, delta->Stats());
  }
  return out;
}

Status SketchStore::AttachStreamingTable(const std::string& dataset,
                                         StreamingTable* table) {
  if (table == nullptr) {
    return Status::InvalidArgument("null streaming table for " + dataset);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto dit = deltas_.find(dataset);
  if (dit == deltas_.end()) {
    return Status::FailedPrecondition("streaming not enabled for " + dataset);
  }
  if (dit->second->num_columns() != table->num_columns()) {
    return Status::InvalidArgument(
        "streaming table column count does not match the delta buffer for " +
        dataset);
  }
  auto it = streaming_tables_.find(dataset);
  if (it != streaming_tables_.end() && it->second != table) {
    return Status::InvalidArgument(
        "a different streaming table is already attached for " + dataset);
  }
  streaming_tables_[dataset] = table;
  return Status::OK();
}

StreamingTable* SketchStore::StreamingTableFor(
    const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = streaming_tables_.find(dataset);
  return it == streaming_tables_.end() ? nullptr : it->second;
}

uint64_t SketchStore::SafeWatermarkLocked(const std::string& dataset,
                                          uint64_t delta_size) const {
  // Minimum over every leaf watermark of every registered version of
  // every key sharing the dataset. A version without watermarks and an
  // unshadowed paged entry mean "nothing folded" (watermark 0); a dataset
  // with no keys at all serves exact-only and may fold everything.
  uint64_t safe = delta_size;
  for (const auto& [key, versions] : sketches_) {
    if (key.dataset != dataset) continue;
    for (const auto& [version, entry] : versions) {
      (void)version;
      if (entry.leaf_folded == nullptr) {
        safe = 0;
        continue;
      }
      for (uint64_t w : *entry.leaf_folded) safe = std::min(safe, w);
    }
  }
  for (const auto& [key, pe] : paged_) {
    (void)pe;
    if (key.dataset != dataset) continue;
    auto sit = sketches_.find(key);
    if (sit == sketches_.end() || sit->second.empty()) safe = 0;
  }
  return safe;
}

Result<CompactionOutcome> SketchStore::Compact(const std::string& dataset) {
  std::lock_guard<std::mutex> compact_lock(compact_mu_);
  std::shared_ptr<DeltaBuffer> delta;
  StreamingTable* table = nullptr;
  uint64_t safe = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto dit = deltas_.find(dataset);
    if (dit == deltas_.end()) {
      return Status::FailedPrecondition("streaming not enabled for " + dataset);
    }
    delta = dit->second;
    auto tit = streaming_tables_.find(dataset);
    if (tit == streaming_tables_.end()) {
      return Status::FailedPrecondition("no streaming table attached for " +
                                        dataset);
    }
    table = tit->second;
    safe = SafeWatermarkLocked(dataset, delta->size());
  }

  CompactionOutcome out;
  out.safe = safe;
  const std::shared_ptr<const StreamingTable::Version> cur = table->Pin();
  if (safe <= cur->folded) {
    // Nothing new to fold; a previous fold may still have chunks whose
    // tail just crossed the watermark, so trimming is still worth a try.
    out.trimmed_rows = delta->Trim(cur->folded);
    out.message = "safe watermark " + std::to_string(safe) +
                  " <= folded " + std::to_string(cur->folded);
    return out;
  }

  // Fold [folded, safe) into a copy of the current version, off every
  // lock: serving and appends continue untouched. The snapshot's begin is
  // <= folded (Trim never passes the fold watermark) and its end covers
  // `safe` (read from the same buffer before the snapshot).
  Table next = cur->table;
  const DeltaBuffer::Snapshot snap = delta->Snap();
  std::vector<double> row(snap.num_columns());
  bool rows_ok = true;
  snap.ForEachRow(cur->folded, safe, [&](const double* r) {
    row.assign(r, r + snap.num_columns());
    if (!next.AppendRow(row).ok()) rows_ok = false;
  });
  if (!rows_ok) {
    return Status::Unknown("column mismatch while folding rows for " +
                           dataset);
  }

  // Swap under the store lock so it is atomic against Register's
  // default watermark fill, then recompute the trim bound: a sketch
  // registered between the safe computation above and this swap carries
  // the OLD fold watermark and still needs its delta rows — trim only to
  // what every currently registered watermark allows.
  uint64_t trim_to = safe;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    const Status swapped = table->Swap(std::move(next), safe);
    if (!swapped.ok()) return swapped;
    trim_to = std::min<uint64_t>(safe, SafeWatermarkLocked(dataset, safe));
    auto& counters = compaction_counters_[dataset];
    ++counters.compactions;
    counters.folded_rows += static_cast<uint64_t>(safe - cur->folded);
  }
  out.compacted = true;
  out.folded_rows = static_cast<size_t>(safe - cur->folded);
  out.trimmed_rows = delta->Trim(trim_to);
  return out;
}

void SketchStore::SetVersionRetention(size_t keep_latest) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  version_retention_ = keep_latest;
}

std::vector<std::pair<std::string, CompactionCounters>>
SketchStore::CompactionStats() const {
  std::vector<std::pair<std::string, CompactionCounters>> out;
  std::shared_lock<std::shared_mutex> lock(mu_);
  out.reserve(compaction_counters_.size());
  for (const auto& [dataset, counters] : compaction_counters_) {
    out.emplace_back(dataset, counters);
  }
  return out;
}

void SketchStore::NoteServed(const ServeKey& key, size_t answers) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (pool_ != nullptr && paged_.count(key) > 0) {
    pool_->Touch(key, static_cast<double>(answers));
  }
}

void SketchStore::NotePenalized(const ServeKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (pool_ != nullptr && paged_.count(key) > 0) pool_->Penalize(key);
}

BufferPoolStats SketchStore::PagedStats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pool_ == nullptr ? BufferPoolStats{} : pool_->Stats();
}

const metrics::LogHistogram* SketchStore::FaultinLatency() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pool_ == nullptr ? nullptr : &pool_->faultin_latency();
}

size_t SketchStore::Unregister(const ServeKey& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = sketches_.find(key);
  if (it == sketches_.end()) return 0;
  const size_t removed = it->second.size();
  sketches_.erase(it);
  return removed;
}

const ExactEngine* SketchStore::Engine(const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = engines_.find(dataset);
  return it == engines_.end() ? nullptr : it->second;
}

std::vector<SketchListing> SketchStore::List() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SketchListing> out;
  for (const auto& [key, versions] : sketches_) {
    for (auto vit = versions.rbegin(); vit != versions.rend(); ++vit) {
      const NeuroSketch& sk = *vit->second.sketch;
      SketchListing l;
      l.key = key;
      l.version = vit->first;
      l.size_bytes = sk.SizeBytes();
      l.resident_bytes = sk.ResidentBytes();
      l.num_partitions = sk.num_partitions();
      l.compiled = sk.compiled();
      l.precision = sk.plan_precision();
      out.push_back(std::move(l));
    }
  }
  for (const auto& [key, pe] : paged_) {
    // A registered version shadows the cold copy entirely.
    auto it = sketches_.find(key);
    if (it != sketches_.end() && !it->second.empty()) continue;
    SketchListing l;
    l.key = key;
    l.version = 1;
    l.size_bytes = pe.entry.size_bytes;
    l.paged = true;
    // Peek (no pin, no fault-in): a resident entry reports its live
    // structure; a cold one reports only its on-disk size.
    if (auto resident = pool_ ? pool_->Peek(key) : nullptr) {
      l.resident_bytes = resident->ResidentBytes();
      l.num_partitions = resident->num_partitions();
      l.compiled = resident->compiled();
      l.precision = resident->plan_precision();
    }
    out.push_back(std::move(l));
  }
  return out;
}

size_t SketchStore::num_sketches() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, versions] : sketches_) n += versions.size();
  return n;
}

size_t SketchStore::num_paged() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return paged_.size();
}

}  // namespace serve
}  // namespace neurosketch
