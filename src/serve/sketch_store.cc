#include "serve/sketch_store.h"

#include <mutex>

#include "util/shard_router.h"

namespace neurosketch {
namespace serve {

uint64_t ServeKey::Hash() const {
  uint64_t h = Fnv1a64(dataset);
  h = Fnv1a64(fn.predicate_name, h);
  h = Fnv1a64(static_cast<uint64_t>(fn.agg), h);
  h = Fnv1a64(static_cast<uint64_t>(fn.measure_col), h);
  return h;
}

Status SketchStore::RegisterDataset(const std::string& dataset,
                                    const ExactEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("null engine for dataset " + dataset);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  engines_[dataset] = engine;
  return Status::OK();
}

Result<uint64_t> SketchStore::Register(
    const std::string& dataset, const QueryFunctionSpec& spec,
    std::shared_ptr<const NeuroSketch> sketch, uint64_t version) {
  if (sketch == nullptr) {
    return Status::InvalidArgument("null sketch for dataset " + dataset);
  }
  if (spec.predicate == nullptr) {
    return Status::InvalidArgument("spec has no predicate");
  }
  const ServeKey key = ServeKey::From(dataset, spec);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& versions = sketches_[key];
  if (version == 0) {
    version = versions.empty() ? 1 : versions.rbegin()->first + 1;
  }
  versions[version] = std::move(sketch);
  return version;
}

Result<uint64_t> SketchStore::Register(const std::string& dataset,
                                       const QueryFunctionSpec& spec,
                                       NeuroSketch sketch, uint64_t version) {
  return Register(dataset, spec,
                  std::make_shared<const NeuroSketch>(std::move(sketch)),
                  version);
}

Result<uint64_t> SketchStore::RegisterFromFile(const std::string& dataset,
                                               const QueryFunctionSpec& spec,
                                               const std::string& path,
                                               uint64_t version) {
  NS_ASSIGN_OR_RETURN(NeuroSketch sketch, NeuroSketch::Load(path));
  return Register(dataset, spec, std::move(sketch), version);
}

size_t SketchStore::ImportFromCatalog(const std::string& dataset,
                                      const SketchCatalog& catalog) {
  size_t imported = 0;
  std::unique_lock<std::shared_mutex> lock(mu_);  // one atomic import
  for (auto& [fn_key, sketch] : catalog.Sketches()) {
    auto& versions = sketches_[ServeKey{dataset, fn_key}];
    const uint64_t version =
        versions.empty() ? 1 : versions.rbegin()->first + 1;
    versions[version] = sketch;
    ++imported;
  }
  return imported;
}

std::shared_ptr<const NeuroSketch> SketchStore::Lookup(
    const ServeKey& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sketches_.find(key);
  if (it == sketches_.end() || it->second.empty()) return nullptr;
  return it->second.rbegin()->second;
}

std::shared_ptr<const NeuroSketch> SketchStore::Lookup(
    const ServeKey& key, uint64_t version) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = sketches_.find(key);
  if (it == sketches_.end()) return nullptr;
  auto vit = it->second.find(version);
  return vit == it->second.end() ? nullptr : vit->second;
}

size_t SketchStore::Unregister(const ServeKey& key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = sketches_.find(key);
  if (it == sketches_.end()) return 0;
  const size_t removed = it->second.size();
  sketches_.erase(it);
  return removed;
}

const ExactEngine* SketchStore::Engine(const std::string& dataset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = engines_.find(dataset);
  return it == engines_.end() ? nullptr : it->second;
}

std::vector<SketchListing> SketchStore::List() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<SketchListing> out;
  for (const auto& [key, versions] : sketches_) {
    for (auto vit = versions.rbegin(); vit != versions.rend(); ++vit) {
      SketchListing l;
      l.key = key;
      l.version = vit->first;
      l.size_bytes = vit->second->SizeBytes();
      l.num_partitions = vit->second->num_partitions();
      l.compiled = vit->second->compiled();
      l.precision = vit->second->plan_precision();
      out.push_back(std::move(l));
    }
  }
  return out;
}

size_t SketchStore::num_sketches() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, versions] : sketches_) n += versions.size();
  return n;
}

}  // namespace serve
}  // namespace neurosketch
