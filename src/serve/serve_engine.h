// ServeEngine: concurrent request front end over a SketchStore (paper
// Sec. 4 / Alg. 5 turned into a serving system), rearchitected shard-per-
// core. Stores are partitioned across N dispatcher shards by a stable
// hash of their (dataset, query function) key; each shard owns a
// dedicated dispatcher thread, its own wait-free MPSC submission ring,
// its own per-key micro-batch queues, and its own counter/histogram
// block, so dispatchers never contend with each other and a sketch's
// thread-local workspace arena is only ever warmed by one core.
//
// Client submission is wait-free: Submit/SubmitMany claim a ring slot
// with one unconditional fetch_add (no engine-wide mutex, no CAS retry
// loop) and block only when the target shard's ring is full — bounded-
// queue backpressure, counted per shard. The answer pipeline is
// decoupled from submission: while a shard's dispatcher runs inference
// on batch k, clients keep publishing batch k+1 into the ring; the
// dispatcher drains the ring into per-key queues (batch assembly) each
// time it comes back from a forward pass.
//
// Batching semantics are unchanged from the single-queue engine: time/
// size bounded micro-batches per (dataset, query function), one
// vectorized forward pass per batch (NeuroSketch::AnswerBatchVectorized:
// flat-buffer fused kernels + thread-local workspace, zero heap
// allocations per query), exact-engine fallback and per-store error
// budgets. Answers are bit-identical to serial NeuroSketch::AnswerBatch.
//
// Observability: every counter and stage histogram is kept per shard
// (merged at Snapshot), so the export carries both per-store and
// per-shard labeled series — a hot shard is distinguishable from a hot
// store. The slow-query ring records the serving shard in each trace.
// All stage tracing remains behind ServeOptions::stage_tracing.
#ifndef NEUROSKETCH_SERVE_SERVE_ENGINE_H_
#define NEUROSKETCH_SERVE_SERVE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve_stats.h"
#include "serve/sketch_store.h"
#include "util/metrics.h"
#include "util/mpsc_queue.h"
#include "util/shard_router.h"
#include "util/timer.h"
#include "util/trace_ring.h"

namespace neurosketch {
namespace serve {

struct ServeOptions {
  /// Micro-batch size bound: a batch dispatches as soon as this many
  /// requests are pending for one store entry. 1 disables batching
  /// (per-query dispatch).
  size_t max_batch = 256;
  /// Micro-batch time bound in microseconds: a batch dispatches once its
  /// oldest request has waited this long, full or not. 0 disables the
  /// wait (dispatch as soon as a dispatcher is free).
  double batch_window_us = 200.0;
  /// Dispatcher shards, each with a dedicated thread, submission ring and
  /// per-key queues. 0 = hardware concurrency. Store keys are pinned to
  /// shards by a stable hash, so one store's traffic is always served by
  /// the same core.
  size_t num_shards = 0;
  /// Per-shard submission ring capacity in entries (one Submit or one
  /// SubmitMany burst each), rounded up to a power of two. A full ring
  /// blocks the submitting client until the shard catches up.
  size_t submit_queue_capacity = 1024;
  /// Threads for exact-engine fallback batches (0 = hardware concurrency).
  size_t exact_batch_threads = 0;
  /// Error budget: once a store entry has attempted at least
  /// `budget_min_samples` sketch answers, it is demoted — all later
  /// traffic goes to the exact engine — when its NaN (unanswerable) count
  /// exceeds `max_sketch_failure_rate` times its count of genuinely
  /// sketch-answered queries. Repaired queries do not count as sketch
  /// answers, so a mostly-broken sketch cannot dilute its own failure
  /// rate.
  double max_sketch_failure_rate = 0.1;
  size_t budget_min_samples = 64;
  /// Per-stage pipeline tracing + slow-query capture. When off, the
  /// engine skips the stage clock reads and histogram increments — the
  /// residual cost is one branch per micro-batch; the aggregate counters
  /// and submit->answer latency histogram are always maintained.
  bool stage_tracing = true;
  /// Capacity of the slowest-K query trace ring (0 disables capture;
  /// only consulted when stage_tracing is on).
  size_t slow_query_capacity = 32;
};

/// \brief One delivered answer.
struct ServeResult {
  double value = 0.0;
  bool used_sketch = false;
};

/// \brief Concurrent micro-batching query server, shard-per-core.
class ServeEngine {
 public:
  explicit ServeEngine(const SketchStore* store, ServeOptions options = {});

  /// \brief Drains every pending request, then stops the dispatchers.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// \brief Enqueue one query; the future resolves when its micro-batch
  /// has been answered. Thread-safe; wait-free except when the target
  /// shard's submission ring is full (backpressure).
  std::future<ServeResult> Submit(const std::string& dataset,
                                  const QueryFunctionSpec& spec,
                                  QueryInstance q);

  /// \brief Enqueue a burst of queries sharing one future; the results
  /// come back in submission order. Semantically identical to calling
  /// Submit per query, but the burst occupies ONE ring slot and pays one
  /// promise — the client half of micro-batching.
  std::future<std::vector<ServeResult>> SubmitMany(
      const std::string& dataset, const QueryFunctionSpec& spec,
      std::vector<QueryInstance> queries);

  /// \brief Blocking convenience: Submit + wait.
  ServeResult Answer(const std::string& dataset,
                     const QueryFunctionSpec& spec, QueryInstance q);

  /// \brief Current counters; cheap enough to poll. Engine-wide values
  /// are sums over the per-shard blocks. Consistency contract documented
  /// on ServeStats (relaxed reads, ~one batch stale).
  ServeStats Snapshot() const;

  /// \brief Restart the stats window as one operation: zeroes every
  /// counter and histogram (per-shard, per-stage, and per-store),
  /// empties the slow-query ring, and resets the elapsed-time clock,
  /// holding every shard lock so no new batch lands between the counter
  /// clear and the clock restart. Error-budget state (per-store failure
  /// accounting and demotions) is control state, not stats, and is
  /// preserved. See ServeStats for what in-flight answers may do.
  void ResetStats();

  /// \brief The K slowest queries observed since start (or ResetStats),
  /// slowest first, with their stage breakdowns and serving shard. Empty
  /// when tracing or the ring is disabled.
  std::vector<metrics::SlowQueryTrace> SlowQueries() const;

  /// \brief Mirror the current counters and histograms into `registry`
  /// under `prefix` (counters, stage + latency histograms, labeled
  /// per-store series, and labeled per-shard series), for text/JSON
  /// exposition alongside other subsystems.
  void ExportMetrics(metrics::MetricsRegistry* registry,
                     const std::string& prefix = "nsketch_serve_") const;

  /// \brief Demote a store key as if its error budget tripped: all later
  /// traffic for (dataset, spec) goes to the exact engine (still with
  /// exact delta composition), and the key's paged-catalog heat is
  /// zeroed (NotePenalized). The refresh controller calls this when a
  /// store's drift outruns refresh — repeated refresh failures must not
  /// leave a known-stale sketch serving. Idempotent; counted under
  /// budget_trips on the first call.
  void DemoteStore(const std::string& dataset, const QueryFunctionSpec& spec);

  /// \brief The shard a key's traffic is pinned to: a pure function of
  /// the key and the shard count, stable across Register/Unregister of
  /// any store (including this one).
  size_t ShardOf(const std::string& dataset,
                 const QueryFunctionSpec& spec) const;

  size_t num_shards() const { return shards_.size(); }
  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Completion state for one SubmitMany burst: the last answered slot
  /// resolves the shared promise.
  struct Wave {
    std::vector<ServeResult> results;
    std::atomic<size_t> remaining{0};
    std::promise<std::vector<ServeResult>> promise;
  };

  struct Request {
    QueryInstance q;
    Clock::time_point enqueued;
    std::unique_ptr<std::promise<ServeResult>> promise;  // single Submit
    std::shared_ptr<Wave> wave;                          // SubmitMany
    size_t wave_slot = 0;
  };

  /// One ring entry: a single request or a whole SubmitMany burst, with
  /// enough routing context (key + canonical spec) for the dispatcher to
  /// file it into the right per-key queue.
  struct Submission {
    ServeKey key;
    QueryFunctionSpec spec;
    Clock::time_point enqueued;
    // Single Submit:
    QueryInstance q;
    std::unique_ptr<std::promise<ServeResult>> promise;
    // SubmitMany burst:
    std::vector<QueryInstance> queries;
    std::shared_ptr<Wave> wave;
  };

  /// Per-store lock-free counters, updated on the fulfill path and read
  /// by Snapshot. Owned via shared_ptr so ExecuteBatch can update them
  /// after dropping the shard lock.
  struct StoreCounters {
    std::string display;  // "dataset/agg(col N)"
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> sketch_answers{0};
    std::atomic<uint64_t> f32_sketch_answers{0};
    std::atomic<uint64_t> int8_sketch_answers{0};
    std::atomic<uint64_t> fallback_answers{0};
    std::atomic<uint64_t> failed_answers{0};
    std::atomic<uint64_t> delta_corrected_answers{0};
    std::atomic<uint64_t> delta_exact_answers{0};
    LatencyHistogram latency;
  };

  /// Per (dataset, query function) pending queue + error-budget health.
  /// Owned by exactly one shard; mutated only by that shard's dispatcher
  /// under the shard lock (Snapshot takes the same lock to read).
  struct KeyState {
    QueryFunctionSpec spec;  // canonical spec, set by the first Submit
    std::deque<Request> pending;
    uint64_t sketch_answers = 0;  // genuinely sketch-answered (non-NaN)
    uint64_t sketch_nans = 0;     // sketch NaNs (repaired or failed)
    bool demoted = false;  // error budget exceeded; serve exact only
    std::shared_ptr<StoreCounters> counters;  // created on first Submit
  };

  /// One dispatcher shard: submission ring, dedicated thread, per-key
  /// queues, and its own counter/histogram block. Cacheline-aligned so
  /// neighboring shards' hot atomics never share a line.
  struct alignas(64) Shard {
    MpscRing<Submission> ring;
    std::thread dispatcher;

    /// Guards keys + pending_count (dispatcher vs Snapshot/ResetStats —
    /// effectively uncontended at serving time) and backs the cv.
    std::mutex mu;
    std::condition_variable cv;
    /// Sleep/wake handshake: set (seq_cst) by the dispatcher just before
    /// it decides to wait; producers re-check it after publishing (with a
    /// seq_cst fence between), so a submission can never be published
    /// without either the dispatcher seeing it or the producer seeing
    /// `sleeping` and ringing the cv.
    std::atomic<bool> sleeping{false};
    std::map<ServeKey, KeyState> keys;
    size_t pending_count = 0;

    // Shard-local metrics (relaxed atomics; Snapshot sums across shards).
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> sketch_answers{0};
    std::atomic<uint64_t> f32_sketch_answers{0};
    std::atomic<uint64_t> int8_sketch_answers{0};
    std::atomic<uint64_t> fallback_answers{0};
    std::atomic<uint64_t> failed_answers{0};
    std::atomic<uint64_t> delta_corrected_answers{0};
    std::atomic<uint64_t> delta_exact_answers{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> budget_trips{0};
    std::atomic<uint64_t> backpressure_waits{0};
    LatencyHistogram latency;
    // Stage histograms (only written when options_.stage_tracing).
    LatencyHistogram stage_queue;
    LatencyHistogram stage_assembly;
    LatencyHistogram stage_inference;
    LatencyHistogram stage_fulfill;

    explicit Shard(size_t ring_capacity) : ring(ring_capacity) {}
  };

  void DispatchLoop(Shard* shard);
  /// Moves every published ring entry into the shard's per-key queues.
  /// Caller holds shard->mu. Returns the number of requests filed.
  size_t DrainRingLocked(Shard* shard);
  /// Routes a submission to its shard: one ring Push (wait-free claim)
  /// plus the sleep/wake handshake.
  void Route(Submission s);
  /// `collected` is the instant the dispatcher picked the batch off the
  /// queue — the queue-wait / batch-assembly stage boundary.
  void ExecuteBatch(Shard* shard, const ServeKey& key,
                    const QueryFunctionSpec& spec, bool allow_sketch,
                    std::vector<Request>* batch, Clock::time_point collected,
                    StoreCounters* sc);
  /// `tier` is the precision the answer was served from; only meaningful
  /// when used_sketch is true (fallback/failed answers pass kF64).
  /// Returns the submit->answer latency in microseconds. When `now_out`
  /// is non-null it receives the clock read Fulfill pays for anyway, so
  /// tracing can bound the fulfill stage without an extra Clock::now().
  double Fulfill(Shard* shard, Request* r, double value, bool used_sketch,
                 PlanPrecision tier, StoreCounters* sc,
                 Clock::time_point* now_out = nullptr);
  /// Locates (creating on demand) the KeyState for a submission; caller
  /// must hold the shard's lock. Only the owning dispatcher calls this.
  KeyState& KeyStateLocked(Shard* shard, const ServeKey& key,
                           const QueryFunctionSpec& spec);

  size_t ShardIndexOf(const ServeKey& key) const {
    return router_.ShardOf(key.Hash());
  }

  const SketchStore* store_;
  const ServeOptions options_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stop_{false};

  metrics::SlowQueryRing slow_queries_;
  Timer uptime_;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SERVE_ENGINE_H_
