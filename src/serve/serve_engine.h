// ServeEngine: concurrent request front end over a SketchStore (paper
// Sec. 4 / Alg. 5 turned into a serving system). Clients Submit() queries
// from any number of threads; a dispatcher groups them into time/size
// bounded micro-batches per (dataset, query function), answers each batch
// with one vectorized forward pass over the sketch's compiled inference
// plans (NeuroSketch::AnswerBatchVectorized: flat-buffer fused kernels +
// thread-local workspace, so the model math performs zero heap allocations
// per query), and falls back to the exact engine when no sketch is
// registered or a per-store error budget has been exceeded. Answers are
// bit-identical to serial NeuroSketch::AnswerBatch.
//
// Observability: the engine splits every answer's submit->answer latency
// into queue-wait / batch-assembly / inference / fulfill stage histograms
// (one steady_clock read per stage boundary, amortized over the whole
// micro-batch), keeps per-store counters + tail percentiles so hot/cold
// store skew is visible, and captures the K slowest queries with their
// full stage breakdown in a lock-free-gated trace ring. All of it is
// behind ServeOptions::stage_tracing, a runtime toggle whose off cost is
// one branch per batch.
#ifndef NEUROSKETCH_SERVE_SERVE_ENGINE_H_
#define NEUROSKETCH_SERVE_SERVE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/serve_stats.h"
#include "serve/sketch_store.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace_ring.h"

namespace neurosketch {
namespace serve {

struct ServeOptions {
  /// Micro-batch size bound: a batch dispatches as soon as this many
  /// requests are pending for one store entry. 1 disables batching
  /// (per-query dispatch).
  size_t max_batch = 256;
  /// Micro-batch time bound in microseconds: a batch dispatches once its
  /// oldest request has waited this long, full or not. 0 disables the
  /// wait (dispatch as soon as a dispatcher is free).
  double batch_window_us = 200.0;
  /// Dispatcher threads draining the request queue.
  size_t num_dispatchers = 1;
  /// Threads for exact-engine fallback batches (0 = hardware concurrency).
  size_t exact_batch_threads = 0;
  /// Error budget: once a store entry has attempted at least
  /// `budget_min_samples` sketch answers, it is demoted — all later
  /// traffic goes to the exact engine — when its NaN (unanswerable) count
  /// exceeds `max_sketch_failure_rate` times its count of genuinely
  /// sketch-answered queries. Repaired queries do not count as sketch
  /// answers, so a mostly-broken sketch cannot dilute its own failure
  /// rate.
  double max_sketch_failure_rate = 0.1;
  size_t budget_min_samples = 64;
  /// Per-stage pipeline tracing + slow-query capture. When off, the
  /// engine skips the stage clock reads and histogram increments — the
  /// residual cost is one branch per micro-batch; the aggregate counters
  /// and submit->answer latency histogram are always maintained.
  bool stage_tracing = true;
  /// Capacity of the slowest-K query trace ring (0 disables capture;
  /// only consulted when stage_tracing is on).
  size_t slow_query_capacity = 32;
};

/// \brief One delivered answer.
struct ServeResult {
  double value = 0.0;
  bool used_sketch = false;
};

/// \brief Concurrent micro-batching query server.
class ServeEngine {
 public:
  explicit ServeEngine(const SketchStore* store, ServeOptions options = {});

  /// \brief Drains every pending request, then stops the dispatchers.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// \brief Enqueue one query; the future resolves when its micro-batch
  /// has been answered. Thread-safe, non-blocking.
  std::future<ServeResult> Submit(const std::string& dataset,
                                  const QueryFunctionSpec& spec,
                                  QueryInstance q);

  /// \brief Enqueue a burst of queries sharing one future; the results
  /// come back in submission order. Semantically identical to calling
  /// Submit per query, but the burst pays one lock acquisition and one
  /// promise instead of one per query — the client half of micro-batching.
  std::future<std::vector<ServeResult>> SubmitMany(
      const std::string& dataset, const QueryFunctionSpec& spec,
      std::vector<QueryInstance> queries);

  /// \brief Blocking convenience: Submit + wait.
  ServeResult Answer(const std::string& dataset,
                     const QueryFunctionSpec& spec, QueryInstance q);

  /// \brief Current counters; cheap enough to poll. Consistency contract
  /// documented on ServeStats (relaxed reads, ~one batch stale).
  ServeStats Snapshot() const;

  /// \brief Restart the stats window as one operation: zeroes every
  /// counter and histogram (engine-wide, per-stage, and per-store),
  /// empties the slow-query ring, and resets the elapsed-time clock,
  /// all under the engine lock so no new batch lands between the counter
  /// clear and the clock restart. Error-budget state (per-store failure
  /// accounting and demotions) is control state, not stats, and is
  /// preserved. See ServeStats for what in-flight answers may do.
  void ResetStats();

  /// \brief The K slowest queries observed since start (or ResetStats),
  /// slowest first, with their stage breakdowns. Empty when tracing or
  /// the ring is disabled.
  std::vector<metrics::SlowQueryTrace> SlowQueries() const;

  /// \brief Mirror the current counters and histograms into `registry`
  /// under `prefix` (counters, stage + latency histograms, and labeled
  /// per-store series), for text/JSON exposition alongside other
  /// subsystems.
  void ExportMetrics(metrics::MetricsRegistry* registry,
                     const std::string& prefix = "nsketch_serve_") const;

  const ServeOptions& options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// Completion state for one SubmitMany burst: the last answered slot
  /// resolves the shared promise.
  struct Wave {
    std::vector<ServeResult> results;
    std::atomic<size_t> remaining{0};
    std::promise<std::vector<ServeResult>> promise;
  };

  struct Request {
    QueryInstance q;
    Clock::time_point enqueued;
    std::unique_ptr<std::promise<ServeResult>> promise;  // single Submit
    std::shared_ptr<Wave> wave;                          // SubmitMany
    size_t wave_slot = 0;
  };

  /// Per-store lock-free counters, updated on the fulfill path and read
  /// by Snapshot. Owned via shared_ptr so ExecuteBatch can update them
  /// after dropping the engine lock.
  struct StoreCounters {
    std::string display;  // "dataset/agg(col N)"
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> sketch_answers{0};
    std::atomic<uint64_t> f32_sketch_answers{0};
    std::atomic<uint64_t> int8_sketch_answers{0};
    std::atomic<uint64_t> fallback_answers{0};
    std::atomic<uint64_t> failed_answers{0};
    LatencyHistogram latency;
  };

  /// Per (dataset, query function) pending queue + error-budget health.
  struct KeyState {
    QueryFunctionSpec spec;  // canonical spec, set by the first Submit
    std::deque<Request> pending;
    uint64_t sketch_answers = 0;  // genuinely sketch-answered (non-NaN)
    uint64_t sketch_nans = 0;     // sketch NaNs (repaired or failed)
    bool demoted = false;  // error budget exceeded; serve exact only
    std::shared_ptr<StoreCounters> counters;  // created on first Submit
  };

  void DispatchLoop();
  /// `collected` is the instant the dispatcher picked the batch off the
  /// queue — the queue-wait / batch-assembly stage boundary.
  void ExecuteBatch(const ServeKey& key, const QueryFunctionSpec& spec,
                    bool allow_sketch, std::vector<Request>* batch,
                    Clock::time_point collected, StoreCounters* sc);
  /// `tier` is the precision the answer was served from; only meaningful
  /// when used_sketch is true (fallback/failed answers pass kF64).
  /// Returns the submit->answer latency in microseconds.
  double Fulfill(Request* r, double value, bool used_sketch,
                 PlanPrecision tier, StoreCounters* sc);
  /// Locates (creating on demand) the KeyState for a submission; caller
  /// must hold mu_.
  KeyState& KeyStateLocked(const ServeKey& key, const QueryFunctionSpec& spec);

  const SketchStore* store_;
  const ServeOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<ServeKey, KeyState> keys_;
  size_t pending_count_ = 0;
  bool stop_ = false;
  std::vector<std::thread> dispatchers_;

  // Metrics (relaxed atomics; snapshot may be ~a batch stale).
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> sketch_answers_{0};
  std::atomic<uint64_t> f32_sketch_answers_{0};
  std::atomic<uint64_t> int8_sketch_answers_{0};
  std::atomic<uint64_t> fallback_answers_{0};
  std::atomic<uint64_t> failed_answers_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> budget_trips_{0};
  LatencyHistogram latency_;
  // Stage histograms (only written when options_.stage_tracing).
  LatencyHistogram stage_queue_;
  LatencyHistogram stage_assembly_;
  LatencyHistogram stage_inference_;
  LatencyHistogram stage_fulfill_;
  metrics::SlowQueryRing slow_queries_;
  Timer uptime_;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SERVE_ENGINE_H_
