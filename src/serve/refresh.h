// RefreshController: the drift-driven online refresh loop that closes the
// streaming story. Each registered target pairs a served (dataset, query
// function) key with a DriftMonitor probe set; a refresh pass re-answers
// the probes on the *appended* data (base table + live delta rows), flags
// the kd-tree leaves whose region drifted, retrains ONLY those leaves on a
// private copy of the sketch, validates the result against the drift
// policy bound, and atomically swaps the new version into the SketchStore
// (readers never block: in-flight batches keep their pinned shared_ptr).
// A refresh that throws or produces an out-of-bound sketch leaves the old
// version serving and counts a failure; a failure streak demotes the store
// through the serve engine's error budget so drift that outruns refresh
// falls back to exact serving instead of serving stale sketch answers.
#ifndef NEUROSKETCH_SERVE_REFRESH_H_
#define NEUROSKETCH_SERVE_REFRESH_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "core/neurosketch.h"
#include "query/query.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/metrics.h"
#include "util/status.h"

namespace neurosketch {
namespace serve {

struct RefreshOptions {
  /// Background cadence of Start()'s loop; each tick refreshes every
  /// registered target whose drift probe recommends it.
  int64_t interval_ms = 1000;
  /// Threads for the exact probe/target answering over the merged
  /// (base + delta) data. 0 = hardware concurrency, 1 = serial.
  size_t probe_threads = 1;
  /// Consecutive failed refreshes of one target before the store is
  /// demoted to exact serving (0 disables demotion).
  size_t max_failures_before_demote = 3;
  /// Compaction trigger: after each pass, any streaming dataset whose
  /// delta holds at least this many resident rows / bytes is compacted
  /// through SketchStore::Compact (0 disables that threshold; both 0 =
  /// the controller never compacts). A successful refresh swap advances
  /// the fold watermarks, so triggering right after a pass is what keeps
  /// delta residency bounded under sustained ingest.
  size_t compact_min_rows = 0;
  size_t compact_min_bytes = 0;
};

/// \brief One (dataset, query function) under refresh management.
struct RefreshTarget {
  std::string dataset;
  DriftMonitor monitor;  ///< probes + policy; monitor.spec() names the key
  /// Retrain configuration: must match the deployed sketch's build config
  /// (seeds, architecture, train schedule) for the bit-identity contract
  /// of NeuroSketch::RetrainLeaves to hold. `config.train_threads` is the
  /// retrain parallelism.
  NeuroSketchConfig config;
  /// Training queries for the partial retrain; answered exactly on the
  /// merged data each refresh. Empty = reuse the monitor's probes.
  std::vector<QueryInstance> train_queries;
};

/// \brief What one refresh pass did for one target.
struct RefreshOutcome {
  bool probed = false;       ///< drift probe ran (sketch + engine found)
  bool retrained = false;    ///< stale leaves were retrained
  bool swapped = false;      ///< new version registered in the store
  bool failed = false;       ///< retrain threw or validated out of bound
  bool demoted = false;      ///< this failure crossed the demotion streak
  size_t retrained_leaves = 0;
  /// Times the post-retrain validation demoted the serving tier
  /// (int8 -> f32 -> f64) because the surviving narrow tier was out of
  /// bound on the drifted data (stale calibration).
  size_t tier_fallbacks = 0;
  std::vector<int> stale_leaves;  ///< what the probe flagged
  double pre_mae = 0.0;      ///< probe normalized MAE before retrain
  double post_mae = 0.0;     ///< after retrain (== pre when not retrained)
  std::string message;       ///< failure detail, empty on success
};

/// \brief Counters across all targets since construction.
struct RefreshStats {
  uint64_t runs = 0;              ///< refresh passes that probed a target
  uint64_t swaps = 0;             ///< new versions registered
  uint64_t retrained_leaves = 0;  ///< leaves retrained across all swaps
  uint64_t failures = 0;          ///< refreshes discarded (throw / bound)
  uint64_t demotions = 0;         ///< stores demoted by failure streaks
  uint64_t skipped = 0;           ///< passes where drift was in bound
  uint64_t tier_fallbacks = 0;    ///< validation-driven tier demotions
  uint64_t compactions = 0;       ///< threshold-triggered Compact calls that
                                  ///< folded rows
  uint64_t compaction_folded_rows = 0;  ///< rows those folds moved into base
};

/// \brief Drift-driven background refresher over a SketchStore.
///
/// Thread-safety: AddTarget / RefreshNow / RefreshAll / Stats may be
/// called from any thread; one refresh pass runs at a time (a mutex
/// serializes them — retraining is the expensive step and overlapping
/// passes on one store would fight over the same versions). Serving is
/// never blocked: refresh works on copies and publishes via the store's
/// atomic version swap.
class RefreshController {
 public:
  /// `store` must outlive the controller. `engine` may be nullptr (no
  /// demotion — failures only count); when set it must outlive it too.
  RefreshController(SketchStore* store, ServeEngine* engine,
                    RefreshOptions options = {});
  ~RefreshController();  // Stop()s the background thread

  void AddTarget(RefreshTarget target);

  /// \brief Fault-injection hook for tests: called with the private
  /// retrained copy after RetrainLeaves succeeds and before validation.
  /// Throwing exercises the exception path; mutating the sketch into an
  /// out-of-bound state exercises the validation-fallback path. Either
  /// way the old version must keep serving.
  void SetFaultHook(std::function<void(NeuroSketch*)> hook);

  /// \brief Synchronously refresh one target (probe, maybe retrain, maybe
  /// swap). NotFound when no such target is registered; infrastructure
  /// errors (no sketch / no engine) also surface as Status. A *failed
  /// refresh* (fault hook throw, out-of-bound validation) is NOT a
  /// Status error — it returns OK with outcome.failed=true, because the
  /// controller handled it: the old version is still serving.
  Result<RefreshOutcome> RefreshNow(const std::string& dataset,
                                    const QueryFunctionSpec& spec);

  /// \brief Refresh every registered target once, in registration order.
  std::vector<RefreshOutcome> RefreshAll();

  /// \brief Start / stop the background loop (idempotent). The loop runs
  /// RefreshAll every `interval_ms`.
  void Start();
  void Stop();

  RefreshStats Stats() const;

  /// \brief Export nsketch_serve_refresh_* counter/gauge/histogram series.
  void ExportMetrics(metrics::MetricsRegistry* registry,
                     const std::string& prefix = "nsketch_serve_") const;

 private:
  RefreshOutcome RefreshTargetLocked(RefreshTarget& target);
  /// Threshold-policy compaction for one dataset (no-op below threshold
  /// or when the options disable compaction). Caller holds run_mu_.
  void MaybeCompactLocked(const std::string& dataset);

  SketchStore* store_;
  ServeEngine* engine_;  // may be nullptr
  RefreshOptions options_;

  mutable std::mutex mu_;  // targets, streaks, stats, hook, last-MAE map
  std::vector<RefreshTarget> targets_;
  std::map<std::string, size_t> failure_streak_;  // by display key
  std::map<std::string, double> last_mae_;        // by display key
  RefreshStats stats_;
  std::function<void(NeuroSketch*)> fault_hook_;
  metrics::LogHistogram refresh_duration_us_;

  std::mutex run_mu_;  // serializes refresh passes

  std::thread loop_;
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool running_ = false;
  bool stop_requested_ = false;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_REFRESH_H_
