// DeltaBuffer: the streaming ingest side of a served dataset. Appended
// rows land here (the base table a dataset's ExactEngine scans is
// immutable while serving), are published row-at-a-time with a single
// release store, and are served *exactly*: every answer composes the
// sketch estimate over the base table with an exact correction over the
// delta, so streaming never spends error budget. A background refresh
// (serve/refresh.h) periodically folds the delta into retrained leaf
// models; the per-leaf fold watermarks live next to the sketch version
// in SketchStore so the swap of (sketch, watermarks) is atomic.
//
// Concurrency contract:
// - Writers (Append/AppendRows) serialize on an internal mutex.
// - Readers never block writers and never take the writer mutex for row
//   access: size() is one acquire load, and Snap() copies a few chunk
//   shared_ptrs under a short lock. Rows below the published size are
//   write-once and fully visible (release/acquire on the size), so a
//   snapshot iterates raw row pointers lock-free; chunks are shared_ptr
//   owned, so a Trim cannot pull storage out from under a reader.
#ifndef NEUROSKETCH_SERVE_DELTA_BUFFER_H_
#define NEUROSKETCH_SERVE_DELTA_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace neurosketch {
namespace serve {

/// \brief Counters for the delta metric series (nsketch_serve_delta_*).
struct DeltaBufferStats {
  size_t rows = 0;             ///< live (untrimmed) rows
  size_t bytes = 0;            ///< bytes of live chunk storage
  uint64_t appends = 0;        ///< writer calls accepted (Append OR AppendRows
                               ///< — one per call, regardless of batch size)
  uint64_t rows_appended = 0;  ///< rows accepted across all writer calls
  uint64_t trimmed_rows = 0;   ///< rows dropped by Trim (compaction)
};

/// \brief Append-only, chunked row buffer for one streaming dataset.
class DeltaBuffer {
  struct Chunk {
    std::vector<double> data;  // chunk_rows_ * num_columns_, write-once
  };

 public:
  /// \brief `num_columns` must match the dataset's base table; chunks
  /// preallocate `chunk_rows` rows of flat storage each.
  explicit DeltaBuffer(size_t num_columns, size_t chunk_rows = 1024);

  size_t num_columns() const { return num_columns_; }

  /// \brief Append one row (must have num_columns values). Returns the
  /// new total logical row count. Thread-safe; serialized with other
  /// writers, invisible to readers until the size is published.
  size_t Append(const std::vector<double>& row);
  /// \brief Append a batch under one writer lock acquisition.
  size_t AppendRows(const std::vector<std::vector<double>>& rows);

  /// \brief Published logical row count (monotone; includes trimmed
  /// rows — logical indices are stable across Trim). One acquire load.
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// \brief Logical index of the first row still held (rows below it
  /// were trimmed).
  size_t trimmed() const;

  DeltaBufferStats Stats() const;

  /// \brief A consistent read view: row data for logical rows
  /// [begin, end) is reachable and immutable. Cheap to copy (chunk
  /// shared_ptrs); keeps trimmed-away chunks alive while in scope.
  class Snapshot {
   public:
    Snapshot() = default;

    size_t begin() const { return begin_; }
    size_t end() const { return end_; }
    bool empty() const { return begin_ >= end_; }
    size_t num_columns() const { return num_columns_; }

    /// \brief Visit logical rows [from, to) in order; `fn(row)` gets a
    /// pointer to num_columns() doubles. The range is clamped to
    /// [begin, end).
    template <typename Fn>
    void ForEachRow(size_t from, size_t to, Fn&& fn) const {
      if (from < begin_) from = begin_;
      if (to > end_) to = end_;
      for (size_t r = from; r < to; ++r) {
        const size_t ci = (r - chunk_base_) / chunk_rows_;
        const size_t off = (r - chunk_base_) % chunk_rows_;
        fn(chunks_[ci]->data.data() + off * num_columns_);
      }
    }

   private:
    friend class DeltaBuffer;
    std::vector<std::shared_ptr<const Chunk>> chunks_;
    size_t chunk_base_ = 0;  // logical row index of chunks_[0]'s first slot
    size_t chunk_rows_ = 1;
    size_t num_columns_ = 0;
    size_t begin_ = 0;
    size_t end_ = 0;
  };

  /// \brief Take a read view covering [trimmed(), size()).
  Snapshot Snap() const;

  /// \brief Compaction: `upto` is a logical watermark — every row below
  /// logical index `upto` is no longer needed from the delta. Drops whole
  /// chunks that lie entirely below it (logical indices stay stable;
  /// trimmed() advances by whole chunks, so it may land short of `upto`).
  /// ONLY safe once the rows below `upto` are reflected in the dataset's
  /// registered base table: serving reads the delta from
  /// max(snapshot begin, base fold watermark, leaf watermark), so
  /// trimming rows the base does not hold silently drops them from
  /// answers. SketchStore::Compact is the production caller — it folds
  /// rows [folded, safe) into the StreamingTable, swaps the new version
  /// in, then trims at the safe fold watermark (see docs/SERVING.md,
  /// "Base-table compaction"). In-flight Snapshots own their chunks and
  /// stay valid across the trim. Returns rows dropped.
  size_t Trim(size_t upto);

 private:
  const size_t num_columns_;
  const size_t chunk_rows_;
  std::atomic<size_t> size_{0};

  mutable std::mutex mu_;  // writers + chunk-list structure
  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t chunk_base_ = 0;  // logical index of chunks_[0]'s first slot
  size_t trimmed_ = 0;
  uint64_t appends_ = 0;
  uint64_t rows_appended_ = 0;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_DELTA_BUFFER_H_
