#include "serve/delta_buffer.h"

namespace neurosketch {
namespace serve {

DeltaBuffer::DeltaBuffer(size_t num_columns, size_t chunk_rows)
    : num_columns_(num_columns == 0 ? 1 : num_columns),
      chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows) {}

size_t DeltaBuffer::Append(const std::vector<double>& row) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t n = size_.load(std::memory_order_relaxed);
  const size_t slot = n - chunk_base_;
  if (slot / chunk_rows_ >= chunks_.size()) {
    auto chunk = std::make_shared<Chunk>();
    chunk->data.resize(chunk_rows_ * num_columns_);
    chunks_.push_back(std::move(chunk));
  }
  double* dst = chunks_[slot / chunk_rows_]->data.data() +
                (slot % chunk_rows_) * num_columns_;
  for (size_t c = 0; c < num_columns_; ++c) {
    dst[c] = c < row.size() ? row[c] : 0.0;
  }
  ++appends_;
  ++rows_appended_;
  // Publish after the row data is fully written: a reader that observes
  // the new size (acquire) also observes the row's bytes.
  size_.store(n + 1, std::memory_order_release);
  return n + 1;
}

size_t DeltaBuffer::AppendRows(const std::vector<std::vector<double>>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = size_.load(std::memory_order_relaxed);
  for (const auto& row : rows) {
    const size_t slot = n - chunk_base_;
    if (slot / chunk_rows_ >= chunks_.size()) {
      auto chunk = std::make_shared<Chunk>();
      chunk->data.resize(chunk_rows_ * num_columns_);
      chunks_.push_back(std::move(chunk));
    }
    double* dst = chunks_[slot / chunk_rows_]->data.data() +
                  (slot % chunk_rows_) * num_columns_;
    for (size_t c = 0; c < num_columns_; ++c) {
      dst[c] = c < row.size() ? row[c] : 0.0;
    }
    ++n;
  }
  // One call, one append — batch size lands in rows_appended. (Append and
  // AppendRows used to disagree here: per-row vs per-batch.)
  ++appends_;
  rows_appended_ += rows.size();
  size_.store(n, std::memory_order_release);
  return n;
}

size_t DeltaBuffer::trimmed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trimmed_;
}

DeltaBufferStats DeltaBuffer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DeltaBufferStats s;
  s.rows = size_.load(std::memory_order_relaxed) - trimmed_;
  s.bytes = chunks_.size() * chunk_rows_ * num_columns_ * sizeof(double);
  s.appends = appends_;
  s.rows_appended = rows_appended_;
  s.trimmed_rows = trimmed_;
  return s;
}

DeltaBuffer::Snapshot DeltaBuffer::Snap() const {
  // Read the published size FIRST (acquire): every row below it is fully
  // written, and the chunk list copied under the lock afterwards can only
  // be a superset of the chunks those rows live in.
  const size_t end = size_.load(std::memory_order_acquire);
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.chunks_.assign(chunks_.begin(), chunks_.end());
    snap.chunk_base_ = chunk_base_;
    snap.begin_ = trimmed_;
  }
  snap.chunk_rows_ = chunk_rows_;
  snap.num_columns_ = num_columns_;
  // A concurrent Trim between the size read and the lock can only raise
  // begin_; end stays valid because the snapshot owns its chunks.
  snap.end_ = end < snap.begin_ ? snap.begin_ : end;
  return snap;
}

size_t DeltaBuffer::Trim(size_t upto) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t published = size_.load(std::memory_order_relaxed);
  if (upto > published) upto = published;
  size_t dropped = 0;
  while (!chunks_.empty() && chunk_base_ + chunk_rows_ <= upto) {
    chunks_.erase(chunks_.begin());
    chunk_base_ += chunk_rows_;
    dropped += chunk_rows_;
  }
  if (chunk_base_ > trimmed_) {
    trimmed_ = chunk_base_;
  }
  return dropped;
}

}  // namespace serve
}  // namespace neurosketch
