// Serve-side metrics: the aggregate counters (throughput, fallback rate,
// batch shape), per-pipeline-stage latency breakdowns, and per-store
// accounting a serving deployment exports. Counters are relaxed atomics
// updated on the dispatch path; ServeEngine::Snapshot() materializes a
// consistent-enough view without stalling serving (see the contract on
// ServeStats).
#ifndef NEUROSKETCH_SERVE_SERVE_STATS_H_
#define NEUROSKETCH_SERVE_SERVE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace neurosketch {
namespace serve {

/// \brief Log-bucketed latency histogram (4 buckets/octave over
/// [1us, ~16.7s], lock-free Add, interpolated percentiles good to the
/// sub-bucket range — see metrics::LogHistogram for the error bound).
using LatencyHistogram = metrics::LogHistogram;

/// \brief Interpolated percentiles of one latency histogram.
struct LatencyBreakdown {
  uint64_t count = 0;
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, p999_us = 0.0;

  static LatencyBreakdown From(const LatencyHistogram& h) {
    LatencyBreakdown b;
    b.count = h.TotalCount();
    b.p50_us = h.PercentileUs(50);
    b.p95_us = h.PercentileUs(95);
    b.p99_us = h.PercentileUs(99);
    b.p999_us = h.PercentileUs(99.9);
    return b;
  }
};

/// \brief Per-(dataset, query function) serving view: where the traffic
/// went and what its tail looks like, so hot/cold store skew is visible.
struct StoreStatsSnapshot {
  std::string store;             ///< "dataset/agg(col N)" display key
  uint64_t queries = 0;          ///< answers delivered for this key
  uint64_t sketch_answers = 0;
  uint64_t f32_sketch_answers = 0;
  uint64_t int8_sketch_answers = 0;
  uint64_t fallback_answers = 0;
  uint64_t failed_answers = 0;
  /// Streaming composition counters: sketch answers adjusted with an
  /// exact correction over unfolded delta rows (decomposable aggregates)
  /// vs answers recomputed exactly over base+delta because the aggregate
  /// does not decompose (AVG/STD/MEDIAN with matching unfolded rows —
  /// these also count under fallback_answers).
  uint64_t delta_corrected_answers = 0;
  uint64_t delta_exact_answers = 0;
  bool demoted = false;          ///< error budget tripped
  double fallback_rate = 0.0;    ///< fallback_answers / queries
  LatencyBreakdown latency;      ///< submit->answer for this key only
};

/// \brief Per-dispatcher-shard serving view: each (dataset, query
/// function) key is pinned to exactly one shard, so shard rows expose
/// load imbalance (a hot shard) independently of store skew (a hot
/// store). Counters follow the same relaxed scrape contract as the rest
/// of ServeStats.
struct ShardStatsSnapshot {
  size_t shard = 0;              ///< shard index, 0-based
  uint64_t queries = 0;          ///< answers delivered by this shard
  uint64_t sketch_answers = 0;
  uint64_t fallback_answers = 0;
  uint64_t failed_answers = 0;
  uint64_t batches = 0;          ///< micro-batches this shard dispatched
  uint64_t budget_trips = 0;     ///< demotions decided on this shard
  /// Submissions that found this shard's ring full and had to wait for
  /// backpressure (counted per Submit/SubmitMany call, not per query).
  uint64_t backpressure_waits = 0;
  size_t resident_keys = 0;      ///< store keys routed to this shard
  double mean_batch_size = 0.0;
  LatencyBreakdown latency;      ///< submit->answer for this shard only
};

/// \brief Point-in-time view of a ServeEngine's counters.
///
/// Consistency contract (the one place it is documented): every field is
/// read with a relaxed atomic load while dispatchers keep serving, so a
/// snapshot is at most ~one in-flight micro-batch stale and cross-field
/// invariants (queries == sketch + fallback + failed, per-store sums ==
/// engine totals, histogram count == queries) may be off by the requests
/// fulfilled mid-snapshot. Quiesce clients first when exact equalities
/// are required. ResetStats() zeroes counters, histograms, per-store
/// state and the elapsed clock as one operation under the engine lock;
/// answers in flight during the reset may still land afterwards and
/// count toward the new window.
struct ServeStats {
  uint64_t queries = 0;          ///< answers delivered
  uint64_t sketch_answers = 0;   ///< answered by a sketch forward pass
  /// Subsets of sketch_answers by the sketch's active tier at answer
  /// time. Note: an int8 sketch serves its rare uncalibrated leaves from
  /// their f64 plan, but those answers still count under the active tier
  /// here — the counters attribute traffic per sketch, not per kernel.
  uint64_t f32_sketch_answers = 0;
  uint64_t int8_sketch_answers = 0;
  uint64_t fallback_answers = 0; ///< answered by the exact engine
  uint64_t failed_answers = 0;   ///< NaN with no fallback available
  /// Sketch answers composed with an exact correction over unfolded
  /// delta rows (COUNT/SUM/MIN/MAX — the answer stayed on the sketch
  /// path and still counts under sketch_answers).
  uint64_t delta_corrected_answers = 0;
  /// Answers recomputed exactly over base + delta because the aggregate
  /// does not decompose (AVG/STD/MEDIAN with matching unfolded delta
  /// rows); a subset of fallback_answers.
  uint64_t delta_exact_answers = 0;
  uint64_t batches = 0;          ///< micro-batches dispatched
  uint64_t budget_trips = 0;     ///< stores demoted by the error budget
  double elapsed_seconds = 0.0;  ///< since engine start (or last reset)
  double qps = 0.0;              ///< queries / elapsed_seconds
  double mean_batch_size = 0.0;
  double fallback_rate = 0.0;    ///< fallback_answers / queries
  /// Submit->answer percentiles (p999 carries the same sub-bucket
  /// interpolation error bound as the rest).
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0, p999_us = 0.0;

  /// True when the engine was tracing pipeline stages (ServeOptions::
  /// stage_tracing); the stage breakdowns below are all-zero otherwise.
  bool stage_tracing = false;
  /// Per-stage latency split of the serve pipeline. queue.count counts
  /// requests (each waits individually); the other three count
  /// micro-batches (the stage is shared by the whole batch).
  LatencyBreakdown stage_queue;      ///< enqueue -> picked into a batch
  LatencyBreakdown stage_assembly;   ///< batch collection -> inference
  /// Inference start -> first answer's delivery clock read: the forward
  /// pass (or exact batch) plus the NaN scan and error-budget accounting.
  LatencyBreakdown stage_inference;
  /// First -> last answer's delivery clock read (0 for batches of one).
  /// Boundaries reuse the clock reads fulfillment already pays, so stage
  /// tracing adds only one extra clock read to the critical path.
  LatencyBreakdown stage_fulfill;

  /// One entry per (dataset, query function) key that has served
  /// traffic, sorted by display key.
  std::vector<StoreStatsSnapshot> per_store;

  /// One entry per dispatcher shard, indexed 0..num_shards-1. The
  /// engine-wide counters above are the sums of these rows (up to the
  /// usual in-flight staleness).
  size_t num_shards = 0;
  std::vector<ShardStatsSnapshot> per_shard;
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SERVE_STATS_H_
