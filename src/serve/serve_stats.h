// Serve-side metrics: a lock-free latency histogram plus the aggregate
// counters (throughput, fallback rate, batch shape) a serving deployment
// exports. Counters are atomics updated on the dispatch path; Snapshot()
// materializes a consistent-enough view without stalling serving.
#ifndef NEUROSKETCH_SERVE_SERVE_STATS_H_
#define NEUROSKETCH_SERVE_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace neurosketch {
namespace serve {

/// \brief Log-bucketed histogram of latencies in microseconds: 4 buckets
/// per octave over [1us, ~16.7s]. Add() is a single relaxed atomic
/// increment; percentiles interpolate the geometric bucket midpoint, so
/// quantiles carry ~19% worst-case bucket error — plenty for p50/p95/p99
/// dashboards.
class LatencyHistogram {
 public:
  static constexpr size_t kBucketsPerOctave = 4;
  static constexpr size_t kNumBuckets = 96;  // 24 octaves

  void Add(double us) {
    buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }

  /// \brief p in [0, 100]. Returns 0 when empty.
  double PercentileUs(double p) const {
    std::array<uint64_t, kNumBuckets> counts;
    uint64_t total = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0.0;
    const double rank = p / 100.0 * static_cast<double>(total);
    uint64_t cum = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      cum += counts[i];
      if (static_cast<double>(cum) >= rank) return BucketMidUs(i);
    }
    return BucketMidUs(kNumBuckets - 1);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t BucketIndex(double us) {
    if (!(us > 1.0)) return 0;
    const double idx = kBucketsPerOctave * std::log2(us);
    if (idx >= static_cast<double>(kNumBuckets - 1)) return kNumBuckets - 1;
    return static_cast<size_t>(idx);
  }
  static double BucketMidUs(size_t i) {
    return std::exp2((static_cast<double>(i) + 0.5) / kBucketsPerOctave);
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// \brief Point-in-time view of a ServeEngine's counters.
struct ServeStats {
  uint64_t queries = 0;          ///< answers delivered
  uint64_t sketch_answers = 0;   ///< answered by a sketch forward pass
  /// Subsets of sketch_answers by the sketch's active tier at answer
  /// time. Note: an int8 sketch serves its rare uncalibrated leaves from
  /// their f64 plan, but those answers still count under the active tier
  /// here — the counters attribute traffic per sketch, not per kernel.
  uint64_t f32_sketch_answers = 0;
  uint64_t int8_sketch_answers = 0;
  uint64_t fallback_answers = 0; ///< answered by the exact engine
  uint64_t failed_answers = 0;   ///< NaN with no fallback available
  uint64_t batches = 0;          ///< micro-batches dispatched
  uint64_t budget_trips = 0;     ///< stores demoted by the error budget
  double elapsed_seconds = 0.0;  ///< since engine start (or last reset)
  double qps = 0.0;              ///< queries / elapsed_seconds
  double mean_batch_size = 0.0;
  double fallback_rate = 0.0;    ///< fallback_answers / queries
  double p50_us = 0.0, p95_us = 0.0, p99_us = 0.0;  ///< submit->answer
};

}  // namespace serve
}  // namespace neurosketch

#endif  // NEUROSKETCH_SERVE_SERVE_STATS_H_
