#include "serve/serve_engine.h"

#include <algorithm>
#include <cmath>

namespace neurosketch {
namespace serve {

namespace {
std::chrono::microseconds WindowDuration(double us) {
  if (us <= 0.0) return std::chrono::microseconds(0);
  return std::chrono::microseconds(static_cast<int64_t>(us));
}

ServeOptions Sanitize(ServeOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;  // 0 would livelock the dispatcher
  if (o.num_shards == 0) {
    o.num_shards = std::thread::hardware_concurrency();
    if (o.num_shards == 0) o.num_shards = 1;
  }
  if (o.submit_queue_capacity < 2) o.submit_queue_capacity = 2;
  return o;
}

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

/// Exact match statistics of one query over a delta row range — the
/// ingredients of the decomposable-aggregate composition.
struct DeltaMatch {
  size_t matched = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

DeltaMatch ScanDelta(const DeltaBuffer::Snapshot& snap, size_t from,
                     const QueryFunctionSpec& spec, const QueryInstance& q) {
  DeltaMatch m;
  const size_t dim = snap.num_columns();
  snap.ForEachRow(from, snap.end(), [&](const double* row) {
    if (!spec.predicate->Matches(q, row, dim)) return;
    const double v = row[spec.measure_col];
    if (m.matched == 0) {
      m.min = m.max = v;
    } else {
      if (v < m.min) m.min = v;
      if (v > m.max) m.max = v;
    }
    ++m.matched;
    m.sum += v;
  });
  return m;
}

/// True when appended rows fold into the base answer by a scalar
/// correction; AVG/STD/MEDIAN need the base row population and recompute
/// exactly instead.
bool Decomposable(Aggregate agg) {
  switch (agg) {
    case Aggregate::kCount:
    case Aggregate::kSum:
    case Aggregate::kMin:
    case Aggregate::kMax:
      return true;
    default:
      return false;
  }
}

/// The streaming exact path: one accumulation fed the pinned base table
/// first, then every delta row the base does not already hold, in append
/// order — bit-identical to a from-scratch scan of the appended table for
/// every aggregate (including Welford STD and MEDIAN's order-sensitive
/// buffer). The delta scan starts at the pinned version's fold watermark:
/// rows below it were compacted into the base and counting them from the
/// delta too would double them. The caller took the snapshot BEFORE
/// pinning, so snap.begin() <= base.folded always holds and the pair
/// covers the logical history exactly once.
double ExactWithDelta(const ExactEngine::PinnedBase& base,
                      const QueryFunctionSpec& spec, const QueryInstance& q,
                      const DeltaBuffer::Snapshot& snap) {
  AggregateAccumulator acc(spec.agg);
  ExactEngine::AccumulateOver(*base.table, spec, q, &acc);
  const size_t dim = snap.num_columns();
  const size_t from = snap.begin() < base.folded
                          ? static_cast<size_t>(base.folded)
                          : snap.begin();
  snap.ForEachRow(from, snap.end(), [&](const double* row) {
    if (spec.predicate->Matches(q, row, dim)) acc.Add(row[spec.measure_col]);
  });
  return acc.Finalize();
}
}  // namespace

ServeEngine::ServeEngine(const SketchStore* store, ServeOptions options)
    : store_(store),
      options_(Sanitize(std::move(options))),
      router_(options_.num_shards),
      slow_queries_(options_.stage_tracing ? options_.slow_query_capacity
                                           : 0) {
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_.submit_queue_capacity));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->dispatcher = std::thread([this, s] { DispatchLoop(s); });
  }
}

ServeEngine::~ServeEngine() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& shard : shards_) {
    // The empty critical section fences against the sleep transition: a
    // dispatcher that decided to wait either already waits (the notify
    // lands) or still holds the lock and will re-check stop_ first.
    { std::lock_guard<std::mutex> lock(shard->mu); }
    shard->cv.notify_all();
  }
  for (auto& shard : shards_) shard->dispatcher.join();
}

size_t ServeEngine::ShardOf(const std::string& dataset,
                            const QueryFunctionSpec& spec) const {
  return ShardIndexOf(ServeKey::From(dataset, spec));
}

ServeEngine::KeyState& ServeEngine::KeyStateLocked(
    Shard* shard, const ServeKey& key, const QueryFunctionSpec& spec) {
  KeyState& st = shard->keys[key];
  if (st.spec.predicate == nullptr) st.spec = spec;
  if (st.counters == nullptr) {
    st.counters = std::make_shared<StoreCounters>();
    st.counters->display = key.dataset + "/" + AggregateName(spec.agg) +
                           "(col " + std::to_string(spec.measure_col) + ")";
  }
  return st;
}

void ServeEngine::Route(Submission s) {
  Shard& shard = *shards_[ShardIndexOf(s.key)];
  if (!shard.ring.Push(std::move(s))) {
    shard.backpressure_waits.fetch_add(1, std::memory_order_relaxed);
  }
  // Publish -> fence -> sleeping check pairs with the dispatcher's
  // sleeping store -> fence -> ring check (a Dekker handshake): one side
  // always observes the other, so a published submission can never strand
  // while the dispatcher sleeps. In the hot case (dispatcher busy) this
  // is one relaxed load and no lock.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.sleeping.load(std::memory_order_relaxed)) {
    // Locking (empty section) serializes with the sleep transition so the
    // notify cannot fire in the window between the dispatcher's re-check
    // and its cv.wait.
    { std::lock_guard<std::mutex> lock(shard.mu); }
    shard.cv.notify_one();
  }
}

std::future<ServeResult> ServeEngine::Submit(const std::string& dataset,
                                             const QueryFunctionSpec& spec,
                                             QueryInstance q) {
  Submission s;
  s.key = ServeKey::From(dataset, spec);
  s.spec = spec;
  s.enqueued = Clock::now();
  s.q = std::move(q);
  s.promise = std::make_unique<std::promise<ServeResult>>();
  std::future<ServeResult> fut = s.promise->get_future();
  Route(std::move(s));
  return fut;
}

std::future<std::vector<ServeResult>> ServeEngine::SubmitMany(
    const std::string& dataset, const QueryFunctionSpec& spec,
    std::vector<QueryInstance> queries) {
  auto wave = std::make_shared<Wave>();
  const size_t n = queries.size();
  wave->results.resize(n);
  wave->remaining.store(n, std::memory_order_relaxed);
  std::future<std::vector<ServeResult>> fut = wave->promise.get_future();
  if (n == 0) {
    wave->promise.set_value({});
    return fut;
  }
  Submission s;
  s.key = ServeKey::From(dataset, spec);
  s.spec = spec;
  s.enqueued = Clock::now();
  s.queries = std::move(queries);
  s.wave = std::move(wave);
  Route(std::move(s));
  return fut;
}

ServeResult ServeEngine::Answer(const std::string& dataset,
                                const QueryFunctionSpec& spec,
                                QueryInstance q) {
  return Submit(dataset, spec, std::move(q)).get();
}

size_t ServeEngine::DrainRingLocked(Shard* shard) {
  size_t filed = 0;
  Submission s;
  while (shard->ring.TryPop(&s)) {
    KeyState& st = KeyStateLocked(shard, s.key, s.spec);
    if (s.wave != nullptr) {
      const size_t n = s.queries.size();
      for (size_t i = 0; i < n; ++i) {
        Request r;
        r.q = std::move(s.queries[i]);
        r.enqueued = s.enqueued;
        r.wave = s.wave;
        r.wave_slot = i;
        st.pending.push_back(std::move(r));
      }
      filed += n;
      shard->pending_count += n;
    } else {
      Request r;
      r.q = std::move(s.q);
      r.enqueued = s.enqueued;
      r.promise = std::move(s.promise);
      st.pending.push_back(std::move(r));
      ++filed;
      ++shard->pending_count;
    }
  }
  return filed;
}

void ServeEngine::DispatchLoop(Shard* shard) {
  const auto window = WindowDuration(options_.batch_window_us);
  std::unique_lock<std::mutex> lock(shard->mu);
  for (;;) {
    // Batch assembly: everything clients published while the last
    // forward pass ran is filed into per-key queues now — the ring IS the
    // pipeline stage that decouples submission from inference.
    DrainRingLocked(shard);
    // A key is dispatchable when its queue is full, its window has
    // expired, the window is zero, or we are stopping. Among dispatchable
    // keys, serve the one whose oldest request has waited longest — a
    // continuously-full hot key must not starve a colder key whose window
    // already expired.
    const auto now = Clock::now();
    const bool stopping = stop_.load(std::memory_order_relaxed);
    KeyState* chosen = nullptr;
    ServeKey chosen_key;
    Clock::time_point chosen_deadline{};
    bool have_deadline = false;
    Clock::time_point earliest{};
    for (auto& [key, st] : shard->keys) {
      if (st.pending.empty()) continue;
      const auto deadline = st.pending.front().enqueued + window;
      if (st.pending.size() >= options_.max_batch || window.count() == 0 ||
          stopping || deadline <= now) {
        if (chosen == nullptr || deadline < chosen_deadline) {
          chosen = &st;
          chosen_key = key;
          chosen_deadline = deadline;
        }
        continue;
      }
      if (!have_deadline || deadline < earliest) {
        earliest = deadline;
        have_deadline = true;
      }
    }
    if (chosen == nullptr) {
      if (stopping && shard->pending_count == 0 && shard->ring.Empty()) {
        return;
      }
      // Sleep/wake handshake: declare intent to sleep, fence, then
      // re-check the ring — the Dekker counterpart of Route's
      // publish/fence/check sequence.
      shard->sleeping.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (!shard->ring.Empty() || stop_.load(std::memory_order_relaxed)) {
        shard->sleeping.store(false, std::memory_order_relaxed);
        continue;
      }
      if (have_deadline) {
        shard->cv.wait_until(lock, earliest);
      } else {
        shard->cv.wait(lock);
      }
      shard->sleeping.store(false, std::memory_order_relaxed);
      continue;
    }

    std::vector<Request> batch;
    const size_t take = std::min(options_.max_batch, chosen->pending.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(chosen->pending.front()));
      chosen->pending.pop_front();
    }
    shard->pending_count -= take;
    const bool allow_sketch = !chosen->demoted;
    const QueryFunctionSpec spec = chosen->spec;
    const std::shared_ptr<StoreCounters> counters = chosen->counters;

    lock.unlock();
    // The queue-wait / batch-assembly boundary: everything before this
    // instant is time spent waiting in the per-key queue.
    ExecuteBatch(shard, chosen_key, spec, allow_sketch, &batch, Clock::now(),
                 counters.get());
    lock.lock();
  }
}

double ServeEngine::Fulfill(Shard* shard, Request* r, double value,
                            bool used_sketch, PlanPrecision tier,
                            StoreCounters* sc, Clock::time_point* now_out) {
  const Clock::time_point now = Clock::now();
  if (now_out != nullptr) *now_out = now;  // free timestamp for tracing
  const double us = MicrosBetween(r->enqueued, now);
  shard->latency.Add(us);
  sc->latency.Add(us);
  shard->queries.fetch_add(1, std::memory_order_relaxed);
  sc->queries.fetch_add(1, std::memory_order_relaxed);
  if (used_sketch) {
    shard->sketch_answers.fetch_add(1, std::memory_order_relaxed);
    sc->sketch_answers.fetch_add(1, std::memory_order_relaxed);
    // Ticked together with sketch_answers (and before the promise
    // resolves) so the per-tier counters are always a consistent subset.
    if (tier == PlanPrecision::kF32) {
      shard->f32_sketch_answers.fetch_add(1, std::memory_order_relaxed);
      sc->f32_sketch_answers.fetch_add(1, std::memory_order_relaxed);
    } else if (tier == PlanPrecision::kInt8) {
      shard->int8_sketch_answers.fetch_add(1, std::memory_order_relaxed);
      sc->int8_sketch_answers.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (std::isnan(value)) {
    shard->failed_answers.fetch_add(1, std::memory_order_relaxed);
    sc->failed_answers.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard->fallback_answers.fetch_add(1, std::memory_order_relaxed);
    sc->fallback_answers.fetch_add(1, std::memory_order_relaxed);
  }
  if (r->wave != nullptr) {
    r->wave->results[r->wave_slot] = ServeResult{value, used_sketch};
    if (r->wave->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      r->wave->promise.set_value(std::move(r->wave->results));
    }
    return us;
  }
  r->promise->set_value(ServeResult{value, used_sketch});
  return us;
}

void ServeEngine::ExecuteBatch(Shard* shard, const ServeKey& key,
                               const QueryFunctionSpec& spec,
                               bool allow_sketch, std::vector<Request>* batch,
                               Clock::time_point collected,
                               StoreCounters* sc) {
  shard->batches.fetch_add(1, std::memory_order_relaxed);
  const bool tracing = options_.stage_tracing;
  // Acquisition order matters for compaction safety: the delta SNAPSHOT
  // comes first, then the (sketch, watermarks) view, then the pinned base
  // version. Watermarks and the base fold watermark only ever advance, so
  // anything observed after the snapshot is >= the snapshot's begin —
  // rows can never fall between the snapshot and the base. Pinning first
  // would race a concurrent compact (swap + trim) into dropping rows from
  // both views. The snapshot is taken once per batch: every query
  // composes against the same appended-row prefix.
  std::shared_ptr<const DeltaBuffer> delta = store_->Delta(key.dataset);
  DeltaBuffer::Snapshot dsnap;
  bool has_delta = false;
  if (delta != nullptr) {
    dsnap = delta->Snap();
    has_delta = !dsnap.empty();
  }
  // One consistent read of (sketch, fold watermarks): the refresh path
  // swaps sketch + watermarks atomically in the store, so a batch either
  // corrects against the old version's watermarks or the new version's —
  // never a mix. A demoted key skips the sketch but still needs the delta
  // for exact composition.
  ServedView view;
  if (allow_sketch) view = store_->LookupServed(key);
  const std::shared_ptr<const NeuroSketch>& sketch = view.sketch;
  const ExactEngine* engine = store_->Engine(key.dataset);
  // Pinned AFTER the snapshot: one base version for the whole batch, kept
  // alive across any concurrent compaction swap.
  const ExactEngine::PinnedBase pinned =
      engine != nullptr ? engine->Pin() : ExactEngine::PinnedBase{};

  // Requests own their queries and never read them again; steal the
  // buffers instead of cloning one heap allocation per query.
  std::vector<QueryInstance> queries;
  queries.reserve(batch->size());
  for (auto& r : *batch) queries.push_back(std::move(r.q));

  // Stage boundaries: assembly = collection -> inference start (store
  // lookup + query stealing), inference = inference start -> the FIRST
  // answer's delivery clock read (so it absorbs the NaN scan and budget
  // accounting), fulfill = first -> last answer's delivery clock read,
  // measured per micro-batch. Tracing latency discipline: on the
  // latency-critical singleton-batch path, tracing adds ZERO clock reads
  // — inference start reuses the collection stamp (assembly reads 0 and
  // its sub-microsecond lookup cost is absorbed into inference) and both
  // downstream boundaries reuse the clock reads Fulfill already pays
  // for; multi-query batches, where per-request cost is amortized, pay
  // one dedicated read to keep the full 4-way split. Every histogram
  // update is deferred to after the final promise resolves. This keeps
  // the tracing-on single-query p50 within the <2% budget that
  // tools/check_serving_overhead.sh gates.
  Clock::time_point infer_start{};
  Clock::time_point infer_end{};
  Clock::time_point fulfill_end{};
  Clock::time_point* fulfill_now = tracing ? &fulfill_end : nullptr;
  const char* tier_name = "exact";

  // Offers this request's trace to the slow-query ring; everything past
  // the lock-free threshold gate is lazy (trace strings, the queue-wait
  // split, the shard hash), so the common (fast-query) case costs one
  // relaxed load and one compare.
  auto maybe_trace = [&](double total_us, Clock::time_point enqueued,
                         const char* tier) {
    if (total_us <= slow_queries_.min_kept_us()) return;
    metrics::SlowQueryTrace t;
    t.total_us = total_us;
    t.queue_us = MicrosBetween(enqueued, collected);
    t.assembly_us = MicrosBetween(collected, infer_start);
    t.inference_us = MicrosBetween(infer_start, infer_end);
    const double rest = total_us - t.queue_us - t.assembly_us - t.inference_us;
    t.fulfill_us = rest > 0.0 ? rest : 0.0;
    t.store = sc->display;
    t.tier = tier;
    t.batch_size = batch->size();
    t.shard = ShardIndexOf(key);
    slow_queries_.Offer(std::move(t));
  };

  // Deferred stage bookkeeping: queue waits are recomputed from the
  // requests' enqueue stamps (still valid after the query steal), so no
  // per-request state needs buffering on the critical path.
  auto record_stages = [&] {
    if (!tracing) return;
    for (const auto& r : *batch) {
      shard->stage_queue.Add(MicrosBetween(r.enqueued, collected));
    }
    shard->stage_assembly.Add(MicrosBetween(collected, infer_start));
    shard->stage_inference.Add(MicrosBetween(infer_start, infer_end));
    shard->stage_fulfill.Add(MicrosBetween(infer_end, fulfill_end));
  };

  if (sketch != nullptr) {
    // Dispatcher-thread answer buffer: capacity is retained across
    // batches, so with AnswerBatchVectorizedTo staging its bucketing in
    // the workspace arena the whole sketch path is allocation-free once
    // the thread is warm. With keys pinned to shards, only this shard's
    // thread ever warms this sketch's arena.
    thread_local std::vector<double> answers;
    answers.resize(queries.size());
    if (tracing) infer_start = batch->size() == 1 ? collected : Clock::now();
    sketch->AnswerBatchVectorizedTo(queries, answers.data());
    // Streaming composition: correct each sketch answer with the exact
    // contribution of the delta rows its leaf has not folded yet. Per
    // answer: 0 = pure sketch, 1 = sketch + scalar delta correction
    // (still a sketch answer), 2 = recomputed exactly over base + delta
    // (non-decomposable aggregate with matching unfolded rows; counted
    // as a fallback answer). Composition never changes NaN-ness, so the
    // NaN scan and budget accounting below read post-composition values
    // and see exactly the sketch's own answerability.
    thread_local std::vector<uint8_t> modes;
    modes.assign(answers.size(), 0);
    if (has_delta) {
      const std::vector<uint64_t>* folded = view.leaf_folded.get();
      for (size_t i = 0; i < answers.size(); ++i) {
        if (std::isnan(answers[i])) continue;
        // Route once more to find this query's fold watermark: rows the
        // leaf's model already reflects must not be corrected twice.
        const auto* leaf = sketch->tree().Route(queries[i]);
        size_t from = dsnap.begin();
        if (folded != nullptr && leaf != nullptr && leaf->leaf_id >= 0 &&
            static_cast<size_t>(leaf->leaf_id) < folded->size()) {
          const size_t w = (*folded)[leaf->leaf_id];
          if (w > from) from = w;
        }
        if (from >= dsnap.end()) continue;  // leaf fully folded
        const DeltaMatch m = ScanDelta(dsnap, from, spec, queries[i]);
        if (m.matched == 0) continue;  // appends do not touch this query
        if (Decomposable(spec.agg)) {
          switch (spec.agg) {
            case Aggregate::kCount:
              answers[i] += static_cast<double>(m.matched);
              break;
            case Aggregate::kSum:
              answers[i] += m.sum;
              break;
            case Aggregate::kMin:
              answers[i] = std::min(answers[i], m.min);
              break;
            default:  // kMax
              answers[i] = std::max(answers[i], m.max);
              break;
          }
          modes[i] = 1;
        } else if (engine != nullptr) {
          answers[i] = ExactWithDelta(pinned, spec, queries[i], dsnap);
          modes[i] = 2;
        }
        // Non-decomposable with no exact engine: serve the (stale)
        // sketch answer — there is nothing better to compose from.
      }
    }
    // infer_end is the first Fulfill's clock read, set in the loop below.
    size_t nans = 0;
    for (double a : answers) nans += std::isnan(a) ? 1 : 0;
    const size_t genuine = answers.size() - nans;
    const PlanPrecision tier = sketch->plan_precision();
    tier_name = PlanPrecisionName(tier);

    bool tripped = false;
    {
      // Error-budget accounting BEFORE any request is fulfilled: the
      // moment the last Fulfill resolves a client future, that client may
      // Snapshot() — the demotion decision must already be visible.
      // sketch_answers counts only genuinely sketch-answered queries —
      // repaired (NaN) queries must not dilute the failure-rate
      // denominator, or a half-broken sketch is demoted late or never.
      // The key lives on this shard, so the shard lock suffices (and is
      // uncontended: only this dispatcher and rare Snapshots take it).
      std::lock_guard<std::mutex> lock(shard->mu);
      KeyState& st = shard->keys[key];
      st.sketch_answers += genuine;
      st.sketch_nans += nans;
      if (!st.demoted &&
          st.sketch_answers + st.sketch_nans >= options_.budget_min_samples &&
          static_cast<double>(st.sketch_nans) >
              options_.max_sketch_failure_rate *
                  static_cast<double>(st.sketch_answers)) {
        st.demoted = true;
        tripped = true;
        shard->budget_trips.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // Eviction-policy signals for the paged catalog (no-ops for fully
    // resident stores): genuine answers are this store's heat; a budget
    // trip zeroes it, so a demoted sketch — whose traffic now bypasses it
    // anyway — is the first thing the pool reclaims under pressure.
    if (genuine > 0) store_->NoteServed(key, genuine);
    if (tripped) store_->NotePenalized(key);

    for (size_t i = 0; i < answers.size(); ++i) {
      double total_us;
      const char* served_as;
      if (std::isnan(answers[i]) && engine != nullptr) {
        // Per-query exact repair: the sketch could not route/answer this
        // instance (e.g. out-of-domain), but the batch as a whole stays
        // on the fast path. Fulfill ticks fallback_answers (or
        // failed_answers when the engine is also stumped). With a live
        // delta the repair composes over base + appended rows, so the
        // repaired answer honors the same freshness contract.
        const double repaired = ExactWithDelta(pinned, spec, queries[i], dsnap);
        total_us = Fulfill(shard, &(*batch)[i], repaired, false,
                           PlanPrecision::kF64, sc, fulfill_now);
        served_as = "exact";
      } else if (modes[i] == 2) {
        // Non-decomposable aggregate recomputed exactly over base+delta:
        // counted as a fallback answer (used_sketch=false) plus the
        // delta_exact sub-counter.
        shard->delta_exact_answers.fetch_add(1, std::memory_order_relaxed);
        sc->delta_exact_answers.fetch_add(1, std::memory_order_relaxed);
        total_us = Fulfill(shard, &(*batch)[i], answers[i], false,
                           PlanPrecision::kF64, sc, fulfill_now);
        served_as = "exact";
      } else {
        if (modes[i] == 1) {
          shard->delta_corrected_answers.fetch_add(1,
                                                   std::memory_order_relaxed);
          sc->delta_corrected_answers.fetch_add(1, std::memory_order_relaxed);
        }
        const bool genuine_answer = !std::isnan(answers[i]);
        total_us = Fulfill(shard, &(*batch)[i], answers[i], genuine_answer,
                           genuine_answer ? tier : PlanPrecision::kF64, sc,
                           fulfill_now);
        served_as = genuine_answer ? tier_name : "failed";
      }
      if (tracing) {
        if (i == 0) infer_end = fulfill_end;
        maybe_trace(total_us, (*batch)[i].enqueued, served_as);
      }
    }
    record_stages();
    return;
  }

  if (engine != nullptr) {
    if (tracing) infer_start = batch->size() == 1 ? collected : Clock::now();
    std::vector<double> answers;
    if (has_delta) {
      // Exact path with a live delta (demoted key, or no sketch yet):
      // every answer is the pinned-base accumulation continued over the
      // unfolded delta rows — bit-identical to scanning the appended
      // table from scratch, for every aggregate, across any concurrent
      // compaction.
      answers.resize(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        answers[i] = ExactWithDelta(pinned, spec, queries[i], dsnap);
      }
    } else {
      answers = engine->AnswerBatch(spec, queries, options_.exact_batch_threads);
    }
    for (size_t i = 0; i < answers.size(); ++i) {
      const double total_us = Fulfill(shard, &(*batch)[i], answers[i], false,
                                      PlanPrecision::kF64, sc, fulfill_now);
      if (tracing) {
        if (i == 0) infer_end = fulfill_end;
        maybe_trace(total_us, (*batch)[i].enqueued,
                    std::isnan(answers[i]) ? "failed" : "exact");
      }
    }
    record_stages();
    return;
  }

  // Neither a sketch nor an exact engine: answer NaN rather than hang —
  // no inference happens, so both boundaries reuse the collection stamp.
  if (tracing) infer_start = infer_end = collected;
  for (auto& r : *batch) {
    const double total_us = Fulfill(shard, &r, std::nan(""), false,
                                    PlanPrecision::kF64, sc, fulfill_now);
    if (tracing) maybe_trace(total_us, r.enqueued, "failed");
  }
  record_stages();
}

void ServeEngine::DemoteStore(const std::string& dataset,
                              const QueryFunctionSpec& spec) {
  const ServeKey key = ServeKey::From(dataset, spec);
  Shard* shard = shards_[ShardIndexOf(key)].get();
  bool tripped = false;
  {
    // Same lock discipline as the NaN error budget: the owning shard's
    // lock makes the decision visible before any later batch reads
    // `demoted` in its dispatch.
    std::lock_guard<std::mutex> lock(shard->mu);
    KeyState& st = KeyStateLocked(shard, key, spec);
    if (!st.demoted) {
      st.demoted = true;
      tripped = true;
      shard->budget_trips.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Demotion zeroes serving heat: a store whose drift outruns refresh is
  // the preferred eviction victim, exactly like a NaN-budget trip.
  if (tripped) store_->NotePenalized(key);
}

ServeStats ServeEngine::Snapshot() const {
  ServeStats s;
  s.num_shards = shards_.size();
  LatencyHistogram latency;
  LatencyHistogram stage_queue, stage_assembly, stage_inference, stage_fulfill;
  s.per_shard.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& sh = *shards_[i];
    ShardStatsSnapshot sd;
    sd.shard = i;
    sd.queries = sh.queries.load(std::memory_order_relaxed);
    sd.sketch_answers = sh.sketch_answers.load(std::memory_order_relaxed);
    sd.fallback_answers = sh.fallback_answers.load(std::memory_order_relaxed);
    sd.failed_answers = sh.failed_answers.load(std::memory_order_relaxed);
    sd.batches = sh.batches.load(std::memory_order_relaxed);
    sd.budget_trips = sh.budget_trips.load(std::memory_order_relaxed);
    sd.backpressure_waits =
        sh.backpressure_waits.load(std::memory_order_relaxed);
    sd.mean_batch_size =
        sd.batches > 0
            ? static_cast<double>(sd.queries) / static_cast<double>(sd.batches)
            : 0.0;
    sd.latency = LatencyBreakdown::From(sh.latency);

    s.queries += sd.queries;
    s.sketch_answers += sd.sketch_answers;
    s.f32_sketch_answers +=
        sh.f32_sketch_answers.load(std::memory_order_relaxed);
    s.int8_sketch_answers +=
        sh.int8_sketch_answers.load(std::memory_order_relaxed);
    s.fallback_answers += sd.fallback_answers;
    s.failed_answers += sd.failed_answers;
    s.delta_corrected_answers +=
        sh.delta_corrected_answers.load(std::memory_order_relaxed);
    s.delta_exact_answers +=
        sh.delta_exact_answers.load(std::memory_order_relaxed);
    s.batches += sd.batches;
    s.budget_trips += sd.budget_trips;
    latency.AddFrom(sh.latency);
    if (options_.stage_tracing) {
      stage_queue.AddFrom(sh.stage_queue);
      stage_assembly.AddFrom(sh.stage_assembly);
      stage_inference.AddFrom(sh.stage_inference);
      stage_fulfill.AddFrom(sh.stage_fulfill);
    }
    s.per_shard.push_back(std::move(sd));
  }
  s.elapsed_seconds = uptime_.ElapsedSeconds();
  s.qps = s.elapsed_seconds > 0.0
              ? static_cast<double>(s.queries) / s.elapsed_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.queries) / static_cast<double>(s.batches)
          : 0.0;
  s.fallback_rate =
      s.queries > 0
          ? static_cast<double>(s.fallback_answers) /
                static_cast<double>(s.queries)
          : 0.0;
  s.p50_us = latency.PercentileUs(50);
  s.p95_us = latency.PercentileUs(95);
  s.p99_us = latency.PercentileUs(99);
  s.p999_us = latency.PercentileUs(99.9);

  s.stage_tracing = options_.stage_tracing;
  if (s.stage_tracing) {
    s.stage_queue = LatencyBreakdown::From(stage_queue);
    s.stage_assembly = LatencyBreakdown::From(stage_assembly);
    s.stage_inference = LatencyBreakdown::From(stage_inference);
    s.stage_fulfill = LatencyBreakdown::From(stage_fulfill);
  }

  // Per-store view: each shard's key map is only touched long enough to
  // copy the counter pointers; the counters themselves are read
  // lock-free.
  std::vector<std::pair<std::shared_ptr<StoreCounters>, bool>> stores;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    std::lock_guard<std::mutex> lock(sh.mu);
    s.per_shard[i].resident_keys = sh.keys.size();
    for (const auto& [key, st] : sh.keys) {
      (void)key;
      if (st.counters != nullptr) stores.emplace_back(st.counters, st.demoted);
    }
  }
  s.per_store.reserve(stores.size());
  for (const auto& [sc, demoted] : stores) {
    StoreStatsSnapshot ss;
    ss.store = sc->display;
    ss.queries = sc->queries.load(std::memory_order_relaxed);
    ss.sketch_answers = sc->sketch_answers.load(std::memory_order_relaxed);
    ss.f32_sketch_answers =
        sc->f32_sketch_answers.load(std::memory_order_relaxed);
    ss.int8_sketch_answers =
        sc->int8_sketch_answers.load(std::memory_order_relaxed);
    ss.fallback_answers = sc->fallback_answers.load(std::memory_order_relaxed);
    ss.failed_answers = sc->failed_answers.load(std::memory_order_relaxed);
    ss.delta_corrected_answers =
        sc->delta_corrected_answers.load(std::memory_order_relaxed);
    ss.delta_exact_answers =
        sc->delta_exact_answers.load(std::memory_order_relaxed);
    ss.demoted = demoted;
    ss.fallback_rate = ss.queries > 0
                           ? static_cast<double>(ss.fallback_answers) /
                                 static_cast<double>(ss.queries)
                           : 0.0;
    ss.latency = LatencyBreakdown::From(sc->latency);
    s.per_store.push_back(std::move(ss));
  }
  std::sort(s.per_store.begin(), s.per_store.end(),
            [](const StoreStatsSnapshot& a, const StoreStatsSnapshot& b) {
              return a.store < b.store;
            });
  return s;
}

void ServeEngine::ResetStats() {
  // One window restart across every shard: take all shard locks first so
  // no new batch lands between the counter clear and the clock restart.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(shards_.size());
  for (auto& sh : shards_) locks.emplace_back(sh->mu);
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    sh.queries.store(0, std::memory_order_relaxed);
    sh.sketch_answers.store(0, std::memory_order_relaxed);
    sh.f32_sketch_answers.store(0, std::memory_order_relaxed);
    sh.int8_sketch_answers.store(0, std::memory_order_relaxed);
    sh.fallback_answers.store(0, std::memory_order_relaxed);
    sh.failed_answers.store(0, std::memory_order_relaxed);
    sh.delta_corrected_answers.store(0, std::memory_order_relaxed);
    sh.delta_exact_answers.store(0, std::memory_order_relaxed);
    sh.batches.store(0, std::memory_order_relaxed);
    sh.budget_trips.store(0, std::memory_order_relaxed);
    sh.backpressure_waits.store(0, std::memory_order_relaxed);
    sh.latency.Reset();
    sh.stage_queue.Reset();
    sh.stage_assembly.Reset();
    sh.stage_inference.Reset();
    sh.stage_fulfill.Reset();
    for (auto& [key, st] : sh.keys) {
      (void)key;
      if (st.counters == nullptr) continue;
      st.counters->queries.store(0, std::memory_order_relaxed);
      st.counters->sketch_answers.store(0, std::memory_order_relaxed);
      st.counters->f32_sketch_answers.store(0, std::memory_order_relaxed);
      st.counters->int8_sketch_answers.store(0, std::memory_order_relaxed);
      st.counters->fallback_answers.store(0, std::memory_order_relaxed);
      st.counters->failed_answers.store(0, std::memory_order_relaxed);
      st.counters->delta_corrected_answers.store(0, std::memory_order_relaxed);
      st.counters->delta_exact_answers.store(0, std::memory_order_relaxed);
      st.counters->latency.Reset();
    }
  }
  slow_queries_.Clear();
  uptime_.Reset();
}

std::vector<metrics::SlowQueryTrace> ServeEngine::SlowQueries() const {
  return slow_queries_.SlowestFirst();
}

void ServeEngine::ExportMetrics(metrics::MetricsRegistry* registry,
                                const std::string& prefix) const {
  const ServeStats s = Snapshot();
  registry->SetCounter(prefix + "queries_total", s.queries,
                       "Answers delivered");
  registry->SetCounter(prefix + "sketch_answers_total", s.sketch_answers,
                       "Answered by a sketch forward pass");
  registry->SetCounter(prefix + "f32_sketch_answers_total",
                       s.f32_sketch_answers);
  registry->SetCounter(prefix + "int8_sketch_answers_total",
                       s.int8_sketch_answers);
  registry->SetCounter(prefix + "fallback_answers_total", s.fallback_answers,
                       "Answered by the exact engine");
  registry->SetCounter(prefix + "failed_answers_total", s.failed_answers,
                       "NaN with no fallback available");
  registry->SetCounter(prefix + "delta_corrected_answers_total",
                       s.delta_corrected_answers,
                       "Sketch answers corrected with unfolded delta rows");
  registry->SetCounter(prefix + "delta_exact_answers_total",
                       s.delta_exact_answers,
                       "Non-decomposable answers recomputed over base+delta");
  registry->SetCounter(prefix + "batches_total", s.batches,
                       "Micro-batches dispatched");
  registry->SetCounter(prefix + "budget_trips_total", s.budget_trips,
                       "Stores demoted by the error budget");
  registry->SetGauge(prefix + "elapsed_seconds", s.elapsed_seconds,
                     "Seconds since engine start or last ResetStats");
  registry->SetGauge(prefix + "mean_batch_size", s.mean_batch_size);
  registry->SetGauge(prefix + "shards", static_cast<double>(s.num_shards),
                     "Dispatcher shards (one dedicated thread each)");

  // Paged-catalog residency: all-zero series when the store has no paged
  // catalog attached (the pool is the single source of truth, snapshotted
  // exactly under its mutex — budget dashboards must not see torn reads).
  const BufferPoolStats pool = store_->PagedStats();
  registry->SetGauge(prefix + "resident_bytes",
                     static_cast<double>(pool.resident_bytes),
                     "Bytes of paged sketches currently faulted in");
  registry->SetGauge(prefix + "resident_bytes_peak",
                     static_cast<double>(pool.peak_resident_bytes),
                     "High-water mark of nsketch_serve_resident_bytes");
  registry->SetGauge(prefix + "resident_budget_bytes",
                     static_cast<double>(pool.max_bytes),
                     "max_resident_bytes budget (0 = unbounded)");
  registry->SetCounter(prefix + "faultins_total", pool.faultins,
                       "Cold sketches loaded from the paged catalog");
  registry->SetCounter(prefix + "faultin_hits_total", pool.hits,
                       "Paged lookups served without touching disk");
  registry->SetCounter(prefix + "evictions_total", pool.evictions,
                       "Resident sketches dropped back to cold");

  // Streaming-delta residency, one series set per streaming dataset.
  for (const auto& [dataset, ds] : store_->DeltaStats()) {
    const std::string label = "{dataset=\"" + dataset + "\"}";
    registry->SetGauge(prefix + "delta_rows" + label,
                       static_cast<double>(ds.rows),
                       "Live (untrimmed) delta rows per streaming dataset");
    registry->SetGauge(prefix + "delta_bytes" + label,
                       static_cast<double>(ds.bytes),
                       "Bytes held by live delta rows");
    registry->SetCounter(prefix + "delta_appends_total" + label, ds.appends,
                         "Writer calls (Append or AppendRows) accepted into "
                         "the delta buffer");
    registry->SetCounter(prefix + "delta_rows_appended_total" + label,
                         ds.rows_appended,
                         "Rows accepted across all delta writer calls");
    registry->SetCounter(prefix + "delta_trimmed_rows_total" + label,
                         ds.trimmed_rows,
                         "Delta rows dropped by Trim after base compaction");
  }
  for (const auto& [dataset, cs] : store_->CompactionStats()) {
    const std::string label = "{dataset=\"" + dataset + "\"}";
    registry->SetCounter(prefix + "delta_compactions_total" + label,
                         cs.compactions,
                         "Base-table compactions (fold + swap) per dataset");
    registry->SetCounter(prefix + "delta_folded_rows_total" + label,
                         cs.folded_rows,
                         "Delta rows folded into the base table per dataset");
  }

  auto copy_hist = [&](const std::string& name, const LatencyHistogram& h,
                       const std::string& help) {
    LatencyHistogram* dst = registry->GetHistogram(name, help);
    if (dst != nullptr) dst->CopyFrom(h);
  };
  {
    LatencyHistogram latency;
    for (const auto& sh : shards_) latency.AddFrom(sh->latency);
    copy_hist(prefix + "latency_us", latency,
              "Submit->answer latency, microseconds");
  }
  if (const metrics::LogHistogram* faultin = store_->FaultinLatency()) {
    copy_hist(prefix + "faultin_latency_us", *faultin,
              "Paged-catalog fault-in (disk load) latency, microseconds");
  }
  if (options_.stage_tracing) {
    LatencyHistogram q, a, inf, ful;
    for (const auto& sh : shards_) {
      q.AddFrom(sh->stage_queue);
      a.AddFrom(sh->stage_assembly);
      inf.AddFrom(sh->stage_inference);
      ful.AddFrom(sh->stage_fulfill);
    }
    copy_hist(prefix + "stage_us{stage=\"queue\"}", q,
              "Per-stage serve pipeline latency, microseconds");
    copy_hist(prefix + "stage_us{stage=\"assembly\"}", a, "");
    copy_hist(prefix + "stage_us{stage=\"inference\"}", inf, "");
    copy_hist(prefix + "stage_us{stage=\"fulfill\"}", ful, "");
  }
  for (const auto& ss : s.per_store) {
    const std::string label = "{store=\"" + ss.store + "\"}";
    registry->SetCounter(prefix + "store_queries_total" + label, ss.queries,
                         "Answers delivered per store");
    registry->SetCounter(prefix + "store_sketch_answers_total" + label,
                         ss.sketch_answers);
    registry->SetCounter(prefix + "store_fallback_answers_total" + label,
                         ss.fallback_answers);
    registry->SetCounter(prefix + "store_failed_answers_total" + label,
                         ss.failed_answers);
    registry->SetGauge(prefix + "store_demoted" + label,
                       ss.demoted ? 1.0 : 0.0,
                       "1 when the error budget tripped for this store");
    registry->SetGauge(prefix + "store_p99_us" + label, ss.latency.p99_us,
                       "Per-store submit->answer p99, microseconds");
  }
  // Per-shard series: tail attribution can tell a hot shard (one
  // dispatcher saturated) from a hot store (one key saturated).
  for (const auto& sd : s.per_shard) {
    const std::string label = "{shard=\"" + std::to_string(sd.shard) + "\"}";
    registry->SetCounter(prefix + "shard_queries_total" + label, sd.queries,
                         "Answers delivered per dispatcher shard");
    registry->SetCounter(prefix + "shard_batches_total" + label, sd.batches,
                         "Micro-batches dispatched per shard");
    registry->SetCounter(prefix + "shard_backpressure_waits_total" + label,
                         sd.backpressure_waits,
                         "Submissions that blocked on a full shard ring");
    registry->SetGauge(prefix + "shard_resident_keys" + label,
                       static_cast<double>(sd.resident_keys),
                       "Store keys routed to this shard");
    registry->SetGauge(prefix + "shard_p99_us" + label, sd.latency.p99_us,
                       "Per-shard submit->answer p99, microseconds");
  }
}

}  // namespace serve
}  // namespace neurosketch
