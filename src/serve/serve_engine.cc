#include "serve/serve_engine.h"

#include <algorithm>
#include <cmath>

namespace neurosketch {
namespace serve {

namespace {
std::chrono::microseconds WindowDuration(double us) {
  if (us <= 0.0) return std::chrono::microseconds(0);
  return std::chrono::microseconds(static_cast<int64_t>(us));
}

ServeOptions Sanitize(ServeOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;  // 0 would livelock the dispatcher
  return o;
}

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}
}  // namespace

ServeEngine::ServeEngine(const SketchStore* store, ServeOptions options)
    : store_(store),
      options_(Sanitize(std::move(options))),
      slow_queries_(options_.stage_tracing ? options_.slow_query_capacity
                                           : 0) {
  const size_t n = options_.num_dispatchers == 0 ? 1 : options_.num_dispatchers;
  dispatchers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

ServeEngine::~ServeEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : dispatchers_) d.join();
}

ServeEngine::KeyState& ServeEngine::KeyStateLocked(
    const ServeKey& key, const QueryFunctionSpec& spec) {
  KeyState& st = keys_[key];
  if (st.spec.predicate == nullptr) st.spec = spec;
  if (st.counters == nullptr) {
    st.counters = std::make_shared<StoreCounters>();
    st.counters->display = key.dataset + "/" + AggregateName(spec.agg) +
                           "(col " + std::to_string(spec.measure_col) + ")";
  }
  return st;
}

std::future<ServeResult> ServeEngine::Submit(const std::string& dataset,
                                             const QueryFunctionSpec& spec,
                                             QueryInstance q) {
  Request r;
  r.q = std::move(q);
  r.enqueued = Clock::now();
  r.promise = std::make_unique<std::promise<ServeResult>>();
  std::future<ServeResult> fut = r.promise->get_future();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& st = KeyStateLocked(ServeKey::From(dataset, spec), spec);
    st.pending.push_back(std::move(r));
    ++pending_count_;
    // Wake a dispatcher when a batch became dispatchable, or when this
    // request started a new queue (its deadline is unknown to sleeping
    // dispatchers). Otherwise dispatchers sleep until the window expires
    // rather than being woken per request.
    ready = st.pending.size() >= options_.max_batch ||
            options_.batch_window_us <= 0.0 || st.pending.size() == 1;
  }
  if (ready) cv_.notify_one();
  return fut;
}

std::future<std::vector<ServeResult>> ServeEngine::SubmitMany(
    const std::string& dataset, const QueryFunctionSpec& spec,
    std::vector<QueryInstance> queries) {
  auto wave = std::make_shared<Wave>();
  const size_t n = queries.size();
  wave->results.resize(n);
  wave->remaining.store(n, std::memory_order_relaxed);
  std::future<std::vector<ServeResult>> fut = wave->promise.get_future();
  if (n == 0) {
    wave->promise.set_value({});
    return fut;
  }
  const auto now = Clock::now();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& st = KeyStateLocked(ServeKey::From(dataset, spec), spec);
    const bool was_empty = st.pending.empty();
    for (size_t i = 0; i < n; ++i) {
      Request r;
      r.q = std::move(queries[i]);
      r.enqueued = now;
      r.wave = wave;
      r.wave_slot = i;
      st.pending.push_back(std::move(r));
    }
    pending_count_ += n;
    ready = st.pending.size() >= options_.max_batch ||
            options_.batch_window_us <= 0.0 || was_empty;
  }
  if (ready) cv_.notify_one();
  return fut;
}

ServeResult ServeEngine::Answer(const std::string& dataset,
                                const QueryFunctionSpec& spec,
                                QueryInstance q) {
  return Submit(dataset, spec, std::move(q)).get();
}

void ServeEngine::DispatchLoop() {
  const auto window = WindowDuration(options_.batch_window_us);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A key is dispatchable when its queue is full, its window has
    // expired, the window is zero, or we are stopping. Among dispatchable
    // keys, serve the one whose oldest request has waited longest — a
    // continuously-full hot key must not starve a colder key whose window
    // already expired.
    const auto now = Clock::now();
    KeyState* chosen = nullptr;
    ServeKey chosen_key;
    Clock::time_point chosen_deadline{};
    bool have_deadline = false;
    Clock::time_point earliest{};
    for (auto& [key, st] : keys_) {
      if (st.pending.empty()) continue;
      const auto deadline = st.pending.front().enqueued + window;
      if (st.pending.size() >= options_.max_batch || window.count() == 0 ||
          stop_ || deadline <= now) {
        if (chosen == nullptr || deadline < chosen_deadline) {
          chosen = &st;
          chosen_key = key;
          chosen_deadline = deadline;
        }
        continue;
      }
      if (!have_deadline || deadline < earliest) {
        earliest = deadline;
        have_deadline = true;
      }
    }
    if (chosen == nullptr) {
      if (stop_ && pending_count_ == 0) return;
      if (have_deadline) {
        cv_.wait_until(lock, earliest);
      } else {
        cv_.wait(lock);
      }
      continue;
    }

    std::vector<Request> batch;
    const size_t take = std::min(options_.max_batch, chosen->pending.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(chosen->pending.front()));
      chosen->pending.pop_front();
    }
    pending_count_ -= take;
    const bool allow_sketch = !chosen->demoted;
    const QueryFunctionSpec spec = chosen->spec;
    const std::shared_ptr<StoreCounters> counters = chosen->counters;

    lock.unlock();
    // The queue-wait / batch-assembly boundary: everything before this
    // instant is time spent waiting in the per-key queue.
    ExecuteBatch(chosen_key, spec, allow_sketch, &batch, Clock::now(),
                 counters.get());
    lock.lock();
  }
}

double ServeEngine::Fulfill(Request* r, double value, bool used_sketch,
                            PlanPrecision tier, StoreCounters* sc) {
  const double us = MicrosBetween(r->enqueued, Clock::now());
  latency_.Add(us);
  sc->latency.Add(us);
  queries_.fetch_add(1, std::memory_order_relaxed);
  sc->queries.fetch_add(1, std::memory_order_relaxed);
  if (used_sketch) {
    sketch_answers_.fetch_add(1, std::memory_order_relaxed);
    sc->sketch_answers.fetch_add(1, std::memory_order_relaxed);
    // Ticked together with sketch_answers_ (and before the promise
    // resolves) so the per-tier counters are always a consistent subset.
    if (tier == PlanPrecision::kF32) {
      f32_sketch_answers_.fetch_add(1, std::memory_order_relaxed);
      sc->f32_sketch_answers.fetch_add(1, std::memory_order_relaxed);
    } else if (tier == PlanPrecision::kInt8) {
      int8_sketch_answers_.fetch_add(1, std::memory_order_relaxed);
      sc->int8_sketch_answers.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (std::isnan(value)) {
    failed_answers_.fetch_add(1, std::memory_order_relaxed);
    sc->failed_answers.fetch_add(1, std::memory_order_relaxed);
  } else {
    fallback_answers_.fetch_add(1, std::memory_order_relaxed);
    sc->fallback_answers.fetch_add(1, std::memory_order_relaxed);
  }
  if (r->wave != nullptr) {
    r->wave->results[r->wave_slot] = ServeResult{value, used_sketch};
    if (r->wave->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      r->wave->promise.set_value(std::move(r->wave->results));
    }
    return us;
  }
  r->promise->set_value(ServeResult{value, used_sketch});
  return us;
}

void ServeEngine::ExecuteBatch(const ServeKey& key,
                               const QueryFunctionSpec& spec,
                               bool allow_sketch,
                               std::vector<Request>* batch,
                               Clock::time_point collected,
                               StoreCounters* sc) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const bool tracing = options_.stage_tracing;
  if (tracing) {
    // Queue-wait per request: each waited individually, but the whole
    // batch shares the one `collected` clock read.
    for (const auto& r : *batch) {
      stage_queue_.Add(MicrosBetween(r.enqueued, collected));
    }
  }
  std::shared_ptr<const NeuroSketch> sketch =
      allow_sketch ? store_->Lookup(key) : nullptr;
  const ExactEngine* engine = store_->Engine(key.dataset);

  // Requests own their queries and never read them again; steal the
  // buffers instead of cloning one heap allocation per query.
  std::vector<QueryInstance> queries;
  queries.reserve(batch->size());
  for (auto& r : *batch) queries.push_back(std::move(r.q));

  // Stage boundaries: assembly = collection -> inference start (store
  // lookup + query stealing), inference = the forward pass or exact
  // batch, fulfill = everything after (budget accounting + answer
  // delivery), measured per micro-batch.
  Clock::time_point infer_start{};
  Clock::time_point infer_end{};
  const char* tier_name = "exact";

  // Offers this request's trace to the slow-query ring; trace strings are
  // only materialized past the lock-free threshold gate, so the common
  // (fast-query) case costs one relaxed load and one compare.
  auto maybe_trace = [&](double total_us, double queue_us, const char* tier) {
    if (total_us <= slow_queries_.min_kept_us()) return;
    metrics::SlowQueryTrace t;
    t.total_us = total_us;
    t.queue_us = queue_us;
    t.assembly_us = MicrosBetween(collected, infer_start);
    t.inference_us = MicrosBetween(infer_start, infer_end);
    const double rest = total_us - t.queue_us - t.assembly_us - t.inference_us;
    t.fulfill_us = rest > 0.0 ? rest : 0.0;
    t.store = sc->display;
    t.tier = tier;
    t.batch_size = batch->size();
    slow_queries_.Offer(std::move(t));
  };

  if (sketch != nullptr) {
    // Dispatcher-thread answer buffer: capacity is retained across
    // batches, so with AnswerBatchVectorizedTo staging its bucketing in
    // the workspace arena the whole sketch path is allocation-free once
    // the thread is warm.
    thread_local std::vector<double> answers;
    answers.resize(queries.size());
    if (tracing) infer_start = Clock::now();
    sketch->AnswerBatchVectorizedTo(queries, answers.data());
    if (tracing) infer_end = Clock::now();
    size_t nans = 0;
    for (double a : answers) nans += std::isnan(a) ? 1 : 0;
    const size_t genuine = answers.size() - nans;
    const PlanPrecision tier = sketch->plan_precision();
    tier_name = PlanPrecisionName(tier);

    {
      // Error-budget accounting BEFORE any request is fulfilled: the
      // moment the last Fulfill resolves a client future, that client may
      // Snapshot() — the demotion decision must already be visible.
      // sketch_answers counts only genuinely sketch-answered queries —
      // repaired (NaN) queries must not dilute the failure-rate
      // denominator, or a half-broken sketch is demoted late or never.
      std::lock_guard<std::mutex> lock(mu_);
      KeyState& st = keys_[key];
      st.sketch_answers += genuine;
      st.sketch_nans += nans;
      if (!st.demoted &&
          st.sketch_answers + st.sketch_nans >= options_.budget_min_samples &&
          static_cast<double>(st.sketch_nans) >
              options_.max_sketch_failure_rate *
                  static_cast<double>(st.sketch_answers)) {
        st.demoted = true;
        budget_trips_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (size_t i = 0; i < answers.size(); ++i) {
      double total_us;
      const char* served_as;
      if (std::isnan(answers[i]) && engine != nullptr) {
        // Per-query exact repair: the sketch could not route/answer this
        // instance (e.g. out-of-domain), but the batch as a whole stays
        // on the fast path. Fulfill ticks fallback_answers_ (or
        // failed_answers_ when the engine is also stumped).
        total_us = Fulfill(&(*batch)[i], engine->Answer(spec, queries[i]),
                           false, PlanPrecision::kF64, sc);
        served_as = "exact";
      } else {
        const bool genuine_answer = !std::isnan(answers[i]);
        total_us = Fulfill(&(*batch)[i], answers[i], genuine_answer,
                           genuine_answer ? tier : PlanPrecision::kF64, sc);
        served_as = genuine_answer ? tier_name : "failed";
      }
      if (tracing) {
        maybe_trace(total_us, MicrosBetween((*batch)[i].enqueued, collected),
                    served_as);
      }
    }
    if (tracing) {
      stage_assembly_.Add(MicrosBetween(collected, infer_start));
      stage_inference_.Add(MicrosBetween(infer_start, infer_end));
      stage_fulfill_.Add(MicrosBetween(infer_end, Clock::now()));
    }
    return;
  }

  if (engine != nullptr) {
    if (tracing) infer_start = Clock::now();
    std::vector<double> answers =
        engine->AnswerBatch(spec, queries, options_.exact_batch_threads);
    if (tracing) infer_end = Clock::now();
    for (size_t i = 0; i < answers.size(); ++i) {
      const double total_us =
          Fulfill(&(*batch)[i], answers[i], false, PlanPrecision::kF64, sc);
      if (tracing) {
        maybe_trace(total_us, MicrosBetween((*batch)[i].enqueued, collected),
                    std::isnan(answers[i]) ? "failed" : "exact");
      }
    }
    if (tracing) {
      stage_assembly_.Add(MicrosBetween(collected, infer_start));
      stage_inference_.Add(MicrosBetween(infer_start, infer_end));
      stage_fulfill_.Add(MicrosBetween(infer_end, Clock::now()));
    }
    return;
  }

  // Neither a sketch nor an exact engine: answer NaN rather than hang.
  if (tracing) infer_start = infer_end = Clock::now();
  for (auto& r : *batch) {
    const double total_us =
        Fulfill(&r, std::nan(""), false, PlanPrecision::kF64, sc);
    if (tracing) {
      maybe_trace(total_us, MicrosBetween(r.enqueued, collected), "failed");
    }
  }
  if (tracing) {
    stage_assembly_.Add(MicrosBetween(collected, infer_start));
    stage_inference_.Add(0.0);
    stage_fulfill_.Add(MicrosBetween(infer_end, Clock::now()));
  }
}

ServeStats ServeEngine::Snapshot() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.sketch_answers = sketch_answers_.load(std::memory_order_relaxed);
  s.f32_sketch_answers = f32_sketch_answers_.load(std::memory_order_relaxed);
  s.int8_sketch_answers = int8_sketch_answers_.load(std::memory_order_relaxed);
  s.fallback_answers = fallback_answers_.load(std::memory_order_relaxed);
  s.failed_answers = failed_answers_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.budget_trips = budget_trips_.load(std::memory_order_relaxed);
  s.elapsed_seconds = uptime_.ElapsedSeconds();
  s.qps = s.elapsed_seconds > 0.0
              ? static_cast<double>(s.queries) / s.elapsed_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.queries) / static_cast<double>(s.batches)
          : 0.0;
  s.fallback_rate =
      s.queries > 0
          ? static_cast<double>(s.fallback_answers) /
                static_cast<double>(s.queries)
          : 0.0;
  s.p50_us = latency_.PercentileUs(50);
  s.p95_us = latency_.PercentileUs(95);
  s.p99_us = latency_.PercentileUs(99);
  s.p999_us = latency_.PercentileUs(99.9);

  s.stage_tracing = options_.stage_tracing;
  if (s.stage_tracing) {
    s.stage_queue = LatencyBreakdown::From(stage_queue_);
    s.stage_assembly = LatencyBreakdown::From(stage_assembly_);
    s.stage_inference = LatencyBreakdown::From(stage_inference_);
    s.stage_fulfill = LatencyBreakdown::From(stage_fulfill_);
  }

  // Per-store view: the key map is only touched long enough to copy the
  // counter pointers; the counters themselves are read lock-free.
  std::vector<std::pair<std::shared_ptr<StoreCounters>, bool>> stores;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stores.reserve(keys_.size());
    for (const auto& [key, st] : keys_) {
      (void)key;
      if (st.counters != nullptr) stores.emplace_back(st.counters, st.demoted);
    }
  }
  s.per_store.reserve(stores.size());
  for (const auto& [sc, demoted] : stores) {
    StoreStatsSnapshot ss;
    ss.store = sc->display;
    ss.queries = sc->queries.load(std::memory_order_relaxed);
    ss.sketch_answers = sc->sketch_answers.load(std::memory_order_relaxed);
    ss.f32_sketch_answers =
        sc->f32_sketch_answers.load(std::memory_order_relaxed);
    ss.int8_sketch_answers =
        sc->int8_sketch_answers.load(std::memory_order_relaxed);
    ss.fallback_answers = sc->fallback_answers.load(std::memory_order_relaxed);
    ss.failed_answers = sc->failed_answers.load(std::memory_order_relaxed);
    ss.demoted = demoted;
    ss.fallback_rate = ss.queries > 0
                           ? static_cast<double>(ss.fallback_answers) /
                                 static_cast<double>(ss.queries)
                           : 0.0;
    ss.latency = LatencyBreakdown::From(sc->latency);
    s.per_store.push_back(std::move(ss));
  }
  std::sort(s.per_store.begin(), s.per_store.end(),
            [](const StoreStatsSnapshot& a, const StoreStatsSnapshot& b) {
              return a.store < b.store;
            });
  return s;
}

void ServeEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  queries_.store(0, std::memory_order_relaxed);
  sketch_answers_.store(0, std::memory_order_relaxed);
  f32_sketch_answers_.store(0, std::memory_order_relaxed);
  int8_sketch_answers_.store(0, std::memory_order_relaxed);
  fallback_answers_.store(0, std::memory_order_relaxed);
  failed_answers_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  budget_trips_.store(0, std::memory_order_relaxed);
  latency_.Reset();
  stage_queue_.Reset();
  stage_assembly_.Reset();
  stage_inference_.Reset();
  stage_fulfill_.Reset();
  slow_queries_.Clear();
  for (auto& [key, st] : keys_) {
    (void)key;
    if (st.counters == nullptr) continue;
    st.counters->queries.store(0, std::memory_order_relaxed);
    st.counters->sketch_answers.store(0, std::memory_order_relaxed);
    st.counters->f32_sketch_answers.store(0, std::memory_order_relaxed);
    st.counters->int8_sketch_answers.store(0, std::memory_order_relaxed);
    st.counters->fallback_answers.store(0, std::memory_order_relaxed);
    st.counters->failed_answers.store(0, std::memory_order_relaxed);
    st.counters->latency.Reset();
  }
  uptime_.Reset();
}

std::vector<metrics::SlowQueryTrace> ServeEngine::SlowQueries() const {
  return slow_queries_.SlowestFirst();
}

void ServeEngine::ExportMetrics(metrics::MetricsRegistry* registry,
                                const std::string& prefix) const {
  const ServeStats s = Snapshot();
  registry->SetCounter(prefix + "queries_total", s.queries,
                       "Answers delivered");
  registry->SetCounter(prefix + "sketch_answers_total", s.sketch_answers,
                       "Answered by a sketch forward pass");
  registry->SetCounter(prefix + "f32_sketch_answers_total",
                       s.f32_sketch_answers);
  registry->SetCounter(prefix + "int8_sketch_answers_total",
                       s.int8_sketch_answers);
  registry->SetCounter(prefix + "fallback_answers_total", s.fallback_answers,
                       "Answered by the exact engine");
  registry->SetCounter(prefix + "failed_answers_total", s.failed_answers,
                       "NaN with no fallback available");
  registry->SetCounter(prefix + "batches_total", s.batches,
                       "Micro-batches dispatched");
  registry->SetCounter(prefix + "budget_trips_total", s.budget_trips,
                       "Stores demoted by the error budget");
  registry->SetGauge(prefix + "elapsed_seconds", s.elapsed_seconds,
                     "Seconds since engine start or last ResetStats");
  registry->SetGauge(prefix + "mean_batch_size", s.mean_batch_size);

  auto copy_hist = [&](const std::string& name, const LatencyHistogram& h,
                       const std::string& help) {
    LatencyHistogram* dst = registry->GetHistogram(name, help);
    if (dst != nullptr) dst->CopyFrom(h);
  };
  copy_hist(prefix + "latency_us", latency_,
            "Submit->answer latency, microseconds");
  if (options_.stage_tracing) {
    copy_hist(prefix + "stage_us{stage=\"queue\"}", stage_queue_,
              "Per-stage serve pipeline latency, microseconds");
    copy_hist(prefix + "stage_us{stage=\"assembly\"}", stage_assembly_, "");
    copy_hist(prefix + "stage_us{stage=\"inference\"}", stage_inference_, "");
    copy_hist(prefix + "stage_us{stage=\"fulfill\"}", stage_fulfill_, "");
  }
  for (const auto& ss : s.per_store) {
    const std::string label = "{store=\"" + ss.store + "\"}";
    registry->SetCounter(prefix + "store_queries_total" + label, ss.queries,
                         "Answers delivered per store");
    registry->SetCounter(prefix + "store_sketch_answers_total" + label,
                         ss.sketch_answers);
    registry->SetCounter(prefix + "store_fallback_answers_total" + label,
                         ss.fallback_answers);
    registry->SetCounter(prefix + "store_failed_answers_total" + label,
                         ss.failed_answers);
    registry->SetGauge(prefix + "store_demoted" + label,
                       ss.demoted ? 1.0 : 0.0,
                       "1 when the error budget tripped for this store");
    registry->SetGauge(prefix + "store_p99_us" + label, ss.latency.p99_us,
                       "Per-store submit->answer p99, microseconds");
  }
}

}  // namespace serve
}  // namespace neurosketch
