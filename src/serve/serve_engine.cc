#include "serve/serve_engine.h"

#include <cmath>

namespace neurosketch {
namespace serve {

namespace {
std::chrono::microseconds WindowDuration(double us) {
  if (us <= 0.0) return std::chrono::microseconds(0);
  return std::chrono::microseconds(static_cast<int64_t>(us));
}
}  // namespace

namespace {
ServeOptions Sanitize(ServeOptions o) {
  if (o.max_batch == 0) o.max_batch = 1;  // 0 would livelock the dispatcher
  return o;
}
}  // namespace

ServeEngine::ServeEngine(const SketchStore* store, ServeOptions options)
    : store_(store), options_(Sanitize(std::move(options))) {
  const size_t n = options_.num_dispatchers == 0 ? 1 : options_.num_dispatchers;
  dispatchers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

ServeEngine::~ServeEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : dispatchers_) d.join();
}

std::future<ServeResult> ServeEngine::Submit(const std::string& dataset,
                                             const QueryFunctionSpec& spec,
                                             QueryInstance q) {
  Request r;
  r.q = std::move(q);
  r.enqueued = Clock::now();
  r.promise = std::make_unique<std::promise<ServeResult>>();
  std::future<ServeResult> fut = r.promise->get_future();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& st = keys_[ServeKey::From(dataset, spec)];
    if (st.spec.predicate == nullptr) st.spec = spec;
    st.pending.push_back(std::move(r));
    ++pending_count_;
    // Wake a dispatcher when a batch became dispatchable, or when this
    // request started a new queue (its deadline is unknown to sleeping
    // dispatchers). Otherwise dispatchers sleep until the window expires
    // rather than being woken per request.
    ready = st.pending.size() >= options_.max_batch ||
            options_.batch_window_us <= 0.0 || st.pending.size() == 1;
  }
  if (ready) cv_.notify_one();
  return fut;
}

std::future<std::vector<ServeResult>> ServeEngine::SubmitMany(
    const std::string& dataset, const QueryFunctionSpec& spec,
    std::vector<QueryInstance> queries) {
  auto wave = std::make_shared<Wave>();
  const size_t n = queries.size();
  wave->results.resize(n);
  wave->remaining.store(n, std::memory_order_relaxed);
  std::future<std::vector<ServeResult>> fut = wave->promise.get_future();
  if (n == 0) {
    wave->promise.set_value({});
    return fut;
  }
  const auto now = Clock::now();
  bool ready = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    KeyState& st = keys_[ServeKey::From(dataset, spec)];
    if (st.spec.predicate == nullptr) st.spec = spec;
    const bool was_empty = st.pending.empty();
    for (size_t i = 0; i < n; ++i) {
      Request r;
      r.q = std::move(queries[i]);
      r.enqueued = now;
      r.wave = wave;
      r.wave_slot = i;
      st.pending.push_back(std::move(r));
    }
    pending_count_ += n;
    ready = st.pending.size() >= options_.max_batch ||
            options_.batch_window_us <= 0.0 || was_empty;
  }
  if (ready) cv_.notify_one();
  return fut;
}

ServeResult ServeEngine::Answer(const std::string& dataset,
                                const QueryFunctionSpec& spec,
                                QueryInstance q) {
  return Submit(dataset, spec, std::move(q)).get();
}

void ServeEngine::DispatchLoop() {
  const auto window = WindowDuration(options_.batch_window_us);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // A key is dispatchable when its queue is full, its window has
    // expired, the window is zero, or we are stopping. Among dispatchable
    // keys, serve the one whose oldest request has waited longest — a
    // continuously-full hot key must not starve a colder key whose window
    // already expired.
    const auto now = Clock::now();
    KeyState* chosen = nullptr;
    ServeKey chosen_key;
    Clock::time_point chosen_deadline{};
    bool have_deadline = false;
    Clock::time_point earliest{};
    for (auto& [key, st] : keys_) {
      if (st.pending.empty()) continue;
      const auto deadline = st.pending.front().enqueued + window;
      if (st.pending.size() >= options_.max_batch || window.count() == 0 ||
          stop_ || deadline <= now) {
        if (chosen == nullptr || deadline < chosen_deadline) {
          chosen = &st;
          chosen_key = key;
          chosen_deadline = deadline;
        }
        continue;
      }
      if (!have_deadline || deadline < earliest) {
        earliest = deadline;
        have_deadline = true;
      }
    }
    if (chosen == nullptr) {
      if (stop_ && pending_count_ == 0) return;
      if (have_deadline) {
        cv_.wait_until(lock, earliest);
      } else {
        cv_.wait(lock);
      }
      continue;
    }

    std::vector<Request> batch;
    const size_t take = std::min(options_.max_batch, chosen->pending.size());
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(chosen->pending.front()));
      chosen->pending.pop_front();
    }
    pending_count_ -= take;
    const bool allow_sketch = !chosen->demoted;
    const QueryFunctionSpec spec = chosen->spec;

    lock.unlock();
    ExecuteBatch(chosen_key, spec, allow_sketch, &batch);
    lock.lock();
  }
}

void ServeEngine::Fulfill(Request* r, double value, bool used_sketch,
                          PlanPrecision tier) {
  const double us =
      std::chrono::duration<double, std::micro>(Clock::now() - r->enqueued)
          .count();
  latency_.Add(us);
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (used_sketch) {
    sketch_answers_.fetch_add(1, std::memory_order_relaxed);
    // Ticked together with sketch_answers_ (and before the promise
    // resolves) so the per-tier counters are always a consistent subset.
    if (tier == PlanPrecision::kF32) {
      f32_sketch_answers_.fetch_add(1, std::memory_order_relaxed);
    } else if (tier == PlanPrecision::kInt8) {
      int8_sketch_answers_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (std::isnan(value)) {
    failed_answers_.fetch_add(1, std::memory_order_relaxed);
  } else {
    fallback_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  if (r->wave != nullptr) {
    r->wave->results[r->wave_slot] = ServeResult{value, used_sketch};
    if (r->wave->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      r->wave->promise.set_value(std::move(r->wave->results));
    }
    return;
  }
  r->promise->set_value(ServeResult{value, used_sketch});
}

void ServeEngine::ExecuteBatch(const ServeKey& key,
                               const QueryFunctionSpec& spec,
                               bool allow_sketch,
                               std::vector<Request>* batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const NeuroSketch> sketch =
      allow_sketch ? store_->Lookup(key) : nullptr;
  const ExactEngine* engine = store_->Engine(key.dataset);

  // Requests own their queries and never read them again; steal the
  // buffers instead of cloning one heap allocation per query.
  std::vector<QueryInstance> queries;
  queries.reserve(batch->size());
  for (auto& r : *batch) queries.push_back(std::move(r.q));

  if (sketch != nullptr) {
    // Dispatcher-thread answer buffer: capacity is retained across
    // batches, so with AnswerBatchVectorizedTo staging its bucketing in
    // the workspace arena the whole sketch path is allocation-free once
    // the thread is warm.
    thread_local std::vector<double> answers;
    answers.resize(queries.size());
    sketch->AnswerBatchVectorizedTo(queries, answers.data());
    size_t nans = 0;
    for (double a : answers) nans += std::isnan(a) ? 1 : 0;
    const size_t genuine = answers.size() - nans;
    const PlanPrecision tier = sketch->plan_precision();

    {
      // Error-budget accounting BEFORE any request is fulfilled: the
      // moment the last Fulfill resolves a client future, that client may
      // Snapshot() — the demotion decision must already be visible.
      // sketch_answers counts only genuinely sketch-answered queries —
      // repaired (NaN) queries must not dilute the failure-rate
      // denominator, or a half-broken sketch is demoted late or never.
      std::lock_guard<std::mutex> lock(mu_);
      KeyState& st = keys_[key];
      st.sketch_answers += genuine;
      st.sketch_nans += nans;
      if (!st.demoted &&
          st.sketch_answers + st.sketch_nans >= options_.budget_min_samples &&
          static_cast<double>(st.sketch_nans) >
              options_.max_sketch_failure_rate *
                  static_cast<double>(st.sketch_answers)) {
        st.demoted = true;
        budget_trips_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (size_t i = 0; i < answers.size(); ++i) {
      if (std::isnan(answers[i]) && engine != nullptr) {
        // Per-query exact repair: the sketch could not route/answer this
        // instance (e.g. out-of-domain), but the batch as a whole stays
        // on the fast path. Fulfill ticks fallback_answers_ (or
        // failed_answers_ when the engine is also stumped).
        Fulfill(&(*batch)[i], engine->Answer(spec, queries[i]), false);
        continue;
      }
      const bool genuine_answer = !std::isnan(answers[i]);
      Fulfill(&(*batch)[i], answers[i], genuine_answer,
              genuine_answer ? tier : PlanPrecision::kF64);
    }
    return;
  }

  if (engine != nullptr) {
    std::vector<double> answers =
        engine->AnswerBatch(spec, queries, options_.exact_batch_threads);
    for (size_t i = 0; i < answers.size(); ++i) {
      Fulfill(&(*batch)[i], answers[i], false);
    }
    return;
  }

  // Neither a sketch nor an exact engine: answer NaN rather than hang.
  for (auto& r : *batch) Fulfill(&r, std::nan(""), false);
}

ServeStats ServeEngine::Snapshot() const {
  ServeStats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.sketch_answers = sketch_answers_.load(std::memory_order_relaxed);
  s.f32_sketch_answers = f32_sketch_answers_.load(std::memory_order_relaxed);
  s.int8_sketch_answers = int8_sketch_answers_.load(std::memory_order_relaxed);
  s.fallback_answers = fallback_answers_.load(std::memory_order_relaxed);
  s.failed_answers = failed_answers_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.budget_trips = budget_trips_.load(std::memory_order_relaxed);
  s.elapsed_seconds = uptime_.ElapsedSeconds();
  s.qps = s.elapsed_seconds > 0.0
              ? static_cast<double>(s.queries) / s.elapsed_seconds
              : 0.0;
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.queries) / static_cast<double>(s.batches)
          : 0.0;
  s.fallback_rate =
      s.queries > 0
          ? static_cast<double>(s.fallback_answers) /
                static_cast<double>(s.queries)
          : 0.0;
  s.p50_us = latency_.PercentileUs(50);
  s.p95_us = latency_.PercentileUs(95);
  s.p99_us = latency_.PercentileUs(99);
  return s;
}

}  // namespace serve
}  // namespace neurosketch
