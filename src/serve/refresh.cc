#include "serve/refresh.h"

#include <chrono>
#include <exception>
#include <sstream>
#include <utility>

#include "query/aggregate.h"
#include "query/engine.h"

namespace neurosketch {
namespace serve {

namespace {
using Clock = std::chrono::steady_clock;

std::string DisplayKey(const std::string& dataset,
                       const QueryFunctionSpec& spec) {
  // Matches ServeEngine's StoreCounters display so refresh gauges and
  // serve counters join on the same {store="…"} label.
  return dataset + "/" + AggregateName(spec.agg) + "(col " +
         std::to_string(spec.measure_col) + ")";
}
}  // namespace

RefreshController::RefreshController(SketchStore* store, ServeEngine* engine,
                                     RefreshOptions options)
    : store_(store), engine_(engine), options_(std::move(options)) {}

RefreshController::~RefreshController() { Stop(); }

void RefreshController::AddTarget(RefreshTarget target) {
  std::lock_guard<std::mutex> lock(mu_);
  targets_.push_back(std::move(target));
}

void RefreshController::SetFaultHook(std::function<void(NeuroSketch*)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  fault_hook_ = std::move(hook);
}

RefreshOutcome RefreshController::RefreshTargetLocked(RefreshTarget& target) {
  // Caller holds run_mu_ (one pass at a time); mu_ is taken briefly for
  // shared-state updates. `target` is the caller's private copy, so
  // AddTarget reallocating targets_ mid-pass is harmless.
  RefreshOutcome out;
  const QueryFunctionSpec& spec = target.monitor.spec();
  const ServeKey key = ServeKey::From(target.dataset, spec);
  const std::string display = DisplayKey(target.dataset, spec);
  const Clock::time_point t0 = Clock::now();

  const ServedView view = store_->LookupServed(key);
  if (view.sketch == nullptr) {
    out.message = "no sketch registered for " + display;
    return out;
  }
  const ExactEngine* base = store_->Engine(target.dataset);
  if (base == nullptr) {
    out.message = "no exact engine for dataset " + target.dataset;
    return out;
  }

  // Ground truth reflects the appended table: the base rows plus every
  // delta row the base does not already hold, in append order. The
  // snapshot taken here is also the fold watermark a successful swap
  // publishes — rows appended after this instant stay unfolded and keep
  // being corrected by the serve path. Snapshot-before-pin (see
  // data/streaming_table.h): the base version pinned afterwards has
  // folded >= the snapshot's begin, so base + delta[folded, end) covers
  // the logical history exactly once even when a compaction swaps the
  // table mid-pass.
  DeltaBuffer::Snapshot dsnap;
  if (view.delta != nullptr) dsnap = view.delta->Snap();
  const ExactEngine::PinnedBase pinned = base->Pin();
  Table merged = *pinned.table;
  if (!dsnap.empty()) {
    const size_t from = dsnap.begin() < pinned.folded
                            ? static_cast<size_t>(pinned.folded)
                            : dsnap.begin();
    std::vector<double> row(dsnap.num_columns());
    dsnap.ForEachRow(from, dsnap.end(), [&](const double* r) {
      row.assign(r, r + dsnap.num_columns());
      // Column counts match by EnableStreaming's contract; a mismatch
      // surfaces as missing rows in the (validated) post-retrain probe.
      (void)merged.AppendRow(row);
    });
  }
  const ExactEngine merged_engine(&merged);

  const std::vector<double> truth = merged_engine.AnswerBatch(
      spec, target.monitor.probes(), options_.probe_threads);
  const DriftReport report = target.monitor.CheckAgainst(*view.sketch, truth);
  out.probed = true;
  out.pre_mae = report.normalized_mae;
  out.post_mae = report.normalized_mae;

  if (!report.retrain_recommended) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
    ++stats_.skipped;
    if (report.conclusive) {
      // Drift back in bound clears the failure streak: the store earned
      // its way out of the demotion countdown.
      failure_streak_.erase(display);
      last_mae_[display] = report.normalized_mae;
    }
    refresh_duration_us_.Add(
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
    return out;
  }

  out.stale_leaves = report.StaleLeaves();

  // Retrain on a private copy; serving continues on the registered
  // version until the swap below.
  std::function<void(NeuroSketch*)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = fault_hook_;
  }
  bool ok = true;
  std::string fail_msg;
  // NeuroSketch is move-only (the kd-tree owns its nodes); the private
  // retrain copy comes from the bit-exact serialization round-trip.
  NeuroSketch fresh;
  {
    std::stringstream buf;
    const Status saved = view.sketch->SaveTo(&buf);
    if (!saved.ok()) {
      ok = false;
      fail_msg = "clone (SaveTo): " + saved.message();
    } else {
      Result<NeuroSketch> loaded = NeuroSketch::LoadFrom(&buf);
      if (!loaded.ok()) {
        ok = false;
        fail_msg = "clone (LoadFrom): " + loaded.status().message();
      } else {
        fresh = std::move(loaded).value();
      }
    }
  }
  const std::vector<QueryInstance>& train_q =
      target.train_queries.empty() ? target.monitor.probes()
                                   : target.train_queries;
  if (ok) {
    try {
      std::vector<double> train_a =
          target.train_queries.empty()
              ? truth
              : merged_engine.AnswerBatch(spec, train_q,
                                          options_.probe_threads);
      const Status st = fresh.RetrainLeaves(out.stale_leaves, train_q,
                                            train_a, target.config);
      if (!st.ok()) {
        ok = false;
        fail_msg = "RetrainLeaves: " + st.message();
      } else if (hook) {
        hook(&fresh);
      }
    } catch (const std::exception& e) {
      ok = false;
      fail_msg = std::string("refresh threw: ") + e.what();
    }
  }

  if (ok) {
    // Validation gate: the retrained sketch must answer the probe set
    // within the drift policy bound on the SAME merged truth, or it never
    // reaches the store (the out-of-bound fault-injection path).
    DriftReport post = target.monitor.CheckAgainst(fresh, truth);
    out.post_mae = post.normalized_mae;
    out.retrained = true;
    // Tier re-validation: RetrainLeaves fixes the f64 parameters, but a
    // surviving narrow tier (int8 especially) still serves through
    // calibration scales captured on the PRE-drift distribution. If the
    // narrow tier is what pushed the probe out of bound, demote it —
    // int8 -> f32 -> f64 — re-validating at each step, rather than
    // discarding a refresh whose f64 reference is fine.
    while (post.normalized_mae > target.monitor.policy().max_normalized_mae &&
           fresh.plan_precision() != PlanPrecision::kF64) {
      const PlanPrecision was = fresh.plan_precision();
      const PlanPrecision next =
          (was == PlanPrecision::kInt8 && fresh.has_f32_plans())
              ? PlanPrecision::kF32
              : PlanPrecision::kF64;
      Status demote = fresh.EnsureTier(next);
      if (demote.ok()) demote = fresh.SelectPrecision(next);
      if (!demote.ok()) break;  // can't demote further; gate decides below
      fresh.ReleaseTier(was);   // stale-calibrated plans must not linger
      ++out.tier_fallbacks;
      post = target.monitor.CheckAgainst(fresh, truth);
      out.post_mae = post.normalized_mae;
    }
    if (post.normalized_mae > target.monitor.policy().max_normalized_mae) {
      ok = false;
      fail_msg = "retrained sketch out of bound (normalized_mae " +
                 std::to_string(post.normalized_mae) + " > " +
                 std::to_string(target.monitor.policy().max_normalized_mae) +
                 ")";
    }
  }

  if (ok) {
    // Publish: new fold watermarks cover exactly the snapshot the retrain
    // saw, for exactly the leaves retrained. The (sketch, watermarks)
    // pair swaps into the store's version slot atomically.
    auto folded = view.leaf_folded != nullptr
                      ? std::make_shared<std::vector<uint64_t>>(
                            *view.leaf_folded)
                      : std::make_shared<std::vector<uint64_t>>(
                            fresh.num_partitions(), 0);
    folded->resize(fresh.num_partitions(), 0);
    for (int id : out.stale_leaves) {
      (*folded)[static_cast<size_t>(id)] = dsnap.end();
    }
    out.retrained_leaves = out.stale_leaves.size();
    const Result<uint64_t> reg = store_->Register(
        target.dataset, spec,
        std::make_shared<const NeuroSketch>(std::move(fresh)), 0,
        std::move(folded));
    if (!reg.ok()) {
      ok = false;
      out.retrained_leaves = 0;
      fail_msg = "Register: " + reg.status().message();
    } else {
      out.swapped = true;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.runs;
  stats_.tier_fallbacks += out.tier_fallbacks;
  if (ok) {
    ++stats_.swaps;
    stats_.retrained_leaves += out.retrained_leaves;
    failure_streak_.erase(display);
    last_mae_[display] = out.post_mae;
  } else {
    out.failed = true;
    out.message = fail_msg;
    ++stats_.failures;
    const size_t streak = ++failure_streak_[display];
    if (options_.max_failures_before_demote > 0 &&
        streak >= options_.max_failures_before_demote && engine_ != nullptr) {
      // Drift is outrunning refresh: stop serving the stale sketch.
      // DemoteStore is idempotent, so repeated streak hits are safe.
      engine_->DemoteStore(target.dataset, spec);
      ++stats_.demotions;
      out.demoted = true;
    }
  }
  refresh_duration_us_.Add(
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count());
  return out;
}

void RefreshController::MaybeCompactLocked(const std::string& dataset) {
  if (options_.compact_min_rows == 0 && options_.compact_min_bytes == 0) {
    return;  // compaction disabled
  }
  const std::shared_ptr<const DeltaBuffer> delta = store_->Delta(dataset);
  if (delta == nullptr) return;
  if (store_->StreamingTableFor(dataset) == nullptr) {
    return;  // nowhere to fold: dataset serves a plain static base
  }
  const DeltaBufferStats s = delta->Stats();
  const bool rows_hit =
      options_.compact_min_rows > 0 && s.rows >= options_.compact_min_rows;
  const bool bytes_hit =
      options_.compact_min_bytes > 0 && s.bytes >= options_.compact_min_bytes;
  if (!rows_hit && !bytes_hit) return;
  const Result<CompactionOutcome> res = store_->Compact(dataset);
  // Below-watermark passes (compacted=false) are normal when leaves have
  // not been refreshed past the resident rows yet; the next pass retries.
  if (!res.ok() || !res.value().compacted) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.compactions;
  stats_.compaction_folded_rows += res.value().folded_rows;
}

Result<RefreshOutcome> RefreshController::RefreshNow(
    const std::string& dataset, const QueryFunctionSpec& spec) {
  const ServeKey want = ServeKey::From(dataset, spec);
  std::unique_ptr<RefreshTarget> target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const RefreshTarget& t : targets_) {
      if (ServeKey::From(t.dataset, t.monitor.spec()) == want) {
        target = std::make_unique<RefreshTarget>(t);
        break;
      }
    }
  }
  if (target == nullptr) {
    return Status::InvalidArgument("no refresh target for " +
                                   DisplayKey(dataset, spec));
  }
  std::lock_guard<std::mutex> run(run_mu_);
  RefreshOutcome out = RefreshTargetLocked(*target);
  MaybeCompactLocked(target->dataset);
  if (!out.probed) return Status::FailedPrecondition(out.message);
  return out;
}

std::vector<RefreshOutcome> RefreshController::RefreshAll() {
  std::vector<RefreshTarget> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    targets = targets_;
  }
  std::vector<RefreshOutcome> outcomes;
  outcomes.reserve(targets.size());
  std::lock_guard<std::mutex> run(run_mu_);
  for (RefreshTarget& t : targets) {
    outcomes.push_back(RefreshTargetLocked(t));
  }
  // Refresh swaps just advanced fold watermarks; sweep every streaming
  // dataset (targeted or not — exact-only datasets compact too) so delta
  // residency stays bounded under sustained ingest.
  for (const auto& [dataset, stats] : store_->DeltaStats()) {
    (void)stats;
    MaybeCompactLocked(dataset);
  }
  return outcomes;
}

void RefreshController::Start() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  loop_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(loop_mu_);
    while (!stop_requested_) {
      loop_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                        [this] { return stop_requested_; });
      if (stop_requested_) break;
      lock.unlock();
      RefreshAll();
      lock.lock();
    }
  });
}

void RefreshController::Stop() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    joinable = std::move(loop_);
  }
  loop_cv_.notify_all();
  joinable.join();
}

RefreshStats RefreshController::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void RefreshController::ExportMetrics(metrics::MetricsRegistry* registry,
                                      const std::string& prefix) const {
  RefreshStats s;
  std::map<std::string, double> mae;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s = stats_;
    mae = last_mae_;
  }
  registry->SetCounter(prefix + "refresh_runs_total", s.runs,
                       "Drift-probe refresh passes over registered targets");
  registry->SetCounter(prefix + "refresh_swaps_total", s.swaps,
                       "Refreshes that registered a new sketch version");
  registry->SetCounter(prefix + "refresh_retrained_leaves_total",
                       s.retrained_leaves,
                       "Kd-tree leaves retrained across all swaps");
  registry->SetCounter(prefix + "refresh_failures_total", s.failures,
                       "Refreshes discarded (exception or out-of-bound)");
  registry->SetCounter(prefix + "refresh_demotions_total", s.demotions,
                       "Stores demoted after a refresh-failure streak");
  registry->SetCounter(prefix + "refresh_skipped_total", s.skipped,
                       "Passes where the drift probe was within bound");
  registry->SetCounter(
      prefix + "refresh_tier_fallbacks_total", s.tier_fallbacks,
      "Validation-driven serving-tier demotions (stale narrow calibration)");
  registry->SetCounter(
      prefix + "refresh_compactions_total", s.compactions,
      "Threshold-triggered delta compactions that folded rows into base");
  registry->SetCounter(
      prefix + "refresh_compaction_folded_rows_total",
      s.compaction_folded_rows,
      "Delta rows folded into base tables by controller compactions");
  if (metrics::LogHistogram* h = registry->GetHistogram(
          prefix + "refresh_duration_us",
          "Wall time of one refresh pass, microseconds")) {
    h->CopyFrom(refresh_duration_us_);
  }
  for (const auto& [store, v] : mae) {
    registry->SetGauge(
        prefix + "refresh_last_normalized_mae{store=\"" + store + "\"}", v,
        "Probe normalized MAE after the store's last refresh pass");
  }
}

}  // namespace serve
}  // namespace neurosketch
