// DQD-bound calculators (paper Sec. 3): evaluate the approximation-error
// side (Theorem 3.4), the sampling-error side (Theorem 3.5 via the VC
// bound of Theorem A.11), their combination (Theorem 3.1), and the AVG
// variant (Lemma 3.6). These are the quantities a query optimizer would
// consult to decide when a neural network is worth building.
#ifndef NEUROSKETCH_THEORY_DQD_H_
#define NEUROSKETCH_THEORY_DQD_H_

#include <cstddef>

namespace neurosketch {
namespace theory {

/// \brief Theorem 3.4 with κ = 3 (1-norm case): grid resolution t needed
/// for approximation error ε₁ on a ρ-Lipschitz function in d dimensions,
/// t = ceil(3ρd / ε₁).
size_t RequiredGridResolution(double rho, size_t d, double eps1);

/// \brief Number of g-units k = (t+1)^d for that resolution; the network's
/// time/space complexity is Θ(kd). Saturates at SIZE_MAX on overflow.
size_t ConstructionUnits(double rho, size_t d, double eps1);

/// \brief 1-norm approximation error bound of the construction at grid
/// resolution t: ||f − f̂||₁ ≤ 3ρd / t (Eq. 7).
double ApproximationErrorBound(double rho, size_t d, size_t t);

/// \brief ∞-norm bound for d ≤ 3: 37ρd / t (Lemma A.3 b).
double ApproximationErrorBoundInf(double rho, size_t d, size_t t);

/// \brief Theorem A.11 (VC bound): probability that the empirical mean of
/// any h in a class of pseudo-dimension `vc_dim` deviates from its
/// expectation by more than ε on n samples:
///   8 e^{vc} (32e/ε)^{vc} exp(−ε²n/32), clamped to [0, 1].
double VcDeviationProbability(double eps, size_t n, size_t vc_dim);

/// \brief Theorem 3.5: sampling-error tail for COUNT/SUM query functions
/// in d dimensions (axis ranges have pseudo-dimension 2d, Lemma A.12).
double SamplingErrorProbability(double eps2, size_t n, size_t d);

/// \brief Theorem 3.1 total-failure probability for error ε₁ + ε₂: equals
/// the sampling tail (the approximation part is deterministic).
double DqdFailureProbability(double eps2, size_t n, size_t d);

/// \brief Smallest ε₂ with SamplingErrorProbability <= delta (bisection).
double SamplingErrorForConfidence(double delta, size_t n, size_t d);

/// \brief Lemma 3.6: tail bound for the normalized AVG error at level ε
/// over queries with f^C_χ(q) >= ξ·n.
double AvgErrorProbability(double eps, double xi, size_t n, size_t d);

}  // namespace theory
}  // namespace neurosketch

#endif  // NEUROSKETCH_THEORY_DQD_H_
