// LDQ: the Lipschitz constant of the normalized Distribution Query
// function (paper Sec. 3.1.1), the DQD complexity measure. Closed forms
// for the distributions of Examples 3.2 / 3.3 plus an empirical estimator
// over sampled query pairs.
#ifndef NEUROSKETCH_THEORY_LDQ_H_
#define NEUROSKETCH_THEORY_LDQ_H_

#include <cstdint>
#include <vector>

#include "query/query.h"

namespace neurosketch {
namespace theory {

/// \brief Example 3.2: LDQ of a 1-D COUNT query function over uniform
/// data is 1.
double LdqUniformCount();

/// \brief Example 3.3: LDQ of a 1-D COUNT query function over Gaussian
/// data with standard deviation sigma is 3 / (sigma * sqrt(2*pi)).
double LdqGaussianCount(double sigma);

/// \brief Upper bound on LDQ for a 1-D GMM: the weighted combination of
/// per-component Gaussian bounds (weights must sum to 1).
double LdqGmmCountBound(const std::vector<double>& weights,
                        const std::vector<double>& sigmas);

/// \brief Empirical LDQ estimate: the maximum of |f(q)-f(q')| / ||q-q'||_1
/// over sampled pairs (a lower bound on the true Lipschitz constant; the
/// AQC of Sec. 3.1.4 is its average-version proxy).
double EstimateLdq(const std::vector<QueryInstance>& queries,
                   const std::vector<double>& answers, size_t max_pairs,
                   uint64_t seed);

}  // namespace theory
}  // namespace neurosketch

#endif  // NEUROSKETCH_THEORY_LDQ_H_
