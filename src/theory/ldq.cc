#include "theory/ldq.h"

#include <cmath>

#include "util/random.h"

namespace neurosketch {
namespace theory {

double LdqUniformCount() { return 1.0; }

double LdqGaussianCount(double sigma) {
  return 3.0 / (sigma * std::sqrt(2.0 * M_PI));
}

double LdqGmmCountBound(const std::vector<double>& weights,
                        const std::vector<double>& sigmas) {
  double acc = 0.0;
  for (size_t i = 0; i < weights.size() && i < sigmas.size(); ++i) {
    acc += weights[i] * LdqGaussianCount(sigmas[i]);
  }
  return acc;
}

double EstimateLdq(const std::vector<QueryInstance>& queries,
                   const std::vector<double>& answers, size_t max_pairs,
                   uint64_t seed) {
  const size_t m = queries.size();
  if (m < 2) return 0.0;
  Rng rng(seed);
  double best = 0.0;
  auto consider = [&](size_t i, size_t j) {
    if (std::isnan(answers[i]) || std::isnan(answers[j])) return;
    double dist = 0.0;
    for (size_t k = 0; k < queries[i].q.size(); ++k) {
      dist += std::fabs(queries[i].q[k] - queries[j].q[k]);
    }
    if (dist <= 0.0) return;
    best = std::max(best, std::fabs(answers[i] - answers[j]) / dist);
  };
  const size_t all_pairs = m * (m - 1) / 2;
  if (all_pairs <= max_pairs) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) consider(i, j);
    }
  } else {
    for (size_t s = 0; s < max_pairs; ++s) {
      const size_t i = rng.Index(m);
      size_t j = rng.Index(m);
      if (j == i) j = (j + 1) % m;
      consider(i, j);
    }
  }
  return best;
}

}  // namespace theory
}  // namespace neurosketch
