#include "theory/dqd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace neurosketch {
namespace theory {

size_t RequiredGridResolution(double rho, size_t d, double eps1) {
  if (eps1 <= 0.0) return std::numeric_limits<size_t>::max();
  const double t = 3.0 * rho * static_cast<double>(d) / eps1;
  return static_cast<size_t>(std::max(1.0, std::ceil(t)));
}

size_t ConstructionUnits(double rho, size_t d, double eps1) {
  const size_t t = RequiredGridResolution(rho, d, eps1);
  if (t == std::numeric_limits<size_t>::max()) return t;
  const double k = std::pow(static_cast<double>(t + 1),
                            static_cast<double>(d));
  if (k >= static_cast<double>(std::numeric_limits<size_t>::max())) {
    return std::numeric_limits<size_t>::max();
  }
  return static_cast<size_t>(k);
}

double ApproximationErrorBound(double rho, size_t d, size_t t) {
  return 3.0 * rho * static_cast<double>(d) / static_cast<double>(t);
}

double ApproximationErrorBoundInf(double rho, size_t d, size_t t) {
  return 37.0 * rho * static_cast<double>(d) / static_cast<double>(t);
}

double VcDeviationProbability(double eps, size_t n, size_t vc_dim) {
  if (eps <= 0.0) return 1.0;
  const double vc = static_cast<double>(vc_dim);
  const double nn = static_cast<double>(n);
  // Work in log space: log(8) + vc + vc*log(32e/eps) - eps^2 n / 32.
  const double log_p = std::log(8.0) + vc +
                       vc * std::log(32.0 * M_E / eps) -
                       eps * eps * nn / 32.0;
  if (log_p >= 0.0) return 1.0;
  return std::exp(log_p);
}

double SamplingErrorProbability(double eps2, size_t n, size_t d) {
  return VcDeviationProbability(eps2, n, 2 * d);
}

double DqdFailureProbability(double eps2, size_t n, size_t d) {
  return SamplingErrorProbability(eps2, n, d);
}

double SamplingErrorForConfidence(double delta, size_t n, size_t d) {
  if (delta >= 1.0) return 0.0;
  double lo = 1e-9, hi = 1.0;
  // The tail is monotone decreasing in eps; expand hi until it is below
  // delta (the bound is vacuous above 1 only for tiny n).
  while (SamplingErrorProbability(hi, n, d) > delta && hi < 1e6) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (SamplingErrorProbability(mid, n, d) > delta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double AvgErrorProbability(double eps, double xi, size_t n, size_t d) {
  if (eps <= 0.0 || xi <= 0.0) return 1.0;
  // Lemma 3.6: 16 e^d (32e(1+ε)/(ξε))^d exp(−(ξε)²n / ((1+ε)²·32)).
  const double dd = static_cast<double>(d);
  const double nn = static_cast<double>(n);
  const double ratio = xi * eps / (1.0 + eps);
  const double log_p = std::log(16.0) + dd +
                       dd * std::log(32.0 * M_E / ratio) -
                       ratio * ratio * nn / 32.0;
  if (log_p >= 0.0) return 1.0;
  return std::exp(log_p);
}

}  // namespace theory
}  // namespace neurosketch
