#include "tensor/matrix.h"

#include <algorithm>
#include <cmath>

// Runtime-dispatched SIMD clones for the GEMM kernels: the same source
// loop is compiled per ISA (AVX-512 / AVX2 / baseline) and glibc's ifunc
// resolver picks the widest one the CPU supports. The element-wise
// accumulation order is identical in every clone and the build pins
// -ffp-contract=off, so results are bit-identical across ISAs — serving
// batches answer exactly what the scalar per-query path answers.
//
// NEUROSKETCH_NO_SIMD_CLONES disables the dispatch (plain baseline
// codegen). ThreadSanitizer builds need this: the dynamic linker runs
// ifunc resolvers while processing relocations, before libtsan's
// .preinit_array initializes its thread state, and GCC's libtsan
// segfaults on the first intercepted call from that window. Results are
// unchanged either way — every clone computes the same bits.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(NEUROSKETCH_NO_SIMD_CLONES) && !defined(__SANITIZE_THREAD__)
#define NS_TARGET_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define NS_TARGET_CLONES
#endif

namespace neurosketch {

namespace {

NS_TARGET_CLONES
void GemmKernel(const double* a, const double* b, double* o, size_t m,
                size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = o + i * n;
    for (size_t p = 0; p < k; ++p) {
      const double av = arow[p];
      if (av == 0.0) continue;
      const double* brow = b + p * n;
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

NS_TARGET_CLONES
void GemmTransAKernel(const double* a, const double* b, double* o, size_t k,
                      size_t m, size_t n) {
  for (size_t p = 0; p < k; ++p) {
    const double* arow = a + p * m;
    const double* brow = b + p * n;
    for (size_t i = 0; i < m; ++i) {
      const double av = arow[i];
      if (av == 0.0) continue;
      double* orow = o + i * n;
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

NS_TARGET_CLONES
void GemmTransBKernel(const double* a, const double* b, double* o, size_t m,
                      size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const double* arow = a + i * k;
    double* orow = o + i * n;
    for (size_t j = 0; j < n; ++j) {
      const double* brow = b + j * k;
      double acc = 0.0;
      for (size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      orow[j] = acc;
    }
  }
}

// Bias + activation epilogue of the fused kernel. Kept as per-activation
// loops (not a switch in the inner loop) so each case auto-vectorizes; the
// arithmetic matches AddRowVector followed by ApplyActivation exactly.
NS_TARGET_CLONES
void FusedEpilogue(double* yrow, const double* b, size_t n, Activation act) {
  switch (act) {
    case Activation::kIdentity:
      for (size_t j = 0; j < n; ++j) yrow[j] += b[j];
      return;
    case Activation::kRelu:
      for (size_t j = 0; j < n; ++j) {
        const double v = yrow[j] + b[j];
        yrow[j] = v > 0.0 ? v : 0.0;
      }
      return;
    case Activation::kTanh:
      for (size_t j = 0; j < n; ++j) yrow[j] = std::tanh(yrow[j] + b[j]);
      return;
    case Activation::kSigmoid:
      for (size_t j = 0; j < n; ++j) {
        yrow[j] = 1.0 / (1.0 + std::exp(-(yrow[j] + b[j])));
      }
      return;
  }
}

NS_TARGET_CLONES
void FusedDenseKernel(const double* x, size_t m, size_t k, const double* w,
                      const double* b, Activation act, double* y, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const double* xrow = x + i * k;
    double* yrow = y + i * n;
    for (size_t j = 0; j < n; ++j) yrow[j] = 0.0;
    for (size_t p = 0; p < k; ++p) {
      const double xv = xrow[p];
      if (xv == 0.0) continue;
      const double* wrow = w + p * n;
      for (size_t j = 0; j < n; ++j) yrow[j] += xv * wrow[j];
    }
    FusedEpilogue(yrow, b, n, act);
  }
}

// The f32 kernels below are explicit clones of their f64 counterparts
// rather than a shared template: GCC's target_clones attribute (the ifunc
// SIMD dispatch above) does not apply to function templates, and the ifunc
// dispatch is the point of these kernels. Keep the loop bodies in lockstep
// when editing either tier; the exhaustive Activation switches make the
// compiler flag a tier that misses a new enum value.
NS_TARGET_CLONES
void FusedEpilogueF32(float* yrow, const float* b, size_t n, Activation act) {
  switch (act) {
    case Activation::kIdentity:
      for (size_t j = 0; j < n; ++j) yrow[j] += b[j];
      return;
    case Activation::kRelu:
      for (size_t j = 0; j < n; ++j) {
        const float v = yrow[j] + b[j];
        yrow[j] = v > 0.0f ? v : 0.0f;
      }
      return;
    case Activation::kTanh:
      for (size_t j = 0; j < n; ++j) yrow[j] = std::tanh(yrow[j] + b[j]);
      return;
    case Activation::kSigmoid:
      for (size_t j = 0; j < n; ++j) {
        yrow[j] = 1.0f / (1.0f + std::exp(-(yrow[j] + b[j])));
      }
      return;
  }
}

NS_TARGET_CLONES
void FusedDenseKernelF32(const float* x, size_t m, size_t k, const float* w,
                         const float* b, Activation act, float* y, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const float* xrow = x + i * k;
    float* yrow = y + i * n;
    for (size_t j = 0; j < n; ++j) yrow[j] = 0.0f;
    for (size_t p = 0; p < k; ++p) {
      const float xv = xrow[p];
      if (xv == 0.0f) continue;
      const float* wrow = w + p * n;
      for (size_t j = 0; j < n; ++j) yrow[j] += xv * wrow[j];
    }
    FusedEpilogueF32(yrow, b, n, act);
  }
}

// Int8 tier kernels. The quantize step clamps before rounding so
// out-of-calibration-range activations saturate at +/-127; NaN compares
// false against both bounds and lands on the +127 clamp, keeping the
// output finite and deterministic. The GEMM accumulates in int32 —
// worst-case |acc| is 127*127*k, which stays far inside int32 for any
// realistic layer width — so every SIMD clone computes identical bits.
NS_TARGET_CLONES
void QuantizeI8Kernel(const float* x, size_t n, float inv_scale, int8_t* q) {
  for (size_t i = 0; i < n; ++i) {
    float v = x[i] * inv_scale;
    v = v < 127.0f ? v : 127.0f;
    v = v > -127.0f ? v : -127.0f;
    // Round half away from zero via truncating casts: deterministic across
    // ISAs, unlike nearbyint (rounding-mode dependent).
    q[i] = static_cast<int8_t>(v >= 0.0f ? static_cast<int32_t>(v + 0.5f)
                                         : static_cast<int32_t>(v - 0.5f));
  }
}

NS_TARGET_CLONES
void FusedDenseKernelI8(const int8_t* x, size_t m, size_t k, const int8_t* w,
                        const float* b, const float* deq, Activation act,
                        int32_t* acc, float* y, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    const int8_t* xrow = x + i * k;
    float* yrow = y + i * n;
    for (size_t j = 0; j < n; ++j) acc[j] = 0;
    for (size_t p = 0; p < k; ++p) {
      const int32_t xv = xrow[p];
      if (xv == 0) continue;
      const int8_t* wrow = w + p * n;
      for (size_t j = 0; j < n; ++j) {
        acc[j] += xv * static_cast<int32_t>(wrow[j]);
      }
    }
    for (size_t j = 0; j < n; ++j) {
      yrow[j] = static_cast<float>(acc[j]) * deq[j];
    }
    FusedEpilogueF32(yrow, b, n, act);
  }
}

}  // namespace

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    std::copy(rows[r].begin(), rows[r].end(), m.row(r));
  }
  return m;
}

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Apply(const std::function<double(double)>& fn) {
  for (double& x : data_) x = fn(x);
}

void Matrix::Axpy(double alpha, const Matrix& other) {
  assert(SameShape(other));
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

void Matrix::Scale(double alpha) {
  for (double& x : data_) x *= alpha;
}

double Matrix::SquaredNorm() const {
  double acc = 0.0;
  for (double x : data_) acc += x * x;
  return acc;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n, 0.0);
  GemmKernel(a.data(), b.data(), out->data(), m, k, n);
}

void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.rows() == b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  *out = Matrix(m, n, 0.0);
  GemmTransAKernel(a.data(), b.data(), out->data(), k, m, n);
}

void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out) {
  assert(a.cols() == b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  *out = Matrix(m, n, 0.0);
  GemmTransBKernel(a.data(), b.data(), out->data(), m, k, n);
}

void AddRowVector(Matrix* m, const Matrix& rowvec) {
  assert(rowvec.rows() == 1 && rowvec.cols() == m->cols());
  for (size_t r = 0; r < m->rows(); ++r) {
    double* mr = m->row(r);
    const double* v = rowvec.row(0);
    for (size_t c = 0; c < m->cols(); ++c) mr[c] += v[c];
  }
}

void FusedDenseForward(const double* x, size_t m, size_t k, const double* w,
                       const double* b, Activation act, double* y, size_t n) {
  FusedDenseKernel(x, m, k, w, b, act, y, n);
}

void FusedDenseForwardF32(const float* x, size_t m, size_t k, const float* w,
                          const float* b, Activation act, float* y, size_t n) {
  FusedDenseKernelF32(x, m, k, w, b, act, y, n);
}

void QuantizeSymmetricI8(const float* x, size_t n, float inv_scale,
                         int8_t* q) {
  QuantizeI8Kernel(x, n, inv_scale, q);
}

void FusedDenseForwardI8(const int8_t* x, size_t m, size_t k,
                         const int8_t* w, const float* b, const float* deq,
                         Activation act, int32_t* acc, float* y, size_t n) {
  FusedDenseKernelI8(x, m, k, w, b, deq, act, acc, y, n);
}

void ColumnSums(const Matrix& m, Matrix* out) {
  *out = Matrix(1, m.cols(), 0.0);
  double* o = out->row(0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* mr = m.row(r);
    for (size_t c = 0; c < m.cols(); ++c) o[c] += mr[c];
  }
}

}  // namespace neurosketch
