// Dense row-major double matrix with the small set of kernels the neural
// network substrate needs (GEMM, transpose-GEMM variants, elementwise ops).
// Models in this system are tiny (hundreds to low-thousands of parameters),
// so clarity and determinism are preferred over SIMD cleverness; the inner
// GEMM loop is still written cache-friendly (ikj order).
#ifndef NEUROSKETCH_TENSOR_MATRIX_H_
#define NEUROSKETCH_TENSOR_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace neurosketch {

/// \brief Elementwise nonlinearity applied by the dense kernels. Lives at
/// tensor level (not nn/) so the fused forward kernel below can dispatch on
/// it without a std::function indirection; nn/activation.h aliases it into
/// namespace nn and adds training-side helpers (gradients, names).
enum class Activation {
  kIdentity,
  kRelu,
  kTanh,
  kSigmoid,
};

/// \brief Row-major dense matrix of double.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row(size_t r) { return data_.data() + r * cols_; }
  const double* row(size_t r) const { return data_.data() + r * cols_; }

  void Fill(double v);
  void Zero() { Fill(0.0); }

  /// \brief In-place elementwise transform.
  void Apply(const std::function<double(double)>& fn);

  /// \brief this += alpha * other (shapes must match).
  void Axpy(double alpha, const Matrix& other);

  /// \brief this *= alpha.
  void Scale(double alpha);

  /// \brief Frobenius-norm squared.
  double SquaredNorm() const;

  Matrix Transposed() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

/// \brief out = a * b. Shapes: (m,k) x (k,n) -> (m,n). out is resized.
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// \brief out = a^T * b. Shapes: (k,m)^T x (k,n) -> (m,n).
void GemmTransA(const Matrix& a, const Matrix& b, Matrix* out);

/// \brief out = a * b^T. Shapes: (m,k) x (n,k)^T -> (m,n).
void GemmTransB(const Matrix& a, const Matrix& b, Matrix* out);

/// \brief Add a row vector (1,n) to every row of m (batch bias add).
void AddRowVector(Matrix* m, const Matrix& row);

/// \brief out(0,j) = sum_i m(i,j): column sums as a (1,n) matrix.
void ColumnSums(const Matrix& m, Matrix* out);

/// \brief Fused dense-layer forward on raw row-major buffers:
/// y = act(x * w + b), with x (m,k), w (k,n), b (n), y (m,n). Performs no
/// heap allocation — callers own every buffer — and uses the exact same
/// accumulation order as Gemm + AddRowVector + elementwise activation
/// (zero-initialized ikj accumulation, bias added last), so results are
/// bit-identical to the unfused three-pass pipeline. y must not alias x.
void FusedDenseForward(const double* x, size_t m, size_t k, const double* w,
                       const double* b, Activation act, double* y, size_t n);

/// \brief Single-precision clone of FusedDenseForward for the opt-in f32
/// compiled-plan tier: half the memory traffic and twice the SIMD lanes of
/// the f64 kernel, same zero-allocation contract and same accumulation
/// order (in float). Not bit-comparable to the f64 kernel by construction;
/// the caller (core/NeuroSketch) validates the f32 tier against the f64
/// reference and falls back when the divergence exceeds its error bound.
void FusedDenseForwardF32(const float* x, size_t m, size_t k, const float* w,
                          const float* b, Activation act, float* y, size_t n);

/// \brief Symmetric int8 quantization of a float activation row:
/// q[i] = clamp(round(x[i] * inv_scale), -127, 127), rounding half away
/// from zero. inv_scale is 127 / calibrated-absmax (0 for a zero-range
/// layer, which quantizes everything to 0). Values beyond the calibrated
/// range saturate at +/-127 — out-of-range serve-time activations clamp
/// instead of wrapping. Deterministic across ISAs (elementwise, no
/// rounding-mode dependence).
void QuantizeSymmetricI8(const float* x, size_t n, float inv_scale,
                         int8_t* q);

/// \brief Quantized clone of the fused dense forward for the opt-in int8
/// compiled-plan tier: int8 inputs x (m,k) against int8 weights w (k,n),
/// accumulated exactly in int32 (integer accumulation is associative, so
/// results are bit-identical across SIMD widths by construction), then
/// requantized to f32 per output unit — y[j] = act(acc[j] * deq[j] + b[j])
/// — where deq[j] folds the activation scale and column j's weight scale
/// into one multiplier. `acc` is caller-owned int32 scratch of n (the
/// zero-allocation contract: every buffer is owned by the caller). The
/// caller (core/NeuroSketch) validates the int8 tier against the f64
/// reference and falls back when divergence exceeds its error bound.
void FusedDenseForwardI8(const int8_t* x, size_t m, size_t k,
                         const int8_t* w, const float* b, const float* deq,
                         Activation act, int32_t* acc, float* y, size_t n);

}  // namespace neurosketch

#endif  // NEUROSKETCH_TENSOR_MATRIX_H_
