#include "core/partitioner.h"

#include <limits>

namespace neurosketch {

namespace {

using Node = QuerySpaceKdTree::Node;

/// Internal nodes whose two children are both leaves.
void CollectMergeableParents(Node* node, std::vector<Node*>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->left->is_leaf() && node->right->is_leaf()) out->push_back(node);
  CollectMergeableParents(node->left.get(), out);
  CollectMergeableParents(node->right.get(), out);
}

}  // namespace

PartitionResult PartitionQuerySpace(const std::vector<QueryInstance>& queries,
                                    const std::vector<double>& answers,
                                    const PartitionConfig& config) {
  PartitionResult result;
  result.tree = QuerySpaceKdTree::Build(queries, config.tree_height);

  // Alg. 3 merge loop.
  while (result.tree.NumLeaves() > config.target_leaves) {
    std::vector<Node*> leaves = result.tree.Leaves();
    // Line 3: AQC per leaf, over the queries routed to it.
    for (Node* leaf : leaves) {
      leaf->cached_aqc = ComputeAqc(queries, answers, leaf->query_ids,
                                    config.aqc);
    }
    // Line 4-5: mark the unmarked leaf with the smallest AQC.
    Node* best = nullptr;
    for (Node* leaf : leaves) {
      if (leaf->marked) continue;
      if (best == nullptr || leaf->cached_aqc < best->cached_aqc) best = leaf;
    }
    if (best != nullptr) best->marked = true;

    // Lines 6-8: merge sibling leaf pairs that are both marked.
    std::vector<Node*> parents;
    CollectMergeableParents(result.tree.root(), &parents);
    bool merged_any = false;
    for (Node* parent : parents) {
      if (parent->left->marked && parent->right->marked) {
        Status st = result.tree.MergeChildren(parent);
        (void)st;  // Preconditions guaranteed by CollectMergeableParents.
        merged_any = true;
        if (result.tree.NumLeaves() <= config.target_leaves) break;
      }
    }
    // Safety: if every leaf is marked and nothing merged, the tree cannot
    // shrink further (single leaf); stop.
    if (best == nullptr && !merged_any) break;
  }

  result.tree.AssignLeafIds();
  std::vector<Node*> leaves = result.tree.Leaves();
  result.leaf_aqc.assign(leaves.size(), 0.0);
  for (Node* leaf : leaves) {
    result.leaf_aqc[leaf->leaf_id] =
        ComputeAqc(queries, answers, leaf->query_ids, config.aqc);
  }
  return result;
}

}  // namespace neurosketch
