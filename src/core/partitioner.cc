#include "core/partitioner.h"

#include <limits>

#include "util/thread_pool.h"

namespace neurosketch {

namespace {

using Node = QuerySpaceKdTree::Node;

/// Internal nodes whose two children are both leaves.
void CollectMergeableParents(Node* node, std::vector<Node*>* out) {
  if (node == nullptr || node->is_leaf()) return;
  if (node->left->is_leaf() && node->right->is_leaf()) out->push_back(node);
  CollectMergeableParents(node->left.get(), out);
  CollectMergeableParents(node->right.get(), out);
}

}  // namespace

PartitionResult PartitionQuerySpace(const std::vector<QueryInstance>& queries,
                                    const std::vector<double>& answers,
                                    const PartitionConfig& config) {
  PartitionResult result;
  result.tree =
      QuerySpaceKdTree::Build(queries, config.tree_height, config.num_threads);

  // Alg. 3 merge loop.
  while (result.tree.NumLeaves() > config.target_leaves) {
    std::vector<Node*> leaves = result.tree.Leaves();
    // Line 3: AQC per leaf, over the queries routed to it. A leaf's AQC
    // is a pure function of its query set, so only leaves whose set
    // changed since the last round (the freshly merged parents, which
    // MergeChildren invalidates) need computing — the rest reuse their
    // cached value, identical by purity. The stale leaves are independent
    // (each writes only its own cached_aqc, with its own seeded
    // pair-sampling RNG), so the pass parallelizes bit-identically.
    std::vector<Node*> stale;
    stale.reserve(leaves.size());
    for (Node* leaf : leaves) {
      if (!leaf->aqc_valid) stale.push_back(leaf);
    }
    ThreadPool::Shared().ParallelFor(
        stale.size(), config.num_threads, [&](size_t i) {
          stale[i]->cached_aqc =
              ComputeAqc(queries, answers, stale[i]->query_ids, config.aqc);
          stale[i]->aqc_valid = true;
        });
    // Line 4-5: mark the unmarked leaf with the smallest AQC.
    Node* best = nullptr;
    for (Node* leaf : leaves) {
      if (leaf->marked) continue;
      if (best == nullptr || leaf->cached_aqc < best->cached_aqc) best = leaf;
    }
    if (best != nullptr) best->marked = true;

    // Lines 6-8: merge sibling leaf pairs that are both marked.
    std::vector<Node*> parents;
    CollectMergeableParents(result.tree.root(), &parents);
    bool merged_any = false;
    for (Node* parent : parents) {
      if (parent->left->marked && parent->right->marked) {
        Status st = result.tree.MergeChildren(parent);
        (void)st;  // Preconditions guaranteed by CollectMergeableParents.
        merged_any = true;
        if (result.tree.NumLeaves() <= config.target_leaves) break;
      }
    }
    // Safety: if every leaf is marked and nothing merged, the tree cannot
    // shrink further (single leaf); stop.
    if (best == nullptr && !merged_any) break;
  }

  result.tree.AssignLeafIds();
  std::vector<Node*> leaves = result.tree.Leaves();
  result.leaf_aqc.assign(leaves.size(), 0.0);
  // Same purity argument: a leaf that still carries a valid cache (from
  // the merge loop) reuses it; leaves never touched by merging (e.g. when
  // no merge round ran) compute here, in parallel.
  ThreadPool::Shared().ParallelFor(
      leaves.size(), config.num_threads, [&](size_t i) {
        if (!leaves[i]->aqc_valid) {
          leaves[i]->cached_aqc =
              ComputeAqc(queries, answers, leaves[i]->query_ids, config.aqc);
          leaves[i]->aqc_valid = true;
        }
        result.leaf_aqc[leaves[i]->leaf_id] = leaves[i]->cached_aqc;
      });
  return result;
}

}  // namespace neurosketch
