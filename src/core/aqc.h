// Average Query function Change (AQC), the practical proxy for the LDQ
// complexity measure (paper Sec. 3.1.4):
//   AQC = (1 / C(|Q|,2)) Σ_{q,q'∈Q} |f(q) - f(q')| / ||q - q'||_1.
// Used by the merge step (Alg. 3) and by the DQD advisor. The norm is the
// 1-norm, matching the paper's Lipschitz definition. Pair enumeration is
// capped by sampling for large query sets.
#ifndef NEUROSKETCH_CORE_AQC_H_
#define NEUROSKETCH_CORE_AQC_H_

#include <cstdint>
#include <vector>

#include "query/query.h"

namespace neurosketch {

struct AqcOptions {
  /// All pairs are used when C(|Q|,2) <= max_pairs; otherwise max_pairs
  /// random pairs are sampled.
  size_t max_pairs = 20000;
  uint64_t seed = 3;
};

/// \brief AQC over the queries selected by `ids` (indices into `queries`
/// and `answers`). Pairs with NaN answers or zero distance are skipped.
/// Returns 0 when fewer than 2 usable queries exist.
double ComputeAqc(const std::vector<QueryInstance>& queries,
                  const std::vector<double>& answers,
                  const std::vector<size_t>& ids, const AqcOptions& options);

/// \brief AQC over the whole query set.
double ComputeAqcAll(const std::vector<QueryInstance>& queries,
                     const std::vector<double>& answers,
                     const AqcOptions& options);

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_AQC_H_
