#include "core/advisor.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace neurosketch {

double Advisor::EstimateNormalizedAqc(
    const std::vector<QueryInstance>& queries,
    const std::vector<double>& answers, const AqcOptions& options) {
  // Scale answers to [0,1] (Table 4: "AQC of the functions after they are
  // scaled to [0,1]").
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (double a : answers) {
    if (std::isnan(a)) continue;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  if (!(hi > lo)) return 0.0;
  std::vector<double> scaled(answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    scaled[i] = std::isnan(answers[i])
                    ? answers[i]
                    : (answers[i] - lo) / (hi - lo);
  }
  return ComputeAqcAll(queries, scaled, options);
}

bool Advisor::ShouldUseSketch(const QueryInstance& q, size_t data_dim) const {
  // Axis-range encoding: q = (c..., r...).
  if (q.dim() != 2 * data_dim) return true;  // general predicate: no rule
  for (size_t i = 0; i < data_dim; ++i) {
    const double c = q[i], r = q[data_dim + i];
    if (c == 0.0 && r >= 1.0) continue;  // inactive
    if (r < config_.min_range_frac) return false;
  }
  return true;
}

HybridExecutor::HybridExecutor(const NeuroSketch* sketch,
                               const ExactEngine* engine,
                               QueryFunctionSpec spec, Advisor advisor)
    : sketch_(sketch),
      engine_(engine),
      spec_(std::move(spec)),
      advisor_(advisor),
      data_dim_(engine->num_columns()) {}

HybridExecutor::Answer HybridExecutor::Execute(const QueryInstance& q) const {
  Answer out;
  if (sketch_ != nullptr && advisor_.ShouldUseSketch(q, data_dim_)) {
    out.value = sketch_->Answer(q);
    out.used_sketch = true;
    if (!std::isnan(out.value)) return out;
  }
  out.value = engine_->Answer(spec_, q);
  out.used_sketch = false;
  return out;
}

}  // namespace neurosketch
