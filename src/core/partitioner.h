// Query-space partitioning: Alg. 2 (kd-tree build) followed by Alg. 3
// (AQC-guided merging down to s leaves). The merge loop repeatedly marks
// the unmarked leaf with the smallest AQC and collapses sibling leaf pairs
// that are both marked, so model capacity concentrates on the parts of the
// query space estimated to be hardest.
#ifndef NEUROSKETCH_CORE_PARTITIONER_H_
#define NEUROSKETCH_CORE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "core/aqc.h"
#include "index/kdtree.h"
#include "query/query.h"

namespace neurosketch {

struct PartitionConfig {
  /// kd-tree height h (2^h initial partitions). Paper default: 4.
  size_t tree_height = 4;
  /// Desired leaf count s after merging. Paper default: 8. Values >= 2^h
  /// disable merging.
  size_t target_leaves = 8;
  AqcOptions aqc;
  /// Concurrency for the kd-tree build and the per-leaf AQC passes of the
  /// merge loop, on the shared pool (0 = hardware concurrency, 1 =
  /// sequential). The partition is bit-identical for every setting: tree
  /// splits are pure functions of each node's query set, and each leaf's
  /// AQC is computed independently with its own seeded RNG.
  size_t num_threads = 1;
};

struct PartitionResult {
  QuerySpaceKdTree tree;
  /// AQC of each final leaf, indexed by leaf_id.
  std::vector<double> leaf_aqc;
};

/// \brief Build the kd-tree on the training queries and merge leaves until
/// `target_leaves` remain (Alg. 2 + Alg. 3). `answers[i]` is f_D(queries[i])
/// (NaN allowed; such queries are ignored by AQC).
PartitionResult PartitionQuerySpace(const std::vector<QueryInstance>& queries,
                                    const std::vector<double>& answers,
                                    const PartitionConfig& config);

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_PARTITIONER_H_
