#include "core/aqc.h"

#include <cmath>

#include "util/random.h"

namespace neurosketch {

namespace {
double L1Distance(const QueryInstance& a, const QueryInstance& b) {
  double acc = 0.0;
  for (size_t i = 0; i < a.q.size(); ++i) acc += std::fabs(a.q[i] - b.q[i]);
  return acc;
}
}  // namespace

double ComputeAqc(const std::vector<QueryInstance>& queries,
                  const std::vector<double>& answers,
                  const std::vector<size_t>& ids, const AqcOptions& options) {
  const size_t m = ids.size();
  if (m < 2) return 0.0;
  double acc = 0.0;
  size_t used = 0;

  auto add_pair = [&](size_t i, size_t j) {
    const double fi = answers[ids[i]];
    const double fj = answers[ids[j]];
    if (std::isnan(fi) || std::isnan(fj)) return;
    const double dist = L1Distance(queries[ids[i]], queries[ids[j]]);
    if (dist <= 0.0) return;
    acc += std::fabs(fi - fj) / dist;
    ++used;
  };

  const size_t all_pairs = m * (m - 1) / 2;
  if (all_pairs <= options.max_pairs) {
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) add_pair(i, j);
    }
  } else {
    Rng rng(options.seed);
    for (size_t s = 0; s < options.max_pairs; ++s) {
      const size_t i = rng.Index(m);
      size_t j = rng.Index(m);
      if (j == i) j = (j + 1) % m;
      add_pair(i, j);
    }
  }
  return used > 0 ? acc / static_cast<double>(used) : 0.0;
}

double ComputeAqcAll(const std::vector<QueryInstance>& queries,
                     const std::vector<double>& answers,
                     const AqcOptions& options) {
  std::vector<size_t> ids(queries.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  return ComputeAqc(queries, answers, ids, options);
}

}  // namespace neurosketch
