#include "core/drift.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/stats.h"

namespace neurosketch {

std::vector<int> DriftReport::StaleLeaves() const {
  std::vector<int> stale;
  for (const LeafDrift& ld : per_leaf) {
    if (ld.stale) stale.push_back(ld.leaf_id);
  }
  if (stale.empty() && retrain_recommended) {
    // Overall drift is conclusive but attribution is too thin to flag any
    // single leaf — fall back to the worst measured leaf so the caller
    // always has a non-empty retrain set to act on.
    const LeafDrift* worst = nullptr;
    for (const LeafDrift& ld : per_leaf) {
      if (worst == nullptr || ld.normalized_mae > worst->normalized_mae) {
        worst = &ld;
      }
    }
    if (worst != nullptr) stale.push_back(worst->leaf_id);
  }
  return stale;
}

DriftMonitor::DriftMonitor(QueryFunctionSpec spec,
                           std::vector<QueryInstance> probes,
                           DriftPolicy policy)
    : spec_(std::move(spec)), probes_(std::move(probes)), policy_(policy) {}

DriftReport DriftMonitor::Check(const NeuroSketch& sketch,
                                const ExactEngine& engine) const {
  std::vector<double> truth(probes_.size());
  for (size_t i = 0; i < probes_.size(); ++i) {
    truth[i] = engine.Answer(spec_, probes_[i]);
  }
  return CheckAgainst(sketch, truth);
}

DriftReport DriftMonitor::CheckAgainst(const NeuroSketch& sketch,
                                       const std::vector<double>& truth) const {
  DriftReport report;
  struct LeafAcc {
    std::vector<double> truth, pred;
  };
  std::map<int, LeafAcc> by_leaf;
  std::vector<double> all_truth, all_pred;
  const size_t n = std::min(probes_.size(), truth.size());
  for (size_t i = 0; i < n; ++i) {
    const double exact = truth[i];
    if (std::isnan(exact)) {
      ++report.probes_skipped;
      continue;
    }
    const double approx = sketch.Answer(probes_[i]);
    if (std::isnan(approx)) {
      ++report.probes_skipped;
      continue;
    }
    all_truth.push_back(exact);
    all_pred.push_back(approx);
    // Attribute the probe to the leaf that answered it; Answer succeeded,
    // so the route cannot fail here.
    const auto* leaf = sketch.tree().Route(probes_[i]);
    if (leaf != nullptr && leaf->leaf_id >= 0) {
      LeafAcc& acc = by_leaf[leaf->leaf_id];
      acc.truth.push_back(exact);
      acc.pred.push_back(approx);
    }
  }
  report.probes_used = all_truth.size();
  report.normalized_mae = stats::NormalizedMae(all_truth, all_pred);
  report.conclusive = report.probes_used >= policy_.min_probes;
  report.retrain_recommended =
      report.conclusive && report.normalized_mae > policy_.max_normalized_mae;
  report.per_leaf.reserve(by_leaf.size());
  for (auto& [leaf_id, acc] : by_leaf) {
    LeafDrift ld;
    ld.leaf_id = leaf_id;
    ld.probes = acc.truth.size();
    ld.normalized_mae = stats::NormalizedMae(acc.truth, acc.pred);
    ld.stale = ld.probes >= policy_.min_leaf_probes &&
               ld.normalized_mae > policy_.max_normalized_mae;
    report.per_leaf.push_back(ld);
  }
  return report;
}

}  // namespace neurosketch
