#include "core/drift.h"

#include <cmath>

#include "util/stats.h"

namespace neurosketch {

DriftMonitor::DriftMonitor(QueryFunctionSpec spec,
                           std::vector<QueryInstance> probes,
                           DriftPolicy policy)
    : spec_(std::move(spec)), probes_(std::move(probes)), policy_(policy) {}

DriftReport DriftMonitor::Check(const NeuroSketch& sketch,
                                const ExactEngine& engine) const {
  DriftReport report;
  std::vector<double> truth, pred;
  for (const auto& q : probes_) {
    const double exact = engine.Answer(spec_, q);
    if (std::isnan(exact)) continue;
    const double approx = sketch.Answer(q);
    if (std::isnan(approx)) continue;
    truth.push_back(exact);
    pred.push_back(approx);
  }
  report.probes_used = truth.size();
  report.normalized_mae = stats::NormalizedMae(truth, pred);
  report.retrain_recommended =
      report.probes_used >= policy_.min_probes &&
      report.normalized_mae > policy_.max_normalized_mae;
  return report;
}

}  // namespace neurosketch
