// Dynamic-data support — the paper's Sec. 7 sketch: "frequently test
// NeuroSketch, and re-train the neural networks whose accuracy fall below
// a certain threshold." DriftMonitor holds a probe query set, periodically
// re-answers it against the (possibly updated) database, and reports the
// sketch's current normalized error; RetrainPolicy turns that into a
// build/keep decision.
#ifndef NEUROSKETCH_CORE_DRIFT_H_
#define NEUROSKETCH_CORE_DRIFT_H_

#include <vector>

#include "core/neurosketch.h"
#include "query/engine.h"
#include "query/query.h"

namespace neurosketch {

struct DriftReport {
  double normalized_mae = 0.0;
  size_t probes_used = 0;
  bool retrain_recommended = false;
};

struct DriftPolicy {
  /// Recommend retraining when the probe error exceeds this.
  double max_normalized_mae = 0.1;
  /// Minimum probes with defined answers for a meaningful report.
  size_t min_probes = 10;
};

/// \brief Accuracy watchdog for a deployed sketch.
class DriftMonitor {
 public:
  DriftMonitor(QueryFunctionSpec spec, std::vector<QueryInstance> probes,
               DriftPolicy policy = {});

  /// \brief Re-answer the probes on `engine` (reflecting current data) and
  /// compare with the sketch. The engine scan is the "frequent test" cost.
  DriftReport Check(const NeuroSketch& sketch, const ExactEngine& engine) const;

  const std::vector<QueryInstance>& probes() const { return probes_; }
  const DriftPolicy& policy() const { return policy_; }

 private:
  QueryFunctionSpec spec_;
  std::vector<QueryInstance> probes_;
  DriftPolicy policy_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_DRIFT_H_
