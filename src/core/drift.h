// Dynamic-data support — the paper's Sec. 7 sketch: "frequently test
// NeuroSketch, and re-train the neural networks whose accuracy fall below
// a certain threshold." DriftMonitor holds a probe query set, periodically
// re-answers it against the (possibly updated) database, and reports the
// sketch's current normalized error; DriftPolicy turns that into a
// build/keep decision. Reports attribute drift per kd-tree leaf (each
// probe routes through the sketch's own tree), so the refresh path can
// retrain only the leaves whose region actually drifted.
#ifndef NEUROSKETCH_CORE_DRIFT_H_
#define NEUROSKETCH_CORE_DRIFT_H_

#include <vector>

#include "core/neurosketch.h"
#include "query/engine.h"
#include "query/query.h"

namespace neurosketch {

/// \brief Drift attribution for one kd-tree leaf: the normalized error of
/// the probes that routed to it.
struct LeafDrift {
  int leaf_id = -1;
  size_t probes = 0;
  double normalized_mae = 0.0;
  /// True when this leaf's own probe error exceeds the policy bound with
  /// at least `DriftPolicy::min_leaf_probes` contributing probes.
  bool stale = false;
};

struct DriftReport {
  double normalized_mae = 0.0;
  size_t probes_used = 0;
  /// Probes that contributed nothing: the exact engine answered NaN
  /// (undefined aggregate on current data) or the sketch could not route/
  /// answer the instance. Before this field existed, skipped probes were
  /// silently dropped — a mostly-NaN probe set could report
  /// retrain_recommended=false while measuring almost nothing.
  size_t probes_skipped = 0;
  /// True when probes_used reached DriftPolicy::min_probes; a report with
  /// conclusive=false says "could not measure", not "no drift".
  bool conclusive = false;
  bool retrain_recommended = false;
  /// One row per leaf that received at least one usable probe, ascending
  /// by leaf_id.
  std::vector<LeafDrift> per_leaf;

  /// \brief Leaf ids flagged stale, ascending — the retrain set for
  /// NeuroSketch::RetrainLeaves. When drift is conclusive overall but no
  /// individual leaf cleared min_leaf_probes, the worst measured leaf is
  /// returned so a recommended retrain is never an empty set.
  std::vector<int> StaleLeaves() const;
};

struct DriftPolicy {
  /// Recommend retraining when the probe error exceeds this.
  double max_normalized_mae = 0.1;
  /// Minimum probes with defined answers for a meaningful report.
  size_t min_probes = 10;
  /// Minimum usable probes routed to a leaf before that leaf can be
  /// flagged stale on its own error (below it, a single noisy probe
  /// would mark the leaf).
  size_t min_leaf_probes = 3;
};

/// \brief Accuracy watchdog for a deployed sketch.
class DriftMonitor {
 public:
  DriftMonitor(QueryFunctionSpec spec, std::vector<QueryInstance> probes,
               DriftPolicy policy = {});

  /// \brief Re-answer the probes on `engine` (reflecting current data) and
  /// compare with the sketch. The engine scan is the "frequent test" cost.
  /// Routes every usable probe through the sketch's kd-tree to fill the
  /// per-leaf attribution rows.
  DriftReport Check(const NeuroSketch& sketch, const ExactEngine& engine) const;

  /// \brief Check against precomputed exact answers (`truth[i]` answers
  /// `probes()[i]` on current data) — lets the refresh path reuse one
  /// engine batch for both the drift probe and retrain-target generation.
  DriftReport CheckAgainst(const NeuroSketch& sketch,
                           const std::vector<double>& truth) const;

  const QueryFunctionSpec& spec() const { return spec_; }
  const std::vector<QueryInstance>& probes() const { return probes_; }
  const DriftPolicy& policy() const { return policy_; }

 private:
  QueryFunctionSpec spec_;
  std::vector<QueryInstance> probes_;
  DriftPolicy policy_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_DRIFT_H_
