// DQD advisor (paper Sec. 4.3, "NeuroSketch and DQD in Practice"): the
// query-optimizer hook that decides (a) during maintenance, whether a
// query function is easy enough (small AQC) to build a NeuroSketch for,
// and (b) on the fly, whether a specific query instance should go to the
// sketch (large ranges) or fall back to the exact engine (small ranges,
// where sampling error dominates — Lemma 3.6).
#ifndef NEUROSKETCH_CORE_ADVISOR_H_
#define NEUROSKETCH_CORE_ADVISOR_H_

#include <vector>

#include "core/aqc.h"
#include "core/neurosketch.h"
#include "query/engine.h"
#include "query/query.h"

namespace neurosketch {

struct AdvisorConfig {
  /// Build a sketch only when the (normalized) AQC of the query function
  /// is below this; larger AQC means the function is too hard to
  /// approximate (Sec. 5.5: "the query optimizer may build NeuroSketches
  /// for query functions with smaller AQC").
  double max_buildable_aqc = 5.0;
  /// Route a query to the sketch only when every active range width is at
  /// least this fraction of the domain (Fig. 7: error grows for ranges
  /// below ~3%).
  double min_range_frac = 0.03;
};

/// \brief Decision helper for integrating NeuroSketch into a query engine.
class Advisor {
 public:
  explicit Advisor(AdvisorConfig config = {}) : config_(config) {}

  /// \brief Normalized AQC of a query function from a sampled training
  /// set: AQC of answers scaled to [0,1] so the threshold is comparable
  /// across functions (Table 4's "Norm. AQC").
  static double EstimateNormalizedAqc(const std::vector<QueryInstance>& queries,
                                      const std::vector<double>& answers,
                                      const AqcOptions& options = {});

  /// \brief Maintenance-time decision.
  bool ShouldBuild(double normalized_aqc) const {
    return normalized_aqc <= config_.max_buildable_aqc;
  }

  /// \brief Query-time decision for axis-range queries: true when all
  /// active ranges are wide enough for the sketch's error regime.
  bool ShouldUseSketch(const QueryInstance& q, size_t data_dim) const;

  const AdvisorConfig& config() const { return config_; }

 private:
  AdvisorConfig config_;
};

/// \brief Hybrid executor: a NeuroSketch with an exact-engine fallback,
/// dispatched per query by the advisor.
class HybridExecutor {
 public:
  HybridExecutor(const NeuroSketch* sketch, const ExactEngine* engine,
                 QueryFunctionSpec spec, Advisor advisor);

  struct Answer {
    double value = 0.0;
    bool used_sketch = false;
  };
  Answer Execute(const QueryInstance& q) const;

 private:
  const NeuroSketch* sketch_;
  const ExactEngine* engine_;
  QueryFunctionSpec spec_;
  Advisor advisor_;
  size_t data_dim_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_ADVISOR_H_
