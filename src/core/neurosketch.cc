#include "core/neurosketch.h"

#include <cmath>
#include <fstream>

#include "nn/serialize.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace neurosketch {

Result<NeuroSketch> NeuroSketch::Train(
    const std::vector<QueryInstance>& queries,
    const std::vector<double>& answers, const NeuroSketchConfig& config) {
  if (queries.size() != answers.size()) {
    return Status::InvalidArgument("queries/answers size mismatch");
  }
  // Drop undefined answers (e.g. AVG over an empty range).
  std::vector<QueryInstance> q_ok;
  std::vector<double> a_ok;
  q_ok.reserve(queries.size());
  a_ok.reserve(answers.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::isnan(answers[i])) continue;
    q_ok.push_back(queries[i]);
    a_ok.push_back(answers[i]);
  }
  if (q_ok.size() < 2) {
    return Status::InvalidArgument("need at least 2 defined training answers");
  }
  const size_t qdim = q_ok[0].dim();
  for (const auto& q : q_ok) {
    if (q.dim() != qdim) {
      return Status::InvalidArgument("inconsistent query dimensionality");
    }
  }

  NeuroSketch sketch;
  sketch.stats_.training_queries = q_ok.size();

  Timer part_timer;
  PartitionConfig pc;
  pc.tree_height = config.tree_height;
  pc.target_leaves = config.target_partitions;
  pc.aqc = config.aqc;
  PartitionResult partition = PartitionQuerySpace(q_ok, a_ok, pc);
  sketch.tree_ = std::move(partition.tree);
  sketch.stats_.leaf_aqc = std::move(partition.leaf_aqc);
  sketch.stats_.partition_seconds = part_timer.ElapsedSeconds();

  Timer train_timer;
  auto leaves = sketch.tree_.Leaves();
  sketch.stats_.num_partitions = leaves.size();
  sketch.models_.resize(leaves.size());
  sketch.plans_.resize(leaves.size());
  sketch.target_mean_.assign(leaves.size(), 0.0);
  sketch.target_scale_.assign(leaves.size(), 1.0);

  // Leaf models are independent: each derives its init and shuffle seeds
  // from its leaf id alone and writes only its own slots, so training them
  // concurrently on the shared pool reproduces the sequential build
  // bit-for-bit regardless of thread count or completion order.
  auto train_leaf = [&](size_t li) {
    const auto* leaf = leaves[li];
    const int id = leaf->leaf_id;
    const auto& ids = leaf->query_ids;
    nn::Mlp& model = sketch.models_[id];
    model = nn::Mlp(nn::MlpConfig::Paper(qdim, config.n_layers, config.l_first,
                                         config.l_rest),
                    config.seed + id);
    if (!ids.empty()) {
      // Per-leaf target standardization keeps the MSE well-scaled across
      // query functions with very different answer magnitudes.
      std::vector<double> targets;
      targets.reserve(ids.size());
      for (size_t i : ids) targets.push_back(a_ok[i]);
      const double mean = stats::Mean(targets);
      double scale = stats::Stddev(targets);
      if (scale <= 1e-12) scale = 1.0;
      sketch.target_mean_[id] = mean;
      sketch.target_scale_[id] = scale;

      Matrix inputs(ids.size(), qdim);
      Matrix outputs(ids.size(), 1);
      for (size_t i = 0; i < ids.size(); ++i) {
        const auto& q = q_ok[ids[i]];
        for (size_t jj = 0; jj < qdim; ++jj) inputs(i, jj) = q.q[jj];
        outputs(i, 0) = (a_ok[ids[i]] - mean) / scale;
      }
      nn::TrainConfig tc = config.train;
      tc.seed = config.train.seed + static_cast<uint64_t>(id) * 1000003ULL;
      nn::TrainRegressor(&model, inputs, outputs, tc);
    }
    // An untrained (empty-leaf) model still gets a plan: it predicts the
    // initialization's output, matching the previous behavior.
    sketch.plans_[id] = nn::CompiledMlp::FromMlp(model);
  };
  ThreadPool::Shared().ParallelFor(leaves.size(), config.train_threads,
                                   train_leaf);
  sketch.stats_.train_seconds = train_timer.ElapsedSeconds();
  return sketch;
}

Result<NeuroSketch> NeuroSketch::TrainFromEngine(
    const ExactEngine& engine, const QueryFunctionSpec& spec,
    WorkloadGenerator* workload, size_t num_train,
    const NeuroSketchConfig& config) {
  std::vector<QueryInstance> queries =
      workload->GenerateMany(num_train, &engine, &spec);
  std::vector<double> answers = engine.AnswerBatch(spec, queries);
  return Train(queries, answers, config);
}

double NeuroSketch::Answer(const QueryInstance& q) const {
  const auto* leaf = tree_.Route(q);
  if (leaf == nullptr || leaf->leaf_id < 0 ||
      static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
    return std::nan("");
  }
  const int id = leaf->leaf_id;
  const double raw =
      plans_[id].PredictOne(q.q.data(), &nn::Workspace::ThreadLocal());
  return raw * target_scale_[id] + target_mean_[id];
}

double NeuroSketch::AnswerScalar(const QueryInstance& q) const {
  const auto* leaf = tree_.Route(q);
  if (leaf == nullptr || leaf->leaf_id < 0 ||
      static_cast<size_t>(leaf->leaf_id) >= models_.size()) {
    return std::nan("");
  }
  const int id = leaf->leaf_id;
  const double raw = models_[id].PredictOne(q.q);
  return raw * target_scale_[id] + target_mean_[id];
}

std::vector<double> NeuroSketch::AnswerBatch(
    const std::vector<QueryInstance>& queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(Answer(q));
  return out;
}

std::vector<double> NeuroSketch::AnswerBatchVectorized(
    const std::vector<QueryInstance>& queries) const {
  std::vector<double> out(queries.size(), std::nan(""));
  if (queries.size() == 1) {
    // Serve fast path: a single-query "batch" skips bucket bookkeeping and
    // runs the zero-allocation compiled plan directly.
    out[0] = Answer(queries[0]);
    return out;
  }
  // Bucket query indices by leaf model.
  std::vector<std::vector<size_t>> buckets(plans_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto* leaf = tree_.Route(queries[i]);
    if (leaf == nullptr || leaf->leaf_id < 0 ||
        static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
      continue;
    }
    buckets[leaf->leaf_id].push_back(i);
  }
  const size_t qdim = tree_.query_dim();
  nn::Workspace& ws = nn::Workspace::ThreadLocal();
  for (size_t m = 0; m < buckets.size(); ++m) {
    const auto& ids = buckets[m];
    if (ids.empty()) continue;
    // Gather the bucket's inputs and stage its predictions in the arena:
    // per-batch cost is bookkeeping only, the model math never allocates.
    double* inputs = ws.Input(ids.size() * qdim);
    for (size_t r = 0; r < ids.size(); ++r) {
      const auto& q = queries[ids[r]].q;
      std::copy(q.begin(), q.end(), inputs + r * qdim);
    }
    double* pred = ws.Output(ids.size());
    plans_[m].PredictBatch(inputs, ids.size(), &ws, pred);
    for (size_t r = 0; r < ids.size(); ++r) {
      out[ids[r]] = pred[r] * target_scale_[m] + target_mean_[m];
    }
  }
  return out;
}

size_t NeuroSketch::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& m : models_) bytes += m.SizeBytes();
  bytes += tree_.EncodeRouting().size() * sizeof(double);
  bytes += 2 * models_.size() * sizeof(double);  // per-leaf scales
  return bytes;
}

Status NeuroSketch::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  const uint64_t qdim = tree_.query_dim();
  out.write(reinterpret_cast<const char*>(&qdim), sizeof(qdim));
  const std::vector<double> routing = tree_.EncodeRouting();
  const uint64_t rsize = routing.size();
  out.write(reinterpret_cast<const char*>(&rsize), sizeof(rsize));
  out.write(reinterpret_cast<const char*>(routing.data()),
            static_cast<std::streamsize>(rsize * sizeof(double)));
  // plans_ is what the loop below serializes; counting it (rather than
  // models_) keeps the header honest if the two vectors ever diverge.
  const uint64_t nmodels = plans_.size();
  out.write(reinterpret_cast<const char*>(&nmodels), sizeof(nmodels));
  out.write(reinterpret_cast<const char*>(target_mean_.data()),
            static_cast<std::streamsize>(nmodels * sizeof(double)));
  out.write(reinterpret_cast<const char*>(target_scale_.data()),
            static_cast<std::streamsize>(nmodels * sizeof(double)));
  // Serialize from the compiled plans: the flat buffer is already in
  // on-disk parameter order, so each model is one contiguous write and the
  // bytes are identical to SaveMlp on the corresponding Mlp.
  for (const auto& p : plans_) {
    NS_RETURN_NOT_OK(nn::SaveCompiledMlp(p, &out));
  }
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<NeuroSketch> NeuroSketch::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  uint64_t qdim = 0, rsize = 0, nmodels = 0;
  in.read(reinterpret_cast<char*>(&qdim), sizeof(qdim));
  in.read(reinterpret_cast<char*>(&rsize), sizeof(rsize));
  if (!in.good()) return Status::IOError("truncated sketch header");
  std::vector<double> routing(rsize);
  in.read(reinterpret_cast<char*>(routing.data()),
          static_cast<std::streamsize>(rsize * sizeof(double)));
  in.read(reinterpret_cast<char*>(&nmodels), sizeof(nmodels));
  if (!in.good()) return Status::IOError("truncated sketch routing");

  NeuroSketch sketch;
  NS_ASSIGN_OR_RETURN(sketch.tree_,
                      QuerySpaceKdTree::DecodeRouting(routing, qdim));
  sketch.target_mean_.resize(nmodels);
  sketch.target_scale_.resize(nmodels);
  in.read(reinterpret_cast<char*>(sketch.target_mean_.data()),
          static_cast<std::streamsize>(nmodels * sizeof(double)));
  in.read(reinterpret_cast<char*>(sketch.target_scale_.data()),
          static_cast<std::streamsize>(nmodels * sizeof(double)));
  if (!in.good()) return Status::IOError("truncated sketch scales");
  sketch.models_.reserve(nmodels);
  sketch.plans_.reserve(nmodels);
  for (uint64_t i = 0; i < nmodels; ++i) {
    // Compile-on-load: the plan is the deserialization target (one
    // contiguous parameter read); the trainable form is rehydrated from it
    // so the scalar reference path stays available.
    NS_ASSIGN_OR_RETURN(nn::CompiledMlp plan, nn::LoadCompiledMlp(&in));
    sketch.models_.push_back(plan.ToMlp());
    sketch.plans_.push_back(std::move(plan));
  }
  sketch.stats_.num_partitions = nmodels;
  return sketch;
}

}  // namespace neurosketch
