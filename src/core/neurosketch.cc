#include "core/neurosketch.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>

#include "nn/serialize.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace neurosketch {

namespace {

// Trailer appended after the model blocks by Save(): precision tier plus
// the f32 validation record, then (when the int8 tier is compiled) the
// int8 validation record and per-leaf calibration scales. Sketches
// written before the trailer existed simply end at the last model; Load
// treats that as f64. Flag bits in the precision word: bit 0 = f32
// active, bit 1 = f32 plans compiled, bit 2 = int8 active, bit 3 = int8
// plans compiled (calibration block follows) — PR 3 files only ever set
// bits 0-1, so they load unchanged.
constexpr uint32_t kPrecisionMagic = 0x4e535031;  // "NSP1"
constexpr size_t kPrecisionTrailerBytes =
    2 * sizeof(uint32_t) + 2 * sizeof(double);

bool EnvFlagSet(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

// Serializes lazy trainer rebuilds (EnsureTrainer on a const sketch).
// Process-wide rather than per-sketch so NeuroSketch keeps its implicit
// copy/move operations; the rebuild is a cold path (once per sketch after
// Load/ReleaseTrainer), so cross-sketch serialization is harmless.
std::mutex g_trainer_rebuild_mu;

// Result of a validation replay: worst divergence seen and how many
// queries actually contributed a measurement.
struct DivergenceRecord {
  double max_div = 0.0;
  size_t measured = 0;
};

// Sharded max-divergence reduction shared by the f32 and int8 validation
// replays. `fn(v, &div)` measures query v (returning false to skip it);
// queries shard into contiguous ranges, each shard keeps a local record,
// and the shards fold in fixed order below. max and + are exact
// reductions, so the result is bit-identical to a serial sweep for any
// shard layout — the determinism contract construction_parallel_test
// pins.
template <typename PerQuery>
DivergenceRecord ShardedMaxDivergence(size_t n, size_t num_threads,
                                      const PerQuery& fn) {
  ThreadPool& pool = ThreadPool::Shared();
  const size_t shards = pool.NumShards(n, num_threads);
  std::vector<DivergenceRecord> partial(shards);
  pool.ParallelForShards(n, num_threads,
                         [&](size_t s, size_t begin, size_t end) {
                           DivergenceRecord local;
                           for (size_t v = begin; v < end; ++v) {
                             double div;
                             if (!fn(v, &div)) continue;
                             if (div > local.max_div) local.max_div = div;
                             ++local.measured;
                           }
                           partial[s] = local;
                         });
  DivergenceRecord total;
  for (const DivergenceRecord& p : partial) {
    if (p.max_div > total.max_div) total.max_div = p.max_div;
    total.measured += p.measured;
  }
  return total;
}

}  // namespace

const char* PlanPrecisionName(PlanPrecision p) {
  switch (p) {
    case PlanPrecision::kF32:
      return "f32";
    case PlanPrecision::kInt8:
      return "int8";
    case PlanPrecision::kF64:
      break;
  }
  return "f64";
}

// CI hooks: NEUROSKETCH_FORCE_F32_PLANS=1 / NEUROSKETCH_FORCE_INT8_PLANS=1
// upgrade default-precision training to that tier so the whole test suite
// exercises it.
bool ForceF32PlansFromEnv() {
  return EnvFlagSet("NEUROSKETCH_FORCE_F32_PLANS");
}

bool ForceInt8PlansFromEnv() {
  return EnvFlagSet("NEUROSKETCH_FORCE_INT8_PLANS");
}

Result<NeuroSketch> NeuroSketch::Train(
    const std::vector<QueryInstance>& queries,
    const std::vector<double>& answers, const NeuroSketchConfig& config) {
  if (queries.size() != answers.size()) {
    return Status::InvalidArgument("queries/answers size mismatch");
  }
  // Drop undefined answers (e.g. AVG over an empty range).
  std::vector<QueryInstance> q_ok;
  std::vector<double> a_ok;
  q_ok.reserve(queries.size());
  a_ok.reserve(answers.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::isnan(answers[i])) continue;
    q_ok.push_back(queries[i]);
    a_ok.push_back(answers[i]);
  }
  if (q_ok.size() < 2) {
    return Status::InvalidArgument("need at least 2 defined training answers");
  }
  const size_t qdim = q_ok[0].dim();
  for (const auto& q : q_ok) {
    if (q.dim() != qdim) {
      return Status::InvalidArgument("inconsistent query dimensionality");
    }
  }

  NeuroSketch sketch;
  sketch.stats_.training_queries = q_ok.size();

  Timer part_timer;
  PartitionConfig pc;
  pc.tree_height = config.tree_height;
  pc.target_leaves = config.target_partitions;
  pc.aqc = config.aqc;
  pc.num_threads = config.train_threads;
  PartitionResult partition = PartitionQuerySpace(q_ok, a_ok, pc);
  sketch.tree_ = std::move(partition.tree);
  sketch.routing_doubles_ = sketch.tree_.EncodeRouting().size();
  sketch.stats_.leaf_aqc = std::move(partition.leaf_aqc);
  sketch.stats_.partition_seconds = part_timer.ElapsedSeconds();

  Timer train_timer;
  auto leaves = sketch.tree_.Leaves();
  sketch.stats_.num_partitions = leaves.size();
  sketch.models_.resize(leaves.size());
  sketch.plans_.resize(leaves.size());
  sketch.target_mean_.assign(leaves.size(), 0.0);
  sketch.target_scale_.assign(leaves.size(), 1.0);

  // Leaf models are independent: each derives its init and shuffle seeds
  // from its leaf id alone and writes only its own slots, so training them
  // concurrently on the shared pool reproduces the sequential build
  // bit-for-bit regardless of thread count or completion order.
  auto train_leaf = [&](size_t li) {
    const auto* leaf = leaves[li];
    const int id = leaf->leaf_id;
    const auto& ids = leaf->query_ids;
    nn::Mlp& model = sketch.models_[id];
    model = nn::Mlp(nn::MlpConfig::Paper(qdim, config.n_layers, config.l_first,
                                         config.l_rest),
                    config.seed + id);
    if (!ids.empty()) {
      // Per-leaf target standardization keeps the MSE well-scaled across
      // query functions with very different answer magnitudes.
      std::vector<double> targets;
      targets.reserve(ids.size());
      for (size_t i : ids) targets.push_back(a_ok[i]);
      const double mean = stats::Mean(targets);
      double scale = stats::Stddev(targets);
      if (scale <= 1e-12) scale = 1.0;
      sketch.target_mean_[id] = mean;
      sketch.target_scale_[id] = scale;

      Matrix inputs(ids.size(), qdim);
      Matrix outputs(ids.size(), 1);
      for (size_t i = 0; i < ids.size(); ++i) {
        const auto& q = q_ok[ids[i]];
        for (size_t jj = 0; jj < qdim; ++jj) inputs(i, jj) = q.q[jj];
        outputs(i, 0) = (a_ok[ids[i]] - mean) / scale;
      }
      nn::TrainConfig tc = config.train;
      tc.seed = config.train.seed + static_cast<uint64_t>(id) * 1000003ULL;
      nn::TrainRegressor(&model, inputs, outputs, tc);
    }
    // An untrained (empty-leaf) model still gets a plan: it predicts the
    // initialization's output, matching the previous behavior.
    sketch.plans_[id] = nn::CompiledMlp::FromMlp(model);
  };
  ThreadPool::Shared().ParallelFor(leaves.size(), config.train_threads,
                                   train_leaf);
  sketch.trainer_ready_.store(true);
  sketch.stats_.train_seconds = train_timer.ElapsedSeconds();

  PlanPrecision requested = config.plan_precision;
  if (requested == PlanPrecision::kF64) {
    if (ForceInt8PlansFromEnv()) {
      requested = PlanPrecision::kInt8;
    } else if (ForceF32PlansFromEnv()) {
      requested = PlanPrecision::kF32;
    }
  }
  Timer calib_timer;
  if (requested == PlanPrecision::kInt8) {
    // Validate-or-fallback chain: int8 calibrates + validates over the
    // training workload; out of bound it demotes to the f32 tier, which
    // validates in turn and leaves the sketch on f64 if also out of
    // bound. Both tiers' measured divergences are retained either way.
    if (!sketch.EnableInt8(q_ok, config.int8_error_bound,
                           config.train_threads)) {
      sketch.EnableF32(q_ok, config.f32_error_bound, config.train_threads);
    }
    sketch.stats_.calibrate_seconds = calib_timer.ElapsedSeconds();
  } else if (requested == PlanPrecision::kF32) {
    // Compile the f32 tier and validate it over the training workload; on
    // a blown error bound EnableF32 leaves the sketch serving f64.
    sketch.EnableF32(q_ok, config.f32_error_bound, config.train_threads);
    sketch.stats_.calibrate_seconds = calib_timer.ElapsedSeconds();
  }
  return sketch;
}

Status NeuroSketch::RetrainLeaves(const std::vector<int>& leaf_ids,
                                  const std::vector<QueryInstance>& queries,
                                  const std::vector<double>& answers,
                                  const NeuroSketchConfig& config) {
  if (!compiled()) {
    return Status::InvalidArgument("RetrainLeaves on an untrained sketch");
  }
  if (queries.size() != answers.size()) {
    return Status::InvalidArgument("queries/answers size mismatch");
  }
  std::vector<char> wanted(plans_.size(), 0);
  std::vector<int> ids;
  for (int id : leaf_ids) {
    if (id < 0 || static_cast<size_t>(id) >= plans_.size()) {
      return Status::InvalidArgument("leaf id out of range");
    }
    if (!wanted[id]) {
      wanted[id] = 1;
      ids.push_back(id);
    }
  }
  if (ids.empty()) return Status::OK();

  const size_t qdim = tree_.query_dim();
  std::vector<QueryInstance> q_ok;
  std::vector<double> a_ok;
  q_ok.reserve(queries.size());
  a_ok.reserve(answers.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (std::isnan(answers[i])) continue;
    if (queries[i].dim() != qdim) {
      return Status::InvalidArgument("inconsistent query dimensionality");
    }
    q_ok.push_back(queries[i]);
    a_ok.push_back(answers[i]);
  }
  if (q_ok.size() < 2) {
    return Status::InvalidArgument("need at least 2 defined training answers");
  }

  // Re-gather each retrained leaf's training set by routing through the
  // FIXED tree — the partition is untouched, which is the whole point of
  // a leaf-granular refresh (readers keep routing identically; only the
  // flagged leaves' parameters move).
  std::vector<std::vector<size_t>> members(plans_.size());
  for (size_t i = 0; i < q_ok.size(); ++i) {
    const auto* leaf = tree_.Route(q_ok[i]);
    if (leaf == nullptr || leaf->leaf_id < 0 ||
        static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
      continue;
    }
    if (wanted[leaf->leaf_id]) members[leaf->leaf_id].push_back(i);
  }

  // The untouched leaves' trainable forms must survive the partial
  // rebuild (Save and AnswerScalar read them all); materialize them
  // before overwriting the retrained slots.
  EnsureTrainer();

  // Identical per-leaf training to Train's train_leaf: same init seed,
  // same standardization (stddev floored to 1), same shuffle-seed
  // derivation — retraining a leaf here is bit-identical to a clean
  // rebuild of that leaf over the same partition and training set.
  auto retrain_leaf = [&](size_t k) {
    const int id = ids[k];
    const auto& idxs = members[id];
    nn::Mlp& model = models_[id];
    model = nn::Mlp(nn::MlpConfig::Paper(qdim, config.n_layers, config.l_first,
                                         config.l_rest),
                    config.seed + id);
    target_mean_[id] = 0.0;
    target_scale_[id] = 1.0;
    if (!idxs.empty()) {
      std::vector<double> targets;
      targets.reserve(idxs.size());
      for (size_t i : idxs) targets.push_back(a_ok[i]);
      const double mean = stats::Mean(targets);
      double scale = stats::Stddev(targets);
      if (scale <= 1e-12) scale = 1.0;
      target_mean_[id] = mean;
      target_scale_[id] = scale;

      Matrix inputs(idxs.size(), qdim);
      Matrix outputs(idxs.size(), 1);
      for (size_t i = 0; i < idxs.size(); ++i) {
        const auto& q = q_ok[idxs[i]];
        for (size_t jj = 0; jj < qdim; ++jj) inputs(i, jj) = q.q[jj];
        outputs(i, 0) = (a_ok[idxs[i]] - mean) / scale;
      }
      nn::TrainConfig tc = config.train;
      tc.seed = config.train.seed + static_cast<uint64_t>(id) * 1000003ULL;
      nn::TrainRegressor(&model, inputs, outputs, tc);
    }
    plans_[id] = nn::CompiledMlp::FromMlp(model);
  };
  ThreadPool::Shared().ParallelFor(ids.size(), config.train_threads,
                                   retrain_leaf);
  trainer_ready_.store(true);

  // The narrow tiers were calibrated/validated against the OLD leaf
  // parameters; serving them over the new ones would be unvalidated.
  // Drop them and re-run the same validate-or-fallback chain as Train —
  // the divergence/calibration records are whole-sketch state, so the
  // replay covers every leaf, not just the retrained ones.
  std::vector<nn::CompiledMlpF32>().swap(plans_f32_);
  std::vector<nn::CompiledMlpI8>().swap(plans_i8_);
  int8_absmax_.clear();
  f32_available_ = false;
  int8_available_ = false;
  precision_ = PlanPrecision::kF64;
  PlanPrecision requested = config.plan_precision;
  if (requested == PlanPrecision::kF64) {
    if (ForceInt8PlansFromEnv()) {
      requested = PlanPrecision::kInt8;
    } else if (ForceF32PlansFromEnv()) {
      requested = PlanPrecision::kF32;
    }
  }
  if (requested == PlanPrecision::kInt8) {
    if (!EnableInt8(q_ok, config.int8_error_bound, config.train_threads)) {
      EnableF32(q_ok, config.f32_error_bound, config.train_threads);
    }
  } else if (requested == PlanPrecision::kF32) {
    EnableF32(q_ok, config.f32_error_bound, config.train_threads);
  }
  return Status::OK();
}

Result<NeuroSketch> NeuroSketch::TrainFromEngine(
    const ExactEngine& engine, const QueryFunctionSpec& spec,
    WorkloadGenerator* workload, size_t num_train,
    const NeuroSketchConfig& config) {
  std::vector<QueryInstance> queries =
      workload->GenerateMany(num_train, &engine, &spec);
  std::vector<double> answers = engine.AnswerBatch(spec, queries);
  return Train(queries, answers, config);
}

bool NeuroSketch::EnableF32(const std::vector<QueryInstance>& validation,
                            double error_bound, size_t num_threads) {
  if (!compiled()) return false;
  // Per-leaf narrowing is independent and deterministic; compile the tier
  // concurrently on the shared pool.
  ThreadPool& pool = ThreadPool::Shared();
  plans_f32_.resize(plans_.size());
  pool.ParallelFor(plans_.size(), num_threads, [&](size_t i) {
    plans_f32_[i] = nn::CompiledMlpF32::FromPlan(plans_[i]);
  });
  // Measure the worst |f32 - f64| divergence in standardized units (the
  // raw network output, before per-leaf rescaling) so the bound does not
  // depend on the magnitude of the query function's answers. Sharded
  // replay; bit-identical to serial (see ShardedMaxDivergence).
  const DivergenceRecord rec = ShardedMaxDivergence(
      validation.size(), num_threads, [&](size_t v, double* div) {
        const auto& q = validation[v];
        const auto* leaf = tree_.Route(q);
        if (leaf == nullptr || leaf->leaf_id < 0 ||
            static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
          return false;
        }
        const int id = leaf->leaf_id;
        nn::Workspace& ws = nn::Workspace::ThreadLocal();
        const double raw64 = plans_[id].PredictOne(q.q.data(), &ws);
        const double raw32 = plans_f32_[id].PredictOne(q.q.data(), &ws);
        *div = std::fabs(raw32 - raw64);
        return true;
      });
  const double max_div = rec.max_div;
  const size_t measured = rec.measured;
  f32_error_bound_ = error_bound;
  f32_max_divergence_ = max_div;
  if (measured == 0 || !(max_div <= error_bound)) {
    // Blown bound, NaN divergence, or no validation coverage at all: f32
    // is never served blind — drop the tier, keep serving f64.
    plans_f32_.clear();
    f32_available_ = false;
    precision_ = PlanPrecision::kF64;
    return false;
  }
  f32_available_ = true;
  precision_ = PlanPrecision::kF32;
  return true;
}

bool NeuroSketch::EnableInt8(const std::vector<QueryInstance>& validation,
                             double error_bound, size_t num_threads) {
  if (!compiled()) return false;
  // Calibration pass: replay the workload through the f64 plans, recording
  // per-leaf, per-layer input absmax (layer 0 sees the raw query, layer
  // l > 0 the previous layer's activations). The routed leaf and the f64
  // prediction are cached per query so the validation pass below pays for
  // neither a second Route nor a second f64 forward. The replay shards
  // across threads: each shard accumulates into its own absmax matrix and
  // coverage counts (queries from two shards may route to the same leaf,
  // so sharing one matrix would race), and the per-shard records fold in
  // fixed shard order below. absmax combines by max and coverage by
  // integer sum — both exact — so the calibration scales are bit-identical
  // to the serial single-pass sweep for every thread count. routed[] and
  // raw64[] are indexed by query, disjoint across shards.
  ThreadPool& pool = ThreadPool::Shared();
  const size_t shards = pool.NumShards(validation.size(), num_threads);
  std::vector<std::vector<double>> absmax(plans_.size());
  std::vector<size_t> covered(plans_.size(), 0);
  for (size_t i = 0; i < plans_.size(); ++i) {
    absmax[i].assign(plans_[i].layers().size(), 0.0);
  }
  std::vector<std::vector<std::vector<double>>> shard_absmax(shards, absmax);
  std::vector<std::vector<size_t>> shard_covered(
      shards, std::vector<size_t>(plans_.size(), 0));
  std::vector<int> routed(validation.size(), -1);
  std::vector<double> raw64(validation.size(), 0.0);
  pool.ParallelForShards(
      validation.size(), num_threads, [&](size_t s, size_t begin, size_t end) {
        nn::Workspace& ws = nn::Workspace::ThreadLocal();
        std::vector<std::vector<double>>& local_absmax = shard_absmax[s];
        std::vector<size_t>& local_covered = shard_covered[s];
        for (size_t v = begin; v < end; ++v) {
          const auto* leaf = tree_.Route(validation[v]);
          if (leaf == nullptr || leaf->leaf_id < 0 ||
              static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
            continue;
          }
          const int id = leaf->leaf_id;
          routed[v] = id;
          raw64[v] = plans_[id].CalibrateOne(validation[v].q.data(), &ws,
                                             local_absmax[id].data());
          ++local_covered[id];
        }
      });
  for (size_t s = 0; s < shards; ++s) {
    nn::CombineLayerAbsmax(&absmax, shard_absmax[s]);
    for (size_t i = 0; i < plans_.size(); ++i) {
      covered[i] += shard_covered[s][i];
    }
  }
  // Quantize calibrated leaves; a leaf with no calibration coverage keeps
  // an empty int8 plan and serves its f64 plan instead — int8 is never
  // served with made-up scales. Leaves quantize independently (pure
  // function of the f64 plan + its absmax), so this fans out per leaf.
  plans_i8_.assign(plans_.size(), nn::CompiledMlpI8());
  pool.ParallelFor(plans_.size(), num_threads, [&](size_t i) {
    if (covered[i] > 0) {
      plans_i8_[i] = nn::CompiledMlpI8::FromPlan(plans_[i], absmax[i]);
    }
  });
  // Validate: worst |int8 - f64| divergence in standardized units over
  // the same workload (uncovered leaves contribute nothing — they will
  // serve f64 bits anyway). Same sharded max reduction as EnableF32.
  const DivergenceRecord rec = ShardedMaxDivergence(
      validation.size(), num_threads, [&](size_t v, double* div) {
        const int id = routed[v];
        if (id < 0 || plans_i8_[id].empty()) return false;
        nn::Workspace& ws = nn::Workspace::ThreadLocal();
        const double raw8 =
            plans_i8_[id].PredictOne(validation[v].q.data(), &ws);
        *div = std::fabs(raw8 - raw64[v]);
        return true;
      });
  const double max_div = rec.max_div;
  const size_t measured = rec.measured;
  int8_error_bound_ = error_bound;
  int8_max_divergence_ = max_div;
  if (measured == 0 || !(max_div <= error_bound)) {
    // Blown bound, NaN divergence, or no validation coverage at all:
    // drop the tier; never serve unvalidated int8.
    plans_i8_.clear();
    int8_absmax_.clear();
    int8_available_ = false;
    if (precision_ == PlanPrecision::kInt8) precision_ = PlanPrecision::kF64;
    return false;
  }
  // Retain the calibration record as the canonical copy: Save persists it
  // and EnsureTier re-quantizes from it after a ReleaseTier. Uncovered
  // leaves keep an empty record, mirroring their empty plan.
  int8_absmax_.assign(plans_.size(), {});
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (covered[i] > 0) int8_absmax_[i] = std::move(absmax[i]);
  }
  int8_available_ = true;
  precision_ = PlanPrecision::kInt8;
  return true;
}

Status NeuroSketch::SelectPrecision(PlanPrecision precision) {
  // Materializes the tier if it is carried but released (lazy Load /
  // ReleaseTier); fails when the sketch does not carry it at all.
  NS_RETURN_NOT_OK(EnsureTier(precision));
  precision_ = precision;
  return Status::OK();
}

Status NeuroSketch::EnsureTier(PlanPrecision precision) {
  if (precision == PlanPrecision::kF32) {
    if (!f32_available_) {
      return Status::InvalidArgument(
          "no f32 plans compiled: train with plan_precision = kF32 or call "
          "EnableF32");
    }
    if (plans_f32_.empty()) {
      // Deterministic narrowing of the resident f64 parameters — the
      // exact rebuild Load performs, so the plans match the validated
      // ones bit-for-bit.
      plans_f32_.resize(plans_.size());
      for (size_t i = 0; i < plans_.size(); ++i) {
        plans_f32_[i] = nn::CompiledMlpF32::FromPlan(plans_[i]);
      }
    }
    return Status::OK();
  }
  if (precision == PlanPrecision::kInt8) {
    if (!int8_available_) {
      return Status::InvalidArgument(
          "no int8 plans compiled: train with plan_precision = kInt8 or call "
          "EnableInt8");
    }
    if (plans_i8_.empty()) {
      // Deterministic re-quantization from the f64 parameters with the
      // canonical calibration record; uncovered leaves stay empty and
      // keep serving their f64 plan.
      plans_i8_.assign(plans_.size(), nn::CompiledMlpI8());
      for (size_t i = 0; i < plans_.size(); ++i) {
        if (!int8_absmax_[i].empty()) {
          plans_i8_[i] = nn::CompiledMlpI8::FromPlan(plans_[i], int8_absmax_[i]);
        }
      }
    }
    return Status::OK();
  }
  // kF64: the canonical parameter store, always resident on a warm sketch.
  return Status::OK();
}

size_t NeuroSketch::ReleaseTier(PlanPrecision precision) {
  // The active tier and the f64 parameter store are not releasable: the
  // former would break Answer's invariant that the active tier is
  // materialized, the latter is what every rebuild derives from (shedding
  // it means going cold — dropping the whole sketch object).
  if (precision == precision_ || precision == PlanPrecision::kF64) return 0;
  const size_t freed = PlanBytes(precision);
  if (precision == PlanPrecision::kF32) {
    std::vector<nn::CompiledMlpF32>().swap(plans_f32_);
  } else {
    std::vector<nn::CompiledMlpI8>().swap(plans_i8_);
  }
  return freed;
}

Status NeuroSketch::RescaleInt8Calibration(double factor) {
  if (!int8_available_ || int8_absmax_.empty()) {
    return Status::InvalidArgument(
        "sketch does not carry the int8 tier: nothing to rescale");
  }
  if (!(factor > 0.0)) {
    return Status::InvalidArgument("rescale factor must be positive");
  }
  for (std::vector<double>& leaf : int8_absmax_) {
    for (double& a : leaf) a *= factor;
  }
  // Swap-drop (ReleaseTier refuses the active tier) and re-quantize so
  // serving actually reflects the perturbed record.
  std::vector<nn::CompiledMlpI8>().swap(plans_i8_);
  return EnsureTier(PlanPrecision::kInt8);
}

void NeuroSketch::EnsureTrainer() const {
  if (trainer_ready_.load()) return;
  std::lock_guard<std::mutex> lock(g_trainer_rebuild_mu);
  if (trainer_ready_.load()) return;
  // ToMlp round-trips the f64 parameters bit-exactly, so the rebuilt
  // reference models answer identically to the originally trained ones.
  std::vector<nn::Mlp> rebuilt;
  rebuilt.reserve(plans_.size());
  for (const auto& p : plans_) rebuilt.push_back(p.ToMlp());
  models_ = std::move(rebuilt);
  trainer_ready_.store(true);
}

size_t NeuroSketch::ReleaseTrainer() {
  const size_t freed = TrainerBytes();
  std::vector<nn::Mlp>().swap(models_);
  trainer_ready_.store(false);
  return freed;
}

size_t NeuroSketch::TrainerBytes() const {
  if (!trainer_ready_.load()) return 0;
  // Each trainable layer holds its parameters plus same-shaped gradient
  // buffers; the cached forward activations are batch-sized transients
  // (empty outside a training step) and are not counted.
  size_t bytes = 0;
  for (const auto& m : models_) {
    bytes += 2 * m.num_params() * sizeof(double);
  }
  return bytes;
}

size_t NeuroSketch::ResidentBytes() const {
  size_t bytes = routing_doubles_ * sizeof(double);
  bytes += 2 * plans_.size() * sizeof(double);  // per-leaf mean + scale
  bytes += PlanBytes(PlanPrecision::kF64);
  bytes += PlanBytes(PlanPrecision::kF32);
  bytes += PlanBytes(PlanPrecision::kInt8);
  for (const auto& a : int8_absmax_) bytes += a.size() * sizeof(double);
  bytes += TrainerBytes();
  return bytes;
}

double NeuroSketch::Answer(const QueryInstance& q) const {
  const auto* leaf = tree_.Route(q);
  if (leaf == nullptr || leaf->leaf_id < 0 ||
      static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
    return std::nan("");
  }
  const int id = leaf->leaf_id;
  nn::Workspace& ws = nn::Workspace::ThreadLocal();
  double raw;
  if (precision_ == PlanPrecision::kInt8 && !plans_i8_[id].empty()) {
    raw = plans_i8_[id].PredictOne(q.q.data(), &ws);
  } else if (precision_ == PlanPrecision::kF32) {
    raw = plans_f32_[id].PredictOne(q.q.data(), &ws);
  } else {
    // kF64, or an int8-tier leaf with no calibration coverage (which
    // serves the f64 reference bits rather than unvalidated int8).
    raw = plans_[id].PredictOne(q.q.data(), &ws);
  }
  return raw * target_scale_[id] + target_mean_[id];
}

double NeuroSketch::AnswerScalar(const QueryInstance& q) const {
  // The reference models rebuild lazily after Load/ReleaseTrainer —
  // bit-exact, so callers cannot tell whether they were kept resident.
  EnsureTrainer();
  const auto* leaf = tree_.Route(q);
  if (leaf == nullptr || leaf->leaf_id < 0 ||
      static_cast<size_t>(leaf->leaf_id) >= models_.size()) {
    return std::nan("");
  }
  const int id = leaf->leaf_id;
  const double raw = models_[id].PredictOne(q.q);
  return raw * target_scale_[id] + target_mean_[id];
}

std::vector<double> NeuroSketch::AnswerBatch(
    const std::vector<QueryInstance>& queries) const {
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(Answer(q));
  return out;
}

std::vector<double> NeuroSketch::AnswerBatchVectorized(
    const std::vector<QueryInstance>& queries) const {
  std::vector<double> out(queries.size());
  AnswerBatchVectorizedTo(queries, out.data());
  return out;
}

void NeuroSketch::AnswerBatchVectorizedTo(
    const std::vector<QueryInstance>& queries, double* out) const {
  if (queries.empty()) return;
  if (queries.size() == 1) {
    // Serve fast path: a single-query "batch" skips bucket bookkeeping and
    // runs the zero-allocation compiled plan directly.
    out[0] = Answer(queries[0]);
    return;
  }
  for (size_t i = 0; i < queries.size(); ++i) out[i] = std::nan("");
  // Bucket query indices by leaf model, staging the buckets in the arena
  // so a warm thread performs zero heap allocations per batch.
  nn::Workspace& ws = nn::Workspace::ThreadLocal();
  std::vector<std::vector<size_t>>& buckets = ws.Buckets(plans_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const auto* leaf = tree_.Route(queries[i]);
    if (leaf == nullptr || leaf->leaf_id < 0 ||
        static_cast<size_t>(leaf->leaf_id) >= plans_.size()) {
      continue;
    }
    buckets[leaf->leaf_id].push_back(i);
  }
  const size_t qdim = tree_.query_dim();
  for (size_t m = 0; m < plans_.size(); ++m) {
    const auto& ids = buckets[m];
    if (ids.empty()) continue;
    // Gather the bucket's inputs and stage its predictions in the arena:
    // per-batch cost is bookkeeping only, the model math never allocates.
    // When a narrow tier is active the gather marshals straight into the
    // float arena — casting once per element during the copy instead of
    // staging doubles and re-reading them for a separate narrowing pass
    // (8 fewer bytes of traffic per element, same float bits).
    const bool i8 =
        precision_ == PlanPrecision::kInt8 && !plans_i8_[m].empty();
    const bool narrow = i8 || precision_ == PlanPrecision::kF32;
    double* pred = ws.Output(ids.size());
    if (narrow) {
      float* inputs = ws.InputF(ids.size() * qdim);
      for (size_t r = 0; r < ids.size(); ++r) {
        const auto& q = queries[ids[r]].q;
        float* dst = inputs + r * qdim;
        for (size_t j = 0; j < qdim; ++j) dst[j] = static_cast<float>(q[j]);
      }
      if (i8) {
        plans_i8_[m].PredictBatchF32In(inputs, ids.size(), &ws, pred);
      } else {
        plans_f32_[m].PredictBatchF32In(inputs, ids.size(), &ws, pred);
      }
    } else {
      double* inputs = ws.Input(ids.size() * qdim);
      for (size_t r = 0; r < ids.size(); ++r) {
        const auto& q = queries[ids[r]].q;
        std::copy(q.begin(), q.end(), inputs + r * qdim);
      }
      plans_[m].PredictBatch(inputs, ids.size(), &ws, pred);
    }
    for (size_t r = 0; r < ids.size(); ++r) {
      out[ids[r]] = pred[r] * target_scale_[m] + target_mean_[m];
    }
  }
}

size_t NeuroSketch::PlanBytes(PlanPrecision precision) const {
  size_t bytes = 0;
  if (precision == PlanPrecision::kF32) {
    for (const auto& p : plans_f32_) bytes += p.SizeBytes();
  } else if (precision == PlanPrecision::kInt8) {
    for (const auto& p : plans_i8_) bytes += p.SizeBytes();
  } else {
    for (const auto& p : plans_) bytes += p.SizeBytes();
  }
  return bytes;
}

void NeuroSketch::ExportBuildMetrics(metrics::MetricsRegistry* registry,
                                     const std::string& prefix) const {
  registry->SetGauge(prefix + "partition_seconds", stats_.partition_seconds,
                     "Construction phase wall time: kd-tree build + AQC merge");
  registry->SetGauge(prefix + "train_seconds", stats_.train_seconds,
                     "Construction phase wall time: per-leaf MLP training");
  registry->SetGauge(prefix + "calibrate_seconds", stats_.calibrate_seconds,
                     "Construction phase wall time: narrow-tier "
                     "calibrate/validate replays (0 for plain f64)");
  registry->SetGauge(prefix + "num_partitions",
                     static_cast<double>(stats_.num_partitions),
                     "Final leaf count after the AQC merge");
  registry->SetGauge(prefix + "training_queries",
                     static_cast<double>(stats_.training_queries),
                     "Training-set size after NaN drops");
  registry->SetGauge(prefix + "size_bytes", static_cast<double>(SizeBytes()),
                     "Serialized sketch size (the paper's storage metric)");
  registry->SetGauge(prefix + "resident_bytes",
                     static_cast<double>(ResidentBytes()),
                     "In-memory sketch footprint: materialized tiers + "
                     "trainer (moves with EnsureTier/ReleaseTier)");
  double aqc_max = 0.0, aqc_sum = 0.0;
  for (double a : stats_.leaf_aqc) {
    aqc_sum += a;
    if (a > aqc_max) aqc_max = a;
  }
  registry->SetGauge(prefix + "leaf_aqc_max", aqc_max,
                     "Max per-leaf AQC after merging");
  registry->SetGauge(
      prefix + "leaf_aqc_mean",
      stats_.leaf_aqc.empty() ? 0.0 : aqc_sum / stats_.leaf_aqc.size());
  registry->SetGauge(prefix + "active_precision",
                     static_cast<double>(precision_),
                     "Serving tier: 0 = f64, 1 = f32, 2 = int8");
  for (PlanPrecision tier :
       {PlanPrecision::kF64, PlanPrecision::kF32, PlanPrecision::kInt8}) {
    registry->SetGauge(prefix + "plan_bytes{tier=\"" +
                           std::string(PlanPrecisionName(tier)) + "\"}",
                       static_cast<double>(PlanBytes(tier)),
                       "Resident compiled-plan bytes per precision tier");
  }
  // The validate-or-fallback record: a tier whose measured divergence
  // exceeds its bound was dropped (fell back down the chain), which
  // reads here as divergence > bound with zero plan bytes for the tier.
  registry->SetGauge(prefix + "f32_max_divergence", f32_max_divergence_,
                     "Max |f32 - f64| over the validation workload, "
                     "standardized units");
  registry->SetGauge(prefix + "f32_error_bound", f32_error_bound_);
  registry->SetGauge(prefix + "int8_max_divergence", int8_max_divergence_,
                     "Max |int8 - f64| over the validation workload, "
                     "standardized units");
  registry->SetGauge(prefix + "int8_error_bound", int8_error_bound_);
  size_t uncalibrated = 0;
  if (int8_available_) {
    for (const auto& a : int8_absmax_) uncalibrated += a.empty() ? 1 : 0;
  }
  registry->SetGauge(prefix + "int8_uncalibrated_leaves",
                     static_cast<double>(uncalibrated),
                     "Leaves the int8 tier serves from f64 for lack of "
                     "calibration coverage");
}

size_t NeuroSketch::SizeBytes() const {
  // Exactly the bytes Save() writes, in the same order: header fields,
  // routing block, per-leaf scales, serialized models, precision trailer
  // (plus the int8 calibration block when that tier is compiled).
  size_t bytes = 3 * sizeof(uint64_t);  // qdim, routing size, model count
  bytes += tree_.EncodeRouting().size() * sizeof(double);
  bytes += 2 * plans_.size() * sizeof(double);  // per-leaf mean + scale
  for (const auto& p : plans_) bytes += nn::SerializedModelBytes(p);
  bytes += kPrecisionTrailerBytes;
  if (int8_available_) {
    bytes += 2 * sizeof(double);  // int8 bound + measured divergence
    for (const auto& a : int8_absmax_) {
      bytes += sizeof(uint64_t) + a.size() * sizeof(double);
    }
  }
  return bytes;
}

Status NeuroSketch::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  NS_RETURN_NOT_OK(SaveTo(&out));
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Status NeuroSketch::SaveTo(std::ostream* out_stream) const {
  std::ostream& out = *out_stream;
  const uint64_t qdim = tree_.query_dim();
  out.write(reinterpret_cast<const char*>(&qdim), sizeof(qdim));
  const std::vector<double> routing = tree_.EncodeRouting();
  const uint64_t rsize = routing.size();
  out.write(reinterpret_cast<const char*>(&rsize), sizeof(rsize));
  out.write(reinterpret_cast<const char*>(routing.data()),
            static_cast<std::streamsize>(rsize * sizeof(double)));
  // plans_ is what the loop below serializes; counting it (rather than
  // models_) keeps the header honest if the two vectors ever diverge.
  const uint64_t nmodels = plans_.size();
  out.write(reinterpret_cast<const char*>(&nmodels), sizeof(nmodels));
  out.write(reinterpret_cast<const char*>(target_mean_.data()),
            static_cast<std::streamsize>(nmodels * sizeof(double)));
  out.write(reinterpret_cast<const char*>(target_scale_.data()),
            static_cast<std::streamsize>(nmodels * sizeof(double)));
  // Serialize from the compiled plans: the flat buffer is already in
  // on-disk parameter order, so each model is one contiguous write and the
  // bytes are identical to SaveMlp on the corresponding Mlp. Parameters
  // are always stored in f64 — the f32 tier is a deterministic narrowing
  // rebuilt on Load.
  for (const auto& p : plans_) {
    NS_RETURN_NOT_OK(nn::SaveCompiledMlp(p, &out));
  }
  const uint32_t magic = kPrecisionMagic;
  // Bit 0: f32 is the active serving tier. Bit 1: the sketch carries the
  // f32 tier (it may be carried while f64 is temporarily selected, or
  // released from memory; the tier must survive the round-trip either
  // way). Bit 2: int8 active. Bit 3: the sketch carries the int8 tier —
  // the calibration block below follows. Carried, not materialized: a
  // released tier serializes identically because the rebuild is a pure
  // function of the f64 parameters (+ the absmax block for int8).
  const uint32_t precision =
      (precision_ == PlanPrecision::kF32 ? 1u : 0u) |
      (f32_available_ ? 2u : 0u) |
      (precision_ == PlanPrecision::kInt8 ? 4u : 0u) |
      (int8_available_ ? 8u : 0u);
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&precision), sizeof(precision));
  out.write(reinterpret_cast<const char*>(&f32_error_bound_),
            sizeof(f32_error_bound_));
  out.write(reinterpret_cast<const char*>(&f32_max_divergence_),
            sizeof(f32_max_divergence_));
  if (int8_available_) {
    // Int8 calibration block: validation record + per-leaf per-layer
    // input absmax (from the canonical record, so a released tier
    // serializes the same bytes as a materialized one). Parameters stay
    // f64 above; Load re-quantizes from them with these scales,
    // reproducing the identical int8 plans. An uncovered
    // (never-calibrated) leaf writes zero layers.
    out.write(reinterpret_cast<const char*>(&int8_error_bound_),
              sizeof(int8_error_bound_));
    out.write(reinterpret_cast<const char*>(&int8_max_divergence_),
              sizeof(int8_max_divergence_));
    for (const auto& a : int8_absmax_) {
      const uint64_t nl = a.size();
      out.write(reinterpret_cast<const char*>(&nl), sizeof(nl));
      out.write(reinterpret_cast<const char*>(a.data()),
                static_cast<std::streamsize>(nl * sizeof(double)));
    }
  }
  if (!out.good()) return Status::IOError("sketch write failed");
  return Status::OK();
}

Result<NeuroSketch> NeuroSketch::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadFrom(&in);
}

Result<NeuroSketch> NeuroSketch::LoadFrom(std::istream* in_stream) {
  std::istream& in = *in_stream;
  uint64_t qdim = 0, rsize = 0, nmodels = 0;
  in.read(reinterpret_cast<char*>(&qdim), sizeof(qdim));
  in.read(reinterpret_cast<char*>(&rsize), sizeof(rsize));
  if (!in.good()) return Status::IOError("truncated sketch header");
  std::vector<double> routing(rsize);
  in.read(reinterpret_cast<char*>(routing.data()),
          static_cast<std::streamsize>(rsize * sizeof(double)));
  in.read(reinterpret_cast<char*>(&nmodels), sizeof(nmodels));
  if (!in.good()) return Status::IOError("truncated sketch routing");

  NeuroSketch sketch;
  NS_ASSIGN_OR_RETURN(sketch.tree_,
                      QuerySpaceKdTree::DecodeRouting(routing, qdim));
  sketch.routing_doubles_ = routing.size();
  sketch.target_mean_.resize(nmodels);
  sketch.target_scale_.resize(nmodels);
  in.read(reinterpret_cast<char*>(sketch.target_mean_.data()),
          static_cast<std::streamsize>(nmodels * sizeof(double)));
  in.read(reinterpret_cast<char*>(sketch.target_scale_.data()),
          static_cast<std::streamsize>(nmodels * sizeof(double)));
  if (!in.good()) return Status::IOError("truncated sketch scales");
  sketch.plans_.reserve(nmodels);
  for (uint64_t i = 0; i < nmodels; ++i) {
    // Compile-on-load: the plan is the deserialization target (one
    // contiguous parameter read). The trainable form is NOT rehydrated
    // here — it rebuilds lazily (bit-exactly) on the first AnswerScalar,
    // so a loaded sketch comes up at its lean serving footprint.
    NS_ASSIGN_OR_RETURN(nn::CompiledMlp plan, nn::LoadCompiledMlp(&in));
    sketch.plans_.push_back(std::move(plan));
  }
  sketch.stats_.num_partitions = nmodels;

  // Optional precision trailer; sketches written before it existed end at
  // the last model (a clean EOF here) and load as f64.
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  if (!in.good() && in.gcount() != 0) {
    // A partial magic read is a truncated trailer, not a legacy file.
    return Status::IOError("truncated precision trailer");
  }
  if (in.good()) {
    if (magic != kPrecisionMagic) {
      return Status::InvalidArgument("bad precision trailer in sketch file");
    }
    uint32_t precision = 0;
    in.read(reinterpret_cast<char*>(&precision), sizeof(precision));
    in.read(reinterpret_cast<char*>(&sketch.f32_error_bound_),
            sizeof(sketch.f32_error_bound_));
    in.read(reinterpret_cast<char*>(&sketch.f32_max_divergence_),
            sizeof(sketch.f32_max_divergence_));
    if (!in.good()) return Status::IOError("truncated precision trailer");
    if (precision > 15u) {
      return Status::InvalidArgument("unknown plan precision in sketch file");
    }
    const bool active_f32 = (precision & 1u) != 0;
    const bool has_f32 = (precision & 2u) != 0 || active_f32;
    const bool active_i8 = (precision & 4u) != 0;
    const bool has_i8 = (precision & 8u) != 0 || active_i8;
    // Carried tiers are recorded but NOT materialized here — only the
    // active tier's plans are rebuilt below, so a loaded sketch starts
    // at its lean serving footprint. EnsureTier/SelectPrecision rebuild
    // an inactive carried tier on demand, bit-identically (f32 by
    // narrowing, int8 by re-quantizing with the calibration record read
    // next).
    sketch.f32_available_ = has_f32;
    if (has_i8) {
      in.read(reinterpret_cast<char*>(&sketch.int8_error_bound_),
              sizeof(sketch.int8_error_bound_));
      in.read(reinterpret_cast<char*>(&sketch.int8_max_divergence_),
              sizeof(sketch.int8_max_divergence_));
      sketch.int8_absmax_.assign(sketch.plans_.size(), {});
      for (size_t i = 0; i < sketch.plans_.size(); ++i) {
        uint64_t nl = 0;
        in.read(reinterpret_cast<char*>(&nl), sizeof(nl));
        if (!in.good()) return Status::IOError("truncated int8 calibration");
        if (nl == 0) continue;  // uncovered leaf: stays on its f64 plan
        if (nl != sketch.plans_[i].layers().size()) {
          return Status::InvalidArgument(
              "int8 calibration does not match model architecture");
        }
        sketch.int8_absmax_[i].resize(nl);
        in.read(reinterpret_cast<char*>(sketch.int8_absmax_[i].data()),
                static_cast<std::streamsize>(nl * sizeof(double)));
        if (!in.good()) return Status::IOError("truncated int8 calibration");
      }
      sketch.int8_available_ = true;
    }
    if (active_i8) {
      sketch.precision_ = PlanPrecision::kInt8;
    } else if (active_f32) {
      sketch.precision_ = PlanPrecision::kF32;
    } else {
      sketch.precision_ = PlanPrecision::kF64;
    }
    // Uphold the serving invariant: the ACTIVE tier is always
    // materialized (Answer never checks).
    NS_RETURN_NOT_OK(sketch.EnsureTier(sketch.precision_));
  }
  return sketch;
}

}  // namespace neurosketch
