#include "core/catalog.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>

#include "query/predicate.h"

namespace neurosketch {

namespace {

// "NSPCAT01" little-endian; bumped if the index layout ever changes.
constexpr uint64_t kPagedCatalogMagic = 0x313054414350534eULL;

template <typename T>
void WriteRaw(std::ostream* out, const T& v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadRaw(std::istream* in, T* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

// One index slot's serialized footprint: name_len + name + agg + measure
// + offset + size. Needed up front so blob offsets can be precomputed.
size_t IndexEntryBytes(const QueryFunctionKey& key) {
  return sizeof(uint64_t) + key.predicate_name.size() + sizeof(uint32_t) +
         3 * sizeof(uint64_t);
}

}  // namespace

QueryFunctionKey QueryFunctionKey::From(const QueryFunctionSpec& spec) {
  QueryFunctionKey key;
  key.predicate_name = spec.predicate ? spec.predicate->name() : "";
  key.agg = spec.agg;
  key.measure_col = spec.measure_col;
  return key;
}

Result<CatalogEntryInfo> SketchCatalog::Register(
    const QueryFunctionSpec& spec, WorkloadGenerator* workload,
    size_t num_train) {
  if (spec.predicate == nullptr) {
    return Status::InvalidArgument("spec has no predicate");
  }
  const QueryFunctionKey key = QueryFunctionKey::From(spec);
  CatalogEntryInfo info;
  info.key = key;

  std::vector<QueryInstance> queries =
      workload->GenerateMany(num_train, engine_, &spec);
  std::vector<double> answers = engine_->AnswerBatch(spec, queries);
  info.normalized_aqc = Advisor::EstimateNormalizedAqc(queries, answers);

  if (!advisor_.ShouldBuild(info.normalized_aqc)) {
    info.built = false;
    info_[key] = info;
    return info;
  }
  NS_ASSIGN_OR_RETURN(NeuroSketch sketch,
                      NeuroSketch::Train(queries, answers, config_));
  info.built = true;
  info.size_bytes = sketch.SizeBytes();
  sketches_.insert_or_assign(
      key, std::make_shared<const NeuroSketch>(std::move(sketch)));
  info_[key] = info;
  return info;
}

bool SketchCatalog::Has(const QueryFunctionSpec& spec) const {
  return sketches_.count(QueryFunctionKey::From(spec)) > 0;
}

std::shared_ptr<const NeuroSketch> SketchCatalog::Find(
    const QueryFunctionSpec& spec) const {
  auto it = sketches_.find(QueryFunctionKey::From(spec));
  return it == sketches_.end() ? nullptr : it->second;
}

HybridExecutor::Answer SketchCatalog::Execute(const QueryFunctionSpec& spec,
                                              const QueryInstance& q) const {
  HybridExecutor::Answer out;
  auto it = sketches_.find(QueryFunctionKey::From(spec));
  const size_t data_dim = engine_->num_columns();
  if (it != sketches_.end() && advisor_.ShouldUseSketch(q, data_dim)) {
    out.value = it->second->Answer(q);
    out.used_sketch = true;
    if (!std::isnan(out.value)) return out;
  }
  out.value = engine_->Answer(spec, q);
  out.used_sketch = false;
  return out;
}

std::vector<CatalogEntryInfo> SketchCatalog::Entries() const {
  std::vector<CatalogEntryInfo> out;
  out.reserve(info_.size());
  for (const auto& [key, info] : info_) out.push_back(info);
  return out;
}

std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
SketchCatalog::Sketches() const {
  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
      out;
  out.reserve(sketches_.size());
  for (const auto& [key, sketch] : sketches_) out.emplace_back(key, sketch);
  return out;
}

size_t SketchCatalog::TotalSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, sketch] : sketches_) bytes += sketch->SizeBytes();
  return bytes;
}

Status WritePagedCatalog(
    const std::string& path,
    const std::vector<std::pair<QueryFunctionKey,
                                std::shared_ptr<const NeuroSketch>>>&
        sketches) {
  for (const auto& [key, sketch] : sketches) {
    (void)key;
    if (sketch == nullptr) {
      return Status::InvalidArgument("paged catalog: null sketch");
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("cannot open for write: " + path);
  }
  // Precompute the blob offsets: header + full index, then the images
  // back to back. SizeBytes() is pinned (by serialization_test) to equal
  // Save()'s byte count exactly, which is what makes this single-pass.
  size_t cursor = 2 * sizeof(uint64_t);
  for (const auto& [key, sketch] : sketches) {
    (void)sketch;
    cursor += IndexEntryBytes(key);
  }
  WriteRaw(&out, kPagedCatalogMagic);
  WriteRaw(&out, static_cast<uint64_t>(sketches.size()));
  for (const auto& [key, sketch] : sketches) {
    const uint64_t name_len = key.predicate_name.size();
    WriteRaw(&out, name_len);
    out.write(key.predicate_name.data(),
              static_cast<std::streamsize>(name_len));
    WriteRaw(&out, static_cast<uint32_t>(key.agg));
    WriteRaw(&out, static_cast<uint64_t>(key.measure_col));
    WriteRaw(&out, static_cast<uint64_t>(cursor));
    const uint64_t size = sketch->SizeBytes();
    WriteRaw(&out, size);
    cursor += size;
  }
  for (const auto& [key, sketch] : sketches) {
    const auto before = out.tellp();
    NS_RETURN_NOT_OK(sketch->SaveTo(&out));
    const auto written = out.tellp() - before;
    if (written != static_cast<std::streamoff>(sketch->SizeBytes())) {
      return Status::Unknown(
          "paged catalog: SizeBytes drifted from Save for predicate '" +
          key.predicate_name + "' (" + std::to_string(written) + " vs " +
          std::to_string(sketch->SizeBytes()) + " bytes)");
    }
  }
  out.flush();
  if (!out.good()) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<PagedCatalogReader> PagedCatalogReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for read: " + path);
  }
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!ReadRaw(&in, &magic) || magic != kPagedCatalogMagic) {
    return Status::InvalidArgument("not a paged catalog: " + path);
  }
  if (!ReadRaw(&in, &count)) {
    return Status::IOError("truncated paged catalog index: " + path);
  }
  PagedCatalogReader reader;
  reader.path_ = path;
  reader.entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PagedCatalogEntry entry;
    uint64_t name_len = 0;
    if (!ReadRaw(&in, &name_len)) {
      return Status::IOError("truncated paged catalog index: " + path);
    }
    entry.key.predicate_name.resize(name_len);
    in.read(entry.key.predicate_name.data(),
            static_cast<std::streamsize>(name_len));
    uint32_t agg = 0;
    uint64_t measure_col = 0;
    if (!in.good() || !ReadRaw(&in, &agg) || !ReadRaw(&in, &measure_col) ||
        !ReadRaw(&in, &entry.offset) || !ReadRaw(&in, &entry.size_bytes)) {
      return Status::IOError("truncated paged catalog index: " + path);
    }
    entry.key.agg = static_cast<Aggregate>(agg);
    entry.key.measure_col = measure_col;
    reader.entries_.push_back(std::move(entry));
  }
  return reader;
}

Result<NeuroSketch> PagedCatalogReader::LoadEntry(
    const PagedCatalogEntry& entry) const {
  // Per-call stream: LoadEntry must be safe from concurrent pool loaders.
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::IOError("cannot open for read: " + path_);
  }
  in.seekg(static_cast<std::streamoff>(entry.offset));
  std::string blob(entry.size_bytes, '\0');
  in.read(blob.data(), static_cast<std::streamsize>(entry.size_bytes));
  if (!in.good() || static_cast<uint64_t>(in.gcount()) != entry.size_bytes) {
    return Status::IOError("truncated sketch image at offset " +
                           std::to_string(entry.offset) + " in " + path_);
  }
  // An istringstream over the exact image preserves the standalone-file
  // semantics LoadFrom expects (trailer probe may hit clean EOF).
  std::istringstream image(std::move(blob));
  return NeuroSketch::LoadFrom(&image);
}

}  // namespace neurosketch
