#include "core/catalog.h"

#include <cmath>

#include "query/predicate.h"

namespace neurosketch {

QueryFunctionKey QueryFunctionKey::From(const QueryFunctionSpec& spec) {
  QueryFunctionKey key;
  key.predicate_name = spec.predicate ? spec.predicate->name() : "";
  key.agg = spec.agg;
  key.measure_col = spec.measure_col;
  return key;
}

Result<CatalogEntryInfo> SketchCatalog::Register(
    const QueryFunctionSpec& spec, WorkloadGenerator* workload,
    size_t num_train) {
  if (spec.predicate == nullptr) {
    return Status::InvalidArgument("spec has no predicate");
  }
  const QueryFunctionKey key = QueryFunctionKey::From(spec);
  CatalogEntryInfo info;
  info.key = key;

  std::vector<QueryInstance> queries =
      workload->GenerateMany(num_train, engine_, &spec);
  std::vector<double> answers = engine_->AnswerBatch(spec, queries);
  info.normalized_aqc = Advisor::EstimateNormalizedAqc(queries, answers);

  if (!advisor_.ShouldBuild(info.normalized_aqc)) {
    info.built = false;
    info_[key] = info;
    return info;
  }
  NS_ASSIGN_OR_RETURN(NeuroSketch sketch,
                      NeuroSketch::Train(queries, answers, config_));
  info.built = true;
  info.size_bytes = sketch.SizeBytes();
  sketches_.insert_or_assign(
      key, std::make_shared<const NeuroSketch>(std::move(sketch)));
  info_[key] = info;
  return info;
}

bool SketchCatalog::Has(const QueryFunctionSpec& spec) const {
  return sketches_.count(QueryFunctionKey::From(spec)) > 0;
}

std::shared_ptr<const NeuroSketch> SketchCatalog::Find(
    const QueryFunctionSpec& spec) const {
  auto it = sketches_.find(QueryFunctionKey::From(spec));
  return it == sketches_.end() ? nullptr : it->second;
}

HybridExecutor::Answer SketchCatalog::Execute(const QueryFunctionSpec& spec,
                                              const QueryInstance& q) const {
  HybridExecutor::Answer out;
  auto it = sketches_.find(QueryFunctionKey::From(spec));
  const size_t data_dim = engine_->table().num_columns();
  if (it != sketches_.end() && advisor_.ShouldUseSketch(q, data_dim)) {
    out.value = it->second->Answer(q);
    out.used_sketch = true;
    if (!std::isnan(out.value)) return out;
  }
  out.value = engine_->Answer(spec, q);
  out.used_sketch = false;
  return out;
}

std::vector<CatalogEntryInfo> SketchCatalog::Entries() const {
  std::vector<CatalogEntryInfo> out;
  out.reserve(info_.size());
  for (const auto& [key, info] : info_) out.push_back(info);
  return out;
}

std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
SketchCatalog::Sketches() const {
  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
      out;
  out.reserve(sketches_.size());
  for (const auto& [key, sketch] : sketches_) out.emplace_back(key, sketch);
  return out;
}

size_t SketchCatalog::TotalSizeBytes() const {
  size_t bytes = 0;
  for (const auto& [key, sketch] : sketches_) bytes += sketch->SizeBytes();
  return bytes;
}

}  // namespace neurosketch
