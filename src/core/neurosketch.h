// NeuroSketch (paper Sec. 4): the query-specialized neural framework.
//
// Preprocessing (Fig. 4): (1) partition & index the query space with a
// kd-tree (Alg. 2); (2) merge easy leaves using the AQC complexity proxy
// (Alg. 3); (3) train one MLP per remaining leaf on (query, answer) pairs
// (Alg. 4). Query time (Alg. 5): route the query instance down the kd-tree
// and run one forward pass.
#ifndef NEUROSKETCH_CORE_NEUROSKETCH_H_
#define NEUROSKETCH_CORE_NEUROSKETCH_H_

#include <atomic>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/partitioner.h"
#include "index/kdtree.h"
#include "nn/inference_plan.h"
#include "nn/mlp.h"
#include "nn/trainer.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/workload.h"
#include "util/metrics.h"
#include "util/status.h"

namespace neurosketch {
namespace internal {

/// \brief An atomic<bool> that is copyable/movable by value so classes
/// holding one keep their implicit copy and move operations. Copies
/// transfer the value, not any in-flight synchronization — fine for
/// "already materialized" latches whose protected state is copied along
/// with the flag in the same (externally synchronized) operation.
class MovableFlag {
 public:
  MovableFlag() = default;
  explicit MovableFlag(bool v) : v_(v) {}
  MovableFlag(const MovableFlag& o) : v_(o.load()) {}
  MovableFlag& operator=(const MovableFlag& o) {
    store(o.load());
    return *this;
  }
  bool load() const { return v_.load(std::memory_order_acquire); }
  void store(bool v) { v_.store(v, std::memory_order_release); }

 private:
  std::atomic<bool> v_{false};
};

}  // namespace internal

/// \brief Numeric tier the compiled inference plans execute in. kF64 is
/// the accuracy reference (bit-identical to the scalar Mlp path); kF32 is
/// the opt-in fast tier: half the flat-buffer footprint, twice the SIMD
/// lanes, validated against the f64 reference before it is allowed to
/// serve. kInt8 is the quantized tier: weights as int8 with calibrated
/// symmetric scales, int32 accumulation, f32 requantization — ~1/8 the
/// weight footprint — under the same validate-or-fallback contract
/// (falling back int8 -> f32 -> f64).
enum class PlanPrecision { kF64 = 0, kF32 = 1, kInt8 = 2 };

const char* PlanPrecisionName(PlanPrecision p);

/// \brief True when NEUROSKETCH_FORCE_F32_PLANS is set (CI hook): Train
/// upgrades default-precision (kF64) requests to the f32 tier. Exposed so
/// tests can key their expectations off the same predicate Train uses.
bool ForceF32PlansFromEnv();

/// \brief True when NEUROSKETCH_FORCE_INT8_PLANS is set (CI hook): Train
/// upgrades default-precision (kF64) requests to the int8 tier (which
/// itself may validate-and-fall-back to f32/f64). Takes priority over
/// NEUROSKETCH_FORCE_F32_PLANS when both are set.
bool ForceInt8PlansFromEnv();

struct NeuroSketchConfig {
  /// Partitioning (paper defaults: height 4, merge to s = 8 leaves).
  size_t tree_height = 4;
  size_t target_partitions = 8;
  AqcOptions aqc;

  /// Architecture (paper defaults: 5 layers, first 60 units, rest 30).
  size_t n_layers = 5;
  size_t l_first = 60;
  size_t l_rest = 30;

  nn::TrainConfig train;
  uint64_t seed = 17;

  /// Construction parallelism for every phase of Train — the kd-tree
  /// partition/merge, per-leaf training, and the narrow-tier
  /// calibrate/validate replays — on the shared pool: 0 = one job per
  /// hardware thread, 1 = sequential, n = at most n concurrent workers.
  /// Results are bit-identical for every setting: tree splits are pure
  /// functions of each node's query set, each leaf derives its init and
  /// shuffle seeds from its leaf id alone, and the sharded
  /// calibration/validation reductions (max / absmax / counts) are exact
  /// regardless of shard boundaries (see docs/ARCHITECTURE.md,
  /// "Construction pipeline").
  size_t train_threads = 0;

  /// Serving precision for the compiled plans. kF32 compiles both tiers,
  /// measures the max |f32 - f64| divergence over the training workload,
  /// and serves f32 only if it stays within `f32_error_bound`; otherwise
  /// the sketch automatically falls back to f64. kInt8 calibrates
  /// per-layer activation ranges over the training workload, quantizes,
  /// and validates against `int8_error_bound`; when out of bound it falls
  /// back to the f32 tier (which validates in turn, chaining down to
  /// f64). (The environment variables NEUROSKETCH_FORCE_F32_PLANS=1 /
  /// NEUROSKETCH_FORCE_INT8_PLANS=1 upgrade kF64 requests so CI can run
  /// the whole suite on each tier.)
  PlanPrecision plan_precision = PlanPrecision::kF64;

  /// Max tolerated |f32 - f64| divergence, measured in standardized (per-
  /// leaf z-score) units — the space the MLPs are trained in — so the
  /// bound is scale-free across query functions. Divergence in answer
  /// units is this times the leaf's target scale. Typical measured values
  /// are ~1e-6..1e-5; the default leaves two orders of magnitude headroom
  /// while still catching pathological f32 blow-ups.
  double f32_error_bound = 1e-3;

  /// Max tolerated |int8 - f64| divergence, standardized units (same
  /// space as f32_error_bound). Int8 quantization error is inherently
  /// larger than f32 rounding: with 127 symmetric levels per layer
  /// compounding through the paper-default depth, measured divergence is
  /// typically ~0.05-0.1 (see int8_tier.max_divergence in
  /// BENCH_serving.json). The default gives ~2.5x headroom over that
  /// while still rejecting calibration blow-ups. Tighten it to push
  /// accuracy-critical deployments down the fallback chain to f32/f64.
  double int8_error_bound = 0.25;
};

/// \brief A trained NeuroSketch for one query function.
class NeuroSketch {
 public:
  /// Per-phase wall times of the construction pipeline. Every phase runs
  /// on the shared pool under `NeuroSketchConfig::train_threads`:
  /// partition (kd-tree build + AQC merge), train (per-leaf MLP training +
  /// plan compilation), calibrate (the narrow-tier validate-or-calibrate
  /// replays; 0 when the sketch trains at the default f64 precision).
  struct BuildStats {
    double partition_seconds = 0.0;
    double train_seconds = 0.0;
    double calibrate_seconds = 0.0;
    std::vector<double> leaf_aqc;  // per final leaf
    size_t num_partitions = 0;
    size_t training_queries = 0;
  };

  NeuroSketch() = default;

  /// \brief Train from a precomputed training set. `answers[i]` must be
  /// f_D(queries[i]); NaN answers are dropped. All queries must share the
  /// same dimensionality.
  static Result<NeuroSketch> Train(const std::vector<QueryInstance>& queries,
                                   const std::vector<double>& answers,
                                   const NeuroSketchConfig& config);

  /// \brief Convenience: generate `num_train` queries from `workload`,
  /// answer them exactly with `engine`, then train.
  static Result<NeuroSketch> TrainFromEngine(const ExactEngine& engine,
                                             const QueryFunctionSpec& spec,
                                             WorkloadGenerator* workload,
                                             size_t num_train,
                                             const NeuroSketchConfig& config);

  /// \brief Partial rebuild for the streaming refresh path: retrain only
  /// `leaf_ids` on the FIXED kd-tree partition, leaving every other
  /// leaf's parameters untouched bit-for-bit. `answers[i]` must be
  /// f_D(queries[i]) on the *current* data (base + delta); queries route
  /// through the existing tree to re-gather each leaf's training set, the
  /// leaf's target standardization is recomputed, and its model retrains
  /// with the identical seed derivation Train uses (init seed
  /// `config.seed + leaf_id`, shuffle seed `config.train.seed +
  /// leaf_id * 1000003`), so retraining leaf L here is bit-identical to
  /// what a clean rebuild over the same partition would produce for L.
  /// Runs per-leaf training in parallel on the shared pool under
  /// `config.train_threads`. The narrow plan tiers were validated against
  /// the old leaf models, so they are dropped and rebuilt through the
  /// same validate-or-fallback chain as Train (int8 -> f32 -> f64) over
  /// `queries`; SizeBytes()==Save() stays pinned throughout. NOT
  /// thread-safe with concurrent Answer calls — the serving path retrains
  /// a copy and atomically swaps it into the store.
  Status RetrainLeaves(const std::vector<int>& leaf_ids,
                       const std::vector<QueryInstance>& queries,
                       const std::vector<double>& answers,
                       const NeuroSketchConfig& config);

  /// \brief Alg. 5: answer one query with a kd-tree route + forward pass.
  /// Runs on the compiled plan of the active precision tier: zero heap
  /// allocations once the calling thread's workspace is warm.
  double Answer(const QueryInstance& q) const;

  /// \brief Reference implementation of Answer on the uncompiled Mlp
  /// (Matrix-allocating scalar path, always f64). Bit-identical to Answer
  /// when the active precision is kF64; kept for golden equivalence tests,
  /// f32 validation, and scalar-vs-plan benchmarks.
  double AnswerScalar(const QueryInstance& q) const;

  std::vector<double> AnswerBatch(
      const std::vector<QueryInstance>& queries) const;

  /// \brief Batched variant: routes all queries first, then runs one
  /// batched forward pass per partition model. Identical answers to
  /// AnswerBatch, amortizing per-call overhead for analytics-style bursts.
  std::vector<double> AnswerBatchVectorized(
      const std::vector<QueryInstance>& queries) const;

  /// \brief Allocation-free core of AnswerBatchVectorized: writes
  /// queries.size() answers to `out` (caller-owned), staging all bucketing
  /// scratch in the thread-local workspace arena. Zero heap allocations
  /// once the calling thread's arena is warm.
  void AnswerBatchVectorizedTo(const std::vector<QueryInstance>& queries,
                               double* out) const;

  /// \brief Serialized model size in bytes — the paper's storage metric.
  /// Exactly the number of bytes Save() writes. Independent of which
  /// tiers happen to be materialized in memory (ResidentBytes() tracks
  /// that): parameters serialize in f64 with tier metadata either way.
  size_t SizeBytes() const;

  /// \brief Bytes this sketch currently holds in memory: the routing
  /// block, per-leaf scales, every *materialized* plan tier, the int8
  /// calibration record, and (when resident) the trainable Mlp forms
  /// (parameters + gradient buffers; training activation caches are
  /// transient and excluded). Unlike SizeBytes() this moves with
  /// EnsureTier/ReleaseTier/ReleaseTrainer — it is the admission unit of
  /// the serving buffer pool.
  size_t ResidentBytes() const;

  size_t num_partitions() const { return plans_.size(); }
  const BuildStats& stats() const { return stats_; }
  size_t query_dim() const { return tree_.query_dim(); }
  /// \brief The routing kd-tree (read-only). Lets tests and tools compare
  /// partitions structurally (e.g. EncodeRouting between builds).
  const QuerySpaceKdTree& tree() const { return tree_; }

  /// \brief True once every leaf model has a compiled inference plan
  /// (always the case after Train or Load).
  bool compiled() const { return !plans_.empty(); }

  /// \brief The precision tier Answer / AnswerBatch* currently serve from.
  PlanPrecision plan_precision() const { return precision_; }
  /// \brief True when the sketch *carries* the tier: validated at train
  /// time and deterministically rebuildable from the f64 parameters (f32
  /// by narrowing, int8 by re-quantizing with the saved calibration
  /// scales). Carrying a tier does not imply it is materialized — see
  /// TierResident / EnsureTier / ReleaseTier.
  bool has_f32_plans() const { return f32_available_; }
  bool has_int8_plans() const { return int8_available_; }

  /// \brief True when the tier's compiled plans are resident right now.
  /// kF64 plans are the canonical in-memory parameter store and are
  /// always resident on a warm sketch.
  bool TierResident(PlanPrecision precision) const {
    switch (precision) {
      case PlanPrecision::kF32:
        return !plans_f32_.empty();
      case PlanPrecision::kInt8:
        return !plans_i8_.empty();
      case PlanPrecision::kF64:
        break;
    }
    return !plans_.empty();
  }

  /// \brief True when the trainable Mlp forms (the scalar reference path)
  /// are resident. Train leaves them resident; Load does not — they
  /// rebuild lazily (bit-exactly, via CompiledMlp::ToMlp) on the first
  /// AnswerScalar, or explicitly via EnsureTrainer.
  bool trainer_resident() const { return trainer_ready_.load(); }
  /// \brief Max |f32 - f64| divergence measured by the last f32
  /// validation pass, in standardized units (0 when never validated).
  double f32_max_divergence() const { return f32_max_divergence_; }
  double f32_error_bound() const { return f32_error_bound_; }
  /// \brief Max |int8 - f64| divergence measured by the last int8
  /// validation pass, standardized units (0 when never validated).
  double int8_max_divergence() const { return int8_max_divergence_; }
  double int8_error_bound() const { return int8_error_bound_; }

  /// \brief Per-leaf int8 calibration records (per-layer input absmax).
  /// Empty when the sketch does not carry the int8 tier; a leaf with no
  /// calibration coverage contributes an empty inner vector. This is the
  /// canonical record — it stays resident (it is tiny) even when the int8
  /// plans themselves are released, so EnsureTier can re-quantize without
  /// touching disk. Exposed so tests can pin the calibration scales
  /// bit-for-bit across thread counts.
  const std::vector<std::vector<double>>& Int8CalibrationScales() const {
    return int8_absmax_;
  }

  /// \brief Multiply every int8 calibration absmax by `factor` and
  /// re-quantize the int8 plans from the perturbed record. A fault
  /// hook for drift tests: a large factor models calibration scales that
  /// no longer match the served data distribution (the quantization grid
  /// coarsens by `factor`), which the refresh validation gate must catch
  /// and answer with a tier demotion. InvalidArgument when the sketch
  /// does not carry the int8 tier or `factor` is not positive. Same
  /// thread-safety contract as EnsureTier: must happen-before concurrent
  /// Answer calls.
  Status RescaleInt8Calibration(double factor);

  /// \brief Resident bytes of a tier's compiled flat buffers (0 when that
  /// tier is not materialized). The f32 tier is half the f64 tier.
  size_t PlanBytes(PlanPrecision precision) const;

  /// \brief Materialize a carried tier's compiled plans if they are not
  /// resident: f32 narrows the f64 parameters, int8 re-quantizes them
  /// with the saved calibration scales — both deterministic, so the
  /// rebuilt plans are bit-identical to the ones Train validated.
  /// InvalidArgument when the sketch does not carry the tier (never
  /// validated, or validation dropped it). kF64 is always resident on a
  /// warm sketch and returns OK. NOT thread-safe: like SelectPrecision,
  /// tier mutation must happen-before concurrent Answer calls (the serve
  /// path materializes before publishing a faulted-in sketch).
  Status EnsureTier(PlanPrecision precision);

  /// \brief Drop a materialized tier's compiled plans, returning the
  /// bytes freed (ResidentBytes() shrinks by exactly that much). The
  /// tier stays carried — EnsureTier rebuilds it bit-identically on
  /// demand. Refuses (returns 0) for kF64 — the canonical parameter
  /// store; shedding it means going cold, i.e. dropping the whole sketch
  /// and re-Loading later — and for the currently active tier. Same
  /// thread-safety contract as EnsureTier.
  size_t ReleaseTier(PlanPrecision precision);

  /// \brief Materialize the trainable Mlp forms from the compiled f64
  /// plans (bit-exact; parameters round-trip through ToMlp). Safe to
  /// call concurrently with const use — AnswerScalar calls it lazily.
  void EnsureTrainer() const;

  /// \brief Drop the trainable Mlp forms, returning the bytes freed.
  /// AnswerScalar transparently rebuilds them later; Answer and the
  /// batched paths never need them. Same thread-safety contract as
  /// EnsureTier.
  size_t ReleaseTrainer();

  /// \brief Compile the f32 plan tier and validate it against the f64
  /// reference on `validation` queries. Activates f32 serving and returns
  /// true iff the measured max divergence stays within `error_bound`;
  /// otherwise drops the f32 plans and stays on (or reverts to) f64. The
  /// measured divergence is available from f32_max_divergence() either
  /// way. The validation replay shards across `num_threads` workers on
  /// the shared pool (0 = hardware concurrency); per-shard maxima combine
  /// in fixed shard order, so the record is bit-identical to a serial
  /// sweep for every thread count.
  bool EnableF32(const std::vector<QueryInstance>& validation,
                 double error_bound, size_t num_threads = 0);

  /// \brief Compile the int8 plan tier: calibrate per-layer activation
  /// ranges by replaying `validation` through the f64 plans, quantize
  /// each leaf (leaves with no calibration coverage keep serving their
  /// f64 plan — int8 is never served uncalibrated), and validate the max
  /// standardized-unit divergence against `error_bound`. Activates int8
  /// serving and returns true iff in bound; otherwise drops the int8
  /// plans. The measured divergence is available from
  /// int8_max_divergence() either way. Both replays shard across
  /// `num_threads` workers (0 = hardware concurrency); per-shard absmax /
  /// coverage / divergence reductions combine in fixed shard order, so
  /// calibration scales and the validation record are bit-identical to a
  /// serial sweep for every thread count.
  bool EnableInt8(const std::vector<QueryInstance>& validation,
                  double error_bound, size_t num_threads = 0);

  /// \brief Switch the active serving tier. kF32/kInt8 require that
  /// tier's plans (compiled by Train with the matching plan_precision,
  /// EnableF32/EnableInt8, or Load of a sketch carrying the tier).
  Status SelectPrecision(PlanPrecision precision);

  /// \brief Mirror the construction-side record — BuildStats phase wall
  /// times, partition/AQC shape, per-tier validation divergences and
  /// bounds, plan footprints, and the active precision tier — into
  /// `registry` under `prefix`, so `nsketch_cli` and the benches emit one
  /// uniform metrics document covering build and serve.
  void ExportBuildMetrics(metrics::MetricsRegistry* registry,
                          const std::string& prefix = "nsketch_build_") const;

  /// \brief Serialize / deserialize the full sketch (routing + scales +
  /// model parameters + precision tier + int8 calibration scales).
  /// Parameters are always stored in f64 — the accuracy reference — and
  /// narrow tiers deterministically rebuild from them on Load (f32 by
  /// narrowing, int8 by re-quantizing with the saved calibration
  /// absmax), so round-trips are bit-exact in every tier. Load comes up
  /// warm-and-lean: only the active tier's plans are materialized
  /// (carried inactive tiers rebuild through EnsureTier) and the
  /// trainable Mlp forms rebuild lazily on first AnswerScalar. The
  /// stream variants serve the paged catalog format, which concatenates
  /// many sketch images into one file.
  Status Save(const std::string& path) const;
  Status SaveTo(std::ostream* out) const;
  static Result<NeuroSketch> Load(const std::string& path);
  static Result<NeuroSketch> LoadFrom(std::istream* in);

 private:
  size_t TrainerBytes() const;

  QuerySpaceKdTree tree_;
  /// Trainable/reference forms, indexed by leaf_id. Mutable + latch:
  /// rebuilt lazily (and bit-exactly) from plans_ under a rebuild mutex
  /// when a const caller needs the scalar reference path after Load or
  /// ReleaseTrainer.
  mutable std::vector<nn::Mlp> models_;
  mutable internal::MovableFlag trainer_ready_;
  std::vector<nn::CompiledMlp> plans_;  // serving form, same indexing
  std::vector<nn::CompiledMlpF32> plans_f32_;  // opt-in fast tier
  std::vector<nn::CompiledMlpI8> plans_i8_;    // opt-in quantized tier
  /// Tier availability (carried, validated, rebuildable) — survives
  /// ReleaseTier, which only drops the materialized plans.
  bool f32_available_ = false;
  bool int8_available_ = false;
  /// Canonical int8 calibration record (per leaf, per layer input
  /// absmax; empty inner vector = uncovered leaf). Source of truth for
  /// Save and for EnsureTier(kInt8) re-quantization.
  std::vector<std::vector<double>> int8_absmax_;
  size_t routing_doubles_ = 0;  // EncodeRouting().size(), cached
  std::vector<double> target_mean_;     // per-leaf target standardization
  std::vector<double> target_scale_;
  PlanPrecision precision_ = PlanPrecision::kF64;
  double f32_error_bound_ = 0.0;     // bound in effect when validated
  double f32_max_divergence_ = 0.0;  // measured by the validation pass
  double int8_error_bound_ = 0.0;     // int8 validation record
  double int8_max_divergence_ = 0.0;
  BuildStats stats_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_NEUROSKETCH_H_
