// NeuroSketch (paper Sec. 4): the query-specialized neural framework.
//
// Preprocessing (Fig. 4): (1) partition & index the query space with a
// kd-tree (Alg. 2); (2) merge easy leaves using the AQC complexity proxy
// (Alg. 3); (3) train one MLP per remaining leaf on (query, answer) pairs
// (Alg. 4). Query time (Alg. 5): route the query instance down the kd-tree
// and run one forward pass.
#ifndef NEUROSKETCH_CORE_NEUROSKETCH_H_
#define NEUROSKETCH_CORE_NEUROSKETCH_H_

#include <string>
#include <vector>

#include "core/partitioner.h"
#include "index/kdtree.h"
#include "nn/inference_plan.h"
#include "nn/mlp.h"
#include "nn/trainer.h"
#include "query/engine.h"
#include "query/query.h"
#include "query/workload.h"
#include "util/status.h"

namespace neurosketch {

struct NeuroSketchConfig {
  /// Partitioning (paper defaults: height 4, merge to s = 8 leaves).
  size_t tree_height = 4;
  size_t target_partitions = 8;
  AqcOptions aqc;

  /// Architecture (paper defaults: 5 layers, first 60 units, rest 30).
  size_t n_layers = 5;
  size_t l_first = 60;
  size_t l_rest = 30;

  nn::TrainConfig train;
  uint64_t seed = 17;

  /// Per-leaf training parallelism: 0 = one job per hardware thread (the
  /// shared pool), 1 = sequential, n = at most n concurrent leaf trainers.
  /// Results are bit-identical for every setting: each leaf derives its
  /// init and shuffle seeds from its leaf id alone.
  size_t train_threads = 0;
};

/// \brief A trained NeuroSketch for one query function.
class NeuroSketch {
 public:
  struct BuildStats {
    double partition_seconds = 0.0;
    double train_seconds = 0.0;
    std::vector<double> leaf_aqc;  // per final leaf
    size_t num_partitions = 0;
    size_t training_queries = 0;
  };

  NeuroSketch() = default;

  /// \brief Train from a precomputed training set. `answers[i]` must be
  /// f_D(queries[i]); NaN answers are dropped. All queries must share the
  /// same dimensionality.
  static Result<NeuroSketch> Train(const std::vector<QueryInstance>& queries,
                                   const std::vector<double>& answers,
                                   const NeuroSketchConfig& config);

  /// \brief Convenience: generate `num_train` queries from `workload`,
  /// answer them exactly with `engine`, then train.
  static Result<NeuroSketch> TrainFromEngine(const ExactEngine& engine,
                                             const QueryFunctionSpec& spec,
                                             WorkloadGenerator* workload,
                                             size_t num_train,
                                             const NeuroSketchConfig& config);

  /// \brief Alg. 5: answer one query with a kd-tree route + forward pass.
  /// Runs on the compiled plan: zero heap allocations once the calling
  /// thread's workspace is warm.
  double Answer(const QueryInstance& q) const;

  /// \brief Reference implementation of Answer on the uncompiled Mlp
  /// (Matrix-allocating scalar path). Bit-identical to Answer; kept for
  /// golden equivalence tests and scalar-vs-plan benchmarks.
  double AnswerScalar(const QueryInstance& q) const;

  std::vector<double> AnswerBatch(
      const std::vector<QueryInstance>& queries) const;

  /// \brief Batched variant: routes all queries first, then runs one
  /// batched forward pass per partition model. Identical answers to
  /// AnswerBatch, amortizing per-call overhead for analytics-style bursts.
  std::vector<double> AnswerBatchVectorized(
      const std::vector<QueryInstance>& queries) const;

  /// \brief Total model size in bytes (all MLPs + routing structure), the
  /// paper's storage metric.
  size_t SizeBytes() const;

  size_t num_partitions() const { return models_.size(); }
  const BuildStats& stats() const { return stats_; }
  size_t query_dim() const { return tree_.query_dim(); }

  /// \brief True once every leaf model has a compiled inference plan
  /// (always the case after Train or Load).
  bool compiled() const {
    return !plans_.empty() && plans_.size() == models_.size();
  }

  /// \brief Serialize / deserialize the full sketch (routing + scales +
  /// model parameters). Round-trips bit-exactly.
  Status Save(const std::string& path) const;
  static Result<NeuroSketch> Load(const std::string& path);

 private:
  QuerySpaceKdTree tree_;
  std::vector<nn::Mlp> models_;  // indexed by leaf_id; training/reference
  std::vector<nn::CompiledMlp> plans_;  // serving form, same indexing
  std::vector<double> target_mean_;     // per-leaf target standardization
  std::vector<double> target_scale_;
  BuildStats stats_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_NEUROSKETCH_H_
