// SketchCatalog: the database-maintenance view of NeuroSketch (Sec. 4.3).
// A query processing engine registers the query functions it sees, the
// catalog decides which to build sketches for (AQC-gated, via Advisor),
// trains and stores them keyed by query-function identity, and dispatches
// incoming queries to a sketch or the exact engine.
#ifndef NEUROSKETCH_CORE_CATALOG_H_
#define NEUROSKETCH_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/advisor.h"
#include "core/neurosketch.h"
#include "query/engine.h"
#include "query/workload.h"

namespace neurosketch {

/// \brief Identity of a query function for catalog lookup: aggregation +
/// measure column + predicate family name.
struct QueryFunctionKey {
  std::string predicate_name;
  Aggregate agg;
  size_t measure_col;

  bool operator<(const QueryFunctionKey& other) const {
    return std::tie(predicate_name, agg, measure_col) <
           std::tie(other.predicate_name, other.agg, other.measure_col);
  }
  static QueryFunctionKey From(const QueryFunctionSpec& spec);
};

/// \brief One sketch's slot in a paged catalog file: its query-function
/// identity plus where its serialized image lives in the file.
struct PagedCatalogEntry {
  QueryFunctionKey key;
  uint64_t offset = 0;      // byte offset of the sketch image
  uint64_t size_bytes = 0;  // exact image length (== NeuroSketch::SizeBytes)
};

/// \brief Pack N sketches into one paged catalog file: a magic + count
/// header, an offset index (one entry per key), then the concatenated
/// NeuroSketch::Save images. The paged serving path
/// (serve/SketchStore::AttachPagedCatalog) memory-maps nothing and keeps
/// nothing resident — cold sketches fault in through a buffer pool by
/// seeking to their offset. Offsets are computed from SizeBytes(), which
/// is pinned to equal Save()'s byte count exactly; the writer verifies
/// this per entry and fails loudly on drift.
Status WritePagedCatalog(
    const std::string& path,
    const std::vector<std::pair<QueryFunctionKey,
                                std::shared_ptr<const NeuroSketch>>>&
        sketches);

/// \brief Read side of the paged catalog format: parses the index on
/// Open, loads individual sketches on demand. LoadEntry is const and
/// thread-safe (each call opens its own stream), so many pool loaders
/// can fault in concurrently.
class PagedCatalogReader {
 public:
  PagedCatalogReader() = default;

  static Result<PagedCatalogReader> Open(const std::string& path);

  const std::vector<PagedCatalogEntry>& entries() const { return entries_; }
  const std::string& path() const { return path_; }

  /// \brief Deserialize one sketch image (seek + bounded read +
  /// NeuroSketch::LoadFrom). The loaded sketch is warm-and-lean: active
  /// tier materialized, trainer and inactive tiers cold.
  Result<NeuroSketch> LoadEntry(const PagedCatalogEntry& entry) const;

 private:
  std::string path_;
  std::vector<PagedCatalogEntry> entries_;
};

/// \brief Outcome of a maintenance pass for one query function.
struct CatalogEntryInfo {
  QueryFunctionKey key;
  double normalized_aqc = 0.0;
  bool built = false;
  size_t size_bytes = 0;
};

/// \brief Manages per-query-function sketches over one table.
class SketchCatalog {
 public:
  /// \brief The engine (and its table) must outlive the catalog.
  SketchCatalog(const ExactEngine* engine, Advisor advisor,
                NeuroSketchConfig config)
      : engine_(engine), advisor_(advisor), config_(std::move(config)) {}

  /// \brief Maintenance: estimate the query function's AQC from a sampled
  /// workload; build and register a sketch when the advisor approves.
  /// Returns what happened either way.
  Result<CatalogEntryInfo> Register(const QueryFunctionSpec& spec,
                                    WorkloadGenerator* workload,
                                    size_t num_train);

  /// \brief True when a sketch exists for this query function.
  bool Has(const QueryFunctionSpec& spec) const;

  /// \brief The sketch built for this query function, or nullptr. Shared
  /// ownership lets callers (e.g. serve/SketchStore) keep serving a sketch
  /// even if the catalog later rebuilds the entry.
  std::shared_ptr<const NeuroSketch> Find(const QueryFunctionSpec& spec) const;

  /// \brief Query dispatch: the sketch when present AND the advisor's
  /// per-instance rule passes; otherwise the exact engine.
  HybridExecutor::Answer Execute(const QueryFunctionSpec& spec,
                                 const QueryInstance& q) const;

  /// \brief Registered entries (built or rejected), for inspection.
  std::vector<CatalogEntryInfo> Entries() const;

  /// \brief Every built sketch with its key, for export into a serving
  /// store (serve/SketchStore::ImportFromCatalog).
  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
  Sketches() const;

  /// \brief Pack every built sketch into a paged catalog file at `path`
  /// (WritePagedCatalog over Sketches()).
  Status PackTo(const std::string& path) const {
    return WritePagedCatalog(path, Sketches());
  }

  size_t num_sketches() const { return sketches_.size(); }
  size_t TotalSizeBytes() const;

 private:
  const ExactEngine* engine_;
  Advisor advisor_;
  NeuroSketchConfig config_;
  std::map<QueryFunctionKey, std::shared_ptr<const NeuroSketch>> sketches_;
  std::map<QueryFunctionKey, CatalogEntryInfo> info_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_CORE_CATALOG_H_
