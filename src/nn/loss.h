// Loss functions. Training uses MSE as in Alg. 4 of the paper.
#ifndef NEUROSKETCH_NN_LOSS_H_
#define NEUROSKETCH_NN_LOSS_H_

#include "tensor/matrix.h"

namespace neurosketch {
namespace nn {

/// \brief Mean squared error over all elements; also emits dL/dpred.
/// L = (1/N) Σ (pred - target)^2, dL/dpred = (2/N)(pred - target).
double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

/// \brief Mean absolute error; subgradient 0 at exact ties.
double MaeLoss(const Matrix& pred, const Matrix& target, Matrix* grad);

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_LOSS_H_
