#include "nn/construction.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace neurosketch {
namespace nn {

namespace {
inline double Relu(double x) { return x > 0.0 ? x : 0.0; }
}  // namespace

std::vector<size_t> GUnitNetwork::VertexDigits(size_t index, size_t d,
                                               size_t t) {
  std::vector<size_t> digits(d, 0);
  const size_t base = t + 1;
  for (size_t r = d; r-- > 0;) {
    digits[r] = index % base;
    index /= base;
  }
  return digits;
}

Result<GUnitNetwork> GUnitNetwork::Construct(const TargetFn& f, size_t d,
                                             size_t t, double big_m) {
  if (d == 0) return Status::InvalidArgument("d must be >= 1");
  if (t == 0) return Status::InvalidArgument("t must be >= 1");
  if (big_m < 1.0) return Status::InvalidArgument("M must be >= 1");
  // Guard against exponential blow-up: (t+1)^d units.
  double units = std::pow(static_cast<double>(t + 1), static_cast<double>(d));
  if (units > 2e6) {
    return Status::OutOfRange("(t+1)^d too large: " + std::to_string(units));
  }

  GUnitNetwork net(d, t, big_m);
  const size_t k = static_cast<size_t>(units);
  net.a_.assign(k - 1, 0.0);
  net.b_.assign((k - 1) * d, 0.0);

  // Line 1 of Alg. 1: the output bias memorizes the origin vertex.
  std::vector<double> x(d, 0.0);
  net.bias_ = f(x);

  // Lines 2-6: enumerate vertices in π ordering; each iteration fixes one
  // g-unit so that π^i/t is memorized without disturbing earlier vertices.
  for (size_t i = 1; i < k; ++i) {
    const std::vector<size_t> digits = VertexDigits(i, d, t);
    for (size_t r = 0; r < d; ++r) {
      x[r] = static_cast<double>(digits[r]) / static_cast<double>(t);
      net.b_[(i - 1) * d + r] = x[r];
    }
    // ŷ = b + Σ_{j<i} ĝ_j(π^i/t); units j >= i still have a_j = 0 so the
    // full Evaluate gives the same value.
    const double y_hat = net.Evaluate(x);
    net.a_[i - 1] =
        static_cast<double>(t) * (f(x) - y_hat);
  }
  return net;
}

double GUnitNetwork::EvalUnit(size_t i, const double* x) const {
  const double* bi = &b_[i * d_];
  double inner = 1.0 / static_cast<double>(t_);
  for (size_t r = 0; r < d_; ++r) {
    inner -= big_m_ * Relu(bi[r] - x[r]);
  }
  return a_[i] * Relu(inner);
}

double GUnitNetwork::Evaluate(const std::vector<double>& x) const {
  double y = bias_;
  for (size_t i = 0; i < a_.size(); ++i) y += EvalUnit(i, x.data());
  return y;
}

double GUnitNetwork::TrainSgd(const Matrix& inputs, const Matrix& targets,
                              size_t epochs, size_t batch_size, double lr,
                              uint64_t seed) {
  const size_t n = inputs.rows();
  if (n == 0 || inputs.cols() != d_) return 0.0;
  Rng rng(seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  batch_size = std::max<size_t>(1, std::min(batch_size, n));

  std::vector<double> da(a_.size()), db(b_.size());
  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t off = 0; off < n; off += batch_size) {
      const size_t sz = std::min(batch_size, n - off);
      std::fill(da.begin(), da.end(), 0.0);
      std::fill(db.begin(), db.end(), 0.0);
      double dbias = 0.0;
      double loss = 0.0;
      for (size_t s = 0; s < sz; ++s) {
        const double* x = inputs.row(order[off + s]);
        const double target = targets(order[off + s], 0);
        // Forward with cached unit pre-activations.
        double y = bias_;
        std::vector<double> s_pre(a_.size());
        for (size_t i = 0; i < a_.size(); ++i) {
          const double* bi = &b_[i * d_];
          double inner = 1.0 / static_cast<double>(t_);
          for (size_t r = 0; r < d_; ++r) inner -= big_m_ * Relu(bi[r] - x[r]);
          s_pre[i] = inner;
          y += a_[i] * Relu(inner);
        }
        const double diff = y - target;
        loss += diff * diff;
        const double g = 2.0 * diff / static_cast<double>(sz);
        dbias += g;
        for (size_t i = 0; i < a_.size(); ++i) {
          if (s_pre[i] <= 0.0) continue;
          da[i] += g * s_pre[i];
          const double* bi = &b_[i * d_];
          for (size_t r = 0; r < d_; ++r) {
            if (bi[r] - x[r] > 0.0) {
              db[i * d_ + r] += g * a_[i] * (-big_m_);
            }
          }
        }
      }
      bias_ -= lr * dbias;
      for (size_t i = 0; i < a_.size(); ++i) a_[i] -= lr * da[i];
      for (size_t i = 0; i < b_.size(); ++i) b_[i] -= lr * db[i];
      epoch_loss += loss / static_cast<double>(sz);
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches);
  }
  return epoch_loss;
}

}  // namespace nn
}  // namespace neurosketch
