#include "nn/inference_plan.h"

#include <algorithm>
#include <cassert>

namespace neurosketch {
namespace nn {

Workspace& Workspace::ThreadLocal() {
  thread_local Workspace ws;
  return ws;
}

CompiledMlp CompiledMlp::FromConfig(const MlpConfig& config) {
  CompiledMlp plan;
  plan.config_ = config;
  size_t prev = config.in_dim;
  size_t off = 0;
  auto add_layer = [&](size_t out, Activation act) {
    PlanLayer meta;
    meta.in = prev;
    meta.out = out;
    meta.act = act;
    meta.w_off = off;
    off += prev * out;
    meta.b_off = off;
    off += out;
    plan.layers_.push_back(meta);
    plan.max_width_ = std::max(plan.max_width_, out);
    prev = out;
  };
  for (size_t h : config.hidden) add_layer(h, config.hidden_act);
  add_layer(config.out_dim, Activation::kIdentity);
  plan.params_.assign(off, 0.0);
  return plan;
}

CompiledMlp CompiledMlp::FromMlp(const Mlp& model) {
  CompiledMlp plan = FromConfig(model.config());
  assert(plan.layers_.size() == model.layers().size());
  for (size_t i = 0; i < plan.layers_.size(); ++i) {
    const DenseLayer& layer = model.layers()[i];
    const PlanLayer& meta = plan.layers_[i];
    assert(layer.in_dim() == meta.in && layer.out_dim() == meta.out);
    std::copy(layer.weight().data(), layer.weight().data() + meta.in * meta.out,
              plan.params_.data() + meta.w_off);
    std::copy(layer.bias().data(), layer.bias().data() + meta.out,
              plan.params_.data() + meta.b_off);
  }
  return plan;
}

Mlp CompiledMlp::ToMlp() const {
  Mlp model(config_);
  assert(model.layers().size() == layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    DenseLayer& layer = model.layers()[i];
    const PlanLayer& meta = layers_[i];
    std::copy(params_.data() + meta.w_off,
              params_.data() + meta.w_off + meta.in * meta.out,
              layer.weight().data());
    std::copy(params_.data() + meta.b_off,
              params_.data() + meta.b_off + meta.out, layer.bias().data());
  }
  return model;
}

double CompiledMlp::PredictOne(const double* x, Workspace* ws) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  double* ping = ws->Ping(max_width_);
  double* pong = ws->Pong(max_width_);
  // The first layer reads the caller's input in place; subsequent layers
  // ping-pong between the two arena buffers.
  const double* cur = x;
  for (const PlanLayer& L : layers_) {
    FusedDenseForward(cur, 1, L.in, params_.data() + L.w_off,
                      params_.data() + L.b_off, L.act, ping, L.out);
    cur = ping;
    std::swap(ping, pong);
  }
  return cur[0];
}

void CompiledMlp::PredictBatch(const double* x, size_t rows, Workspace* ws,
                               double* out) const {
  assert(!layers_.empty());
  if (rows == 0) return;
  double* ping = ws->Ping(rows * max_width_);
  double* pong = ws->Pong(rows * max_width_);
  const double* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const PlanLayer& L = layers_[i];
    double* dst = (i + 1 == layers_.size()) ? out : ping;
    FusedDenseForward(cur, rows, L.in, params_.data() + L.w_off,
                      params_.data() + L.b_off, L.act, dst, L.out);
    cur = dst;
    std::swap(ping, pong);
  }
}

CompiledMlpF32 CompiledMlpF32::FromPlan(const CompiledMlp& plan) {
  CompiledMlpF32 f32;
  f32.config_ = plan.config();
  f32.layers_ = plan.layers();
  f32.max_width_ = plan.max_width();
  f32.params_.resize(plan.params().size());
  for (size_t i = 0; i < f32.params_.size(); ++i) {
    f32.params_[i] = static_cast<float>(plan.params()[i]);
  }
  return f32;
}

double CompiledMlpF32::PredictOne(const double* x, Workspace* ws) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  float* ping = ws->PingF(max_width_);
  float* pong = ws->PongF(max_width_);
  // Narrow the caller's doubles into the arena once; the layer loop then
  // runs entirely in float.
  float* xin = ws->InputF(config_.in_dim);
  for (size_t i = 0; i < config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  const float* cur = xin;
  for (const PlanLayer& L : layers_) {
    FusedDenseForwardF32(cur, 1, L.in, params_.data() + L.w_off,
                         params_.data() + L.b_off, L.act, ping, L.out);
    cur = ping;
    std::swap(ping, pong);
  }
  return static_cast<double>(cur[0]);
}

void CompiledMlpF32::PredictBatch(const double* x, size_t rows, Workspace* ws,
                                  double* out) const {
  assert(!layers_.empty());
  if (rows == 0) return;
  float* ping = ws->PingF(rows * max_width_);
  float* pong = ws->PongF(rows * max_width_);
  float* xin = ws->InputF(rows * config_.in_dim);
  for (size_t i = 0; i < rows * config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  float* staged = ws->OutputF(rows * config_.out_dim);
  const float* cur = xin;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const PlanLayer& L = layers_[i];
    float* dst = (i + 1 == layers_.size()) ? staged : ping;
    FusedDenseForwardF32(cur, rows, L.in, params_.data() + L.w_off,
                         params_.data() + L.b_off, L.act, dst, L.out);
    cur = dst;
    std::swap(ping, pong);
  }
  for (size_t i = 0; i < rows * config_.out_dim; ++i) {
    out[i] = static_cast<double>(staged[i]);
  }
}

}  // namespace nn
}  // namespace neurosketch
