#include "nn/inference_plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace neurosketch {
namespace nn {

Workspace& Workspace::ThreadLocal() {
  thread_local Workspace ws;
  return ws;
}

void CombineLayerAbsmax(std::vector<std::vector<double>>* dst,
                        const std::vector<std::vector<double>>& src) {
  assert(dst->size() == src.size());
  for (size_t i = 0; i < src.size(); ++i) {
    std::vector<double>& d = (*dst)[i];
    const std::vector<double>& s = src[i];
    assert(d.size() == s.size());
    for (size_t l = 0; l < s.size(); ++l) {
      if (s[l] > d[l]) d[l] = s[l];
    }
  }
}

CompiledMlp CompiledMlp::FromConfig(const MlpConfig& config) {
  CompiledMlp plan;
  plan.config_ = config;
  size_t prev = config.in_dim;
  size_t off = 0;
  auto add_layer = [&](size_t out, Activation act) {
    PlanLayer meta;
    meta.in = prev;
    meta.out = out;
    meta.act = act;
    meta.w_off = off;
    off += prev * out;
    meta.b_off = off;
    off += out;
    plan.layers_.push_back(meta);
    plan.max_width_ = std::max(plan.max_width_, out);
    prev = out;
  };
  for (size_t h : config.hidden) add_layer(h, config.hidden_act);
  add_layer(config.out_dim, Activation::kIdentity);
  plan.params_.assign(off, 0.0);
  return plan;
}

CompiledMlp CompiledMlp::FromMlp(const Mlp& model) {
  CompiledMlp plan = FromConfig(model.config());
  assert(plan.layers_.size() == model.layers().size());
  for (size_t i = 0; i < plan.layers_.size(); ++i) {
    const DenseLayer& layer = model.layers()[i];
    const PlanLayer& meta = plan.layers_[i];
    assert(layer.in_dim() == meta.in && layer.out_dim() == meta.out);
    std::copy(layer.weight().data(), layer.weight().data() + meta.in * meta.out,
              plan.params_.data() + meta.w_off);
    std::copy(layer.bias().data(), layer.bias().data() + meta.out,
              plan.params_.data() + meta.b_off);
  }
  return plan;
}

Mlp CompiledMlp::ToMlp() const {
  Mlp model(config_);
  assert(model.layers().size() == layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    DenseLayer& layer = model.layers()[i];
    const PlanLayer& meta = layers_[i];
    std::copy(params_.data() + meta.w_off,
              params_.data() + meta.w_off + meta.in * meta.out,
              layer.weight().data());
    std::copy(params_.data() + meta.b_off,
              params_.data() + meta.b_off + meta.out, layer.bias().data());
  }
  return model;
}

double CompiledMlp::PredictOne(const double* x, Workspace* ws) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  double* ping = ws->Ping(max_width_);
  double* pong = ws->Pong(max_width_);
  // The first layer reads the caller's input in place; subsequent layers
  // ping-pong between the two arena buffers.
  const double* cur = x;
  for (const PlanLayer& L : layers_) {
    FusedDenseForward(cur, 1, L.in, params_.data() + L.w_off,
                      params_.data() + L.b_off, L.act, ping, L.out);
    cur = ping;
    std::swap(ping, pong);
  }
  return cur[0];
}

void CompiledMlp::PredictBatch(const double* x, size_t rows, Workspace* ws,
                               double* out) const {
  assert(!layers_.empty());
  if (rows == 0) return;
  double* ping = ws->Ping(rows * max_width_);
  double* pong = ws->Pong(rows * max_width_);
  const double* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const PlanLayer& L = layers_[i];
    double* dst = (i + 1 == layers_.size()) ? out : ping;
    FusedDenseForward(cur, rows, L.in, params_.data() + L.w_off,
                      params_.data() + L.b_off, L.act, dst, L.out);
    cur = dst;
    std::swap(ping, pong);
  }
}

double CompiledMlp::CalibrateOne(const double* x, Workspace* ws,
                                 double* layer_absmax) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  double* ping = ws->Ping(max_width_);
  double* pong = ws->Pong(max_width_);
  const double* cur = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const PlanLayer& L = layers_[l];
    for (size_t i = 0; i < L.in; ++i) {
      const double a = std::fabs(cur[i]);
      if (a > layer_absmax[l]) layer_absmax[l] = a;
    }
    FusedDenseForward(cur, 1, L.in, params_.data() + L.w_off,
                      params_.data() + L.b_off, L.act, ping, L.out);
    cur = ping;
    std::swap(ping, pong);
  }
  return cur[0];
}

CompiledMlpF32 CompiledMlpF32::FromPlan(const CompiledMlp& plan) {
  CompiledMlpF32 f32;
  f32.config_ = plan.config();
  f32.layers_ = plan.layers();
  f32.max_width_ = plan.max_width();
  f32.params_.resize(plan.params().size());
  for (size_t i = 0; i < f32.params_.size(); ++i) {
    f32.params_[i] = static_cast<float>(plan.params()[i]);
  }
  return f32;
}

double CompiledMlpF32::PredictOne(const double* x, Workspace* ws) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  float* ping = ws->PingF(max_width_);
  float* pong = ws->PongF(max_width_);
  // Narrow the caller's doubles into the arena once; the layer loop then
  // runs entirely in float.
  float* xin = ws->InputF(config_.in_dim);
  for (size_t i = 0; i < config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  const float* cur = xin;
  for (const PlanLayer& L : layers_) {
    FusedDenseForwardF32(cur, 1, L.in, params_.data() + L.w_off,
                         params_.data() + L.b_off, L.act, ping, L.out);
    cur = ping;
    std::swap(ping, pong);
  }
  return static_cast<double>(cur[0]);
}

void CompiledMlpF32::PredictBatch(const double* x, size_t rows, Workspace* ws,
                                  double* out) const {
  if (rows == 0) return;
  float* xin = ws->InputF(rows * config_.in_dim);
  for (size_t i = 0; i < rows * config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  PredictBatchF32In(xin, rows, ws, out);
}

void CompiledMlpF32::PredictBatchF32In(const float* x, size_t rows,
                                       Workspace* ws, double* out) const {
  assert(!layers_.empty());
  if (rows == 0) return;
  float* ping = ws->PingF(rows * max_width_);
  float* pong = ws->PongF(rows * max_width_);
  float* staged = ws->OutputF(rows * config_.out_dim);
  const float* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const PlanLayer& L = layers_[i];
    float* dst = (i + 1 == layers_.size()) ? staged : ping;
    FusedDenseForwardF32(cur, rows, L.in, params_.data() + L.w_off,
                         params_.data() + L.b_off, L.act, dst, L.out);
    cur = dst;
    std::swap(ping, pong);
  }
  for (size_t i = 0; i < rows * config_.out_dim; ++i) {
    out[i] = static_cast<double>(staged[i]);
  }
}

CompiledMlpI8 CompiledMlpI8::FromPlan(const CompiledMlp& plan,
                                      const std::vector<double>& layer_absmax) {
  assert(layer_absmax.size() == plan.layers().size());
  CompiledMlpI8 i8;
  i8.config_ = plan.config();
  i8.absmax_ = layer_absmax;
  i8.max_width_ = plan.max_width();
  i8.max_quant_width_ = std::max(plan.in_dim(), plan.max_width());
  const std::vector<double>& params = plan.params();
  // Deterministic double-precision rounding everywhere below: the plan is
  // a pure function of (f64 params, absmax), so Load reproduces it.
  auto quantize = [](double v) {
    double s = v < 127.0 ? v : 127.0;
    s = s > -127.0 ? s : -127.0;
    return static_cast<int8_t>(s >= 0.0 ? static_cast<int32_t>(s + 0.5)
                                        : static_cast<int32_t>(s - 0.5));
  };
  for (size_t l = 0; l < plan.layers().size(); ++l) {
    const PlanLayer& L = plan.layers()[l];
    I8Layer meta;
    meta.in = L.in;
    meta.out = L.out;
    meta.act = L.act;
    meta.w_off = i8.qweights_.size();
    meta.f_off = i8.fbuf_.size();
    const double amax = layer_absmax[l];
    meta.in_inv_scale =
        amax > 0.0 ? static_cast<float>(127.0 / amax) : 0.0f;
    const double in_scale = amax > 0.0 ? amax / 127.0 : 0.0;
    const double* w = params.data() + L.w_off;
    const double* b = params.data() + L.b_off;
    // Per-output-column symmetric weight scales.
    i8.qweights_.resize(meta.w_off + L.in * L.out);
    i8.fbuf_.resize(meta.f_off + 2 * L.out);
    int8_t* qw = i8.qweights_.data() + meta.w_off;
    float* deq = i8.fbuf_.data() + meta.f_off;
    float* bias = deq + L.out;
    for (size_t j = 0; j < L.out; ++j) {
      double wmax = 0.0;
      for (size_t p = 0; p < L.in; ++p) {
        const double a = std::fabs(w[p * L.out + j]);
        if (a > wmax) wmax = a;
      }
      const double w_inv = wmax > 0.0 ? 127.0 / wmax : 0.0;
      for (size_t p = 0; p < L.in; ++p) {
        qw[p * L.out + j] = quantize(w[p * L.out + j] * w_inv);
      }
      deq[j] = static_cast<float>(in_scale * (wmax / 127.0));
      bias[j] = static_cast<float>(b[j]);
    }
    i8.layers_.push_back(meta);
  }
  return i8;
}

void CompiledMlpI8::Run(const float* x, size_t rows, Workspace* ws,
                        float* staged) const {
  float* ping = ws->PingF(rows * max_width_);
  float* pong = ws->PongF(rows * max_width_);
  int8_t* quant = ws->QuantI8(rows * max_quant_width_);
  int32_t* acc = ws->AccI32(max_width_);
  const float* cur = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const I8Layer& L = layers_[i];
    QuantizeSymmetricI8(cur, rows * L.in, L.in_inv_scale, quant);
    const float* deq = fbuf_.data() + L.f_off;
    const float* bias = deq + L.out;
    float* dst = (i + 1 == layers_.size()) ? staged : ping;
    FusedDenseForwardI8(quant, rows, L.in, qweights_.data() + L.w_off, bias,
                        deq, L.act, acc, dst, L.out);
    cur = dst;
    std::swap(ping, pong);
  }
}

double CompiledMlpI8::PredictOne(const double* x, Workspace* ws) const {
  assert(!layers_.empty() && config_.out_dim == 1);
  float* xin = ws->InputF(config_.in_dim);
  for (size_t i = 0; i < config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  float* staged = ws->OutputF(1);
  Run(xin, 1, ws, staged);
  return static_cast<double>(staged[0]);
}

void CompiledMlpI8::PredictBatch(const double* x, size_t rows, Workspace* ws,
                                 double* out) const {
  if (rows == 0) return;
  float* xin = ws->InputF(rows * config_.in_dim);
  for (size_t i = 0; i < rows * config_.in_dim; ++i) {
    xin[i] = static_cast<float>(x[i]);
  }
  PredictBatchF32In(xin, rows, ws, out);
}

void CompiledMlpI8::PredictBatchF32In(const float* x, size_t rows,
                                      Workspace* ws, double* out) const {
  assert(!layers_.empty());
  if (rows == 0) return;
  float* staged = ws->OutputF(rows * config_.out_dim);
  Run(x, rows, ws, staged);
  for (size_t i = 0; i < rows * config_.out_dim; ++i) {
    out[i] = static_cast<double>(staged[i]);
  }
}

}  // namespace nn
}  // namespace neurosketch
