// Magnitude pruning of trained MLPs — the paper's Sec. 7 future-work item
// ("studying ... model pruning methods [11] to remove unimportant model
// weights for faster evaluation time"). Weights below a magnitude
// threshold are zeroed; the zero-skipping GEMM kernel then skips them on
// the forward pass, and serialized models compress trivially.
#ifndef NEUROSKETCH_NN_PRUNING_H_
#define NEUROSKETCH_NN_PRUNING_H_

#include <cstddef>

#include "nn/mlp.h"
#include "nn/trainer.h"

namespace neurosketch {
namespace nn {

struct PruneReport {
  size_t total_weights = 0;
  size_t pruned_weights = 0;
  double threshold = 0.0;
  double sparsity() const {
    return total_weights == 0
               ? 0.0
               : static_cast<double>(pruned_weights) /
                     static_cast<double>(total_weights);
  }
};

/// \brief Zero the fraction `sparsity` (in [0,1)) of smallest-magnitude
/// weights across all layers (global magnitude pruning). Biases are kept.
PruneReport PruneByMagnitude(Mlp* model, double sparsity);

/// \brief Number of exactly-zero weights (excluding biases).
size_t CountZeroWeights(const Mlp& model);

/// \brief Optional fine-tuning pass after pruning ("prune then retrain"):
/// re-runs the trainer; pruned weights may regrow unless `freeze_zeros`
/// re-zeroes them after every epoch. Returns the final loss.
double FineTunePruned(Mlp* model, const Matrix& inputs, const Matrix& targets,
                      const TrainConfig& config, bool freeze_zeros = true);

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_PRUNING_H_
