#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <sstream>

namespace neurosketch {
namespace nn {

namespace {

constexpr uint32_t kMagic = 0x4e534b31;  // "NSK1"
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream* out, uint32_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteU64(std::ostream* out, uint64_t v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool ReadU32(std::istream* in, uint32_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}
bool ReadU64(std::istream* in, uint64_t* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(*v));
  return in->good();
}

void WriteHeader(const MlpConfig& cfg, std::ostream* out) {
  WriteU32(out, kMagic);
  WriteU32(out, kVersion);
  WriteU64(out, cfg.in_dim);
  WriteU64(out, cfg.out_dim);
  WriteU32(out, static_cast<uint32_t>(cfg.hidden_act));
  WriteU64(out, cfg.hidden.size());
  for (size_t h : cfg.hidden) WriteU64(out, h);
}

Result<MlpConfig> ReadHeader(std::istream* in) {
  uint32_t magic = 0, version = 0, act = 0;
  uint64_t in_dim = 0, out_dim = 0, n_hidden = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad magic in model stream");
  }
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported model version");
  }
  if (!ReadU64(in, &in_dim) || !ReadU64(in, &out_dim) || !ReadU32(in, &act) ||
      !ReadU64(in, &n_hidden)) {
    return Status::IOError("truncated model header");
  }
  if (act > static_cast<uint32_t>(Activation::kSigmoid)) {
    return Status::InvalidArgument("unknown activation id in model stream");
  }
  MlpConfig cfg;
  cfg.in_dim = in_dim;
  cfg.out_dim = out_dim;
  cfg.hidden_act = static_cast<Activation>(act);
  for (uint64_t i = 0; i < n_hidden; ++i) {
    uint64_t h = 0;
    if (!ReadU64(in, &h)) return Status::IOError("truncated hidden widths");
    cfg.hidden.push_back(h);
  }
  return cfg;
}

}  // namespace

Status SaveMlp(const Mlp& model, std::ostream* out) {
  WriteHeader(model.config(), out);
  for (const auto& layer : model.layers()) {
    out->write(reinterpret_cast<const char*>(layer.weight().data()),
               static_cast<std::streamsize>(layer.weight().size() *
                                            sizeof(double)));
    out->write(reinterpret_cast<const char*>(layer.bias().data()),
               static_cast<std::streamsize>(layer.bias().size() *
                                            sizeof(double)));
  }
  if (!out->good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Status SaveMlpFile(const Mlp& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  return SaveMlp(model, &out);
}

Result<Mlp> LoadMlp(std::istream* in) {
  NS_ASSIGN_OR_RETURN(MlpConfig cfg, ReadHeader(in));
  Mlp model(cfg);
  for (auto& layer : model.layers()) {
    in->read(reinterpret_cast<char*>(layer.weight().data()),
             static_cast<std::streamsize>(layer.weight().size() *
                                          sizeof(double)));
    in->read(reinterpret_cast<char*>(layer.bias().data()),
             static_cast<std::streamsize>(layer.bias().size() *
                                          sizeof(double)));
    if (!in->good()) return Status::IOError("truncated parameter block");
  }
  return model;
}

Result<Mlp> LoadMlpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  return LoadMlp(&in);
}

Status SaveCompiledMlp(const CompiledMlp& plan, std::ostream* out) {
  // The flat buffer is already laid out in serialization order (per layer:
  // weights then bias), so the whole parameter block is one write.
  WriteHeader(plan.config(), out);
  out->write(reinterpret_cast<const char*>(plan.params().data()),
             static_cast<std::streamsize>(plan.params().size() *
                                          sizeof(double)));
  if (!out->good()) return Status::IOError("stream write failed");
  return Status::OK();
}

Result<CompiledMlp> LoadCompiledMlp(std::istream* in) {
  NS_ASSIGN_OR_RETURN(MlpConfig cfg, ReadHeader(in));
  CompiledMlp plan = CompiledMlp::FromConfig(cfg);
  in->read(reinterpret_cast<char*>(plan.mutable_params().data()),
           static_cast<std::streamsize>(plan.num_params() * sizeof(double)));
  if (!in->good()) return Status::IOError("truncated parameter block");
  return plan;
}

size_t SerializedHeaderBytes(const MlpConfig& config) {
  // Mirrors WriteHeader: magic, version, in/out dims, activation, hidden
  // count, then one u64 per hidden width.
  return 2 * sizeof(uint32_t) + 2 * sizeof(uint64_t) + sizeof(uint32_t) +
         sizeof(uint64_t) + config.hidden.size() * sizeof(uint64_t);
}

size_t SerializedModelBytes(const CompiledMlp& plan) {
  return SerializedHeaderBytes(plan.config()) +
         plan.num_params() * sizeof(double);
}

}  // namespace nn
}  // namespace neurosketch
