// The explicit ReLU network construction of Theorem 3.4 / Algorithm 1.
//
// The network is f̂(x) = b + Σ_i ĝ_i(x) with g-units
//   ĝ_i(x) = a_i · σ( 1/t − M Σ_r σ( b_{r,i} − x_r ) ),
// where σ is ReLU, t is the grid resolution, and M ≥ 1 controls the width
// of the transition band at cell boundaries. Algorithm 1 sets the biases to
// grid-vertex coordinates (b_{r,i} = π^i_r / t) and solves the a_i so that
// every grid vertex of [0,1]^d is memorized exactly (Lemma A.1).
//
// Two uses (Appendix A.5):
//  - CS: the construction evaluated as-is;
//  - CS+SGD: the construction as the initialization of SGD training, with
//    a_i, b_{r,i} and b all trainable.
#ifndef NEUROSKETCH_NN_CONSTRUCTION_H_
#define NEUROSKETCH_NN_CONSTRUCTION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/matrix.h"
#include "util/status.h"

namespace neurosketch {
namespace nn {

/// \brief Target function for the construction: [0,1]^d -> R.
using TargetFn = std::function<double(const std::vector<double>&)>;

/// \brief Two-hidden-layer g-unit network (Fig. 2c of the paper).
class GUnitNetwork {
 public:
  /// \brief Build via Algorithm 1 so that f̂ agrees with `f` on all
  /// (t+1)^d grid vertices. Requires d >= 1, t >= 1, M >= 1.
  static Result<GUnitNetwork> Construct(const TargetFn& f, size_t d, size_t t,
                                        double big_m = 1.0);

  /// \brief Forward pass.
  double Evaluate(const std::vector<double>& x) const;

  /// \brief Mini-batch SGD on MSE over (inputs, targets), training a_i,
  /// b_{r,i} and the output bias (the CS+SGD variant). Returns final
  /// epoch-average loss.
  double TrainSgd(const Matrix& inputs, const Matrix& targets,
                  size_t epochs, size_t batch_size, double lr, uint64_t seed);

  size_t dim() const { return d_; }
  size_t grid_t() const { return t_; }
  size_t num_units() const { return a_.size(); }
  /// \brief Tunable parameter count: k·(d+1) + 1 (a_i, b_{r,i}, b).
  size_t num_params() const { return a_.size() * (d_ + 1) + 1; }
  double big_m() const { return big_m_; }
  double output_bias() const { return bias_; }
  const std::vector<double>& unit_scales() const { return a_; }

  /// \brief π^i as grid coordinates: the base-(t+1) digits of i, most
  /// significant digit first (paper Sec. 3.2.2). Exposed for tests.
  static std::vector<size_t> VertexDigits(size_t index, size_t d, size_t t);

 private:
  GUnitNetwork(size_t d, size_t t, double big_m)
      : d_(d), t_(t), big_m_(big_m) {}

  /// \brief Evaluate one g-unit; also reports the pre-activations used by
  /// backprop when grads != nullptr.
  double EvalUnit(size_t i, const double* x) const;

  size_t d_, t_;
  double big_m_;
  double bias_ = 0.0;        // b, the third-layer bias
  std::vector<double> a_;    // a_i, one per g-unit (size (t+1)^d - 1)
  std::vector<double> b_;    // b_{r,i}, row-major (unit, dim)
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_CONSTRUCTION_H_
