#include "nn/optimizer.h"

#include <cmath>

namespace neurosketch {
namespace nn {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

void Sgd::Attach(std::vector<ParamView> params) {
  params_ = std::move(params);
  velocity_.clear();
  for (const auto& p : params_) velocity_.emplace_back(p.size, 0.0);
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& vel = velocity_[i];
    for (size_t j = 0; j < p.size; ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * p.grad[j];
      p.value[j] += vel[j];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

void Adam::Attach(std::vector<ParamView> params) {
  params_ = std::move(params);
  m_.clear();
  v_.clear();
  t_ = 0;
  for (const auto& p : params_) {
    m_.emplace_back(p.size, 0.0);
    v_.emplace_back(p.size, 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < p.size; ++j) {
      const double g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g * g;
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace nn
}  // namespace neurosketch
