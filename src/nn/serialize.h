// Binary serialization for trained models. A NeuroSketch is "released"
// instead of the data (paper Sec. 7), so models must round-trip exactly.
#ifndef NEUROSKETCH_NN_SERIALIZE_H_
#define NEUROSKETCH_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "nn/inference_plan.h"
#include "nn/mlp.h"
#include "util/status.h"

namespace neurosketch {
namespace nn {

/// \brief Write the architecture and all parameters to a stream.
/// Format: magic, version, in/out dims, hidden widths, activation,
/// raw little-endian doubles.
Status SaveMlp(const Mlp& model, std::ostream* out);
Status SaveMlpFile(const Mlp& model, const std::string& path);

/// \brief Reconstruct a model saved with SaveMlp. Parameters round-trip
/// bit-exactly.
Result<Mlp> LoadMlp(std::istream* in);
Result<Mlp> LoadMlpFile(const std::string& path);

/// \brief Compiled-plan serialization. Byte-identical to SaveMlp/LoadMlp
/// (a plan's flat buffer *is* the serialized parameter block), so plans
/// and Mlps are interchangeable on disk; the plan path streams all
/// parameters with a single contiguous read/write.
Status SaveCompiledMlp(const CompiledMlp& plan, std::ostream* out);
Result<CompiledMlp> LoadCompiledMlp(std::istream* in);

/// \brief Exact number of bytes SaveMlp/SaveCompiledMlp writes for a model
/// with this architecture, header included. Lets size accounting
/// (NeuroSketch::SizeBytes) agree byte-for-byte with the save path.
size_t SerializedHeaderBytes(const MlpConfig& config);
size_t SerializedModelBytes(const CompiledMlp& plan);

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_SERIALIZE_H_
