// Compiled zero-allocation inference plans. A trained Mlp is a training
// structure: per-layer Matrix objects, cached activations, gradient
// buffers. CompiledMlp is its serving form — all layer weights and biases
// packed into one contiguous flat buffer (in serialization order: per
// layer, weights then bias) plus fixed layer metadata — executed with the
// fused GEMM+bias+activation kernel (tensor/matrix.h) against a reusable
// Workspace arena. After warm-up a forward pass performs zero heap
// allocations and is bit-identical to Mlp::Predict / Mlp::PredictOne.
#ifndef NEUROSKETCH_NN_INFERENCE_PLAN_H_
#define NEUROSKETCH_NN_INFERENCE_PLAN_H_

#include <cstddef>
#include <vector>

#include "nn/mlp.h"

namespace neurosketch {
namespace nn {

/// \brief Reusable scratch arena for compiled-plan execution. Buffers grow
/// monotonically and are never shrunk, so a serving thread stops allocating
/// once it has seen its largest batch. Not thread-safe; use ThreadLocal()
/// (one arena per thread) or own one per worker.
class Workspace {
 public:
  /// \brief Ping/pong layer-activation buffers of at least n doubles each.
  double* Ping(size_t n) { return Ensure(&ping_, n); }
  double* Pong(size_t n) { return Ensure(&pong_, n); }
  /// \brief Input-marshalling buffer (batch gather) of at least n doubles.
  double* Input(size_t n) { return Ensure(&input_, n); }
  /// \brief Output staging buffer of at least n doubles.
  double* Output(size_t n) { return Ensure(&output_, n); }

  /// \brief The calling thread's arena (constructed on first use).
  static Workspace& ThreadLocal();

 private:
  static double* Ensure(std::vector<double>* v, size_t n) {
    if (v->size() < n) v->resize(n);
    return v->data();
  }
  std::vector<double> ping_, pong_, input_, output_;
};

/// \brief Execution plan compiled from a trained Mlp: flat parameter
/// buffer + per-layer geometry, no per-call allocation, enum-dispatched
/// activations. Parameters are bit-identical copies of the source model.
class CompiledMlp {
 public:
  CompiledMlp() = default;

  /// \brief Pack `model`'s parameters into a plan.
  static CompiledMlp FromMlp(const Mlp& model);

  /// \brief Lay out a plan for `config` with zeroed parameters; the caller
  /// fills params() afterwards (deserialization path).
  static CompiledMlp FromConfig(const MlpConfig& config);

  /// \brief Reconstruct the trainable form; parameters round-trip
  /// bit-exactly. Used to rehydrate the scalar reference path after Load.
  Mlp ToMlp() const;

  /// \brief Single-input forward pass; x has in_dim() doubles. Zero heap
  /// allocations once `ws` is warm. out_dim() must be 1.
  double PredictOne(const double* x, Workspace* ws) const;

  /// \brief Batched forward pass over `rows` row-major inputs
  /// (rows x in_dim); writes rows x out_dim results to `out`. out must not
  /// alias x. Bit-identical to Mlp::Predict on the same batch.
  void PredictBatch(const double* x, size_t rows, Workspace* ws,
                    double* out) const;

  bool empty() const { return layers_.empty(); }
  size_t in_dim() const { return config_.in_dim; }
  size_t out_dim() const { return config_.out_dim; }
  size_t num_params() const { return params_.size(); }
  size_t SizeBytes() const { return params_.size() * sizeof(double); }
  const MlpConfig& config() const { return config_; }

  /// \brief Flat parameter buffer in serialization order (per layer:
  /// weights row-major, then bias) — what SaveCompiledMlp streams.
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& mutable_params() { return params_; }

 private:
  struct LayerMeta {
    size_t in = 0, out = 0;
    size_t w_off = 0, b_off = 0;  // offsets into params_
    Activation act = Activation::kIdentity;
  };

  MlpConfig config_;
  std::vector<LayerMeta> layers_;
  std::vector<double> params_;
  size_t max_width_ = 0;  // widest layer output, sizes the ping/pong pair
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_INFERENCE_PLAN_H_
