// Compiled zero-allocation inference plans. A trained Mlp is a training
// structure: per-layer Matrix objects, cached activations, gradient
// buffers. CompiledMlp is its serving form — all layer weights and biases
// packed into one contiguous flat buffer (in serialization order: per
// layer, weights then bias) plus fixed layer metadata — executed with the
// fused GEMM+bias+activation kernel (tensor/matrix.h) against a reusable
// Workspace arena. After warm-up a forward pass performs zero heap
// allocations and is bit-identical to Mlp::Predict / Mlp::PredictOne.
//
// CompiledMlpF32 is the opt-in single-precision tier: the same flat-buffer
// layout narrowed to float (half the footprint, twice the SIMD lanes). It
// is NOT bit-identical to the f64 reference; core/NeuroSketch validates
// its divergence against an error bound before serving from it.
//
// CompiledMlpI8 is the quantized tier: weights as int8 with symmetric
// per-layer activation scales and per-output-column weight scales derived
// from a calibration pass over the f64 plan (CompiledMlp::CalibrateOne),
// executed with int32 accumulation and f32 requantization. ~1/8 the f64
// flat-buffer footprint; same validate-or-fallback contract as f32.
#ifndef NEUROSKETCH_NN_INFERENCE_PLAN_H_
#define NEUROSKETCH_NN_INFERENCE_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/mlp.h"

namespace neurosketch {
namespace nn {

/// \brief Per-layer geometry of a compiled plan: shapes, flat-buffer
/// offsets, and the activation. Shared by the f64 and f32 tiers (offsets
/// are element counts, so they are precision-agnostic).
struct PlanLayer {
  size_t in = 0, out = 0;
  size_t w_off = 0, b_off = 0;  // offsets into the flat parameter buffer
  Activation act = Activation::kIdentity;
};

/// \brief Reusable scratch arena for compiled-plan execution. Buffers grow
/// monotonically and are never shrunk, so a serving thread stops allocating
/// once it has seen its largest batch. Not thread-safe; use ThreadLocal()
/// (one arena per thread) or own one per worker.
class Workspace {
 public:
  /// \brief Ping/pong layer-activation buffers of at least n doubles each.
  double* Ping(size_t n) { return Ensure(&ping_, n); }
  double* Pong(size_t n) { return Ensure(&pong_, n); }
  /// \brief Input-marshalling buffer (batch gather) of at least n doubles.
  double* Input(size_t n) { return Ensure(&input_, n); }
  /// \brief Output staging buffer of at least n doubles.
  double* Output(size_t n) { return Ensure(&output_, n); }

  /// \brief Single-precision twins for the f32 plan tier.
  float* PingF(size_t n) { return Ensure(&ping_f_, n); }
  float* PongF(size_t n) { return Ensure(&pong_f_, n); }
  float* InputF(size_t n) { return Ensure(&input_f_, n); }
  float* OutputF(size_t n) { return Ensure(&output_f_, n); }

  /// \brief Int8-tier scratch: quantized-activation staging and the int32
  /// accumulator row the fused int8 kernel requires.
  int8_t* QuantI8(size_t n) { return Ensure(&quant_i8_, n); }
  int32_t* AccI32(size_t n) { return Ensure(&acc_i32_, n); }

  /// \brief Per-leaf bucketing scratch for vectorized batch answering: at
  /// least n index buckets, the first n cleared (capacity retained), so a
  /// warm thread re-buckets arbitrarily many batches without allocating.
  std::vector<std::vector<size_t>>& Buckets(size_t n) {
    if (buckets_.size() < n) buckets_.resize(n);
    for (size_t i = 0; i < n; ++i) buckets_[i].clear();
    return buckets_;
  }

  /// \brief The calling thread's arena (constructed on first use).
  static Workspace& ThreadLocal();

 private:
  template <typename T>
  static T* Ensure(std::vector<T>* v, size_t n) {
    if (v->size() < n) v->resize(n);
    return v->data();
  }
  std::vector<double> ping_, pong_, input_, output_;
  std::vector<float> ping_f_, pong_f_, input_f_, output_f_;
  std::vector<int8_t> quant_i8_;
  std::vector<int32_t> acc_i32_;
  std::vector<std::vector<size_t>> buckets_;
};

/// \brief Fixed-order shard combine for parallel int8 calibration: raise
/// each entry of `dst` (per-leaf, per-layer input absmax) to the matching
/// entry of `src`. max is associative and commutative over doubles (NaN
/// never enters: absmax entries come from std::fabs comparisons that drop
/// NaN), so folding the shards in shard order reproduces the serial
/// single-pass record bit-for-bit. `src` must have the same shape as
/// `dst`.
void CombineLayerAbsmax(std::vector<std::vector<double>>* dst,
                        const std::vector<std::vector<double>>& src);

/// \brief Execution plan compiled from a trained Mlp: flat parameter
/// buffer + per-layer geometry, no per-call allocation, enum-dispatched
/// activations. Parameters are bit-identical copies of the source model.
class CompiledMlp {
 public:
  CompiledMlp() = default;

  /// \brief Pack `model`'s parameters into a plan.
  static CompiledMlp FromMlp(const Mlp& model);

  /// \brief Lay out a plan for `config` with zeroed parameters; the caller
  /// fills params() afterwards (deserialization path).
  static CompiledMlp FromConfig(const MlpConfig& config);

  /// \brief Reconstruct the trainable form; parameters round-trip
  /// bit-exactly. Used to rehydrate the scalar reference path after Load.
  Mlp ToMlp() const;

  /// \brief Single-input forward pass; x has in_dim() doubles. Zero heap
  /// allocations once `ws` is warm. out_dim() must be 1.
  double PredictOne(const double* x, Workspace* ws) const;

  /// \brief Batched forward pass over `rows` row-major inputs
  /// (rows x in_dim); writes rows x out_dim results to `out`. out must not
  /// alias x. Bit-identical to Mlp::Predict on the same batch.
  void PredictBatch(const double* x, size_t rows, Workspace* ws,
                    double* out) const;

  /// \brief Calibration probe for the int8 tier: runs the f64 layer loop
  /// on `x` and raises layer_absmax[l] (one slot per layer) to the max
  /// |value| layer l's input reached — layer 0 sees the raw input, layer
  /// l > 0 the previous layer's activations. Returns the forward-pass
  /// result (same bits as PredictOne; out_dim() must be 1) so a
  /// calibrate-then-validate pass pays for the f64 forward only once.
  /// Accumulate over a workload, then feed the absmax to
  /// CompiledMlpI8::FromPlan.
  double CalibrateOne(const double* x, Workspace* ws,
                      double* layer_absmax) const;

  bool empty() const { return layers_.empty(); }
  size_t in_dim() const { return config_.in_dim; }
  size_t out_dim() const { return config_.out_dim; }
  size_t num_params() const { return params_.size(); }
  size_t SizeBytes() const { return params_.size() * sizeof(double); }
  const MlpConfig& config() const { return config_; }
  const std::vector<PlanLayer>& layers() const { return layers_; }
  size_t max_width() const { return max_width_; }

  /// \brief Flat parameter buffer in serialization order (per layer:
  /// weights row-major, then bias) — what SaveCompiledMlp streams.
  const std::vector<double>& params() const { return params_; }
  std::vector<double>& mutable_params() { return params_; }

 private:
  MlpConfig config_;
  std::vector<PlanLayer> layers_;
  std::vector<double> params_;
  size_t max_width_ = 0;  // widest layer output, sizes the ping/pong pair
};

/// \brief Single-precision clone of a CompiledMlp: the same flat-buffer
/// layout with every parameter narrowed to float (round-to-nearest, a
/// deterministic function of the f64 plan, so rebuilding from the f64
/// reference always reproduces the same f32 plan). Inputs arrive as
/// doubles and are narrowed into the arena; the result is widened back to
/// double. Zero heap allocations once the workspace is warm.
class CompiledMlpF32 {
 public:
  CompiledMlpF32() = default;

  /// \brief Narrow `plan`'s parameters into an f32 plan.
  static CompiledMlpF32 FromPlan(const CompiledMlp& plan);

  /// \brief Single-input forward pass; x has in_dim() doubles.
  double PredictOne(const double* x, Workspace* ws) const;

  /// \brief Batched forward pass over `rows` row-major double inputs;
  /// widens the rows x out_dim float results into `out`. Row r is
  /// bit-identical to PredictOne on row r (same float accumulation order).
  void PredictBatch(const double* x, size_t rows, Workspace* ws,
                    double* out) const;

  /// \brief Batched forward pass whose inputs are already float — the
  /// batched serving path gathers bucket inputs straight into the float
  /// arena, skipping the per-call f64 staging buffer and its narrowing
  /// pass. Same bits as PredictBatch on the same (narrowed) inputs. x may
  /// be the workspace's InputF buffer.
  void PredictBatchF32In(const float* x, size_t rows, Workspace* ws,
                         double* out) const;

  bool empty() const { return layers_.empty(); }
  size_t in_dim() const { return config_.in_dim; }
  size_t out_dim() const { return config_.out_dim; }
  size_t num_params() const { return params_.size(); }
  /// \brief Resident flat-buffer footprint — half the f64 plan's.
  size_t SizeBytes() const { return params_.size() * sizeof(float); }
  const MlpConfig& config() const { return config_; }

 private:
  MlpConfig config_;
  std::vector<PlanLayer> layers_;
  std::vector<float> params_;
  size_t max_width_ = 0;
};

/// \brief Int8-quantized clone of a CompiledMlp. Weights are quantized
/// symmetrically with one scale per output column (per-row in the output-
/// channel sense); activations are quantized per layer with a symmetric
/// scale derived from a calibration pass (per-layer input absmax over a
/// workload, CompiledMlp::CalibrateOne). Execution quantizes each layer's
/// f32 input to int8, runs the fused int8 GEMM with exact int32
/// accumulation, and requantizes to f32 through a folded per-column
/// multiplier before the bias + activation epilogue. ~1/8 the f64 plan's
/// weight footprint. Quantization is a deterministic function of the f64
/// plan and the calibration absmax vector, so rebuilding from the saved
/// f64 parameters + scales reproduces the exact same int8 plan.
/// Activations beyond the calibrated range saturate at +/-127; a
/// zero-range (constant-zero) layer input quantizes to all zeros and the
/// layer degenerates to act(bias), matching the f64 reference on that
/// input. core/NeuroSketch validates the tier before serving from it.
class CompiledMlpI8 {
 public:
  CompiledMlpI8() = default;

  /// \brief Quantize `plan` using per-layer input absmax from calibration
  /// (layer_absmax.size() must equal plan.layers().size()).
  static CompiledMlpI8 FromPlan(const CompiledMlp& plan,
                                const std::vector<double>& layer_absmax);

  /// \brief Single-input forward pass; x has in_dim() doubles.
  double PredictOne(const double* x, Workspace* ws) const;

  /// \brief Batched forward pass over `rows` row-major double inputs.
  /// Row r is bit-identical to PredictOne on row r.
  void PredictBatch(const double* x, size_t rows, Workspace* ws,
                    double* out) const;

  /// \brief Float-input batched variant (see CompiledMlpF32's): the
  /// serving gather narrows once, no f64 staging pass. x may be the
  /// workspace's InputF buffer.
  void PredictBatchF32In(const float* x, size_t rows, Workspace* ws,
                         double* out) const;

  bool empty() const { return layers_.empty(); }
  size_t in_dim() const { return config_.in_dim; }
  size_t out_dim() const { return config_.out_dim; }
  size_t num_params() const { return qweights_.size(); }
  /// \brief Resident footprint: int8 weights + f32 bias/dequant + scales.
  size_t SizeBytes() const {
    return qweights_.size() * sizeof(int8_t) + fbuf_.size() * sizeof(float) +
           absmax_.size() * sizeof(double);
  }
  const MlpConfig& config() const { return config_; }
  /// \brief The calibration record (per-layer input absmax) this plan was
  /// quantized with — what NeuroSketch::Save persists so Load can rebuild
  /// the identical plan from the f64 parameters.
  const std::vector<double>& layer_absmax() const { return absmax_; }

 private:
  /// Per-layer quantized geometry: offsets into the int8 weight buffer and
  /// the f32 buffer (per layer: dequant multipliers then bias, out each),
  /// plus the activation-quantization multiplier 127/absmax (0 for a
  /// zero-range layer: everything quantizes to 0).
  struct I8Layer {
    size_t in = 0, out = 0;
    size_t w_off = 0;  // into qweights_
    size_t f_off = 0;  // into fbuf_: [deq (out), bias (out)]
    Activation act = Activation::kIdentity;
    float in_inv_scale = 0.0f;
  };

  /// Layer loop shared by every surface: quantize, int8 GEMM, requantize.
  /// Writes the rows x out_dim float results to `staged`.
  void Run(const float* x, size_t rows, Workspace* ws, float* staged) const;

  MlpConfig config_;
  std::vector<I8Layer> layers_;
  std::vector<int8_t> qweights_;
  std::vector<float> fbuf_;
  std::vector<double> absmax_;
  size_t max_width_ = 0;
  size_t max_quant_width_ = 0;  // max(in_dim, widest layer input)
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_INFERENCE_PLAN_H_
