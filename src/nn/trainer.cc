#include "nn/trainer.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "nn/loss.h"

namespace neurosketch {
namespace nn {

TrainReport TrainRegressor(Mlp* model, const Matrix& inputs,
                           const Matrix& targets, const TrainConfig& config) {
  TrainReport report;
  const size_t n = inputs.rows();
  if (n == 0) return report;

  std::unique_ptr<Optimizer> opt;
  if (config.use_adam) {
    opt = std::make_unique<Adam>(config.learning_rate);
  } else {
    opt = std::make_unique<Sgd>(config.learning_rate);
  }
  opt->Attach(model->Params());

  Rng rng(config.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  const size_t batch = std::max<size_t>(1, std::min(config.batch_size, n));
  double best = std::numeric_limits<double>::infinity();
  size_t since_best = 0;

  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.Shuffle(&order);
    double epoch_loss = 0.0;
    size_t num_batches = 0;
    for (size_t off = 0; off < n; off += batch) {
      const size_t sz = std::min(batch, n - off);
      Matrix bx(sz, inputs.cols());
      Matrix by(sz, targets.cols());
      for (size_t i = 0; i < sz; ++i) {
        const size_t src = order[off + i];
        std::copy(inputs.row(src), inputs.row(src) + inputs.cols(), bx.row(i));
        std::copy(targets.row(src), targets.row(src) + targets.cols(),
                  by.row(i));
      }
      Matrix pred, grad;
      model->Forward(bx, &pred);
      epoch_loss += MseLoss(pred, by, &grad);
      ++num_batches;
      model->ZeroGrad();
      model->Backward(grad);
      opt->Step();
    }
    epoch_loss /= static_cast<double>(num_batches);
    report.epoch_losses.push_back(epoch_loss);
    report.epochs_run = epoch + 1;
    report.final_loss = epoch_loss;

    if (config.lr_decay != 1.0 && config.decay_every > 0 &&
        (epoch + 1) % config.decay_every == 0) {
      opt->set_learning_rate(opt->learning_rate() * config.lr_decay);
    }

    if (config.patience > 0) {
      if (epoch_loss < best * (1.0 - config.min_delta)) {
        best = epoch_loss;
        since_best = 0;
      } else if (++since_best >= config.patience) {
        break;
      }
    }
  }
  return report;
}

}  // namespace nn
}  // namespace neurosketch
