// Fully connected layer with cached forward state for backprop.
#ifndef NEUROSKETCH_NN_LAYER_H_
#define NEUROSKETCH_NN_LAYER_H_

#include <vector>

#include "nn/activation.h"
#include "tensor/matrix.h"
#include "util/random.h"

namespace neurosketch {
namespace nn {

/// \brief View onto a parameter tensor and its gradient; consumed by
/// optimizers so they stay agnostic of layer internals.
struct ParamView {
  double* value;
  double* grad;
  size_t size;
};

/// \brief y = act(x W + b), where x is (batch, in), W is (in, out),
/// b is (1, out).
class DenseLayer {
 public:
  DenseLayer(size_t in_dim, size_t out_dim, Activation act);

  /// \brief He/Xavier-style initialization appropriate for the activation:
  /// He for ReLU, Xavier(Glorot) otherwise. Biases start at zero.
  void InitParams(Rng* rng);

  /// \brief Forward pass; caches input and pre-activation for Backward.
  void Forward(const Matrix& x, Matrix* y);

  /// \brief Forward without caching (inference path).
  void ForwardInference(const Matrix& x, Matrix* y) const;

  /// \brief Given dL/dy, accumulate dW/db and return dL/dx.
  /// Must be preceded by Forward on the same batch.
  void Backward(const Matrix& dy, Matrix* dx);

  void ZeroGrad();

  std::vector<ParamView> Params();

  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }
  Activation activation() const { return act_; }
  size_t num_params() const { return weight_.size() + bias_.size(); }

  Matrix& weight() { return weight_; }
  const Matrix& weight() const { return weight_; }
  Matrix& bias() { return bias_; }
  const Matrix& bias() const { return bias_; }

 private:
  size_t in_dim_, out_dim_;
  Activation act_;
  Matrix weight_;  // (in, out)
  Matrix bias_;    // (1, out)
  Matrix dweight_, dbias_;
  // Cached forward state.
  Matrix input_, preact_;
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_LAYER_H_
