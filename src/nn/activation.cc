#include "nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace neurosketch {
namespace nn {

void ApplyActivation(Activation act, const Matrix& in, Matrix* out) {
  if (out != &in) *out = in;
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu: {
      // Hot inference path: direct loop instead of Matrix::Apply's
      // per-element std::function indirection.
      double* d = out->data();
      const size_t sz = out->size();
      for (size_t i = 0; i < sz; ++i) d[i] = d[i] > 0.0 ? d[i] : 0.0;
      return;
    }
    case Activation::kTanh:
      out->Apply([](double x) { return std::tanh(x); });
      return;
    case Activation::kSigmoid:
      out->Apply([](double x) { return 1.0 / (1.0 + std::exp(-x)); });
      return;
  }
}

void ActivationGrad(Activation act, const Matrix& z, Matrix* out) {
  *out = z;
  switch (act) {
    case Activation::kIdentity:
      out->Fill(1.0);
      return;
    case Activation::kRelu:
      out->Apply([](double x) { return x > 0.0 ? 1.0 : 0.0; });
      return;
    case Activation::kTanh:
      out->Apply([](double x) {
        double t = std::tanh(x);
        return 1.0 - t * t;
      });
      return;
    case Activation::kSigmoid:
      out->Apply([](double x) {
        double s = 1.0 / (1.0 + std::exp(-x));
        return s * (1.0 - s);
      });
      return;
  }
}

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "identity";
}

Activation ActivationFromName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace nn
}  // namespace neurosketch
