#include "nn/activation.h"

#include <cmath>
#include <stdexcept>

namespace neurosketch {
namespace nn {

// Every case is a direct enum-dispatched loop: training forward/backward
// runs these on whole batches, and Matrix::Apply's per-element
// std::function indirection was measurable there too.
void ApplyActivation(Activation act, const Matrix& in, Matrix* out) {
  if (out != &in) *out = in;
  double* d = out->data();
  const size_t sz = out->size();
  switch (act) {
    case Activation::kIdentity:
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < sz; ++i) d[i] = d[i] > 0.0 ? d[i] : 0.0;
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < sz; ++i) d[i] = std::tanh(d[i]);
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < sz; ++i) d[i] = 1.0 / (1.0 + std::exp(-d[i]));
      return;
  }
}

void ActivationGrad(Activation act, const Matrix& z, Matrix* out) {
  *out = z;
  double* d = out->data();
  const size_t sz = out->size();
  switch (act) {
    case Activation::kIdentity:
      out->Fill(1.0);
      return;
    case Activation::kRelu:
      for (size_t i = 0; i < sz; ++i) d[i] = d[i] > 0.0 ? 1.0 : 0.0;
      return;
    case Activation::kTanh:
      for (size_t i = 0; i < sz; ++i) {
        const double t = std::tanh(d[i]);
        d[i] = 1.0 - t * t;
      }
      return;
    case Activation::kSigmoid:
      for (size_t i = 0; i < sz; ++i) {
        const double s = 1.0 / (1.0 + std::exp(-d[i]));
        d[i] = s * (1.0 - s);
      }
      return;
  }
}

std::string ActivationName(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "identity";
}

Activation ActivationFromName(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace nn
}  // namespace neurosketch
