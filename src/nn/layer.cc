#include "nn/layer.h"

#include <cmath>

namespace neurosketch {
namespace nn {

DenseLayer::DenseLayer(size_t in_dim, size_t out_dim, Activation act)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      act_(act),
      weight_(in_dim, out_dim),
      bias_(1, out_dim),
      dweight_(in_dim, out_dim),
      dbias_(1, out_dim) {}

void DenseLayer::InitParams(Rng* rng) {
  // He init for ReLU (gain sqrt(2)), Glorot otherwise.
  double scale;
  if (act_ == Activation::kRelu) {
    scale = std::sqrt(2.0 / static_cast<double>(in_dim_));
  } else {
    scale = std::sqrt(2.0 / static_cast<double>(in_dim_ + out_dim_));
  }
  for (size_t i = 0; i < in_dim_; ++i) {
    for (size_t j = 0; j < out_dim_; ++j) {
      weight_(i, j) = rng->Normal(0.0, scale);
    }
  }
  bias_.Zero();
}

void DenseLayer::Forward(const Matrix& x, Matrix* y) {
  input_ = x;
  Gemm(x, weight_, &preact_);
  AddRowVector(&preact_, bias_);
  ApplyActivation(act_, preact_, y);
}

void DenseLayer::ForwardInference(const Matrix& x, Matrix* y) const {
  // Deliberately stays on the unfused three-pass pipeline: this is the
  // golden reference the compiled plan's fused kernel is tested against
  // (tests/inference_plan_test.cc), so it must not share that kernel.
  Matrix z;
  Gemm(x, weight_, &z);
  AddRowVector(&z, bias_);
  ApplyActivation(act_, z, y);
}

void DenseLayer::Backward(const Matrix& dy, Matrix* dx) {
  // dz = dy ⊙ act'(preact)
  Matrix dz;
  ActivationGrad(act_, preact_, &dz);
  assert(dz.SameShape(dy));
  for (size_t i = 0; i < dz.size(); ++i) dz.data()[i] *= dy.data()[i];

  // dW += x^T dz ; db += colsum(dz) ; dx = dz W^T
  Matrix dw;
  GemmTransA(input_, dz, &dw);
  dweight_.Axpy(1.0, dw);
  Matrix db;
  ColumnSums(dz, &db);
  dbias_.Axpy(1.0, db);
  GemmTransB(dz, weight_, dx);
}

void DenseLayer::ZeroGrad() {
  dweight_.Zero();
  dbias_.Zero();
}

std::vector<ParamView> DenseLayer::Params() {
  return {
      {weight_.data(), dweight_.data(), weight_.size()},
      {bias_.data(), dbias_.data(), bias_.size()},
  };
}

}  // namespace nn
}  // namespace neurosketch
