#include "nn/pruning.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/trainer.h"

namespace neurosketch {
namespace nn {

PruneReport PruneByMagnitude(Mlp* model, double sparsity) {
  PruneReport report;
  sparsity = std::clamp(sparsity, 0.0, 0.999);
  // Collect all weight magnitudes (biases excluded).
  std::vector<double> mags;
  for (auto& layer : model->layers()) {
    const Matrix& w = layer.weight();
    for (size_t i = 0; i < w.size(); ++i) {
      mags.push_back(std::fabs(w.data()[i]));
    }
  }
  report.total_weights = mags.size();
  if (mags.empty() || sparsity <= 0.0) return report;

  const size_t k = static_cast<size_t>(sparsity * mags.size());
  if (k == 0) return report;
  std::nth_element(mags.begin(), mags.begin() + (k - 1), mags.end());
  report.threshold = mags[k - 1];

  for (auto& layer : model->layers()) {
    Matrix& w = layer.weight();
    for (size_t i = 0; i < w.size(); ++i) {
      if (std::fabs(w.data()[i]) <= report.threshold && w.data()[i] != 0.0) {
        w.data()[i] = 0.0;
        ++report.pruned_weights;
      }
    }
  }
  return report;
}

size_t CountZeroWeights(const Mlp& model) {
  size_t zeros = 0;
  for (const auto& layer : model.layers()) {
    const Matrix& w = layer.weight();
    for (size_t i = 0; i < w.size(); ++i) {
      if (w.data()[i] == 0.0) ++zeros;
    }
  }
  return zeros;
}

double FineTunePruned(Mlp* model, const Matrix& inputs, const Matrix& targets,
                      const TrainConfig& config, bool freeze_zeros) {
  if (!freeze_zeros) {
    return TrainRegressor(model, inputs, targets, config).final_loss;
  }
  // Record the pruned mask, train epoch-by-epoch, re-apply the mask.
  std::vector<std::vector<bool>> masks;
  for (auto& layer : model->layers()) {
    const Matrix& w = layer.weight();
    std::vector<bool> mask(w.size());
    for (size_t i = 0; i < w.size(); ++i) mask[i] = (w.data()[i] == 0.0);
    masks.push_back(std::move(mask));
  }
  TrainConfig step = config;
  step.epochs = 1;
  double final_loss = 0.0;
  for (size_t epoch = 0; epoch < config.epochs; ++epoch) {
    step.seed = config.seed + epoch;
    final_loss = TrainRegressor(model, inputs, targets, step).final_loss;
    size_t li = 0;
    for (auto& layer : model->layers()) {
      Matrix& w = layer.weight();
      const auto& mask = masks[li++];
      for (size_t i = 0; i < w.size(); ++i) {
        if (mask[i]) w.data()[i] = 0.0;
      }
    }
  }
  return final_loss;
}

}  // namespace nn
}  // namespace neurosketch
