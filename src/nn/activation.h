// Activation functions for the dense layers. The paper's networks use ReLU
// on hidden layers and identity on the output layer (Sec. 4.2). The enum
// itself lives at tensor level (tensor/matrix.h) so the fused dense kernel
// can dispatch on it; this header aliases it into nn:: and adds the
// training-side helpers (batch apply, gradients, names).
#ifndef NEUROSKETCH_NN_ACTIVATION_H_
#define NEUROSKETCH_NN_ACTIVATION_H_

#include <string>

#include "tensor/matrix.h"

namespace neurosketch {
namespace nn {

using Activation = ::neurosketch::Activation;

/// \brief Apply activation elementwise: out = act(in). in may alias out.
void ApplyActivation(Activation act, const Matrix& in, Matrix* out);

/// \brief Derivative given the *pre-activation* values z: out = act'(z).
/// For ReLU the derivative at exactly 0 is taken as 0.
void ActivationGrad(Activation act, const Matrix& z, Matrix* out);

std::string ActivationName(Activation act);
Activation ActivationFromName(const std::string& name);

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_ACTIVATION_H_
