// Mini-batch supervised training loop (paper Alg. 4): sample a batch from
// the training query set, step the optimizer on the MSE gradient, repeat
// until convergence (here: a fixed epoch budget plus an optional early-stop
// patience on training loss).
#ifndef NEUROSKETCH_NN_TRAINER_H_
#define NEUROSKETCH_NN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "util/random.h"

namespace neurosketch {
namespace nn {

struct TrainConfig {
  size_t batch_size = 64;
  size_t epochs = 200;
  double learning_rate = 1e-3;
  /// Stop when the best epoch loss has not improved by `min_delta`
  /// (relative) for `patience` epochs. 0 disables early stopping.
  size_t patience = 0;
  double min_delta = 1e-4;
  /// Multiply the learning rate by this factor every `decay_every` epochs
  /// (1.0 disables decay).
  double lr_decay = 1.0;
  size_t decay_every = 50;
  uint64_t seed = 7;
  bool use_adam = true;
};

struct TrainReport {
  std::vector<double> epoch_losses;
  double final_loss = 0.0;
  size_t epochs_run = 0;
};

/// \brief Train `model` to regress targets(i) from inputs.row(i).
/// inputs: (N, in_dim); targets: (N, out_dim).
TrainReport TrainRegressor(Mlp* model, const Matrix& inputs,
                           const Matrix& targets, const TrainConfig& config);

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_TRAINER_H_
