#include "nn/loss.h"

#include <cassert>
#include <cmath>

namespace neurosketch {
namespace nn {

double MseLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  assert(pred.SameShape(target));
  const size_t n = pred.size();
  *grad = Matrix(pred.rows(), pred.cols());
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = pred.data()[i] - target.data()[i];
    loss += diff * diff;
    grad->data()[i] = 2.0 * diff / static_cast<double>(n);
  }
  return loss / static_cast<double>(n);
}

double MaeLoss(const Matrix& pred, const Matrix& target, Matrix* grad) {
  assert(pred.SameShape(target));
  const size_t n = pred.size();
  *grad = Matrix(pred.rows(), pred.cols());
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double diff = pred.data()[i] - target.data()[i];
    loss += std::fabs(diff);
    double g = diff > 0.0 ? 1.0 : (diff < 0.0 ? -1.0 : 0.0);
    grad->data()[i] = g / static_cast<double>(n);
  }
  return loss / static_cast<double>(n);
}

}  // namespace nn
}  // namespace neurosketch
