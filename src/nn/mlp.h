// Multi-layer perceptron matching the paper's NeuroSketch architecture
// (Sec. 4.2): input layer of dimensionality d, a first hidden layer of
// l_first units, (n_l - 2) hidden layers of l_rest units, and a 1-unit
// linear output layer; ReLU on all hidden layers.
#ifndef NEUROSKETCH_NN_MLP_H_
#define NEUROSKETCH_NN_MLP_H_

#include <cstddef>
#include <vector>

#include "nn/layer.h"
#include "util/random.h"

namespace neurosketch {
namespace nn {

/// \brief Architecture description. `hidden` lists hidden-layer widths in
/// order; output is always 1 linear unit unless `out_dim` says otherwise.
struct MlpConfig {
  size_t in_dim = 1;
  std::vector<size_t> hidden;
  size_t out_dim = 1;
  Activation hidden_act = Activation::kRelu;

  /// \brief Paper default: n_l layers total, first hidden = l_first,
  /// rest = l_rest (Sec. 5.1 default: n_l=5, l_first=60, l_rest=30).
  static MlpConfig Paper(size_t in_dim, size_t n_layers = 5,
                         size_t l_first = 60, size_t l_rest = 30);
};

/// \brief Trainable feed-forward network.
class Mlp {
 public:
  Mlp() = default;
  explicit Mlp(const MlpConfig& config, uint64_t seed = 42);

  /// \brief Training forward pass (caches activations for Backward).
  void Forward(const Matrix& x, Matrix* y);

  /// \brief Inference forward pass (no caching, const).
  void Predict(const Matrix& x, Matrix* y) const;

  /// \brief Single-input convenience inference (out_dim must be 1).
  double PredictOne(const std::vector<double>& x) const;

  /// \brief Backprop dL/dy through all layers, accumulating grads.
  void Backward(const Matrix& dy);

  void ZeroGrad();
  std::vector<ParamView> Params();

  size_t num_params() const;
  /// \brief Serialized size in bytes (8 bytes per parameter), the paper's
  /// space-complexity measure Σ(f̂).
  size_t SizeBytes() const { return num_params() * sizeof(double); }

  const MlpConfig& config() const { return config_; }
  std::vector<DenseLayer>& layers() { return layers_; }
  const std::vector<DenseLayer>& layers() const { return layers_; }

 private:
  MlpConfig config_;
  std::vector<DenseLayer> layers_;
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_MLP_H_
