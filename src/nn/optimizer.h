// First-order optimizers. The paper trains with Adam [20]; plain SGD is
// provided for the construction-initialization experiments (Appendix A.5).
#ifndef NEUROSKETCH_NN_OPTIMIZER_H_
#define NEUROSKETCH_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace neurosketch {
namespace nn {

/// \brief Interface: consume accumulated gradients and update parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// \brief Register the parameter set once before the first Step.
  virtual void Attach(std::vector<ParamView> params) = 0;
  /// \brief Apply one update using the currently accumulated gradients.
  virtual void Step() = 0;
  virtual double learning_rate() const = 0;
  virtual void set_learning_rate(double lr) = 0;
};

/// \brief Vanilla SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr = 1e-2, double momentum = 0.0);
  void Attach(std::vector<ParamView> params) override;
  void Step() override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_, momentum_;
  std::vector<ParamView> params_;
  std::vector<std::vector<double>> velocity_;
};

/// \brief Adam (Kingma & Ba 2014) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void Attach(std::vector<ParamView> params) override;
  void Step() override;
  double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<ParamView> params_;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace nn
}  // namespace neurosketch

#endif  // NEUROSKETCH_NN_OPTIMIZER_H_
