#include "nn/mlp.h"

namespace neurosketch {
namespace nn {

MlpConfig MlpConfig::Paper(size_t in_dim, size_t n_layers, size_t l_first,
                           size_t l_rest) {
  MlpConfig cfg;
  cfg.in_dim = in_dim;
  cfg.out_dim = 1;
  if (n_layers >= 2) {
    cfg.hidden.push_back(l_first);
    for (size_t i = 2; i + 1 <= n_layers - 1; ++i) cfg.hidden.push_back(l_rest);
  }
  return cfg;
}

Mlp::Mlp(const MlpConfig& config, uint64_t seed) : config_(config) {
  Rng rng(seed);
  size_t prev = config.in_dim;
  for (size_t h : config.hidden) {
    layers_.emplace_back(prev, h, config.hidden_act);
    prev = h;
  }
  layers_.emplace_back(prev, config.out_dim, Activation::kIdentity);
  for (auto& layer : layers_) layer.InitParams(&rng);
}

void Mlp::Forward(const Matrix& x, Matrix* y) {
  Matrix cur = x;
  Matrix next;
  for (auto& layer : layers_) {
    layer.Forward(cur, &next);
    cur = next;
  }
  *y = cur;
}

void Mlp::Predict(const Matrix& x, Matrix* y) const {
  Matrix cur = x;
  Matrix next;
  for (const auto& layer : layers_) {
    layer.ForwardInference(cur, &next);
    cur = next;
  }
  *y = cur;
}

double Mlp::PredictOne(const std::vector<double>& x) const {
  Matrix in(1, x.size());
  for (size_t i = 0; i < x.size(); ++i) in(0, i) = x[i];
  Matrix out;
  Predict(in, &out);
  return out(0, 0);
}

void Mlp::Backward(const Matrix& dy) {
  Matrix cur = dy;
  Matrix prev;
  for (size_t i = layers_.size(); i-- > 0;) {
    layers_[i].Backward(cur, &prev);
    cur = prev;
  }
}

void Mlp::ZeroGrad() {
  for (auto& layer : layers_) layer.ZeroGrad();
}

std::vector<ParamView> Mlp::Params() {
  std::vector<ParamView> out;
  for (auto& layer : layers_) {
    for (auto& p : layer.Params()) out.push_back(p);
  }
  return out;
}

size_t Mlp::num_params() const {
  size_t n = 0;
  for (const auto& layer : layers_) n += layer.num_params();
  return n;
}

}  // namespace nn
}  // namespace neurosketch
