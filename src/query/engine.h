// Exact scan-based query engine. Provides ground truth f_D(q) for training
// set generation (paper Sec. 4.2: "a typical algorithm iterates over the
// points in the database ... checks whether it matches the RAQ predicate")
// and for the evaluation harness. Supports an optional parallel batch path
// mirroring the paper's "embarrassingly parallelizable across training
// queries" note.
#ifndef NEUROSKETCH_QUERY_ENGINE_H_
#define NEUROSKETCH_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/streaming_table.h"
#include "data/table.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "query/query.h"

namespace neurosketch {

/// \brief Exact evaluator over a (normalized) table.
///
/// Two modes share one interface:
/// - Static: constructed over a `const Table*` — the table is immutable
///   for the engine's lifetime (the training / evaluation case).
/// - Streaming: constructed over a `StreamingTable*` — the base table can
///   be swapped by compaction while the engine serves. Every call pins
///   ONE version for its whole duration (a batch never mixes versions),
///   and callers that must compose a base scan with a delta scan pin
///   explicitly via Pin() so the (table, fold watermark) pair is read
///   once. See data/streaming_table.h for the snapshot-before-pin
///   ordering rule.
class ExactEngine {
 public:
  /// \brief Static mode: the engine keeps a pointer; `table` must outlive
  /// it and stay immutable.
  explicit ExactEngine(const Table* table);

  /// \brief Streaming mode: answers run over the table's current pinned
  /// version; `streaming` must outlive the engine.
  explicit ExactEngine(const StreamingTable* streaming);

  /// \brief One consistent read of the base: the table to scan plus the
  /// delta fold watermark baked into it. In static mode `version` is null,
  /// `table` is the constructor table and `folded` is 0. In streaming mode
  /// `version` keeps the table alive across concurrent compaction swaps —
  /// hold the pin for the full unit of work.
  struct PinnedBase {
    std::shared_ptr<const StreamingTable::Version> version;
    const Table* table = nullptr;
    uint64_t folded = 0;
  };
  PinnedBase Pin() const;

  /// \brief Exact answer to one query. NaN for undefined answers
  /// (AVG-like aggregate over an empty range).
  double Answer(const QueryFunctionSpec& spec, const QueryInstance& q) const;

  /// \brief Feed every matching row's measure into `acc` without
  /// finalizing, in table row order. Answer(spec, q) is exactly
  /// `{ AggregateAccumulator a(spec.agg); Accumulate(spec, q, &a);
  /// a.Finalize(); }` — exposed so a caller can continue the same
  /// accumulation over rows the table does not hold (the streaming delta
  /// buffer): base-then-delta accumulation is bit-identical to a single
  /// scan of the appended table for every aggregate, including the
  /// order-dependent ones (Welford STD, MEDIAN's buffer).
  void Accumulate(const QueryFunctionSpec& spec, const QueryInstance& q,
                  AggregateAccumulator* acc) const;

  /// \brief Accumulate over an explicit table — the building block the
  /// streaming serve path uses with a pinned version, so one batch's base
  /// scans all read the same swap generation.
  static void AccumulateOver(const Table& table, const QueryFunctionSpec& spec,
                             const QueryInstance& q,
                             AggregateAccumulator* acc);

  /// \brief Number of rows matching the predicate.
  size_t CountMatches(const QueryFunctionSpec& spec,
                      const QueryInstance& q) const;

  /// \brief Exact answers for a batch; optionally multi-threaded on the
  /// shared process pool (util/thread_pool.h). `num_threads == 0` means
  /// hardware concurrency; 1 runs serially on the calling thread. The
  /// whole batch runs over one pinned version.
  std::vector<double> AnswerBatch(const QueryFunctionSpec& spec,
                                  const std::vector<QueryInstance>& queries,
                                  size_t num_threads = 1) const;

  /// \brief Column count of the underlying data; invariant across
  /// streaming swaps.
  size_t num_columns() const;

 private:
  const Table* table_ = nullptr;               // static mode
  const StreamingTable* streaming_ = nullptr;  // streaming mode
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_ENGINE_H_
