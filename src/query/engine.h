// Exact scan-based query engine. Provides ground truth f_D(q) for training
// set generation (paper Sec. 4.2: "a typical algorithm iterates over the
// points in the database ... checks whether it matches the RAQ predicate")
// and for the evaluation harness. Supports an optional parallel batch path
// mirroring the paper's "embarrassingly parallelizable across training
// queries" note.
#ifndef NEUROSKETCH_QUERY_ENGINE_H_
#define NEUROSKETCH_QUERY_ENGINE_H_

#include <vector>

#include "data/table.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "query/query.h"

namespace neurosketch {

/// \brief Exact evaluator over a (normalized) table.
class ExactEngine {
 public:
  /// \brief The engine keeps a pointer; `table` must outlive it.
  explicit ExactEngine(const Table* table);

  /// \brief Exact answer to one query. NaN for undefined answers
  /// (AVG-like aggregate over an empty range).
  double Answer(const QueryFunctionSpec& spec, const QueryInstance& q) const;

  /// \brief Feed every matching row's measure into `acc` without
  /// finalizing, in table row order. Answer(spec, q) is exactly
  /// `{ AggregateAccumulator a(spec.agg); Accumulate(spec, q, &a);
  /// a.Finalize(); }` — exposed so a caller can continue the same
  /// accumulation over rows the table does not hold (the streaming delta
  /// buffer): base-then-delta accumulation is bit-identical to a single
  /// scan of the appended table for every aggregate, including the
  /// order-dependent ones (Welford STD, MEDIAN's buffer).
  void Accumulate(const QueryFunctionSpec& spec, const QueryInstance& q,
                  AggregateAccumulator* acc) const;

  /// \brief Number of rows matching the predicate.
  size_t CountMatches(const QueryFunctionSpec& spec,
                      const QueryInstance& q) const;

  /// \brief Exact answers for a batch; optionally multi-threaded on the
  /// shared process pool (util/thread_pool.h). `num_threads == 0` means
  /// hardware concurrency; 1 runs serially on the calling thread.
  std::vector<double> AnswerBatch(const QueryFunctionSpec& spec,
                                  const std::vector<QueryInstance>& queries,
                                  size_t num_threads = 1) const;

  const Table& table() const { return *table_; }

 private:
  const Table* table_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_ENGINE_H_
