#include "query/query.h"

#include "query/predicate.h"

namespace neurosketch {

std::string AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kCount: return "COUNT";
    case Aggregate::kSum: return "SUM";
    case Aggregate::kAvg: return "AVG";
    case Aggregate::kStd: return "STD";
    case Aggregate::kMedian: return "MEDIAN";
    case Aggregate::kMin: return "MIN";
    case Aggregate::kMax: return "MAX";
  }
  return "?";
}

QueryInstance QueryInstance::AxisRange(const std::vector<double>& c,
                                       const std::vector<double>& r) {
  QueryInstance out;
  out.q.reserve(c.size() + r.size());
  out.q.insert(out.q.end(), c.begin(), c.end());
  out.q.insert(out.q.end(), r.begin(), r.end());
  return out;
}

std::string QueryFunctionSpec::ToString() const {
  std::string pred = predicate ? predicate->name() : "<none>";
  return AggregateName(agg) + "(col " + std::to_string(measure_col) +
         ") WHERE " + pred;
}

}  // namespace neurosketch
