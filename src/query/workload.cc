#include "query/workload.h"

#include <algorithm>
#include <cmath>

namespace neurosketch {

WorkloadGenerator::WorkloadGenerator(size_t data_dim, WorkloadConfig config)
    : data_dim_(data_dim), config_(std::move(config)), rng_(config_.seed) {
  if (config_.candidate_attrs.empty()) {
    for (size_t i = 0; i < data_dim_; ++i) {
      config_.candidate_attrs.push_back(i);
    }
  }
}

QueryInstance WorkloadGenerator::Generate() {
  std::vector<double> c(data_dim_, 0.0), r(data_dim_, 1.0);
  std::vector<size_t> active = config_.fixed_attrs;
  // Draw the remaining active attributes from candidates not already fixed.
  if (active.size() < config_.num_active) {
    std::vector<size_t> pool;
    for (size_t a : config_.candidate_attrs) {
      if (std::find(active.begin(), active.end(), a) == active.end()) {
        pool.push_back(a);
      }
    }
    const size_t need = config_.num_active - active.size();
    std::vector<size_t> picks =
        rng_.SampleWithoutReplacement(pool.size(), std::min(need, pool.size()));
    for (size_t p : picks) active.push_back(pool[p]);
  }
  for (size_t a : active) {
    const double width =
        rng_.Uniform(config_.range_frac_lo, config_.range_frac_hi);
    c[a] = rng_.Uniform(0.0, std::max(0.0, 1.0 - width));
    r[a] = width;
  }
  return QueryInstance::AxisRange(c, r);
}

std::vector<QueryInstance> WorkloadGenerator::GenerateMany(
    size_t n, const ExactEngine* engine, const QueryFunctionSpec* spec) {
  std::vector<QueryInstance> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryInstance q = Generate();
    if (engine != nullptr && spec != nullptr && config_.min_matches > 0) {
      size_t attempts = 0;
      while (engine->CountMatches(*spec, q) < config_.min_matches &&
             attempts++ < config_.max_resample_attempts) {
        q = Generate();
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<QueryInstance> WorkloadGenerator::GenerateRotatedRects(
    size_t n, const ExactEngine* engine, const QueryFunctionSpec* spec) {
  auto draw = [this]() {
    const double w = rng_.Uniform(config_.range_frac_lo, config_.range_frac_hi);
    const double h = rng_.Uniform(config_.range_frac_lo, config_.range_frac_hi);
    const double phi = rng_.Uniform(0.0, M_PI / 2.0);
    const double px = rng_.Uniform(0.0, 1.0 - w);
    const double py = rng_.Uniform(0.0, 1.0 - h);
    // Opposite corner in the rotated frame: p + R(phi) * (w, h).
    const double qx = px + std::cos(phi) * w - std::sin(phi) * h;
    const double qy = py + std::sin(phi) * w + std::cos(phi) * h;
    return QueryInstance(std::vector<double>{px, py, qx, qy, phi});
  };
  std::vector<QueryInstance> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryInstance q = draw();
    if (engine != nullptr && spec != nullptr && config_.min_matches > 0) {
      size_t attempts = 0;
      while (engine->CountMatches(*spec, q) < config_.min_matches &&
             attempts++ < config_.max_resample_attempts) {
        q = draw();
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace neurosketch
