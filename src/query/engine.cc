#include "query/engine.h"

#include <atomic>
#include <thread>

#include "query/aggregate.h"

namespace neurosketch {

namespace {
/// Gathers per-column base pointers once; the row-materialization loop is
/// the hot path of training-set generation.
std::vector<const double*> ColumnPointers(const Table& t) {
  std::vector<const double*> cols(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) cols[c] = t.column(c).data();
  return cols;
}
}  // namespace

ExactEngine::ExactEngine(const Table* table) : table_(table) {}

double ExactEngine::Answer(const QueryFunctionSpec& spec,
                           const QueryInstance& q) const {
  const size_t dim = table_->num_columns();
  const size_t n = table_->num_rows();
  const auto cols = ColumnPointers(*table_);
  const double* measure = cols[spec.measure_col];
  AggregateAccumulator acc(spec.agg);
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) acc.Add(measure[i]);
  }
  return acc.Finalize();
}

size_t ExactEngine::CountMatches(const QueryFunctionSpec& spec,
                                 const QueryInstance& q) const {
  const size_t dim = table_->num_columns();
  const size_t n = table_->num_rows();
  const auto cols = ColumnPointers(*table_);
  size_t matches = 0;
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) ++matches;
  }
  return matches;
}

std::vector<double> ExactEngine::AnswerBatch(
    const QueryFunctionSpec& spec, const std::vector<QueryInstance>& queries,
    size_t num_threads) const {
  std::vector<double> out(queries.size());
  if (num_threads <= 1 || queries.size() < 2 * num_threads) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = Answer(spec, queries[i]);
    }
    return out;
  }
  std::vector<std::thread> workers;
  std::atomic<size_t> next{0};
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= queries.size()) return;
        out[i] = Answer(spec, queries[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  return out;
}

}  // namespace neurosketch
