#include "query/engine.h"

#include "query/aggregate.h"
#include "util/thread_pool.h"

namespace neurosketch {

namespace {
/// Gathers per-column base pointers once; the row-materialization loop is
/// the hot path of training-set generation.
std::vector<const double*> ColumnPointers(const Table& t) {
  std::vector<const double*> cols(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) cols[c] = t.column(c).data();
  return cols;
}
}  // namespace

ExactEngine::ExactEngine(const Table* table) : table_(table) {}

ExactEngine::ExactEngine(const StreamingTable* streaming)
    : streaming_(streaming) {}

ExactEngine::PinnedBase ExactEngine::Pin() const {
  PinnedBase pinned;
  if (streaming_ != nullptr) {
    pinned.version = streaming_->Pin();
    pinned.table = &pinned.version->table;
    pinned.folded = pinned.version->folded;
  } else {
    pinned.table = table_;
  }
  return pinned;
}

size_t ExactEngine::num_columns() const {
  if (streaming_ != nullptr) return streaming_->num_columns();
  return table_->num_columns();
}

double ExactEngine::Answer(const QueryFunctionSpec& spec,
                           const QueryInstance& q) const {
  AggregateAccumulator acc(spec.agg);
  Accumulate(spec, q, &acc);
  return acc.Finalize();
}

void ExactEngine::AccumulateOver(const Table& table,
                                 const QueryFunctionSpec& spec,
                                 const QueryInstance& q,
                                 AggregateAccumulator* acc) {
  const size_t dim = table.num_columns();
  const size_t n = table.num_rows();
  const auto cols = ColumnPointers(table);
  const double* measure = cols[spec.measure_col];
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) acc->Add(measure[i]);
  }
}

void ExactEngine::Accumulate(const QueryFunctionSpec& spec,
                             const QueryInstance& q,
                             AggregateAccumulator* acc) const {
  const PinnedBase pinned = Pin();
  AccumulateOver(*pinned.table, spec, q, acc);
}

size_t ExactEngine::CountMatches(const QueryFunctionSpec& spec,
                                 const QueryInstance& q) const {
  const PinnedBase pinned = Pin();
  const Table& t = *pinned.table;
  const size_t dim = t.num_columns();
  const size_t n = t.num_rows();
  const auto cols = ColumnPointers(t);
  size_t matches = 0;
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) ++matches;
  }
  return matches;
}

std::vector<double> ExactEngine::AnswerBatch(
    const QueryFunctionSpec& spec, const std::vector<QueryInstance>& queries,
    size_t num_threads) const {
  // One pin for the whole batch: a concurrent compaction swap must never
  // split a batch across two base versions.
  const PinnedBase pinned = Pin();
  const Table& t = *pinned.table;
  auto answer_one = [&](const QueryInstance& q) {
    AggregateAccumulator acc(spec.agg);
    AccumulateOver(t, spec, q, &acc);
    return acc.Finalize();
  };
  std::vector<double> out(queries.size());
  ThreadPool& pool = ThreadPool::Shared();
  const size_t parallelism =
      num_threads == 0 ? pool.num_threads() + 1 : num_threads;
  if (parallelism <= 1 || queries.size() < 2 * parallelism) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = answer_one(queries[i]);
    }
    return out;
  }
  pool.ParallelFor(queries.size(), parallelism,
                   [&](size_t i) { out[i] = answer_one(queries[i]); });
  return out;
}

}  // namespace neurosketch
