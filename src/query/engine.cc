#include "query/engine.h"

#include "query/aggregate.h"
#include "util/thread_pool.h"

namespace neurosketch {

namespace {
/// Gathers per-column base pointers once; the row-materialization loop is
/// the hot path of training-set generation.
std::vector<const double*> ColumnPointers(const Table& t) {
  std::vector<const double*> cols(t.num_columns());
  for (size_t c = 0; c < t.num_columns(); ++c) cols[c] = t.column(c).data();
  return cols;
}
}  // namespace

ExactEngine::ExactEngine(const Table* table) : table_(table) {}

double ExactEngine::Answer(const QueryFunctionSpec& spec,
                           const QueryInstance& q) const {
  AggregateAccumulator acc(spec.agg);
  Accumulate(spec, q, &acc);
  return acc.Finalize();
}

void ExactEngine::Accumulate(const QueryFunctionSpec& spec,
                             const QueryInstance& q,
                             AggregateAccumulator* acc) const {
  const size_t dim = table_->num_columns();
  const size_t n = table_->num_rows();
  const auto cols = ColumnPointers(*table_);
  const double* measure = cols[spec.measure_col];
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) acc->Add(measure[i]);
  }
}

size_t ExactEngine::CountMatches(const QueryFunctionSpec& spec,
                                 const QueryInstance& q) const {
  const size_t dim = table_->num_columns();
  const size_t n = table_->num_rows();
  const auto cols = ColumnPointers(*table_);
  size_t matches = 0;
  std::vector<double> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < dim; ++c) row[c] = cols[c][i];
    if (spec.predicate->Matches(q, row.data(), dim)) ++matches;
  }
  return matches;
}

std::vector<double> ExactEngine::AnswerBatch(
    const QueryFunctionSpec& spec, const std::vector<QueryInstance>& queries,
    size_t num_threads) const {
  std::vector<double> out(queries.size());
  ThreadPool& pool = ThreadPool::Shared();
  const size_t parallelism =
      num_threads == 0 ? pool.num_threads() + 1 : num_threads;
  if (parallelism <= 1 || queries.size() < 2 * parallelism) {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = Answer(spec, queries[i]);
    }
    return out;
  }
  pool.ParallelFor(queries.size(), parallelism,
                   [&](size_t i) { out[i] = Answer(spec, queries[i]); });
  return out;
}

}  // namespace neurosketch
