#include "query/predicate.h"

#include <algorithm>
#include <cmath>

namespace neurosketch {

void PredicateFunction::QueryBox(const QueryInstance& q, size_t data_dim,
                                 std::vector<double>* lo,
                                 std::vector<double>* hi) const {
  (void)q;
  lo->assign(data_dim, 0.0);
  hi->assign(data_dim, 1.0);
}

bool AxisRangePredicate::Matches(const QueryInstance& q, const double* row,
                                 size_t data_dim) const {
  // q = (c..., r...). Half-open interval [c, c + r) as in Sec. 2.
  const double* c = q.q.data();
  const double* r = q.q.data() + data_dim;
  for (size_t i = 0; i < data_dim; ++i) {
    // Inactive attributes have (c, r) = (0, 1); normalized data can sit
    // exactly at 1.0, so treat a full-range attribute as unconstrained.
    if (c[i] == 0.0 && r[i] >= 1.0) continue;
    const double v = row[i];
    if (v < c[i] || v >= c[i] + r[i]) return false;
  }
  return true;
}

void AxisRangePredicate::QueryBox(const QueryInstance& q, size_t data_dim,
                                  std::vector<double>* lo,
                                  std::vector<double>* hi) const {
  lo->assign(data_dim, 0.0);
  hi->assign(data_dim, 1.0);
  for (size_t i = 0; i < data_dim; ++i) {
    (*lo)[i] = q[i];
    (*hi)[i] = q[i] + q[data_dim + i];
  }
}

bool RotatedRectPredicate::Matches(const QueryInstance& q, const double* row,
                                   size_t data_dim) const {
  (void)data_dim;
  const double px = q[0], py = q[1];
  const double qx = q[2], qy = q[3];
  const double phi = q[4];
  // Rotate both the point and the opposite corner into the rectangle's
  // frame anchored at p; then it is an axis-aligned test.
  const double cosp = std::cos(-phi), sinp = std::sin(-phi);
  auto rot = [&](double x, double y, double* ox, double* oy) {
    *ox = cosp * x - sinp * y;
    *oy = sinp * x + cosp * y;
  };
  double ux, uy, vx, vy;
  rot(row[0] - px, row[1] - py, &ux, &uy);
  rot(qx - px, qy - py, &vx, &vy);
  const double xlo = std::min(0.0, vx), xhi = std::max(0.0, vx);
  const double ylo = std::min(0.0, vy), yhi = std::max(0.0, vy);
  return ux >= xlo && ux <= xhi && uy >= ylo && uy <= yhi;
}

void RotatedRectPredicate::QueryBox(const QueryInstance& q, size_t data_dim,
                                    std::vector<double>* lo,
                                    std::vector<double>* hi) const {
  lo->assign(data_dim, 0.0);
  hi->assign(data_dim, 1.0);
  // Bounding box of the four rectangle corners. p and q are two opposite
  // corners; the other two follow from the rotated frame.
  const double px = q[0], py = q[1];
  const double qx = q[2], qy = q[3];
  const double phi = q[4];
  const double cosp = std::cos(-phi), sinp = std::sin(-phi);
  const double vx = cosp * (qx - px) - sinp * (qy - py);
  const double vy = sinp * (qx - px) + cosp * (qy - py);
  // Corners in the rectangle frame: (0,0), (vx,0), (0,vy), (vx,vy).
  const double cr = std::cos(phi), sr = std::sin(phi);
  double xs[4], ys[4];
  const double fx[4] = {0.0, vx, 0.0, vx};
  const double fy[4] = {0.0, 0.0, vy, vy};
  for (int i = 0; i < 4; ++i) {
    xs[i] = px + cr * fx[i] - sr * fy[i];
    ys[i] = py + sr * fx[i] + cr * fy[i];
  }
  (*lo)[0] = std::min({xs[0], xs[1], xs[2], xs[3]});
  (*hi)[0] = std::max({xs[0], xs[1], xs[2], xs[3]});
  (*lo)[1] = std::min({ys[0], ys[1], ys[2], ys[3]});
  (*hi)[1] = std::max({ys[0], ys[1], ys[2], ys[3]});
}

bool HalfSpacePredicate::Matches(const QueryInstance& q, const double* row,
                                 size_t data_dim) const {
  (void)data_dim;
  return row[1] > row[0] * q[0] + q[1];
}

bool CircularPredicate::Matches(const QueryInstance& q, const double* row,
                                size_t data_dim) const {
  (void)data_dim;
  double acc = 0.0;
  for (size_t i = 0; i < centers_; ++i) {
    const double d = row[i] - q[i];
    acc += d * d;
  }
  const double radius = q[centers_];
  return acc <= radius * radius;
}

void CircularPredicate::QueryBox(const QueryInstance& q, size_t data_dim,
                                 std::vector<double>* lo,
                                 std::vector<double>* hi) const {
  lo->assign(data_dim, 0.0);
  hi->assign(data_dim, 1.0);
  const double radius = q[centers_];
  for (size_t i = 0; i < centers_ && i < data_dim; ++i) {
    (*lo)[i] = q[i] - radius;
    (*hi)[i] = q[i] + radius;
  }
}

}  // namespace neurosketch
