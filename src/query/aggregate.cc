#include "query/aggregate.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.h"

namespace neurosketch {

AggregateAccumulator::AggregateAccumulator(Aggregate agg) : agg_(agg) {}

void AggregateAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  // Welford update.
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (v - mean_);
  if (agg_ == Aggregate::kMedian) buffer_.push_back(v);
}

double AggregateAccumulator::Finalize() const {
  switch (agg_) {
    case Aggregate::kCount:
      return static_cast<double>(count_);
    case Aggregate::kSum:
      return sum_;
    case Aggregate::kAvg:
      if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
      return mean_;
    case Aggregate::kStd:
      if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
      return std::sqrt(m2_ / static_cast<double>(count_));
    case Aggregate::kMedian:
      if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
      return stats::Median(buffer_);
    case Aggregate::kMin:
      if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
      return min_;
    case Aggregate::kMax:
      if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
      return max_;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double AggregateAccumulator::Evaluate(Aggregate agg,
                                      const std::vector<double>& values) {
  AggregateAccumulator acc(agg);
  for (double v : values) acc.Add(v);
  return acc.Finalize();
}

}  // namespace neurosketch
