// Predicate functions P_f(q, x) (paper Sec. 4.3): binary functions that
// decide whether data point x matches the range described by query
// instance q. NeuroSketch is generic over the predicate family; the
// baselines DBEst/DeepDB support only the axis-aligned family, which the
// evaluation (Table 2) exploits.
#ifndef NEUROSKETCH_QUERY_PREDICATE_H_
#define NEUROSKETCH_QUERY_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "query/query.h"

namespace neurosketch {

/// \brief Interface for P_f(q, x).
class PredicateFunction {
 public:
  virtual ~PredicateFunction() = default;

  /// \brief Length of the query-instance vector for a table with
  /// `data_dim` attributes.
  virtual size_t QueryDim(size_t data_dim) const = 0;

  /// \brief True iff the row matches the predicate. `row` has `data_dim`
  /// normalized attribute values.
  virtual bool Matches(const QueryInstance& q, const double* row,
                       size_t data_dim) const = 0;

  /// \brief Axis-aligned bounding box of the matching region, used by
  /// index-backed evaluators (TREE-AGG) to prune candidates before the
  /// exact Matches test. The default is the whole normalized domain.
  virtual void QueryBox(const QueryInstance& q, size_t data_dim,
                        std::vector<double>* lo,
                        std::vector<double>* hi) const;

  virtual std::string name() const = 0;
};

/// \brief The canonical WHERE clause of Sec. 2:
/// c_i <= A_i < c_i + r_i for every attribute i.
/// q = (c_1..c_d, r_1..r_d); an inactive attribute has (c,r) = (0,1).
class AxisRangePredicate : public PredicateFunction {
 public:
  size_t QueryDim(size_t data_dim) const override { return 2 * data_dim; }
  bool Matches(const QueryInstance& q, const double* row,
               size_t data_dim) const override;
  void QueryBox(const QueryInstance& q, size_t data_dim,
                std::vector<double>* lo, std::vector<double>* hi) const override;
  std::string name() const override { return "axis_range"; }

  static std::shared_ptr<const AxisRangePredicate> Make() {
    return std::make_shared<const AxisRangePredicate>();
  }
};

/// \brief General rectangle (Table 2): q = (p_x, p_y, p'_x, p'_y, phi)
/// where p, p' are two non-adjacent vertices and phi is the angle the
/// rectangle makes with the x-axis. Applies to the first two attributes.
class RotatedRectPredicate : public PredicateFunction {
 public:
  size_t QueryDim(size_t data_dim) const override {
    (void)data_dim;
    return 5;
  }
  bool Matches(const QueryInstance& q, const double* row,
               size_t data_dim) const override;
  void QueryBox(const QueryInstance& q, size_t data_dim,
                std::vector<double>* lo, std::vector<double>* hi) const override;
  std::string name() const override { return "rotated_rect"; }

  static std::shared_ptr<const RotatedRectPredicate> Make() {
    return std::make_shared<const RotatedRectPredicate>();
  }
};

/// \brief Half-space above a line (Sec. 4.3 example):
/// matches when x[1] > x[0] * q[0] + q[1].
class HalfSpacePredicate : public PredicateFunction {
 public:
  size_t QueryDim(size_t data_dim) const override {
    (void)data_dim;
    return 2;
  }
  bool Matches(const QueryInstance& q, const double* row,
               size_t data_dim) const override;
  std::string name() const override { return "half_space"; }

  static std::shared_ptr<const HalfSpacePredicate> Make() {
    return std::make_shared<const HalfSpacePredicate>();
  }
};

/// \brief Circular range (Sec. 3.3.2): q = (c_1..c_d, radius), matches
/// points with ||x - c||_2 <= radius over the first `centers` attributes.
class CircularPredicate : public PredicateFunction {
 public:
  explicit CircularPredicate(size_t centers) : centers_(centers) {}
  size_t QueryDim(size_t data_dim) const override {
    (void)data_dim;
    return centers_ + 1;
  }
  bool Matches(const QueryInstance& q, const double* row,
               size_t data_dim) const override;
  void QueryBox(const QueryInstance& q, size_t data_dim,
                std::vector<double>* lo, std::vector<double>* hi) const override;
  std::string name() const override { return "circular"; }

  static std::shared_ptr<const CircularPredicate> Make(size_t centers) {
    return std::make_shared<const CircularPredicate>(centers);
  }

 private:
  size_t centers_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_PREDICATE_H_
