#include "query/parametric.h"

#include <algorithm>
#include <cctype>

#include "query/predicate.h"
#include "util/string_util.h"

namespace neurosketch {

namespace {

/// Simple whitespace/symbol tokenizer. Symbols: ( ) , * and the
/// comparison operators; identifiers keep '?' prefixes.
std::vector<std::string> Tokenize(const std::string& sql) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&]() {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < sql.size(); ++i) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '(' || c == ')' || c == ',' || c == '*') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (c == '>' || c == '<') {
      flush();
      if (i + 1 < sql.size() && sql[i + 1] == '=') {
        tokens.push_back(std::string(1, c) + "=");
        ++i;
      } else {
        tokens.push_back(std::string(1, c));
      }
    } else if (c == '=') {
      flush();
      tokens.push_back("=");
    } else {
      cur.push_back(c);
    }
  }
  flush();
  return tokens;
}

std::string Upper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

Result<Aggregate> ParseAggregate(const std::string& name) {
  const std::string u = Upper(name);
  if (u == "COUNT") return Aggregate::kCount;
  if (u == "SUM") return Aggregate::kSum;
  if (u == "AVG") return Aggregate::kAvg;
  if (u == "STD" || u == "STDDEV" || u == "STDEV") return Aggregate::kStd;
  if (u == "MEDIAN") return Aggregate::kMedian;
  if (u == "MIN") return Aggregate::kMin;
  if (u == "MAX") return Aggregate::kMax;
  return Status::InvalidArgument("unknown aggregate: " + name);
}

}  // namespace

Result<ParametricQuery> ParametricQuery::Parse(const std::string& sql,
                                               const Schema& schema) {
  std::vector<std::string> tok = Tokenize(sql);
  size_t pos = 0;
  auto peek = [&]() -> std::string {
    return pos < tok.size() ? tok[pos] : std::string();
  };
  auto next = [&]() -> std::string {
    return pos < tok.size() ? tok[pos++] : std::string();
  };
  auto expect = [&](const std::string& want) -> Status {
    const std::string got = next();
    if (Upper(got) != Upper(want)) {
      return Status::InvalidArgument("expected '" + want + "', got '" + got +
                                     "'");
    }
    return Status::OK();
  };

  ParametricQuery out;
  out.data_dim_ = schema.num_columns();
  out.bounds_.resize(out.data_dim_);
  out.spec_.predicate = AxisRangePredicate::Make();

  NS_RETURN_NOT_OK(expect("SELECT"));
  NS_ASSIGN_OR_RETURN(out.spec_.agg, ParseAggregate(next()));
  NS_RETURN_NOT_OK(expect("("));
  {
    const std::string measure = next();
    if (measure == "*") {
      if (out.spec_.agg != Aggregate::kCount) {
        return Status::InvalidArgument("only COUNT(*) may use '*'");
      }
      out.spec_.measure_col = 0;
    } else {
      const int col = schema.Find(measure);
      if (col < 0) {
        return Status::InvalidArgument("unknown measure column: " + measure);
      }
      out.spec_.measure_col = static_cast<size_t>(col);
    }
  }
  NS_RETURN_NOT_OK(expect(")"));
  NS_RETURN_NOT_OK(expect("FROM"));
  if (next().empty()) return Status::InvalidArgument("missing table name");

  auto param_index = [&](const std::string& token,
                         size_t column) -> Result<size_t> {
    if (token.size() < 2 || token[0] != '?') {
      return Status::InvalidArgument("expected ?parameter, got '" + token +
                                     "'");
    }
    const std::string name = token.substr(1);
    for (size_t i = 0; i < out.params_.size(); ++i) {
      if (out.params_[i] == name) {
        return Status::InvalidArgument("parameter ?" + name + " reused");
      }
    }
    out.params_.push_back(name);
    out.param_cols_.push_back(column);
    return out.params_.size() - 1;
  };

  if (!peek().empty()) {
    NS_RETURN_NOT_OK(expect("WHERE"));
    for (;;) {
      const std::string col_name = next();
      const int col = schema.Find(col_name);
      if (col < 0) {
        return Status::InvalidArgument("unknown column: " + col_name);
      }
      AttrBounds& b = out.bounds_[col];
      const std::string op = Upper(next());
      const size_t col_id = static_cast<size_t>(col);
      if (op == "BETWEEN") {
        NS_ASSIGN_OR_RETURN(size_t lo, param_index(next(), col_id));
        NS_RETURN_NOT_OK(expect("AND"));
        NS_ASSIGN_OR_RETURN(size_t hi, param_index(next(), col_id));
        b.lower = {true, lo, 0.0, false};
        b.upper = {true, hi, 1.0, false};
        b.constrained = true;
      } else if (op == ">" || op == ">=") {
        NS_ASSIGN_OR_RETURN(size_t p, param_index(next(), col_id));
        b.lower = {true, p, 0.0, op == ">"};
        b.constrained = true;
      } else if (op == "<" || op == "<=") {
        NS_ASSIGN_OR_RETURN(size_t p, param_index(next(), col_id));
        b.upper = {true, p, 1.0, op == "<"};
        b.constrained = true;
      } else {
        return Status::InvalidArgument("unsupported operator: " + op);
      }
      if (peek().empty()) break;
      NS_RETURN_NOT_OK(expect("AND"));
    }
  }
  return out;
}

Result<QueryInstance> ParametricQuery::Bind(
    const std::vector<double>& values) const {
  if (values.size() != params_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(params_.size()) + " parameters, got " +
        std::to_string(values.size()));
  }
  std::vector<double> c(data_dim_, 0.0), r(data_dim_, 1.0);
  for (size_t i = 0; i < data_dim_; ++i) {
    const AttrBounds& b = bounds_[i];
    if (!b.constrained) continue;
    const double lo =
        b.lower.has_param ? values[b.lower.param_index] : b.lower.constant;
    const double hi =
        b.upper.has_param ? values[b.upper.param_index] : b.upper.constant;
    if (hi < lo) {
      return Status::InvalidArgument("upper bound below lower bound for col " +
                                     std::to_string(i));
    }
    c[i] = lo;
    r[i] = hi - lo;
  }
  return QueryInstance::AxisRange(c, r);
}

Result<QueryInstance> ParametricQuery::BindNamed(
    const std::map<std::string, double>& values) const {
  std::vector<double> ordered(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    auto it = values.find(params_[i]);
    if (it == values.end()) {
      return Status::InvalidArgument("missing parameter ?" + params_[i]);
    }
    ordered[i] = it->second;
  }
  return Bind(ordered);
}

}  // namespace neurosketch
