// Parametric-query front end (paper Sec. 4.3: "For many applications,
// WHERE clauses in SQL queries are written in a parametric form (e.g.,
// WHERE X1 > ?param1 ...). Such queries can be represented as query
// functions by setting q to be the parameters of the WHERE clause.")
//
// Parses a restricted SQL-like template into a QueryFunctionSpec plus a
// binder that maps parameter values onto the canonical (c, r) query
// encoding. Supported grammar (case-insensitive keywords):
//
//   SELECT <AGG>(<measure>) FROM <ident>
//     [WHERE <cond> [AND <cond>]*]
//   cond := <col> BETWEEN ?<p> AND ?<p>
//         | <col> >= ?<p> | <col> > ?<p> | <col> < ?<p> | <col> <= ?<p>
//
// AGG in {COUNT, SUM, AVG, STD, MEDIAN, MIN, MAX}; COUNT(*) is allowed.
#ifndef NEUROSKETCH_QUERY_PARAMETRIC_H_
#define NEUROSKETCH_QUERY_PARAMETRIC_H_

#include <map>
#include <string>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/status.h"

namespace neurosketch {

/// \brief A parsed parametric query template bound to a table schema.
class ParametricQuery {
 public:
  /// \brief Parse `sql` against `schema`. Column names must exist; each
  /// ?-parameter may be used once.
  static Result<ParametricQuery> Parse(const std::string& sql,
                                       const Schema& schema);

  /// \brief Query function this template denotes (axis-range predicate).
  const QueryFunctionSpec& spec() const { return spec_; }

  /// \brief Parameter names in first-use order (without the '?').
  const std::vector<std::string>& parameter_names() const { return params_; }

  /// \brief Column id each parameter constrains (aligned with
  /// parameter_names); used to normalize original-unit parameter values.
  const std::vector<size_t>& parameter_columns() const { return param_cols_; }

  /// \brief Bind parameter values (normalized units, same order as
  /// parameter_names) into a canonical (c, r) query instance.
  Result<QueryInstance> Bind(const std::vector<double>& values) const;

  /// \brief Bind by name.
  Result<QueryInstance> BindNamed(
      const std::map<std::string, double>& values) const;

  std::string aggregate_name() const { return AggregateName(spec_.agg); }

 private:
  // Per-attribute bound templates: each side is either a constant
  // (0 for lower, 1 for upper) or a parameter index.
  struct Bound {
    bool has_param = false;
    size_t param_index = 0;
    double constant = 0.0;
    /// Strictness is recorded for documentation; the canonical encoding
    /// is the half-open interval [c, c + r) of Sec. 2.
    bool strict = false;
  };
  struct AttrBounds {
    Bound lower;                          // defaults to constant 0
    Bound upper = {false, 0, 1.0, false};  // defaults to constant 1
    bool constrained = false;
  };

  size_t data_dim_ = 0;
  QueryFunctionSpec spec_;
  std::vector<std::string> params_;
  std::vector<size_t> param_cols_;
  std::vector<AttrBounds> bounds_;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_PARAMETRIC_H_
