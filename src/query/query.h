// Query-function abstractions (paper Sec. 2 and 4.3).
//
// A range aggregate query (RAQ) is a pair (predicate function, aggregation
// function) applied to a query instance q. For the canonical axis-aligned
// predicate, q is the 2d̄-vector (c_1..c_d̄, r_1..r_d̄) of lower bounds and
// range widths over normalized attributes; an inactive attribute encodes
// (c, r) = (0, 1). General predicates interpret q as an arbitrary
// parameter vector (e.g. rotated rectangle: two corners plus an angle).
#ifndef NEUROSKETCH_QUERY_QUERY_H_
#define NEUROSKETCH_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

namespace neurosketch {

/// \brief Aggregation functions. The theory (Sec. 3) covers COUNT/SUM/AVG;
/// NeuroSketch itself makes no assumption on AGG (Sec. 4.3) and the paper
/// additionally evaluates STD and MEDIAN.
enum class Aggregate {
  kCount,
  kSum,
  kAvg,
  kStd,
  kMedian,
  kMin,
  kMax,
};

std::string AggregateName(Aggregate agg);

/// \brief A query instance: the parameter vector q of a query function.
struct QueryInstance {
  std::vector<double> q;

  QueryInstance() = default;
  explicit QueryInstance(std::vector<double> values) : q(std::move(values)) {}

  /// \brief Axis-range helper: build from bounds c and widths r.
  static QueryInstance AxisRange(const std::vector<double>& c,
                                 const std::vector<double>& r);

  size_t dim() const { return q.size(); }
  double operator[](size_t i) const { return q[i]; }
};

class PredicateFunction;  // forward decl (predicate.h)

/// \brief A query function f_D: predicate family + aggregation + measure
/// column. One NeuroSketch is trained per query function (query
/// specialization, Sec. 4.3).
struct QueryFunctionSpec {
  std::shared_ptr<const PredicateFunction> predicate;
  Aggregate agg = Aggregate::kAvg;
  size_t measure_col = 0;

  std::string ToString() const;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_QUERY_H_
