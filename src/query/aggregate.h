// Aggregate accumulators. Streaming where possible (COUNT/SUM/AVG/STD/
// MIN/MAX); MEDIAN buffers matched values. STD uses Welford's method.
#ifndef NEUROSKETCH_QUERY_AGGREGATE_H_
#define NEUROSKETCH_QUERY_AGGREGATE_H_

#include <vector>

#include "query/query.h"

namespace neurosketch {

/// \brief Accumulates measure values for one query and finalizes the
/// aggregate. COUNT/SUM of zero rows is 0; AVG/STD/MEDIAN/MIN/MAX of zero
/// rows is NaN (the query answer is undefined; workload generators resample
/// such queries).
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(Aggregate agg);

  void Add(double measure_value);
  double Finalize() const;
  size_t count() const { return count_; }

  /// \brief One-shot evaluation over a value vector.
  static double Evaluate(Aggregate agg, const std::vector<double>& values);

 private:
  Aggregate agg_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0, m2_ = 0.0;  // Welford state for STD
  double min_ = 0.0, max_ = 0.0;
  std::vector<double> buffer_;  // MEDIAN only
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_QUERY_AGGREGATE_H_
