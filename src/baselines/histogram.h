// Classical synopsis baseline: a multi-dimensional equi-width grid
// histogram (the non-learned "model of the data" family the paper's
// related work surveys [14]). Each cell stores a row count and the sum of
// the measure column; COUNT/SUM/AVG are answered by accumulating cells
// with partial-overlap interpolation (uniform-within-cell assumption).
//
// Included to situate NeuroSketch against the pre-ML state of the art:
// histograms are fast but their size explodes with dimensionality, while
// NeuroSketch's size is architecture-bound.
#ifndef NEUROSKETCH_BASELINES_HISTOGRAM_H_
#define NEUROSKETCH_BASELINES_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/status.h"

namespace neurosketch {

struct GridHistogramConfig {
  /// Bins per dimension over the histogrammed attributes. Total cells are
  /// bins^|dims|, so keep |dims| small (<= 4 recommended).
  size_t bins_per_dim = 16;
  /// Attributes to histogram (the predicate columns); empty = all columns
  /// except the measure.
  std::vector<size_t> dims;
};

/// \brief Equi-width grid histogram over a normalized table.
class GridHistogram {
 public:
  /// \brief Build for a measure column. Fails when the cell count would
  /// exceed ~16M.
  static Result<GridHistogram> Build(const Table& table, size_t measure_col,
                                     const GridHistogramConfig& config);

  static bool Supports(Aggregate agg) {
    return agg == Aggregate::kCount || agg == Aggregate::kSum ||
           agg == Aggregate::kAvg;
  }

  /// \brief Answer an axis-range query q = (c..., r...) over the full
  /// attribute set; constraints on non-histogrammed attributes make the
  /// query unanswerable (NotImplemented).
  Result<double> Answer(const QueryFunctionSpec& spec,
                        const QueryInstance& q) const;

  size_t num_cells() const { return counts_.size(); }
  size_t SizeBytes() const {
    return counts_.size() * sizeof(double) * 2;
  }

 private:
  /// Fractional overlap of cell index `cell` with [lo, hi) per dimension,
  /// multiplied across dimensions.
  double CellOverlap(const std::vector<size_t>& cell_coord,
                     const std::vector<double>& lo,
                     const std::vector<double>& hi) const;

  std::vector<size_t> dims_;      // histogrammed attribute ids
  size_t measure_col_ = 0;
  size_t bins_ = 16;
  size_t data_dim_ = 0;
  std::vector<double> counts_;    // per-cell row count
  std::vector<double> sums_;      // per-cell measure sum
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_BASELINES_HISTOGRAM_H_
