#include "baselines/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "query/predicate.h"
#include "util/random.h"
#include "util/stats.h"

namespace neurosketch {

namespace {

/// Connected components of the "correlated" graph over `cols`: an edge
/// joins columns whose |Pearson correlation| on the given rows exceeds the
/// threshold.
std::vector<std::vector<size_t>> CorrelationComponents(
    const Table& table, const std::vector<size_t>& rows,
    const std::vector<size_t>& cols, double threshold) {
  const size_t m = cols.size();
  // Materialize column samples once.
  std::vector<std::vector<double>> samples(m);
  for (size_t i = 0; i < m; ++i) {
    samples[i].reserve(rows.size());
    for (size_t r : rows) samples[i].push_back(table.column(cols[i])[r]);
  }
  // Union-find over column indices.
  std::vector<size_t> parent(m);
  for (size_t i = 0; i < m; ++i) parent[i] = i;
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      const double corr =
          std::fabs(stats::PearsonCorrelation(samples[i], samples[j]));
      if (corr >= threshold) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<std::vector<size_t>> components;
  std::vector<int> comp_of(m, -1);
  for (size_t i = 0; i < m; ++i) {
    const size_t root = find(i);
    if (comp_of[root] < 0) {
      comp_of[root] = static_cast<int>(components.size());
      components.emplace_back();
    }
    components[comp_of[root]].push_back(cols[i]);
  }
  return components;
}

/// 2-means over the given rows restricted to `cols`. Returns cluster
/// assignment; clusters may be empty on degenerate data.
std::vector<int> TwoMeans(const Table& table, const std::vector<size_t>& rows,
                          const std::vector<size_t>& cols, size_t iters,
                          Rng* rng) {
  const size_t n = rows.size();
  const size_t m = cols.size();
  std::vector<int> assign(n, 0);
  if (n < 2) return assign;
  // Initialize centroids from two distinct random rows.
  std::vector<double> c0(m), c1(m);
  const size_t i0 = rng->Index(n);
  size_t i1 = rng->Index(n);
  if (i1 == i0) i1 = (i0 + 1) % n;
  for (size_t j = 0; j < m; ++j) {
    c0[j] = table.column(cols[j])[rows[i0]];
    c1[j] = table.column(cols[j])[rows[i1]];
  }
  for (size_t it = 0; it < iters; ++it) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t j = 0; j < m; ++j) {
        const double v = table.column(cols[j])[rows[i]];
        d0 += (v - c0[j]) * (v - c0[j]);
        d1 += (v - c1[j]) * (v - c1[j]);
      }
      const int a = d1 < d0 ? 1 : 0;
      if (a != assign[i]) {
        assign[i] = a;
        changed = true;
      }
    }
    // Recompute centroids.
    std::vector<double> s0(m, 0.0), s1(m, 0.0);
    size_t n0 = 0, n1 = 0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < m; ++j) {
        const double v = table.column(cols[j])[rows[i]];
        if (assign[i] == 0) {
          s0[j] += v;
        } else {
          s1[j] += v;
        }
      }
      (assign[i] == 0 ? n0 : n1)++;
    }
    if (n0 == 0 || n1 == 0) break;
    for (size_t j = 0; j < m; ++j) {
      c0[j] = s0[j] / static_cast<double>(n0);
      c1[j] = s1[j] / static_cast<double>(n1);
    }
    if (!changed) break;
  }
  return assign;
}

}  // namespace

Spn Spn::Build(const Table& table, const SpnConfig& config) {
  Spn spn;
  spn.data_rows_ = table.num_rows();
  spn.dim_ = table.num_columns();
  Rng rng(config.seed);
  std::vector<size_t> rows(table.num_rows());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  std::vector<size_t> cols(table.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = i;
  spn.root_ =
      spn.BuildRecursive(table, std::move(rows), std::move(cols), 0, &rng,
                         config);
  return spn;
}

int Spn::MakeLeaf(const Table& table, const std::vector<size_t>& rows,
                  size_t column, size_t bins) {
  Node leaf;
  leaf.type = NodeType::kLeaf;
  leaf.column = column;
  leaf.probs.assign(bins, 0.0);
  leaf.centers.assign(bins, 0.0);
  std::vector<size_t> counts(bins, 0);
  for (size_t r : rows) {
    const double v = table.column(column)[r];
    size_t b = static_cast<size_t>(v * static_cast<double>(bins));
    if (b >= bins) b = bins - 1;
    leaf.probs[b] += 1.0;
    leaf.centers[b] += v;
    ++counts[b];
  }
  const double n = static_cast<double>(rows.size());
  for (size_t b = 0; b < bins; ++b) {
    if (counts[b] > 0) leaf.centers[b] /= static_cast<double>(counts[b]);
    else leaf.centers[b] = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
    leaf.probs[b] = n > 0.0 ? leaf.probs[b] / n : 0.0;
  }
  nodes_.push_back(std::move(leaf));
  return static_cast<int>(nodes_.size()) - 1;
}

int Spn::MakeFactorized(const Table& table, const std::vector<size_t>& rows,
                        const std::vector<size_t>& cols, size_t bins) {
  if (cols.size() == 1) return MakeLeaf(table, rows, cols[0], bins);
  Node prod;
  prod.type = NodeType::kProduct;
  for (size_t c : cols) prod.children.push_back(MakeLeaf(table, rows, c, bins));
  nodes_.push_back(std::move(prod));
  return static_cast<int>(nodes_.size()) - 1;
}

int Spn::BuildRecursive(const Table& table, std::vector<size_t> rows,
                        std::vector<size_t> cols, size_t depth, Rng* rng,
                        const SpnConfig& config) {
  if (cols.size() == 1) {
    return MakeLeaf(table, rows, cols[0], config.histogram_bins);
  }
  if (rows.size() < config.min_rows || depth >= config.max_depth) {
    return MakeFactorized(table, rows, cols, config.histogram_bins);
  }

  // Column split: independent groups become a product node.
  auto components =
      CorrelationComponents(table, rows, cols, config.rdc_threshold);
  if (components.size() > 1) {
    Node prod;
    prod.type = NodeType::kProduct;
    std::vector<int> children;
    children.reserve(components.size());
    for (auto& comp : components) {
      children.push_back(
          BuildRecursive(table, rows, std::move(comp), depth + 1, rng, config));
    }
    prod.children = std::move(children);
    nodes_.push_back(std::move(prod));
    return static_cast<int>(nodes_.size()) - 1;
  }

  // Row split: 2-means clustering becomes a sum node.
  std::vector<int> assign =
      TwoMeans(table, rows, cols, config.kmeans_iters, rng);
  std::vector<size_t> rows0, rows1;
  for (size_t i = 0; i < rows.size(); ++i) {
    (assign[i] == 0 ? rows0 : rows1).push_back(rows[i]);
  }
  if (rows0.empty() || rows1.empty()) {
    return MakeFactorized(table, rows, cols, config.histogram_bins);
  }
  const double w0 =
      static_cast<double>(rows0.size()) / static_cast<double>(rows.size());
  Node sum;
  sum.type = NodeType::kSum;
  sum.weights = {w0, 1.0 - w0};
  std::vector<int> children;
  children.push_back(
      BuildRecursive(table, std::move(rows0), cols, depth + 1, rng, config));
  children.push_back(
      BuildRecursive(table, std::move(rows1), cols, depth + 1, rng, config));
  sum.children = std::move(children);
  nodes_.push_back(std::move(sum));
  return static_cast<int>(nodes_.size()) - 1;
}

Spn::EvalResult Spn::Evaluate(int node_id, const std::vector<double>& lo,
                              const std::vector<double>& hi,
                              size_t measure_col) const {
  const Node& node = nodes_[node_id];
  switch (node.type) {
    case NodeType::kLeaf: {
      EvalResult res;
      const size_t bins = node.probs.size();
      const double lo_c = lo[node.column], hi_c = hi[node.column];
      double p = 0.0, e = 0.0;
      for (size_t b = 0; b < bins; ++b) {
        // Fraction of bin [b/bins, (b+1)/bins) inside [lo_c, hi_c).
        const double blo = static_cast<double>(b) / static_cast<double>(bins);
        const double bhi =
            static_cast<double>(b + 1) / static_cast<double>(bins);
        const double overlap =
            std::max(0.0, std::min(bhi, hi_c) - std::max(blo, lo_c));
        if (overlap <= 0.0) continue;
        const double frac = overlap / (bhi - blo);
        p += node.probs[b] * frac;
        e += node.probs[b] * frac * node.centers[b];
      }
      res.p = p;
      if (node.column == measure_col) {
        res.e = e;
        res.has_e = true;
      }
      return res;
    }
    case NodeType::kProduct: {
      // e = E[M·1] of the measure-scoped child times P(range) of the rest.
      EvalResult res;
      res.p = 1.0;
      double measure_e = 0.0, others_p = 1.0;
      for (int child : node.children) {
        EvalResult cr = Evaluate(child, lo, hi, measure_col);
        res.p *= cr.p;
        if (cr.has_e) {
          measure_e = cr.e;
          res.has_e = true;
        } else {
          others_p *= cr.p;
        }
      }
      if (res.has_e) res.e = measure_e * others_p;
      return res;
    }
    case NodeType::kSum: {
      EvalResult res;
      res.p = 0.0;
      res.e = 0.0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        EvalResult cr = Evaluate(node.children[i], lo, hi, measure_col);
        res.p += node.weights[i] * cr.p;
        if (cr.has_e) {
          res.e += node.weights[i] * cr.e;
          res.has_e = true;
        }
      }
      return res;
    }
  }
  return {};
}

double Spn::RangeProbability(const std::vector<double>& lo,
                             const std::vector<double>& hi) const {
  if (root_ < 0) return 0.0;
  // Use a sentinel measure column outside the scope so only p is computed.
  return Evaluate(root_, lo, hi, dim_).p;
}

Result<double> Spn::Answer(const QueryFunctionSpec& spec,
                           const QueryInstance& q) const {
  if (!Supports(spec.agg)) {
    return Status::NotImplemented("spn baseline does not support " +
                                  AggregateName(spec.agg));
  }
  if (spec.predicate->name() != "axis_range") {
    return Status::NotImplemented(
        "spn baseline supports only axis-range predicates");
  }
  if (root_ < 0) return Status::FailedPrecondition("empty SPN");
  std::vector<double> lo(dim_), hi(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    lo[i] = q[i];
    hi[i] = q[i] + q[dim_ + i];
    // Full-range attributes include the closed upper boundary.
    if (lo[i] == 0.0 && hi[i] >= 1.0) hi[i] = 1.0 + 1e-12;
  }
  EvalResult res = Evaluate(root_, lo, hi, spec.measure_col);
  const double n = static_cast<double>(data_rows_);
  switch (spec.agg) {
    case Aggregate::kCount:
      return n * res.p;
    case Aggregate::kSum:
      return n * res.e;
    case Aggregate::kAvg:
      if (res.p <= 0.0) return Status::OutOfRange("empty range under SPN");
      return res.e / res.p;
    default:
      return Status::NotImplemented("unreachable");
  }
}

size_t Spn::SizeBytes() const {
  size_t bytes = 0;
  for (const auto& node : nodes_) {
    bytes += sizeof(Node);
    bytes += node.children.size() * sizeof(int);
    bytes += (node.weights.size() + node.probs.size() + node.centers.size()) *
             sizeof(double);
  }
  return bytes;
}

}  // namespace neurosketch
