#include "baselines/verdict.h"

#include "query/aggregate.h"
#include "util/random.h"

namespace neurosketch {

Verdict Verdict::Build(const Table& table, const VerdictConfig& config) {
  Verdict out;
  out.data_rows_ = table.num_rows();
  out.dim_ = table.num_columns();
  Rng rng(config.seed);
  const size_t k = std::min(config.sample_size, table.num_rows());
  std::vector<size_t> sample = rng.SampleWithoutReplacement(table.num_rows(), k);
  out.scramble_.reserve(k);
  for (size_t id : sample) out.scramble_.push_back(table.Row(id));
  return out;
}

Result<double> Verdict::Answer(const QueryFunctionSpec& spec,
                               const QueryInstance& q) const {
  if (!Supports(spec.agg)) {
    return Status::NotImplemented("verdict baseline does not support " +
                                  AggregateName(spec.agg));
  }
  AggregateAccumulator acc(spec.agg);
  for (const auto& row : scramble_) {
    if (spec.predicate->Matches(q, row.data(), dim_)) {
      acc.Add(row[spec.measure_col]);
    }
  }
  double answer = acc.Finalize();
  if (spec.agg == Aggregate::kCount || spec.agg == Aggregate::kSum) {
    const double frac = static_cast<double>(scramble_.size()) /
                        static_cast<double>(data_rows_);
    if (frac > 0.0) answer /= frac;
  }
  return answer;
}

}  // namespace neurosketch
