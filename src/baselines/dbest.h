// DBEst-like model-based AQP baseline (paper baseline [24]). DBEst builds,
// per (predicate column, measure column) pair, a mixture density network
// for the predicate column and a regression model E[M | x]; range
// aggregates are answered by numerical integration:
//   COUNT(c, r) ≈ n ∫_c^{c+r} p(x) dx
//   SUM(c, r)   ≈ n ∫_c^{c+r} p(x) m̂(x) dx
//   AVG         = SUM / COUNT.
// This implementation fits a 1-D Gaussian mixture by EM (the density) and
// a small MLP (the regressor). Only a single active attribute is
// supported — faithfully reproducing the paper's note that "DBEst does not
// support multiple active attributes".
#ifndef NEUROSKETCH_BASELINES_DBEST_H_
#define NEUROSKETCH_BASELINES_DBEST_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "nn/mlp.h"
#include "query/query.h"
#include "util/status.h"

namespace neurosketch {

struct DbestConfig {
  size_t mixture_components = 6;
  size_t em_iterations = 40;
  /// Rows sampled for model fitting (DBEst also trains on a sample).
  size_t train_sample = 20000;
  size_t regressor_epochs = 60;
  size_t regressor_width = 32;
  size_t regressor_layers = 2;
  size_t integration_points = 256;
  uint64_t seed = 11;
};

/// \brief 1-D Gaussian mixture fitted by EM; the "MDN" density half.
class GaussianMixture1D {
 public:
  /// \brief Fit `k` components to the samples; degenerate inputs collapse
  /// to fewer effective components.
  static GaussianMixture1D Fit(const std::vector<double>& samples, size_t k,
                               size_t iterations, uint64_t seed);

  double Pdf(double x) const;
  /// \brief CDF via the Gaussian error function.
  double Cdf(double x) const;
  double MassIn(double lo, double hi) const { return Cdf(hi) - Cdf(lo); }

  size_t num_components() const { return weights_.size(); }
  size_t SizeBytes() const { return 3 * weights_.size() * sizeof(double); }

 private:
  std::vector<double> weights_, means_, stddevs_;
};

/// \brief Per-query-function DBEst model.
class Dbest {
 public:
  /// \brief Train on a normalized table for the given predicate column and
  /// measure column.
  static Result<Dbest> Build(const Table& table, size_t predicate_col,
                             size_t measure_col, const DbestConfig& config);

  static bool Supports(Aggregate agg) {
    return agg == Aggregate::kCount || agg == Aggregate::kSum ||
           agg == Aggregate::kAvg;
  }

  /// \brief Answer an axis-range query instance q = (c..., r...). The
  /// query must have exactly one active attribute and it must equal the
  /// model's predicate column.
  Result<double> Answer(const QueryFunctionSpec& spec,
                        const QueryInstance& q) const;

  /// \brief Direct range API in the predicate column's normalized units.
  Result<double> AnswerRange(Aggregate agg, double c, double r) const;

  size_t predicate_col() const { return predicate_col_; }
  size_t SizeBytes() const {
    return density_.SizeBytes() + regressor_.SizeBytes();
  }

 private:
  size_t predicate_col_ = 0;
  size_t measure_col_ = 0;
  size_t data_rows_ = 0;
  size_t dim_ = 0;
  size_t integration_points_ = 256;
  GaussianMixture1D density_;
  nn::Mlp regressor_;  // m̂(x): predicate value -> expected measure
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_BASELINES_DBEST_H_
