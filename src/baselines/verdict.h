// VerdictDB-like sampling baseline (paper Sec. 5.1): a pre-materialized
// uniform "scramble" of the table, scanned in full per query. The paper
// found VerdictDB's sampling no better than uniform on these workloads and
// slower than TREE-AGG for lack of an index; this model reproduces both
// behaviours. STD and MEDIAN are unsupported, matching the paper's notes
// ("VerdictDB ... did not support STDEV"; Table 2).
#ifndef NEUROSKETCH_BASELINES_VERDICT_H_
#define NEUROSKETCH_BASELINES_VERDICT_H_

#include <cstdint>

#include "data/table.h"
#include "query/predicate.h"
#include "query/query.h"
#include "util/status.h"

namespace neurosketch {

struct VerdictConfig {
  size_t sample_size = 10000;
  uint64_t seed = 77;
};

/// \brief Scramble-scan approximate query evaluator.
class Verdict {
 public:
  static Verdict Build(const Table& table, const VerdictConfig& config);

  static bool Supports(Aggregate agg) {
    return agg == Aggregate::kCount || agg == Aggregate::kSum ||
           agg == Aggregate::kAvg;
  }

  /// \brief Approximate answer; NotImplemented for unsupported aggregates.
  Result<double> Answer(const QueryFunctionSpec& spec,
                        const QueryInstance& q) const;

  size_t SizeBytes() const {
    return scramble_.size() * dim_ * sizeof(double);
  }
  size_t sample_size() const { return scramble_.size(); }

 private:
  std::vector<std::vector<double>> scramble_;
  size_t data_rows_ = 0;
  size_t dim_ = 0;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_BASELINES_VERDICT_H_
