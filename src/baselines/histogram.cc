#include "baselines/histogram.h"

#include <algorithm>
#include <cmath>

#include "query/predicate.h"

namespace neurosketch {

Result<GridHistogram> GridHistogram::Build(const Table& table,
                                           size_t measure_col,
                                           const GridHistogramConfig& config) {
  if (measure_col >= table.num_columns()) {
    return Status::OutOfRange("measure column out of range");
  }
  GridHistogram h;
  h.measure_col_ = measure_col;
  h.bins_ = std::max<size_t>(1, config.bins_per_dim);
  h.data_dim_ = table.num_columns();
  h.dims_ = config.dims;
  if (h.dims_.empty()) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c != measure_col) h.dims_.push_back(c);
    }
  }
  double cells = 1.0;
  for (size_t i = 0; i < h.dims_.size(); ++i) {
    cells *= static_cast<double>(h.bins_);
    if (cells > 16e6) {
      return Status::OutOfRange("histogram would exceed 16M cells");
    }
  }
  const size_t total = static_cast<size_t>(cells);
  h.counts_.assign(total, 0.0);
  h.sums_.assign(total, 0.0);

  for (size_t row = 0; row < table.num_rows(); ++row) {
    size_t idx = 0;
    for (size_t d : h.dims_) {
      const double v = table.at(row, d);
      size_t b = static_cast<size_t>(v * static_cast<double>(h.bins_));
      if (b >= h.bins_) b = h.bins_ - 1;
      idx = idx * h.bins_ + b;
    }
    h.counts_[idx] += 1.0;
    h.sums_[idx] += table.at(row, measure_col);
  }
  return h;
}

double GridHistogram::CellOverlap(const std::vector<size_t>& cell_coord,
                                  const std::vector<double>& lo,
                                  const std::vector<double>& hi) const {
  double frac = 1.0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    const double blo =
        static_cast<double>(cell_coord[i]) / static_cast<double>(bins_);
    const double bhi =
        static_cast<double>(cell_coord[i] + 1) / static_cast<double>(bins_);
    const double overlap =
        std::max(0.0, std::min(bhi, hi[i]) - std::max(blo, lo[i]));
    if (overlap <= 0.0) return 0.0;
    frac *= overlap / (bhi - blo);
  }
  return frac;
}

Result<double> GridHistogram::Answer(const QueryFunctionSpec& spec,
                                     const QueryInstance& q) const {
  if (!Supports(spec.agg)) {
    return Status::NotImplemented("histogram does not support " +
                                  AggregateName(spec.agg));
  }
  if (spec.predicate == nullptr || spec.predicate->name() != "axis_range") {
    return Status::NotImplemented(
        "histogram supports only axis-range predicates");
  }
  if (spec.measure_col != measure_col_) {
    return Status::FailedPrecondition("histogram built for another measure");
  }
  // Per-histogrammed-dimension bounds; reject constraints on attributes
  // outside the grid.
  std::vector<double> lo(dims_.size()), hi(dims_.size());
  for (size_t i = 0; i < data_dim_; ++i) {
    const double c = q[i], r = q[data_dim_ + i];
    const bool active = !(c == 0.0 && r >= 1.0);
    auto it = std::find(dims_.begin(), dims_.end(), i);
    if (it == dims_.end()) {
      if (active) {
        return Status::NotImplemented(
            "query constrains a non-histogrammed attribute");
      }
      continue;
    }
    const size_t pos = static_cast<size_t>(it - dims_.begin());
    lo[pos] = c;
    hi[pos] = std::min(c + r, 1.0 + 1e-12);
  }

  // Walk all cells intersecting the box (iterate bin ranges per dim).
  std::vector<size_t> b_lo(dims_.size()), b_hi(dims_.size());
  for (size_t i = 0; i < dims_.size(); ++i) {
    b_lo[i] = std::min<size_t>(
        bins_ - 1, static_cast<size_t>(lo[i] * static_cast<double>(bins_)));
    const double hval = hi[i] * static_cast<double>(bins_);
    b_hi[i] = std::min<size_t>(bins_ - 1, static_cast<size_t>(
                                              std::ceil(hval)) == 0
                                              ? 0
                                              : static_cast<size_t>(
                                                    std::ceil(hval)) -
                                                    1);
    if (b_hi[i] < b_lo[i]) return spec.agg == Aggregate::kAvg
                                      ? Result<double>(Status::OutOfRange(
                                            "empty range"))
                                      : Result<double>(0.0);
  }

  double count = 0.0, sum = 0.0;
  std::vector<size_t> coord = b_lo;
  bool done = dims_.empty();
  while (!done) {
    size_t idx = 0;
    for (size_t i = 0; i < dims_.size(); ++i) idx = idx * bins_ + coord[i];
    const double frac = CellOverlap(coord, lo, hi);
    if (frac > 0.0) {
      count += counts_[idx] * frac;
      sum += sums_[idx] * frac;
    }
    // Advance the mixed-radix counter within [b_lo, b_hi].
    size_t i = dims_.size();
    for (;;) {
      if (i == 0) {
        done = true;
        break;
      }
      --i;
      if (coord[i] < b_hi[i]) {
        ++coord[i];
        break;
      }
      coord[i] = b_lo[i];
    }
  }

  switch (spec.agg) {
    case Aggregate::kCount:
      return count;
    case Aggregate::kSum:
      return sum;
    case Aggregate::kAvg:
      if (count <= 0.0) return Status::OutOfRange("empty range");
      return sum / count;
    default:
      return Status::NotImplemented("unreachable");
  }
}

}  // namespace neurosketch
