// DeepDB-like sum-product network (SPN) learned from data (paper baseline
// [16]). Structure learning mirrors DeepDB: rows are split by clustering
// (sum nodes), columns are split into (approximately) independent groups
// using a correlation threshold — the analogue of DeepDB's RDC threshold,
// swept in Fig. 10 — and leaves are per-column histograms. Inference
// answers COUNT/SUM/AVG over axis-aligned range predicates exactly under
// the learned density.
#ifndef NEUROSKETCH_BASELINES_SPN_H_
#define NEUROSKETCH_BASELINES_SPN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "data/table.h"
#include "query/query.h"
#include "util/random.h"
#include "util/status.h"

namespace neurosketch {

struct SpnConfig {
  /// Stop row-splitting below this many rows; node is fully factorized.
  size_t min_rows = 256;
  /// Columns with |corr| below this are treated as independent (the
  /// DeepDB "RDC threshold" knob).
  double rdc_threshold = 0.3;
  size_t histogram_bins = 64;
  size_t max_depth = 12;
  size_t kmeans_iters = 12;
  uint64_t seed = 5;
};

/// \brief Learned SPN over a normalized table.
class Spn {
 public:
  static Spn Build(const Table& table, const SpnConfig& config);

  static bool Supports(Aggregate agg) {
    return agg == Aggregate::kCount || agg == Aggregate::kSum ||
           agg == Aggregate::kAvg;
  }

  /// \brief Answer an axis-range RAQ. q = (c..., r...). NotImplemented for
  /// non-axis predicates or unsupported aggregates (matching the paper's
  /// Table 2 observation that DeepDB cannot run the rotated-rectangle
  /// query).
  Result<double> Answer(const QueryFunctionSpec& spec,
                        const QueryInstance& q) const;

  /// \brief Learned-density probability of the range.
  double RangeProbability(const std::vector<double>& lo,
                          const std::vector<double>& hi) const;

  size_t SizeBytes() const;
  size_t num_nodes() const { return nodes_.size(); }

 private:
  enum class NodeType { kSum, kProduct, kLeaf };

  struct Node {
    NodeType type = NodeType::kLeaf;
    // Sum: children + mixture weights. Product: children.
    std::vector<int> children;
    std::vector<double> weights;
    // Leaf: a histogram over a single column.
    size_t column = 0;
    std::vector<double> probs;    // bin probabilities (sum to 1)
    std::vector<double> centers;  // per-bin mean of the column values
  };

  struct EvalResult {
    double p = 1.0;       // P(range)
    double e = 0.0;       // E[measure * 1(range)]
    bool has_e = false;   // whether the subtree scopes the measure column
  };

  int BuildRecursive(const Table& table, std::vector<size_t> rows,
                     std::vector<size_t> cols, size_t depth, Rng* rng,
                     const SpnConfig& config);
  int MakeLeaf(const Table& table, const std::vector<size_t>& rows,
               size_t column, size_t bins);
  int MakeFactorized(const Table& table, const std::vector<size_t>& rows,
                     const std::vector<size_t>& cols, size_t bins);
  EvalResult Evaluate(int node_id, const std::vector<double>& lo,
                      const std::vector<double>& hi, size_t measure_col) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  size_t data_rows_ = 0;
  size_t dim_ = 0;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_BASELINES_SPN_H_
