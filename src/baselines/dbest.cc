#include "baselines/dbest.h"

#include <algorithm>
#include <cmath>

#include "nn/trainer.h"
#include "query/predicate.h"
#include "util/random.h"
#include "util/stats.h"

namespace neurosketch {

namespace {
constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kMinSigma = 1e-4;

double NormalPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return kInvSqrt2Pi / sigma * std::exp(-0.5 * z * z);
}

double NormalCdf(double x, double mu, double sigma) {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::sqrt(2.0)));
}
}  // namespace

GaussianMixture1D GaussianMixture1D::Fit(const std::vector<double>& samples,
                                         size_t k, size_t iterations,
                                         uint64_t seed) {
  GaussianMixture1D gmm;
  const size_t n = samples.size();
  if (n == 0 || k == 0) return gmm;
  k = std::min(k, n);
  Rng rng(seed);

  // Init: means at random samples, uniform weights, global stddev.
  const double global_sd = std::max(stats::Stddev(samples), kMinSigma);
  gmm.weights_.assign(k, 1.0 / static_cast<double>(k));
  gmm.means_.resize(k);
  gmm.stddevs_.assign(k, global_sd);
  for (size_t j = 0; j < k; ++j) gmm.means_[j] = samples[rng.Index(n)];

  std::vector<double> resp(n * k);
  for (size_t it = 0; it < iterations; ++it) {
    // E-step.
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (size_t j = 0; j < k; ++j) {
        const double p = gmm.weights_[j] *
                         NormalPdf(samples[i], gmm.means_[j], gmm.stddevs_[j]);
        resp[i * k + j] = p;
        total += p;
      }
      if (total <= 0.0) {
        for (size_t j = 0; j < k; ++j) resp[i * k + j] = 1.0 / k;
      } else {
        for (size_t j = 0; j < k; ++j) resp[i * k + j] /= total;
      }
    }
    // M-step.
    for (size_t j = 0; j < k; ++j) {
      double nj = 0.0, mu = 0.0;
      for (size_t i = 0; i < n; ++i) {
        nj += resp[i * k + j];
        mu += resp[i * k + j] * samples[i];
      }
      if (nj <= 1e-12) {
        // Dead component: re-seed at a random sample.
        gmm.means_[j] = samples[rng.Index(n)];
        gmm.stddevs_[j] = global_sd;
        gmm.weights_[j] = 1e-6;
        continue;
      }
      mu /= nj;
      double var = 0.0;
      for (size_t i = 0; i < n; ++i) {
        var += resp[i * k + j] * (samples[i] - mu) * (samples[i] - mu);
      }
      var /= nj;
      gmm.means_[j] = mu;
      gmm.stddevs_[j] = std::max(std::sqrt(var), kMinSigma);
      gmm.weights_[j] = nj / static_cast<double>(n);
    }
    // Renormalize weights (dead-component epsilon may skew them).
    double wsum = 0.0;
    for (double w : gmm.weights_) wsum += w;
    for (double& w : gmm.weights_) w /= wsum;
  }
  return gmm;
}

double GaussianMixture1D::Pdf(double x) const {
  double p = 0.0;
  for (size_t j = 0; j < weights_.size(); ++j) {
    p += weights_[j] * NormalPdf(x, means_[j], stddevs_[j]);
  }
  return p;
}

double GaussianMixture1D::Cdf(double x) const {
  double p = 0.0;
  for (size_t j = 0; j < weights_.size(); ++j) {
    p += weights_[j] * NormalCdf(x, means_[j], stddevs_[j]);
  }
  return p;
}

Result<Dbest> Dbest::Build(const Table& table, size_t predicate_col,
                           size_t measure_col, const DbestConfig& config) {
  if (predicate_col >= table.num_columns() ||
      measure_col >= table.num_columns()) {
    return Status::OutOfRange("column id out of range");
  }
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("empty table");
  }
  Dbest model;
  model.predicate_col_ = predicate_col;
  model.measure_col_ = measure_col;
  model.data_rows_ = table.num_rows();
  model.dim_ = table.num_columns();
  model.integration_points_ = config.integration_points;

  Rng rng(config.seed);
  const size_t k = std::min(config.train_sample, table.num_rows());
  std::vector<size_t> sample =
      rng.SampleWithoutReplacement(table.num_rows(), k);
  std::vector<double> xs;
  xs.reserve(k);
  Matrix inputs(k, 1), targets(k, 1);
  for (size_t i = 0; i < k; ++i) {
    const double x = table.column(predicate_col)[sample[i]];
    xs.push_back(x);
    inputs(i, 0) = x;
    targets(i, 0) = table.column(measure_col)[sample[i]];
  }

  model.density_ = GaussianMixture1D::Fit(
      xs, config.mixture_components, config.em_iterations, config.seed + 1);

  nn::MlpConfig reg_cfg;
  reg_cfg.in_dim = 1;
  reg_cfg.out_dim = 1;
  for (size_t l = 0; l < config.regressor_layers; ++l) {
    reg_cfg.hidden.push_back(config.regressor_width);
  }
  model.regressor_ = nn::Mlp(reg_cfg, config.seed + 2);
  nn::TrainConfig tc;
  tc.epochs = config.regressor_epochs;
  tc.seed = config.seed + 3;
  nn::TrainRegressor(&model.regressor_, inputs, targets, tc);
  return model;
}

Result<double> Dbest::AnswerRange(Aggregate agg, double c, double r) const {
  if (!Supports(agg)) {
    return Status::NotImplemented("dbest baseline does not support " +
                                  AggregateName(agg));
  }
  const double lo = c, hi = c + r;
  const double n = static_cast<double>(data_rows_);
  const double mass = density_.MassIn(lo, hi);
  if (agg == Aggregate::kCount) return n * mass;

  // Simpson integration of p(x)·m̂(x) over [lo, hi].
  const size_t steps = integration_points_ | 1;  // odd point count
  const double h = (hi - lo) / static_cast<double>(steps - 1);
  double acc = 0.0;
  for (size_t i = 0; i < steps; ++i) {
    const double x = lo + static_cast<double>(i) * h;
    const double fx = density_.Pdf(x) * regressor_.PredictOne({x});
    const double w = (i == 0 || i == steps - 1) ? 1.0 : (i % 2 == 1 ? 4.0 : 2.0);
    acc += w * fx;
  }
  const double integral = acc * h / 3.0;
  if (agg == Aggregate::kSum) return n * integral;
  // AVG
  if (mass <= 1e-12) return Status::OutOfRange("empty range under density");
  return integral / mass;
}

Result<double> Dbest::Answer(const QueryFunctionSpec& spec,
                             const QueryInstance& q) const {
  if (spec.predicate->name() != "axis_range") {
    return Status::NotImplemented(
        "dbest baseline supports only axis-range predicates");
  }
  // Identify the single active attribute.
  int active = -1;
  for (size_t i = 0; i < dim_; ++i) {
    const double c = q[i], r = q[dim_ + i];
    if (c == 0.0 && r >= 1.0) continue;
    if (active >= 0) {
      return Status::NotImplemented(
          "dbest does not support multiple active attributes");
    }
    active = static_cast<int>(i);
  }
  if (active < 0) {
    // No restriction: the full-domain query.
    return AnswerRange(spec.agg, 0.0, 1.0);
  }
  if (static_cast<size_t>(active) != predicate_col_) {
    return Status::FailedPrecondition(
        "query's active attribute differs from the model's predicate column");
  }
  return AnswerRange(spec.agg, q[active], q[dim_ + active]);
}

}  // namespace neurosketch
