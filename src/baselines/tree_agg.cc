#include "baselines/tree_agg.h"

#include "query/aggregate.h"
#include "util/random.h"

namespace neurosketch {

TreeAgg TreeAgg::Build(const Table& table, const TreeAggConfig& config) {
  TreeAgg out;
  out.data_rows_ = table.num_rows();
  out.dim_ = table.num_columns();
  Rng rng(config.seed);
  const size_t k = std::min(config.sample_size, table.num_rows());
  std::vector<size_t> sample = rng.SampleWithoutReplacement(table.num_rows(), k);
  std::vector<std::vector<double>> points;
  points.reserve(k);
  for (size_t id : sample) points.push_back(table.Row(id));
  out.rtree_ = RTree::BulkLoad(std::move(points), config.leaf_capacity);
  return out;
}

double TreeAgg::Answer(const QueryFunctionSpec& spec,
                       const QueryInstance& q) const {
  std::vector<double> lo, hi;
  spec.predicate->QueryBox(q, dim_, &lo, &hi);
  AggregateAccumulator acc(spec.agg);
  rtree_.ForEachInBox(lo, hi, [&](size_t, const double* row) {
    if (spec.predicate->Matches(q, row, dim_)) acc.Add(row[spec.measure_col]);
  });
  double answer = acc.Finalize();
  // COUNT/SUM estimate the population total; scale by the inverse sampling
  // fraction. AVG/STD/MEDIAN/MIN/MAX are scale-free.
  if (spec.agg == Aggregate::kCount || spec.agg == Aggregate::kSum) {
    const double frac = static_cast<double>(rtree_.num_points()) /
                        static_cast<double>(data_rows_);
    if (frac > 0.0) answer /= frac;
  }
  return answer;
}

}  // namespace neurosketch
