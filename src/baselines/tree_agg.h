// TREE-AGG baseline (paper Sec. 5.1): uniform sample of k data points plus
// an R-tree on the samples. At query time, candidates are pruned by the
// predicate's bounding box and tested exactly; matched measure values feed
// the aggregate. COUNT/SUM answers are scaled by n/k.
#ifndef NEUROSKETCH_BASELINES_TREE_AGG_H_
#define NEUROSKETCH_BASELINES_TREE_AGG_H_

#include <cstdint>

#include "data/table.h"
#include "index/rtree.h"
#include "query/predicate.h"
#include "query/query.h"

namespace neurosketch {

struct TreeAggConfig {
  /// Number of sampled rows; values >= table rows mean "exact" (full data
  /// indexed), the 100% setting of Fig. 10.
  size_t sample_size = 10000;
  size_t leaf_capacity = 32;
  uint64_t seed = 99;
};

/// \brief Sampling + R-tree approximate query evaluator.
class TreeAgg {
 public:
  /// \brief Build over a normalized table (all attributes in [0,1]).
  static TreeAgg Build(const Table& table, const TreeAggConfig& config);

  /// \brief Approximate answer; supports every aggregate and any predicate
  /// exposing a bounding box. NaN when no sample matches an AVG-like
  /// aggregate.
  double Answer(const QueryFunctionSpec& spec, const QueryInstance& q) const;

  size_t SizeBytes() const { return rtree_.SizeBytes(); }
  size_t sample_size() const { return rtree_.num_points(); }

 private:
  RTree rtree_;
  std::vector<double> measures_;  // aligned with rtree point ids: all columns
  size_t data_rows_ = 0;
  size_t dim_ = 0;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_BASELINES_TREE_AGG_H_
