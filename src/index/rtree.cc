#include "index/rtree.h"

#include <algorithm>
#include <limits>

namespace neurosketch {

BoundingBox BoundingBox::Empty(size_t dim) {
  BoundingBox b;
  b.lo.assign(dim, std::numeric_limits<double>::infinity());
  b.hi.assign(dim, -std::numeric_limits<double>::infinity());
  return b;
}

void BoundingBox::Expand(const double* point, size_t dim) {
  for (size_t i = 0; i < dim; ++i) {
    lo[i] = std::min(lo[i], point[i]);
    hi[i] = std::max(hi[i], point[i]);
  }
}

void BoundingBox::Merge(const BoundingBox& other) {
  for (size_t i = 0; i < lo.size(); ++i) {
    lo[i] = std::min(lo[i], other.lo[i]);
    hi[i] = std::max(hi[i], other.hi[i]);
  }
}

bool BoundingBox::Intersects(const std::vector<double>& qlo,
                             const std::vector<double>& qhi) const {
  for (size_t i = 0; i < lo.size(); ++i) {
    if (hi[i] < qlo[i] || lo[i] > qhi[i]) return false;
  }
  return true;
}

bool BoundingBox::ContainedIn(const std::vector<double>& qlo,
                              const std::vector<double>& qhi) const {
  for (size_t i = 0; i < lo.size(); ++i) {
    if (lo[i] < qlo[i] || hi[i] > qhi[i]) return false;
  }
  return true;
}

RTree RTree::BulkLoad(std::vector<std::vector<double>> points,
                      size_t leaf_capacity, size_t fanout) {
  RTree tree;
  tree.points_ = std::move(points);
  tree.dim_ = tree.points_.empty() ? 0 : tree.points_[0].size();
  if (tree.points_.empty()) return tree;

  std::vector<size_t> ids(tree.points_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  std::vector<int> level;
  tree.BuildLeaves(&ids, 0, ids.size(), 0, leaf_capacity, &level);

  // Assemble upward: pack `fanout` children per internal node until one
  // root remains.
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t off = 0; off < level.size(); off += fanout) {
      Node parent;
      parent.box = BoundingBox::Empty(tree.dim_);
      const size_t end = std::min(off + fanout, level.size());
      for (size_t i = off; i < end; ++i) {
        parent.children.push_back(level[i]);
        parent.box.Merge(tree.nodes_[level[i]].box);
      }
      tree.nodes_.push_back(std::move(parent));
      next.push_back(static_cast<int>(tree.nodes_.size()) - 1);
    }
    level = std::move(next);
  }
  tree.root_ = level[0];
  return tree;
}

int RTree::BuildLeaves(std::vector<size_t>* ids, size_t begin, size_t end,
                       size_t depth, size_t leaf_capacity,
                       std::vector<int>* out_leaf_ids) {
  if (end - begin <= leaf_capacity) {
    Node leaf;
    leaf.box = BoundingBox::Empty(dim_);
    for (size_t i = begin; i < end; ++i) {
      leaf.row_ids.push_back((*ids)[i]);
      leaf.box.Expand(points_[(*ids)[i]].data(), dim_);
    }
    nodes_.push_back(std::move(leaf));
    out_leaf_ids->push_back(static_cast<int>(nodes_.size()) - 1);
    return out_leaf_ids->back();
  }
  const size_t axis = depth % dim_;
  const size_t mid = begin + (end - begin) / 2;
  std::nth_element(ids->begin() + begin, ids->begin() + mid,
                   ids->begin() + end, [&](size_t a, size_t b) {
                     return points_[a][axis] < points_[b][axis];
                   });
  BuildLeaves(ids, begin, mid, depth + 1, leaf_capacity, out_leaf_ids);
  BuildLeaves(ids, mid, end, depth + 1, leaf_capacity, out_leaf_ids);
  return -1;
}

std::vector<size_t> RTree::RangeQuery(const std::vector<double>& lo,
                                      const std::vector<double>& hi) const {
  std::vector<size_t> out;
  ForEachInBox(lo, hi, [&out](size_t id, const double*) { out.push_back(id); });
  return out;
}

void RTree::ForEachInBox(
    const std::vector<double>& lo, const std::vector<double>& hi,
    const std::function<void(size_t, const double*)>& fn) const {
  if (root_ >= 0) Visit(root_, lo, hi, fn);
}

void RTree::Visit(int node_id, const std::vector<double>& lo,
                  const std::vector<double>& hi,
                  const std::function<void(size_t, const double*)>& fn) const {
  const Node& node = nodes_[node_id];
  if (!node.box.Intersects(lo, hi)) return;
  if (node.is_leaf()) {
    const bool contained = node.box.ContainedIn(lo, hi);
    for (size_t id : node.row_ids) {
      const double* p = points_[id].data();
      if (contained) {
        fn(id, p);
        continue;
      }
      bool inside = true;
      for (size_t d = 0; d < dim_; ++d) {
        if (p[d] < lo[d] || p[d] > hi[d]) {
          inside = false;
          break;
        }
      }
      if (inside) fn(id, p);
    }
    return;
  }
  for (int child : node.children) Visit(child, lo, hi, fn);
}

size_t RTree::SizeBytes() const {
  size_t bytes = points_.size() * dim_ * sizeof(double);
  for (const auto& node : nodes_) {
    bytes += 2 * dim_ * sizeof(double);
    bytes += node.children.size() * sizeof(int);
    bytes += node.row_ids.size() * sizeof(size_t);
  }
  return bytes;
}

}  // namespace neurosketch
