// kd-tree over the query space (paper Alg. 2): partitions a training query
// set into 2^h equally probable regions by cycling through dimensions and
// splitting at the median. Leaves may later be merged pairwise (Alg. 3,
// driven by core/Partitioner); routing a query to its leaf is Alg. 5.
#ifndef NEUROSKETCH_INDEX_KDTREE_H_
#define NEUROSKETCH_INDEX_KDTREE_H_

#include <memory>
#include <vector>

#include "query/query.h"
#include "util/status.h"

namespace neurosketch {

/// \brief Query-space kd-tree with mergeable leaves.
class QuerySpaceKdTree {
 public:
  struct Node {
    // Internal node state (valid when !is_leaf()).
    int split_dim = -1;
    double split_val = 0.0;
    std::unique_ptr<Node> left, right;
    Node* parent = nullptr;
    // Leaf state.
    std::vector<size_t> query_ids;  // indices into the build query set
    bool marked = false;            // Alg. 3 merge mark
    int leaf_id = -1;               // model slot, set by AssignLeafIds
    double cached_aqc = 0.0;        // Alg. 3 line 3 result (set by caller)
    bool aqc_valid = false;         // cached_aqc reflects query_ids

    bool is_leaf() const { return left == nullptr; }
  };

  QuerySpaceKdTree() = default;

  /// \brief Alg. 2: build a tree of height `height` over `queries`
  /// (2^height leaves); splitting stops early if a node has < 2 queries.
  /// `parallelism` bounds the number of concurrent subtree builders on the
  /// shared pool (0 = hardware concurrency, 1 = fully sequential). Every
  /// split decision is a pure function of the node's query set — the
  /// median value along the cycled dimension and a stable left/right scan
  /// — so the tree is bit-identical for every parallelism setting.
  static QuerySpaceKdTree Build(const std::vector<QueryInstance>& queries,
                                size_t height, size_t parallelism = 1);

  /// \brief Alg. 5 traversal: the leaf whose region contains q.
  const Node* Route(const QueryInstance& q) const;
  Node* RouteMutable(const QueryInstance& q);

  /// \brief All current leaves, left-to-right.
  std::vector<Node*> Leaves();
  std::vector<const Node*> Leaves() const;

  size_t NumLeaves() const;

  /// \brief Collapse two sibling leaves into their parent (Alg. 3 line 8):
  /// parent becomes a leaf owning the union of the children's queries.
  Status MergeChildren(Node* parent);

  /// \brief Number the current leaves 0..NumLeaves()-1 (model slots).
  void AssignLeafIds();

  size_t query_dim() const { return query_dim_; }
  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// \brief Flat encoding of the routing structure (split dims/values and
  /// leaf ids) for sketch serialization. Pre-order; leaves encoded with
  /// split_dim = -1 and split_val = leaf_id.
  std::vector<double> EncodeRouting() const;
  static Result<QuerySpaceKdTree> DecodeRouting(
      const std::vector<double>& encoded, size_t query_dim);

 private:
  /// Split one node at `depth` (median along the cycled dimension); leaves
  /// the node a leaf when no further split is possible. Returns true iff
  /// children were created. Touches only `node` and its new children, so
  /// distinct nodes may be split concurrently.
  static bool SplitNode(Node* node, const std::vector<QueryInstance>& queries,
                        size_t depth, size_t dim);
  static void BuildRecursive(Node* node,
                             const std::vector<QueryInstance>& queries,
                             size_t height, size_t depth, size_t dim);

  std::unique_ptr<Node> root_;
  size_t query_dim_ = 0;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_INDEX_KDTREE_H_
