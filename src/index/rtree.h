// Bulk-loaded spatial index over data points, the substrate of the
// TREE-AGG baseline (paper Sec. 5.1: "it builds an R-tree index on the
// samples, which is well-suited for range predicates"). Built bottom-up
// STR-style: points are recursively median-partitioned into leaf pages,
// and bounding boxes are assembled upward with multi-way internal nodes.
#ifndef NEUROSKETCH_INDEX_RTREE_H_
#define NEUROSKETCH_INDEX_RTREE_H_

#include <functional>
#include <vector>

namespace neurosketch {

/// \brief Axis-aligned bounding box in d dimensions.
struct BoundingBox {
  std::vector<double> lo, hi;

  static BoundingBox Empty(size_t dim);
  void Expand(const double* point, size_t dim);
  void Merge(const BoundingBox& other);
  bool Intersects(const std::vector<double>& qlo,
                  const std::vector<double>& qhi) const;
  bool ContainedIn(const std::vector<double>& qlo,
                   const std::vector<double>& qhi) const;
};

/// \brief Static R-tree over points; rebuild to update.
class RTree {
 public:
  RTree() = default;

  /// \brief Bulk load. `points` is row-major (n rows of `dim` values);
  /// the tree stores row ids, not copies of coordinates beyond the build.
  static RTree BulkLoad(std::vector<std::vector<double>> points,
                        size_t leaf_capacity = 32, size_t fanout = 8);

  /// \brief Row ids of all points inside the closed box [lo, hi].
  std::vector<size_t> RangeQuery(const std::vector<double>& lo,
                                 const std::vector<double>& hi) const;

  /// \brief Visit each point in the box: fn(row_id, point values).
  /// Subtrees fully contained in the box skip per-point tests.
  void ForEachInBox(const std::vector<double>& lo,
                    const std::vector<double>& hi,
                    const std::function<void(size_t, const double*)>& fn) const;

  size_t num_points() const { return points_.size(); }
  size_t dim() const { return dim_; }
  const std::vector<double>& point(size_t id) const { return points_[id]; }

  /// \brief Approximate memory footprint in bytes (points + nodes).
  size_t SizeBytes() const;

 private:
  struct BuildEntry {
    size_t id;
  };
  struct Node {
    BoundingBox box;
    std::vector<int> children;   // internal: node ids
    std::vector<size_t> row_ids;  // leaf: point ids
    bool is_leaf() const { return children.empty(); }
  };

  int BuildLeaves(std::vector<size_t>* ids, size_t begin, size_t end,
                  size_t depth, size_t leaf_capacity,
                  std::vector<int>* out_leaf_ids);
  void Visit(int node_id, const std::vector<double>& lo,
             const std::vector<double>& hi,
             const std::function<void(size_t, const double*)>& fn) const;

  size_t dim_ = 0;
  std::vector<std::vector<double>> points_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace neurosketch

#endif  // NEUROSKETCH_INDEX_RTREE_H_
