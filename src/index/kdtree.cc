#include "index/kdtree.h"

#include <algorithm>
#include <functional>

#include "util/thread_pool.h"

namespace neurosketch {

namespace {
/// Subtrees with fewer queries than this build sequentially even when the
/// parallel path is active: below it the split work is too small to cover
/// a pool hand-off. The cutoff affects scheduling only, never the splits.
constexpr size_t kSequentialBuildCutoff = 2048;
}  // namespace

QuerySpaceKdTree QuerySpaceKdTree::Build(
    const std::vector<QueryInstance>& queries, size_t height,
    size_t parallelism) {
  QuerySpaceKdTree tree;
  tree.query_dim_ = queries.empty() ? 0 : queries[0].dim();
  tree.root_ = std::make_unique<Node>();
  tree.root_->query_ids.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) tree.root_->query_ids[i] = i;
  if (parallelism == 1 || queries.size() < kSequentialBuildCutoff) {
    BuildRecursive(tree.root_.get(), queries, height, 0, tree.query_dim_);
  } else {
    // Task-splitting build, realized level-synchronously: each round
    // splits the current frontier of pending nodes concurrently on the
    // shared pool, then the children form the next frontier. A node whose
    // query set has shrunk below the cutoff builds its whole remaining
    // subtree sequentially inside its task instead of re-entering the
    // frontier. Distinct nodes touch disjoint state, and every split is
    // the same pure function of the node's query set the sequential build
    // applies, so the resulting tree is bit-identical to BuildRecursive.
    std::vector<Node*> frontier = {tree.root_.get()};
    size_t depth = 0;
    while (!frontier.empty() && depth < height) {
      const size_t d = depth;
      std::vector<std::pair<Node*, Node*>> children(frontier.size(),
                                                    {nullptr, nullptr});
      ThreadPool::Shared().ParallelFor(
          frontier.size(), parallelism, [&](size_t i) {
            Node* node = frontier[i];
            if (node->query_ids.size() < kSequentialBuildCutoff) {
              BuildRecursive(node, queries, height, d, tree.query_dim_);
              return;  // subtree finished; nothing joins the frontier
            }
            if (SplitNode(node, queries, d, tree.query_dim_)) {
              children[i] = {node->left.get(), node->right.get()};
            }
          });
      std::vector<Node*> next;
      next.reserve(2 * frontier.size());
      for (const auto& [left, right] : children) {
        if (left != nullptr) {
          next.push_back(left);
          next.push_back(right);
        }
      }
      frontier = std::move(next);
      ++depth;
    }
  }
  tree.AssignLeafIds();
  return tree;
}

bool QuerySpaceKdTree::SplitNode(Node* node,
                                 const std::vector<QueryInstance>& queries,
                                 size_t depth, size_t dim) {
  if (node->query_ids.size() < 2 || dim == 0) return false;
  const size_t split_dim = depth % dim;  // Alg. 2: cycle dimensions

  // Median of the node's queries along split_dim (Alg. 2 line 3). The
  // median *value* is the mid-th order statistic — deterministic no matter
  // how nth_element permutes the scratch vector internally.
  std::vector<double> vals;
  vals.reserve(node->query_ids.size());
  for (size_t id : node->query_ids) vals.push_back(queries[id].q[split_dim]);
  const size_t mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + mid, vals.end());
  const double split_val = vals[mid];

  std::vector<size_t> left_ids, right_ids;
  for (size_t id : node->query_ids) {
    if (queries[id].q[split_dim] <= split_val) {
      left_ids.push_back(id);
    } else {
      right_ids.push_back(id);
    }
  }
  // Degenerate split (many duplicate coordinates): keep the node a leaf.
  if (left_ids.empty() || right_ids.empty()) return false;

  node->split_dim = static_cast<int>(split_dim);
  node->split_val = split_val;
  node->left = std::make_unique<Node>();
  node->right = std::make_unique<Node>();
  node->left->parent = node;
  node->right->parent = node;
  node->left->query_ids = std::move(left_ids);
  node->right->query_ids = std::move(right_ids);
  node->query_ids.clear();
  node->query_ids.shrink_to_fit();
  return true;
}

void QuerySpaceKdTree::BuildRecursive(Node* node,
                                      const std::vector<QueryInstance>& queries,
                                      size_t height, size_t depth, size_t dim) {
  if (depth >= height) return;
  if (!SplitNode(node, queries, depth, dim)) return;
  BuildRecursive(node->left.get(), queries, height, depth + 1, dim);
  BuildRecursive(node->right.get(), queries, height, depth + 1, dim);
}

const QuerySpaceKdTree::Node* QuerySpaceKdTree::Route(
    const QueryInstance& q) const {
  const Node* node = root_.get();
  while (node != nullptr && !node->is_leaf()) {
    node = (q.q[node->split_dim] <= node->split_val) ? node->left.get()
                                                     : node->right.get();
  }
  return node;
}

QuerySpaceKdTree::Node* QuerySpaceKdTree::RouteMutable(const QueryInstance& q) {
  return const_cast<Node*>(
      static_cast<const QuerySpaceKdTree*>(this)->Route(q));
}

namespace {
template <typename NodeT>
void CollectLeaves(NodeT* node, std::vector<NodeT*>* out) {
  if (node == nullptr) return;
  if (node->is_leaf()) {
    out->push_back(node);
    return;
  }
  CollectLeaves<NodeT>(node->left.get(), out);
  CollectLeaves<NodeT>(node->right.get(), out);
}
}  // namespace

std::vector<QuerySpaceKdTree::Node*> QuerySpaceKdTree::Leaves() {
  std::vector<Node*> out;
  CollectLeaves(root_.get(), &out);
  return out;
}

std::vector<const QuerySpaceKdTree::Node*> QuerySpaceKdTree::Leaves() const {
  std::vector<const Node*> out;
  CollectLeaves<const Node>(root_.get(), &out);
  return out;
}

size_t QuerySpaceKdTree::NumLeaves() const { return Leaves().size(); }

Status QuerySpaceKdTree::MergeChildren(Node* parent) {
  if (parent == nullptr || parent->is_leaf()) {
    return Status::InvalidArgument("MergeChildren requires an internal node");
  }
  if (!parent->left->is_leaf() || !parent->right->is_leaf()) {
    return Status::FailedPrecondition("children must both be leaves");
  }
  parent->query_ids = std::move(parent->left->query_ids);
  parent->query_ids.insert(parent->query_ids.end(),
                           parent->right->query_ids.begin(),
                           parent->right->query_ids.end());
  parent->left.reset();
  parent->right.reset();
  parent->split_dim = -1;
  parent->marked = false;
  parent->aqc_valid = false;  // the merged query set needs a fresh AQC
  return Status::OK();
}

void QuerySpaceKdTree::AssignLeafIds() {
  int next = 0;
  for (Node* leaf : Leaves()) leaf->leaf_id = next++;
}

std::vector<double> QuerySpaceKdTree::EncodeRouting() const {
  std::vector<double> out;
  // Pre-order encoding: internal -> (split_dim, split_val),
  // leaf -> (-1, leaf_id).
  std::function<void(const Node*)> visit = [&](const Node* node) {
    if (node->is_leaf()) {
      out.push_back(-1.0);
      out.push_back(static_cast<double>(node->leaf_id));
      return;
    }
    out.push_back(static_cast<double>(node->split_dim));
    out.push_back(node->split_val);
    visit(node->left.get());
    visit(node->right.get());
  };
  if (root_) visit(root_.get());
  return out;
}

Result<QuerySpaceKdTree> QuerySpaceKdTree::DecodeRouting(
    const std::vector<double>& encoded, size_t query_dim) {
  if (encoded.size() % 2 != 0 || encoded.empty()) {
    return Status::InvalidArgument("bad routing encoding length");
  }
  size_t pos = 0;
  std::function<std::unique_ptr<Node>()> parse =
      [&]() -> std::unique_ptr<Node> {
    if (pos + 1 >= encoded.size() + 1) return nullptr;
    auto node = std::make_unique<Node>();
    const double tag = encoded[pos];
    const double val = encoded[pos + 1];
    pos += 2;
    if (tag < 0.0) {
      node->leaf_id = static_cast<int>(val);
      return node;
    }
    node->split_dim = static_cast<int>(tag);
    node->split_val = val;
    node->left = parse();
    node->right = parse();
    if (!node->left || !node->right) return nullptr;
    node->left->parent = node.get();
    node->right->parent = node.get();
    return node;
  };
  QuerySpaceKdTree tree;
  tree.query_dim_ = query_dim;
  tree.root_ = parse();
  if (tree.root_ == nullptr || pos != encoded.size()) {
    return Status::InvalidArgument("malformed routing encoding");
  }
  return tree;
}

}  // namespace neurosketch
