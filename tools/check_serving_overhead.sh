#!/usr/bin/env bash
# Gate on the stage-tracing overhead measured by bench_serving_throughput:
# the "tracing_overhead" section of BENCH_serving.json compares the
# single-query serve p50 with stage tracing on vs off in the same process
# (min-of-2 per arm, arms alternated). The observability layer's budget is
# < 2% on that path; negative values (noise in favor of tracing-on) pass.
#
# Usage: tools/check_serving_overhead.sh [path/to/BENCH_serving.json]
set -euo pipefail

json="${1:-BENCH_serving.json}"
budget_pct="${OVERHEAD_BUDGET_PCT:-2.0}"

if [[ ! -f "$json" ]]; then
  echo "error: $json not found (run bench_serving_throughput first)" >&2
  exit 1
fi

line=$(grep -o '"tracing_overhead": {[^}]*}' "$json" || true)
if [[ -z "$line" ]]; then
  echo "error: no tracing_overhead section in $json" >&2
  exit 1
fi

overhead=$(echo "$line" | grep -o '"overhead_pct": *[-0-9.]*' |
  grep -o '[-0-9.]*$')
on_us=$(echo "$line" | grep -o '"single_query_p50_on_us": *[-0-9.]*' |
  grep -o '[-0-9.]*$')
off_us=$(echo "$line" | grep -o '"single_query_p50_off_us": *[-0-9.]*' |
  grep -o '[-0-9.]*$')

echo "tracing overhead: on ${on_us}us vs off ${off_us}us = ${overhead}%" \
  "(budget ${budget_pct}%)"

ok=$(awk -v o="$overhead" -v b="$budget_pct" 'BEGIN { print (o < b) ? 1 : 0 }')
if [[ "$ok" != "1" ]]; then
  echo "error: stage-tracing overhead ${overhead}% exceeds ${budget_pct}%" >&2
  exit 1
fi
echo "OK"
