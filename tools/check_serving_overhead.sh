#!/usr/bin/env bash
# Gate on the stage-tracing overhead measured by bench_serving_throughput:
# the "tracing_overhead" section of BENCH_serving.json compares the
# single-query serve p50 with stage tracing on vs off in the same process
# (min-of-2 per arm, arms alternated). The observability layer's budget is
# < 2% on that path; negative values (noise in favor of tracing-on) pass.
#
# Also gates multi-core scaling sanity from the "multi_core" section:
# with >= 4 hardware threads, the 8-client / 8-store micro-batch QPS at
# 4 shards must be at least SCALING_MIN_X (default 2.0) times the
# 1-shard QPS. Below 4 hardware threads the scaling check is skipped —
# the shards just time-slice one core and the ratio is meaningless.
#
# Usage: tools/check_serving_overhead.sh [path/to/BENCH_serving.json]
set -euo pipefail

json="${1:-BENCH_serving.json}"
budget_pct="${OVERHEAD_BUDGET_PCT:-2.0}"
scaling_min_x="${SCALING_MIN_X:-2.0}"

if [[ ! -f "$json" ]]; then
  echo "error: $json not found (run bench_serving_throughput first)" >&2
  exit 1
fi

line=$(grep -o '"tracing_overhead": {[^}]*}' "$json" || true)
if [[ -z "$line" ]]; then
  echo "error: no tracing_overhead section in $json" >&2
  exit 1
fi

overhead=$(echo "$line" | grep -o '"overhead_pct": *[-0-9.]*' |
  grep -o '[-0-9.]*$')
on_us=$(echo "$line" | grep -o '"single_query_p50_on_us": *[-0-9.]*' |
  grep -o '[-0-9.]*$')
off_us=$(echo "$line" | grep -o '"single_query_p50_off_us": *[-0-9.]*' |
  grep -o '[-0-9.]*$')

echo "tracing overhead: on ${on_us}us vs off ${off_us}us = ${overhead}%" \
  "(budget ${budget_pct}%)"

ok=$(awk -v o="$overhead" -v b="$budget_pct" 'BEGIN { print (o < b) ? 1 : 0 }')
if [[ "$ok" != "1" ]]; then
  echo "error: stage-tracing overhead ${overhead}% exceeds ${budget_pct}%" >&2
  exit 1
fi

# --- multi-core scaling sanity -----------------------------------------
hw=$(grep -o '"hardware_threads": *[0-9]*' "$json" | head -1 |
  grep -o '[0-9]*$')
if [[ -z "$hw" ]]; then
  echo "error: no hardware_threads field in $json" >&2
  exit 1
fi

if [[ "$hw" -lt 4 ]]; then
  echo "scaling check: skipped (${hw} hardware thread(s) < 4)"
else
  # Pull per-shard QPS rows out of the multi_core section.
  qps1=$(grep -o '{"shards": 1, "qps": *[0-9.]*' "$json" | head -1 |
    grep -o '[0-9.]*$' || true)
  qps4=$(grep -o '{"shards": 4, "qps": *[0-9.]*' "$json" | head -1 |
    grep -o '[0-9.]*$' || true)
  if [[ -z "$qps1" || -z "$qps4" ]]; then
    echo "error: no multi_core shard rows in $json" >&2
    exit 1
  fi
  speedup=$(awk -v a="$qps1" -v b="$qps4" \
    'BEGIN { printf "%.2f", (a > 0) ? b / a : 0 }')
  echo "scaling check: 4 shards ${qps4} qps vs 1 shard ${qps1} qps =" \
    "${speedup}x (min ${scaling_min_x}x on ${hw} hardware threads)"
  ok=$(awk -v s="$speedup" -v m="$scaling_min_x" \
    'BEGIN { print (s >= m) ? 1 : 0 }')
  if [[ "$ok" != "1" ]]; then
    echo "error: 4-shard micro-batch QPS only ${speedup}x the 1-shard" \
      "QPS (need >= ${scaling_min_x}x)" >&2
    exit 1
  fi
fi
echo "OK"
