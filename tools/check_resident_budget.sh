#!/usr/bin/env bash
# Gate on the paged-catalog arm of bench_serving_throughput: the
# "paged_catalog" section of BENCH_serving.json serves a catalog of cold
# sketches at 25% / 50% / 100% resident-byte budgets and records, per
# budget row, whether every served answer was bit-identical to the
# fully-resident reference (answers_match) and the pool's peak residency.
# This script fails if any row mismatched, if any row's peak exceeded its
# budget, if the catalog is smaller than MIN_SKETCHES (default 256), or
# if fewer than 3 budget rows ran.
#
# Usage: tools/check_resident_budget.sh [path/to/BENCH_serving.json]
set -euo pipefail

json="${1:-BENCH_serving.json}"
min_sketches="${MIN_SKETCHES:-256}"

if [[ ! -f "$json" ]]; then
  echo "error: $json not found (run bench_serving_throughput first)" >&2
  exit 1
fi

sketches=$(grep -o '"sketches": *[0-9]*' "$json" | head -1 |
  grep -o '[0-9]*$' || true)
if [[ -z "$sketches" ]]; then
  echo "error: no paged_catalog section in $json" >&2
  exit 1
fi
if [[ "$sketches" -lt "$min_sketches" ]]; then
  echo "error: paged catalog holds ${sketches} sketches" \
    "(need >= ${min_sketches})" >&2
  exit 1
fi

baseline=$(grep -o '"baseline_answers_match": *[a-z]*' "$json" |
  grep -o '[a-z]*$' || true)
if [[ "$baseline" != "true" ]]; then
  echo "error: fully-resident baseline answers mismatched" >&2
  exit 1
fi

# One object per budget row; each must hold both invariants.
rows=$(grep -o '{"budget_fraction"[^}]*}' "$json" || true)
if [[ -z "$rows" ]]; then
  echo "error: no paged_catalog budget rows in $json" >&2
  exit 1
fi

nrows=0
while IFS= read -r row; do
  nrows=$((nrows + 1))
  frac=$(echo "$row" | grep -o '"budget_fraction": *[0-9.]*' |
    grep -o '[0-9.]*$')
  budget=$(echo "$row" | grep -o '"budget_bytes": *[0-9]*' |
    grep -o '[0-9]*$')
  peak=$(echo "$row" | grep -o '"peak_resident_bytes": *[0-9]*' |
    grep -o '[0-9]*$')
  match=$(echo "$row" | grep -o '"answers_match": *[a-z]*' |
    grep -o '[a-z]*$')
  echo "budget ${frac}: peak ${peak} of ${budget} bytes," \
    "answers_match ${match}"
  if [[ "$match" != "true" ]]; then
    echo "error: answers diverged from the fully-resident reference at" \
      "budget fraction ${frac}" >&2
    exit 1
  fi
  ok=$(awk -v p="$peak" -v b="$budget" 'BEGIN { print (p <= b) ? 1 : 0 }')
  if [[ "$ok" != "1" ]]; then
    echo "error: peak residency ${peak} bytes exceeds the ${budget}-byte" \
      "budget at fraction ${frac}" >&2
    exit 1
  fi
done <<< "$rows"

if [[ "$nrows" -lt 3 ]]; then
  echo "error: only ${nrows} budget row(s) ran (need >= 3)" >&2
  exit 1
fi
echo "OK (${sketches} sketches, ${nrows} budget rows)"
