#!/usr/bin/env bash
# Gate on the streaming arm of bench_serving_throughput: the "streaming"
# section of BENCH_serving.json serves a drifting dataset under live
# appends twice — refresh off and refresh on — and records, per mode,
# whether every quiescent served answer was bit-identical to the
# delta-composition contract (answers_match), plus the drift-probe
# normalized MAE before and after the refresh controller ran. This
# script fails if either mode's answers mismatched, if the post-refresh
# MAE is not back within the drift-policy bound, if the refresh was a
# full rebuild (the controller exists to retrain ONLY flagged leaves),
# or if no swap happened at all (the arm is then vacuous: the injected
# drift never crossed the bound).
#
# It also gates the "compaction" section's sustained-append arm: both
# modes (explicit Compact calls, refresh-controller sweep) must have
# compacted at least once, trimmed rows out of the delta, kept the
# resident delta bounded by the policy threshold (delta_bounded — the
# buffer must not grow with the append history), and served every
# mid-run sampled answer bit-identical to a from-scratch scan
# (answers_match) across the base-table swaps.
#
# Usage: tools/check_streaming_freshness.sh [path/to/BENCH_serving.json]
set -euo pipefail

json="${1:-BENCH_serving.json}"

if [[ ! -f "$json" ]]; then
  echo "error: $json not found (run bench_serving_throughput first)" >&2
  exit 1
fi

# Slice the streaming section so field names shared with other arms
# (rows, answers_match) cannot cross-contaminate.
section=$(sed -n '/"streaming": {/,/^  }/p' "$json")
if [[ -z "$section" ]]; then
  echo "error: no streaming section in $json" >&2
  exit 1
fi

field() {
  echo "$section" | grep -o "\"$1\": *[0-9.truefalse-]*" | head -1 |
    sed 's/.*: *//'
}

bound=$(field policy_max_normalized_mae)
drifted=$(field drifted_normalized_mae)
post=$(field post_refresh_normalized_mae)
swaps=$(field refresh_swaps)
retrained=$(field retrained_leaves)
total=$(field total_leaves)
rebuild=$(field full_rebuild)
lag=$(field refresh_lag_ms)
if [[ -z "$bound" || -z "$post" || -z "$swaps" ]]; then
  echo "error: streaming section in $json is missing fields" >&2
  exit 1
fi

echo "drift bound ${bound}: stale ${drifted}, post-refresh ${post}," \
  "${swaps} swap(s), ${retrained}/${total} leaves retrained," \
  "lag ${lag} ms"

rows=$(echo "$section" | grep -o '{"mode"[^}]*}')
nrows=0
while IFS= read -r row; do
  nrows=$((nrows + 1))
  mode=$(echo "$row" | grep -o '"mode": *"[a-z_]*"' | sed 's/.*"\([a-z_]*\)"$/\1/')
  match=$(echo "$row" | grep -o '"answers_match": *[a-z]*' |
    grep -o '[a-z]*$')
  echo "mode ${mode}: answers_match ${match}"
  if [[ "$match" != "true" ]]; then
    echo "error: served answers diverged from the delta-composition" \
      "contract in mode ${mode}" >&2
    exit 1
  fi
done <<< "$rows"
if [[ "$nrows" -lt 2 ]]; then
  echo "error: only ${nrows} streaming mode row(s) ran (need 2)" >&2
  exit 1
fi

if [[ "$swaps" -lt 1 ]]; then
  echo "error: refresh never swapped a new version in — the injected" \
    "drift did not exercise the controller" >&2
  exit 1
fi
if [[ "$rebuild" != "false" ]]; then
  echo "error: refresh retrained every leaf (${retrained} over ${swaps}" \
    "swap(s) of ${total} leaves) — expected a partial retrain" >&2
  exit 1
fi

# The stale sketch must actually have drifted out of bound (otherwise
# the post-refresh check proves nothing), and the refreshed one must be
# back inside it.
ok=$(awk -v d="$drifted" -v b="$bound" 'BEGIN { print (d > b) ? 1 : 0 }')
if [[ "$ok" != "1" ]]; then
  echo "error: stale-sketch MAE ${drifted} never crossed the bound" \
    "${bound}; the drift injection is broken" >&2
  exit 1
fi
ok=$(awk -v p="$post" -v b="$bound" 'BEGIN { print (p <= b) ? 1 : 0 }')
if [[ "$ok" != "1" ]]; then
  echo "error: post-refresh MAE ${post} still above the drift-policy" \
    "bound ${bound}" >&2
  exit 1
fi
echo "OK (stale ${drifted} -> post-refresh ${post} <= ${bound}," \
  "partial retrain ${retrained}/${total})"

# ---------------------------------------------------------------------------
# Sustained-append compaction leg.
csection=$(sed -n '/"compaction": {/,/^  }/p' "$json")
if [[ -z "$csection" ]]; then
  echo "error: no compaction section in $json" >&2
  exit 1
fi

cfield() {
  echo "$csection" | grep -o "\"$1\": *[0-9.truefalse-]*" | head -1 |
    sed 's/.*: *//'
}
threshold=$(cfield compact_min_rows)
appended=$(cfield append_rows)
echo "compaction: ${appended} rows appended against a" \
  "${threshold}-row fold threshold"

crows=$(echo "$csection" | grep -o '{"mode"[^}]*}')
ncrows=0
while IFS= read -r row; do
  ncrows=$((ncrows + 1))
  rfield() {
    echo "$row" | grep -o "\"$1\": *[0-9.truefalse\"_a-z-]*" | head -1 |
      sed 's/.*: *//; s/"//g'
  }
  mode=$(rfield mode)
  compactions=$(rfield compactions)
  trimmed=$(rfield trimmed_rows)
  peak=$(rfield peak_delta_rows)
  final=$(rfield final_delta_rows)
  bounded=$(rfield delta_bounded)
  match=$(rfield answers_match)
  echo "mode ${mode}: ${compactions} compaction(s), ${trimmed} rows" \
    "trimmed, delta peak ${peak} / final ${final} rows, bounded" \
    "${bounded}, answers_match ${match}"
  if [[ -z "$compactions" || "$compactions" -lt 1 ]]; then
    echo "error: mode ${mode} never compacted — the delta grows without" \
      "bound under sustained appends" >&2
    exit 1
  fi
  if [[ -z "$trimmed" || "$trimmed" -lt 1 ]]; then
    echo "error: mode ${mode} folded rows but trimmed none — compaction" \
      "is not reclaiming delta storage" >&2
    exit 1
  fi
  if [[ "$bounded" != "true" ]]; then
    echo "error: mode ${mode} resident delta is not bounded by the fold" \
      "threshold (peak ${peak}, final ${final} vs threshold" \
      "${threshold})" >&2
    exit 1
  fi
  if [[ "$match" != "true" ]]; then
    echo "error: mode ${mode} served an answer that diverged from the" \
      "from-scratch scan across a base-table swap" >&2
    exit 1
  fi
done <<< "$crows"
if [[ "$ncrows" -lt 2 ]]; then
  echo "error: only ${ncrows} compaction mode row(s) ran (need 2)" >&2
  exit 1
fi
echo "OK (compaction bounded the delta in both modes with bit-identical" \
  "answers)"
