#!/usr/bin/env bash
# Fails when a relative markdown link in README.md or docs/*.md points at
# a file that does not exist. External links (http/https/mailto) and
# intra-page anchors are skipped; "path#anchor" links are checked for the
# path only. Run from anywhere; paths resolve against the repo root.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0

for doc in "$root"/README.md "$root"/docs/*.md; do
  [ -f "$doc" ] || continue
  docdir="$(dirname "$doc")"
  # Inline markdown links: [text](target). Good enough for these docs;
  # reference-style links are not used here.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$docdir/$path" ]; then
      echo "BROKEN: $doc -> $target"
      status=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
done

if [ "$status" -eq 0 ]; then
  echo "docs links OK"
fi
exit "$status"
