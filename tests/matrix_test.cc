// Unit and property tests for the dense matrix kernels.
#include <gtest/gtest.h>

#include <tuple>

#include "tensor/matrix.h"
#include "util/random.h"

namespace neurosketch {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, Rng* rng) {
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) m(r, c) = rng->Uniform(-2, 2);
  }
  return m;
}

/// Reference triple-loop product.
Matrix NaiveGemm(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows(), b.cols(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      out(i, j) = acc;
    }
  }
  return out;
}

void ExpectMatrixNear(const Matrix& a, const Matrix& b, double tol = 1e-12) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a(r, c), b(r, c), tol) << "at (" << r << "," << c << ")";
    }
  }
}

TEST(MatrixTest, ConstructAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -7.0);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(2, 1), 6.0);
}

TEST(MatrixTest, FillAndZero) {
  Matrix m(2, 2, 3.0);
  m.Zero();
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 0.0);
  m.Fill(2.0);
  EXPECT_DOUBLE_EQ(m.SquaredNorm(), 16.0);
}

TEST(MatrixTest, Apply) {
  Matrix m(1, 3);
  m(0, 0) = -1;
  m(0, 1) = 0;
  m(0, 2) = 2;
  m.Apply([](double x) { return x * x; });
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 4.0);
}

TEST(MatrixTest, AxpyAndScale) {
  Matrix a(1, 2, 1.0), b(1, 2, 2.0);
  a.Axpy(3.0, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 7.0);
  a.Scale(0.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 3.5);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, GemmSmallKnown) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix out;
  Gemm(a, b, &out);
  EXPECT_DOUBLE_EQ(out(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(out(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(out(1, 1), 50.0);
}

TEST(MatrixTest, AddRowVector) {
  Matrix m(2, 3, 1.0);
  Matrix row(1, 3);
  row(0, 0) = 1;
  row(0, 1) = 2;
  row(0, 2) = 3;
  AddRowVector(&m, row);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.0);
}

TEST(MatrixTest, ColumnSums) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix sums;
  ColumnSums(m, &sums);
  EXPECT_EQ(sums.rows(), 1u);
  EXPECT_DOUBLE_EQ(sums(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(sums(0, 1), 12.0);
}

// Property sweep: the optimized kernels agree with the naive reference
// across shapes, including skinny and degenerate cases.
class GemmShapeTest
    : public testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GemmShapeTest, GemmMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 100 + k * 10 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(k, n, &rng);
  Matrix out;
  Gemm(a, b, &out);
  ExpectMatrixNear(out, NaiveGemm(a, b));
}

TEST_P(GemmShapeTest, GemmTransAMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  Matrix a = RandomMatrix(k, m, &rng);  // a^T is (m, k)
  Matrix b = RandomMatrix(k, n, &rng);
  Matrix out;
  GemmTransA(a, b, &out);
  ExpectMatrixNear(out, NaiveGemm(a.Transposed(), b));
}

TEST_P(GemmShapeTest, GemmTransBMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 7 + k * 3 + n);
  Matrix a = RandomMatrix(m, k, &rng);
  Matrix b = RandomMatrix(n, k, &rng);  // b^T is (k, n)
  Matrix out;
  GemmTransB(a, b, &out);
  ExpectMatrixNear(out, NaiveGemm(a, b.Transposed()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 5, 1),
                    std::make_tuple(5, 1, 5), std::make_tuple(3, 4, 5),
                    std::make_tuple(8, 8, 8), std::make_tuple(2, 16, 3),
                    std::make_tuple(16, 2, 16), std::make_tuple(7, 13, 11)));

TEST(MatrixTest, GemmWithZeroEntriesSkipsCorrectly) {
  // The ikj kernel skips zero multipliers; verify it is still exact.
  Matrix a = Matrix::FromRows({{0, 1}, {2, 0}});
  Matrix b = Matrix::FromRows({{3, 0}, {0, 4}});
  Matrix out;
  Gemm(a, b, &out);
  ExpectMatrixNear(out, NaiveGemm(a, b));
}

}  // namespace
}  // namespace neurosketch
