// Tests for the core NeuroSketch framework: AQC, partitioning & merging,
// training, answering, serialization, and the DQD advisor.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/advisor.h"
#include "core/aqc.h"
#include "core/neurosketch.h"
#include "core/partitioner.h"
#include "data/generators.h"
#include "query/predicate.h"
#include "util/random.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

std::vector<QueryInstance> GridQueries1D(size_t n) {
  std::vector<QueryInstance> out;
  for (size_t i = 0; i < n; ++i) {
    const double c = static_cast<double>(i) / static_cast<double>(n);
    out.push_back(QueryInstance(std::vector<double>{c}));
  }
  return out;
}

TEST(AqcTest, ConstantFunctionIsZero) {
  auto queries = GridQueries1D(50);
  std::vector<double> answers(50, 3.0);
  EXPECT_DOUBLE_EQ(ComputeAqcAll(queries, answers, {}), 0.0);
}

TEST(AqcTest, LinearFunctionEqualsSlope) {
  auto queries = GridQueries1D(50);
  std::vector<double> answers;
  for (const auto& q : queries) answers.push_back(4.0 * q[0]);
  // For 1-D linear f, |Δf| / |Δq| = slope for every pair.
  EXPECT_NEAR(ComputeAqcAll(queries, answers, {}), 4.0, 1e-9);
}

TEST(AqcTest, SteeperFunctionHasLargerAqc) {
  auto queries = GridQueries1D(60);
  std::vector<double> smooth, sharp;
  for (const auto& q : queries) {
    smooth.push_back(std::sin(2.0 * q[0]));
    sharp.push_back(std::sin(20.0 * q[0]));
  }
  EXPECT_GT(ComputeAqcAll(queries, sharp, {}),
            ComputeAqcAll(queries, smooth, {}));
}

TEST(AqcTest, NanAnswersSkipped) {
  auto queries = GridQueries1D(10);
  std::vector<double> answers(10, 1.0);
  answers[3] = std::nan("");
  EXPECT_DOUBLE_EQ(ComputeAqcAll(queries, answers, {}), 0.0);
}

TEST(AqcTest, FewerThanTwoQueriesIsZero) {
  std::vector<QueryInstance> one = {QueryInstance(std::vector<double>{0.5})};
  std::vector<double> a = {1.0};
  EXPECT_DOUBLE_EQ(ComputeAqcAll(one, a, {}), 0.0);
}

TEST(AqcTest, SampledApproximatesExact) {
  Rng rng(40);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 300; ++i) {
    const double c = rng.Uniform();
    queries.push_back(QueryInstance(std::vector<double>{c}));
    answers.push_back(std::sin(5.0 * c));
  }
  AqcOptions exact_opts;
  exact_opts.max_pairs = 1000000;  // all pairs
  AqcOptions sampled_opts;
  sampled_opts.max_pairs = 5000;
  const double exact = ComputeAqc(queries, answers,
                                  [&] {
                                    std::vector<size_t> ids(queries.size());
                                    for (size_t i = 0; i < ids.size(); ++i)
                                      ids[i] = i;
                                    return ids;
                                  }(),
                                  exact_opts);
  const double sampled = ComputeAqcAll(queries, answers, sampled_opts);
  EXPECT_NEAR(sampled / exact, 1.0, 0.25);
}

TEST(PartitionerTest, MergesToTargetLeafCount) {
  Rng rng(41);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 400; ++i) {
    const double c = rng.Uniform(), r = rng.Uniform(0.0, 0.5);
    queries.push_back(QueryInstance(std::vector<double>{c, r}));
    answers.push_back(c + r);
  }
  PartitionConfig cfg;
  cfg.tree_height = 4;  // 16 leaves
  cfg.target_leaves = 8;
  PartitionResult res = PartitionQuerySpace(queries, answers, cfg);
  EXPECT_EQ(res.tree.NumLeaves(), 8u);
  EXPECT_EQ(res.leaf_aqc.size(), 8u);
}

TEST(PartitionerTest, NoMergeWhenTargetEqualsLeaves) {
  auto queries = GridQueries1D(128);
  std::vector<double> answers(128, 0.0);
  for (size_t i = 0; i < 128; ++i) answers[i] = std::sin(3.0 * queries[i][0]);
  PartitionConfig cfg;
  cfg.tree_height = 3;
  cfg.target_leaves = 8;
  PartitionResult res = PartitionQuerySpace(queries, answers, cfg);
  EXPECT_EQ(res.tree.NumLeaves(), 8u);
}

TEST(PartitionerTest, MergePrefersLowAqcRegions) {
  // Left half of query space: constant answers (AQC 0). Right half: steep.
  // After merging 4 -> 3 leaves, the two left leaves should have merged.
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  Rng rng(42);
  for (int i = 0; i < 800; ++i) {
    const double c = rng.Uniform();
    queries.push_back(QueryInstance(std::vector<double>{c}));
    answers.push_back(c < 0.5 ? 1.0 : std::sin(40.0 * c));
  }
  PartitionConfig cfg;
  cfg.tree_height = 2;  // 4 leaves
  cfg.target_leaves = 3;
  PartitionResult res = PartitionQuerySpace(queries, answers, cfg);
  ASSERT_EQ(res.tree.NumLeaves(), 3u);
  // The merged (largest) leaf should live on the constant side: route a
  // left-side query and check its leaf has ~half of all queries.
  const auto* leaf = res.tree.Route(QueryInstance(std::vector<double>{0.2}));
  EXPECT_GT(leaf->query_ids.size(), 300u);
}

TEST(PartitionerTest, SingleLeafStopsGracefully) {
  auto queries = GridQueries1D(32);
  std::vector<double> answers(32, 1.0);
  PartitionConfig cfg;
  cfg.tree_height = 2;
  cfg.target_leaves = 1;
  PartitionResult res = PartitionQuerySpace(queries, answers, cfg);
  EXPECT_EQ(res.tree.NumLeaves(), 1u);
}

NeuroSketchConfig FastConfig() {
  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 2;
  cfg.n_layers = 4;
  cfg.l_first = 24;
  cfg.l_rest = 16;
  cfg.train.epochs = 120;
  cfg.train.learning_rate = 2e-3;
  return cfg;
}

TEST(NeuroSketchTest, LearnsSmoothQueryFunction) {
  // f(c, r) = expected count of uniform data in [c, c+r) = n*r estimated
  // via real data: a smooth, easy query function.
  Table t = MakeUniformTable(10000, 1, 43);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.5;
  wc.seed = 44;
  WorkloadGenerator gen(1, wc);
  auto queries = gen.GenerateMany(1200, &engine, &spec);
  auto answers = engine.AnswerBatch(spec, queries);

  auto sketch = NeuroSketch::Train(queries, answers, FastConfig());
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();

  // Evaluate on held-out queries.
  WorkloadConfig wc2 = wc;
  wc2.seed = 45;
  WorkloadGenerator gen2(1, wc2);
  auto test_q = gen2.GenerateMany(200, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, test_q);
  auto pred = sketch.value().AnswerBatch(test_q);
  EXPECT_LT(stats::NormalizedMae(truth, pred), 0.05);
}

TEST(NeuroSketchTest, TrainFromEngineConvenience) {
  Table t = MakeUniformTable(5000, 2, 46);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 1;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = 47;
  WorkloadGenerator gen(2, wc);
  auto sketch =
      NeuroSketch::TrainFromEngine(engine, spec, &gen, 600, FastConfig());
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch.value().query_dim(), 4u);
  EXPECT_GT(sketch.value().stats().train_seconds, 0.0);
  EXPECT_EQ(sketch.value().stats().num_partitions, 2u);
}

TEST(NeuroSketchTest, RejectsBadInput) {
  std::vector<QueryInstance> queries = {
      QueryInstance(std::vector<double>{0.5})};
  std::vector<double> answers = {1.0, 2.0};
  EXPECT_FALSE(NeuroSketch::Train(queries, answers, FastConfig()).ok());
  // All-NaN answers.
  std::vector<QueryInstance> q2 = {QueryInstance(std::vector<double>{0.1}),
                                   QueryInstance(std::vector<double>{0.9})};
  std::vector<double> nan2 = {std::nan(""), std::nan("")};
  EXPECT_FALSE(NeuroSketch::Train(q2, nan2, FastConfig()).ok());
  // Inconsistent dimensionality.
  std::vector<QueryInstance> q3 = {QueryInstance(std::vector<double>{0.1}),
                                   QueryInstance(std::vector<double>{0.2, 0.3})};
  std::vector<double> a3 = {1.0, 2.0};
  EXPECT_FALSE(NeuroSketch::Train(q3, a3, FastConfig()).ok());
}

TEST(NeuroSketchTest, NanAnswersDroppedNotFatal) {
  Rng rng(48);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 300; ++i) {
    const double c = rng.Uniform();
    queries.push_back(QueryInstance(std::vector<double>{c}));
    answers.push_back(i % 10 == 0 ? std::nan("") : 2.0 * c);
  }
  auto sketch = NeuroSketch::Train(queries, answers, FastConfig());
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch.value().stats().training_queries, 270u);
}

TEST(NeuroSketchTest, SizeBytesSmallAndPositive) {
  Rng rng(49);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 400; ++i) {
    const double c = rng.Uniform();
    queries.push_back(QueryInstance(std::vector<double>{c}));
    answers.push_back(c);
  }
  auto sketch = NeuroSketch::Train(queries, answers, FastConfig());
  ASSERT_TRUE(sketch.ok());
  EXPECT_GT(sketch.value().SizeBytes(), 0u);
  EXPECT_LT(sketch.value().SizeBytes(), 1u << 20);  // well under 1 MB
}

TEST(NeuroSketchTest, SaveLoadRoundTripAnswersExactly) {
  Rng rng(50);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 500; ++i) {
    const double c = rng.Uniform(), r = rng.Uniform(0, 0.5);
    queries.push_back(QueryInstance(std::vector<double>{c, r}));
    answers.push_back(std::sin(3 * c) + r);
  }
  auto sketch = NeuroSketch::Train(queries, answers, FastConfig());
  ASSERT_TRUE(sketch.ok());
  const std::string path = testing::TempDir() + "/ns_sketch.bin";
  ASSERT_TRUE(sketch.value().Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (int i = 0; i < 50; ++i) {
    QueryInstance q(std::vector<double>{rng.Uniform(), rng.Uniform(0, 0.5)});
    EXPECT_DOUBLE_EQ(sketch.value().Answer(q), loaded.value().Answer(q));
  }
  EXPECT_EQ(sketch.value().num_partitions(), loaded.value().num_partitions());
  std::remove(path.c_str());
}

TEST(NeuroSketchTest, LoadMissingFileFails) {
  EXPECT_FALSE(NeuroSketch::Load("/nonexistent/sketch.bin").ok());
}

TEST(AdvisorTest, NormalizedAqcScalesAnswers) {
  auto queries = GridQueries1D(100);
  std::vector<double> small, large;
  for (const auto& q : queries) {
    small.push_back(q[0]);          // range 1
    large.push_back(1000.0 * q[0]);  // range 1000
  }
  // After normalization both should have identical AQC.
  const double a = Advisor::EstimateNormalizedAqc(queries, small);
  const double b = Advisor::EstimateNormalizedAqc(queries, large);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(AdvisorTest, BuildDecisionThreshold) {
  AdvisorConfig cfg;
  cfg.max_buildable_aqc = 2.0;
  Advisor advisor(cfg);
  EXPECT_TRUE(advisor.ShouldBuild(1.5));
  EXPECT_FALSE(advisor.ShouldBuild(2.5));
}

TEST(AdvisorTest, SmallRangesGoToEngine) {
  AdvisorConfig cfg;
  cfg.min_range_frac = 0.05;
  Advisor advisor(cfg);
  // Active range of width 0.01 < 0.05: engine.
  QueryInstance small = QueryInstance::AxisRange({0.5, 0.0}, {0.01, 1.0});
  EXPECT_FALSE(advisor.ShouldUseSketch(small, 2));
  QueryInstance wide = QueryInstance::AxisRange({0.5, 0.0}, {0.2, 1.0});
  EXPECT_TRUE(advisor.ShouldUseSketch(wide, 2));
  // Inactive attributes don't trigger the rule.
  QueryInstance none = QueryInstance::AxisRange({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(advisor.ShouldUseSketch(none, 2));
}

TEST(AdvisorTest, HybridExecutorDispatches) {
  Table t = MakeUniformTable(5000, 1, 51);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.5;
  wc.seed = 52;
  WorkloadGenerator gen(1, wc);
  auto sketch =
      NeuroSketch::TrainFromEngine(engine, spec, &gen, 500, FastConfig());
  ASSERT_TRUE(sketch.ok());

  AdvisorConfig acfg;
  acfg.min_range_frac = 0.05;
  HybridExecutor hybrid(&sketch.value(), &engine, spec, Advisor(acfg));

  // Wide range: sketch used.
  auto wide = hybrid.Execute(QueryInstance::AxisRange({0.2}, {0.4}));
  EXPECT_TRUE(wide.used_sketch);
  // Tiny range: exact engine used, answer is exact.
  QueryInstance tiny = QueryInstance::AxisRange({0.2}, {0.01});
  auto narrow = hybrid.Execute(tiny);
  EXPECT_FALSE(narrow.used_sketch);
  EXPECT_DOUBLE_EQ(narrow.value, engine.Answer(spec, tiny));
}

}  // namespace
}  // namespace neurosketch
