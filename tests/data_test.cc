// Tests for the data substrate: table, normalizer, generators, datasets.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "data/datasets.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "data/table.h"
#include "util/csv.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

Schema TwoColSchema() {
  Schema s;
  s.columns = {"a", "b"};
  return s;
}

TEST(SchemaTest, FindByName) {
  Schema s = TwoColSchema();
  EXPECT_EQ(s.Find("a"), 0);
  EXPECT_EQ(s.Find("b"), 1);
  EXPECT_EQ(s.Find("zzz"), -1);
}

TEST(TableTest, AppendAndAccess) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.AppendRow({1.0, 2.0}).ok());
  ASSERT_TRUE(t.AppendRow({3.0, 4.0}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  EXPECT_EQ(t.Row(0), (std::vector<double>{1.0, 2.0}));
}

TEST(TableTest, AppendWrongWidthRejected) {
  Table t(TwoColSchema());
  EXPECT_FALSE(t.AppendRow({1.0}).ok());
  EXPECT_FALSE(t.AppendRow({1.0, 2.0, 3.0}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, SetColumnsAndRaggedRejected) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{1, 2, 3}, {4, 5, 6}}).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.SetColumns({{1}, {2, 3}}).ok());
  EXPECT_FALSE(t.SetColumns({{1}}).ok());
}

TEST(TableTest, Select) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{1, 2, 3}, {4, 5, 6}}).ok());
  Table sel = t.Select({2, 0});
  EXPECT_EQ(sel.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(sel.at(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(sel.at(1, 0), 1.0);
}

TEST(TableTest, Project) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{1, 2}, {3, 4}}).ok());
  auto proj = t.Project({1});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj.value().num_columns(), 1u);
  EXPECT_EQ(proj.value().schema().columns[0], "b");
  EXPECT_FALSE(t.Project({5}).ok());
}

TEST(TableTest, SizeBytes) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{1, 2, 3}, {4, 5, 6}}).ok());
  EXPECT_EQ(t.SizeBytes(), 3u * 2 * sizeof(double));
}

TEST(TableTest, FromCsvFile) {
  const std::string path = testing::TempDir() + "/ns_table.csv";
  ASSERT_TRUE(csv::WriteNumeric(path, {"x", "y"}, {{1, 2}, {3, 4}}).ok());
  auto t = Table::FromCsvFile(path);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t.value().num_rows(), 2u);
  EXPECT_EQ(t.value().schema().Find("y"), 1);
  std::remove(path.c_str());
}

TEST(NormalizerTest, MapsIntoUnitInterval) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{-10, 0, 10}, {100, 200, 300}}).ok());
  Normalizer norm = Normalizer::Fit(t);
  Table nt = norm.Transform(t);
  for (size_t c = 0; c < 2; ++c) {
    for (double v : nt.column(c)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(nt.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(nt.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(nt.at(1, 1), 0.5);
}

TEST(NormalizerTest, RoundTripDenormalize) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{-5, 15}, {2, 8}}).ok());
  Normalizer norm = Normalizer::Fit(t);
  for (double v : {-5.0, 0.0, 7.5, 15.0}) {
    EXPECT_NEAR(norm.Denormalize(0, norm.Normalize(0, v)), v, 1e-12);
  }
  EXPECT_DOUBLE_EQ(norm.Width(0), 20.0);
}

TEST(NormalizerTest, ConstantColumnStaysDefined) {
  Table t(TwoColSchema());
  ASSERT_TRUE(t.SetColumns({{3, 3, 3}, {1, 2, 3}}).ok());
  Normalizer norm = Normalizer::Fit(t);
  Table nt = norm.Transform(t);
  for (double v : nt.column(0)) {
    EXPECT_FALSE(std::isnan(v));
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(GeneratorTest, UniformMoments) {
  Table t = MakeUniformTable(20000, 2, 101);
  EXPECT_EQ(t.num_rows(), 20000u);
  EXPECT_NEAR(stats::Mean(t.column(0)), 0.5, 0.02);
  EXPECT_NEAR(stats::Variance(t.column(1)), 1.0 / 12.0, 0.005);
}

TEST(GeneratorTest, GaussianMomentsAndClipping) {
  Table t = MakeGaussianTable(20000, 1, 0.5, 0.1, 102);
  EXPECT_NEAR(stats::Mean(t.column(0)), 0.5, 0.01);
  EXPECT_NEAR(stats::Stddev(t.column(0)), 0.1, 0.01);
  for (double v : t.column(0)) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GeneratorTest, GmmSamplesWithinDomain) {
  Rng rng(103);
  GmmDistribution gmm = GmmDistribution::MakeRandom(3, 5, &rng);
  EXPECT_EQ(gmm.dim(), 3u);
  EXPECT_EQ(gmm.components().size(), 5u);
  Table t = MakeGmmTable(gmm, 5000, 104);
  for (size_t c = 0; c < 3; ++c) {
    for (double v : t.column(c)) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GeneratorTest, GmmMarginalPdfIntegratesToOne) {
  Rng rng(105);
  GmmDistribution gmm = GmmDistribution::MakeRandom(2, 4, &rng, 0.05, 0.1);
  // Trapezoid over a wide interval (most mass is inside [0,1] by
  // construction of the random means/sigmas).
  double acc = 0.0;
  const int steps = 4000;
  for (int i = 0; i <= steps; ++i) {
    const double x = -1.0 + 3.0 * i / steps;
    const double w = (i == 0 || i == steps) ? 0.5 : 1.0;
    acc += w * gmm.MarginalPdf(0, x) * (3.0 / steps);
  }
  EXPECT_NEAR(acc, 1.0, 1e-3);
}

TEST(GeneratorTest, TwoComponentGmmIsBimodal) {
  GaussianComponent a, b;
  a.mean = {0.25};
  a.stddev = {0.05};
  a.weight = 1.0;
  b.mean = {0.75};
  b.stddev = {0.05};
  b.weight = 1.0;
  GmmDistribution gmm({a, b});
  EXPECT_GT(gmm.MarginalPdf(0, 0.25), gmm.MarginalPdf(0, 0.5));
  EXPECT_GT(gmm.MarginalPdf(0, 0.75), gmm.MarginalPdf(0, 0.5));
}

TEST(DatasetTest, PmLikeShapeAndTail) {
  Dataset d = MakePmLike(20000, 106);
  EXPECT_EQ(d.name, "PM");
  EXPECT_EQ(d.table.num_columns(), 4u);
  EXPECT_EQ(d.measure_col, 0u);
  const auto& pm = d.table.column(0);
  // Heavy right tail (Fig. 5): mean well above median.
  EXPECT_GT(stats::Mean(pm), stats::Median(pm));
  EXPECT_LE(stats::Max(pm), 900.0);
  EXPECT_GE(stats::Min(pm), 0.0);
}

TEST(DatasetTest, VerasetLikeBoundsAndDurations) {
  Dataset d = MakeVerasetLike(20000, 107);
  EXPECT_EQ(d.table.num_columns(), 3u);
  EXPECT_EQ(d.measure_col, 2u);
  for (double lat : d.table.column(0)) {
    EXPECT_GE(lat, 29.74);
    EXPECT_LE(lat, 29.78);
  }
  for (double dur : d.table.column(2)) {
    EXPECT_GE(dur, 0.25);  // stay-point filter: >= 15 minutes
    EXPECT_LE(dur, 20.0);
  }
}

TEST(DatasetTest, TpcLikePricingChainConsistent) {
  Dataset d = MakeTpcLike(5000, 108);
  EXPECT_EQ(d.table.num_columns(), 13u);
  EXPECT_EQ(d.measure_col, 12u);
  const auto& t = d.table;
  const int qty = t.schema().Find("quantity");
  const int ext_sales = t.schema().Find("ext_sales_price");
  const int ext_wholesale = t.schema().Find("ext_wholesale");
  const int coupon = t.schema().Find("coupon_amt");
  const int profit = t.schema().Find("net_profit");
  ASSERT_GE(qty, 0);
  for (size_t i = 0; i < 200; ++i) {
    // net_profit = ext_sales - coupon - ext_wholesale.
    EXPECT_NEAR(t.at(i, profit),
                t.at(i, ext_sales) - t.at(i, coupon) - t.at(i, ext_wholesale),
                1e-9);
  }
  // Fig. 5: net_profit spans negative and positive values.
  EXPECT_LT(stats::Min(t.column(profit)), 0.0);
  EXPECT_GT(stats::Max(t.column(profit)), 0.0);
}

TEST(DatasetTest, GmmDatasetDimensions) {
  Dataset d = MakeGmmDataset(1000, 5, 10, 109);
  EXPECT_EQ(d.name, "G5");
  EXPECT_EQ(d.table.num_columns(), 5u);
  EXPECT_EQ(d.measure_col, 4u);
}

TEST(DatasetTest, ByNameDispatch) {
  for (const char* name : {"PM", "VS", "TPC1", "G5", "G10", "G20"}) {
    auto d = MakeDatasetByName(name, /*scale=*/0.01, 110);
    ASSERT_TRUE(d.ok()) << name;
    EXPECT_GT(d.value().table.num_rows(), 0u);
  }
  EXPECT_FALSE(MakeDatasetByName("NOPE", 1.0, 0).ok());
}

TEST(DatasetTest, ScaleControlsRows) {
  auto small = MakeDatasetByName("VS", 0.01, 111);
  auto large = MakeDatasetByName("VS", 0.02, 111);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_EQ(small.value().table.num_rows() * 2,
            large.value().table.num_rows());
}

TEST(DatasetTest, DeterministicBySeed) {
  Dataset a = MakeVerasetLike(100, 42), b = MakeVerasetLike(100, 42);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.table.at(i, 2), b.table.at(i, 2));
  }
  Dataset c = MakeVerasetLike(100, 43);
  bool any_diff = false;
  for (size_t i = 0; i < 100 && !any_diff; ++i) {
    any_diff = a.table.at(i, 2) != c.table.at(i, 2);
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace neurosketch
