// End-to-end integration tests: dataset -> normalize -> workload ->
// ground truth -> NeuroSketch -> accuracy, across datasets, aggregates and
// the DQD data-size prediction.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/tree_agg.h"
#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "query/predicate.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

struct Pipeline {
  Table normalized;
  QueryFunctionSpec spec;
};

Pipeline MakePipeline(Dataset dataset, Aggregate agg) {
  Pipeline p;
  Normalizer norm = Normalizer::Fit(dataset.table);
  p.normalized = norm.Transform(dataset.table);
  p.spec.predicate = AxisRangePredicate::Make();
  p.spec.agg = agg;
  p.spec.measure_col = dataset.measure_col;
  return p;
}

NeuroSketchConfig FastConfig() {
  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 2;
  cfg.n_layers = 4;
  cfg.l_first = 32;
  cfg.l_rest = 16;
  cfg.train.epochs = 100;
  cfg.train.learning_rate = 2e-3;
  return cfg;
}

double EvaluateSketch(const Pipeline& p, const WorkloadConfig& base_wc,
                      size_t n_train, size_t n_test) {
  ExactEngine engine(&p.normalized);
  WorkloadConfig wc = base_wc;
  WorkloadGenerator train_gen(p.normalized.num_columns(), wc);
  auto sketch = NeuroSketch::TrainFromEngine(engine, p.spec, &train_gen,
                                             n_train, FastConfig());
  EXPECT_TRUE(sketch.ok()) << sketch.status().ToString();
  if (!sketch.ok()) return 1e9;
  wc.seed = base_wc.seed + 999;
  WorkloadGenerator test_gen(p.normalized.num_columns(), wc);
  auto test_q = test_gen.GenerateMany(n_test, &engine, &p.spec);
  auto truth = engine.AnswerBatch(p.spec, test_q);
  auto pred = sketch.value().AnswerBatch(test_q);
  // Ignore NaN ground truth (shouldn't occur with min_matches).
  std::vector<double> t2, p2;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (std::isnan(truth[i])) continue;
    t2.push_back(truth[i]);
    p2.push_back(pred[i]);
  }
  return stats::NormalizedMae(t2, p2);
}

// End-to-end accuracy on each dataset family (reduced scale), AVG with one
// active attribute (VS: lat/lon active), mirroring Fig. 6 conditions.
class DatasetPipelineTest : public testing::TestWithParam<const char*> {};

TEST_P(DatasetPipelineTest, SketchErrorIsSmall) {
  const std::string name = GetParam();
  auto ds = MakeDatasetByName(name, /*scale=*/0.05, 80);
  ASSERT_TRUE(ds.ok());
  Pipeline p = MakePipeline(std::move(ds).value(), Aggregate::kAvg);
  WorkloadConfig wc;
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.6;
  wc.min_matches = 5;
  wc.seed = 81;
  if (name == "VS") {
    wc.num_active = 2;
    wc.fixed_attrs = {0, 1};
  } else {
    wc.num_active = 1;
  }
  const double err = EvaluateSketch(p, wc, /*n_train=*/900, /*n_test=*/150);
  // Generous threshold: these are minutes-scale configs, not paper-scale.
  EXPECT_LT(err, 0.25) << name;
}

INSTANTIATE_TEST_SUITE_P(Datasets, DatasetPipelineTest,
                         testing::Values("PM", "VS", "TPC1", "G5"));

// NeuroSketch supports every aggregation function, including MEDIAN and
// STD which the learned baselines cannot answer (Sec. 4.3 / Fig. 9).
class AggregateSupportTest : public testing::TestWithParam<Aggregate> {};

TEST_P(AggregateSupportTest, SketchAnswersAggregate) {
  Dataset ds = MakeVerasetLike(4000, 82);
  Pipeline p = MakePipeline(std::move(ds), GetParam());
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.range_frac_lo = 0.25;
  wc.range_frac_hi = 0.6;
  wc.min_matches = 5;
  wc.seed = 83;
  const double err = EvaluateSketch(p, wc, 700, 100);
  EXPECT_LT(err, 0.5) << AggregateName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Aggregates, AggregateSupportTest,
    testing::Values(Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                    Aggregate::kStd, Aggregate::kMedian),
    [](const testing::TestParamInfo<Aggregate>& info) {
      return AggregateName(info.param);
    });

// DQD bound sanity (Sec. 5.7 / Fig. 14): with a fixed architecture, error
// decreases as the data size grows.
TEST(DqdIntegrationTest, ErrorDecreasesWithDataSize) {
  double errs[2];
  const size_t sizes[2] = {300, 30000};
  for (int i = 0; i < 2; ++i) {
    Table t = MakeGaussianTable(sizes[i], 1, 0.5, 0.15, 84);
    Pipeline p;
    p.normalized = t;  // already in [0,1]
    p.spec.predicate = AxisRangePredicate::Make();
    p.spec.agg = Aggregate::kCount;
    p.spec.measure_col = 0;
    WorkloadConfig wc;
    wc.num_active = 1;
    wc.range_frac_lo = 0.1;
    wc.range_frac_hi = 0.5;
    wc.min_matches = 1;
    wc.seed = 85;
    errs[i] = EvaluateSketch(p, wc, 900, 150);
  }
  EXPECT_LT(errs[1], errs[0]);
}

// Query specialization (Table 3): partitioning should not hurt, and for a
// function with sharply heterogeneous complexity it should help.
TEST(PartitioningIntegrationTest, PartitioningHelpsHeterogeneousFunction) {
  // Build a 1-D dataset whose AVG query function is flat on the left and
  // oscillatory on the right.
  Schema s;
  s.columns = {"x", "m"};
  Table t(s);
  Rng rng(86);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform();
    const double m =
        x < 0.5 ? 0.5 : 0.5 + 0.45 * std::sin(40.0 * x);
    ASSERT_TRUE(t.AppendRow({x, std::clamp(m + rng.Normal(0, 0.01), 0.0, 1.0)})
                    .ok());
  }
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 1;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.candidate_attrs = {0};
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.2;
  wc.min_matches = 5;
  wc.seed = 87;
  WorkloadGenerator gen(2, wc);
  auto queries = gen.GenerateMany(1500, &engine, &spec);
  auto answers = engine.AnswerBatch(spec, queries);

  auto eval = [&](size_t height, size_t partitions) {
    NeuroSketchConfig cfg = FastConfig();
    cfg.tree_height = height;
    cfg.target_partitions = partitions;
    auto sketch = NeuroSketch::Train(queries, answers, cfg);
    EXPECT_TRUE(sketch.ok());
    WorkloadConfig twc = wc;
    twc.seed = 88;
    WorkloadGenerator tg(2, twc);
    auto tq = tg.GenerateMany(200, &engine, &spec);
    auto truth = engine.AnswerBatch(spec, tq);
    auto pred = sketch.value().AnswerBatch(tq);
    return stats::NormalizedMae(truth, pred);
  };
  const double no_partition = eval(0, 1);
  const double with_partition = eval(3, 4);
  EXPECT_LT(with_partition, no_partition * 1.2);  // at minimum: no big harm
}

// The released artifact workflow of Sec. 7: train, save, ship the sketch,
// answer without the data.
TEST(ReleaseWorkflowTest, SavedSketchAnswersWithoutData) {
  Dataset ds = MakeVerasetLike(5000, 89);
  Pipeline p = MakePipeline(std::move(ds), Aggregate::kAvg);
  ExactEngine engine(&p.normalized);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.fixed_attrs = {0, 1};
  wc.range_frac_lo = 0.3;
  wc.range_frac_hi = 0.6;
  wc.min_matches = 5;
  wc.seed = 90;
  WorkloadGenerator gen(3, wc);
  auto sketch =
      NeuroSketch::TrainFromEngine(engine, p.spec, &gen, 600, FastConfig());
  ASSERT_TRUE(sketch.ok());
  const std::string path = testing::TempDir() + "/ns_release.bin";
  ASSERT_TRUE(sketch.value().Save(path).ok());

  // Consumer side: only the file exists.
  auto consumer = NeuroSketch::Load(path);
  ASSERT_TRUE(consumer.ok());
  wc.seed = 91;
  WorkloadGenerator tg(3, wc);
  auto tq = tg.GenerateMany(100, &engine, &p.spec);
  auto truth = engine.AnswerBatch(p.spec, tq);
  auto pred = consumer.value().AnswerBatch(tq);
  EXPECT_LT(stats::NormalizedMae(truth, pred), 0.3);
  // The sketch is much smaller than the data (Fig. 6c).
  EXPECT_LT(consumer.value().SizeBytes(), p.normalized.SizeBytes());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neurosketch
