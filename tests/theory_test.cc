// Tests for the theory toolkit: LDQ closed forms and the DQD-bound
// calculators (monotonicity and consistency properties).
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "theory/dqd.h"
#include "theory/ldq.h"
#include "util/random.h"

namespace neurosketch {
namespace theory {
namespace {

TEST(LdqTest, UniformIsOne) { EXPECT_DOUBLE_EQ(LdqUniformCount(), 1.0); }

TEST(LdqTest, GaussianClosedForm) {
  // Example 3.3: rho = 3 / (sigma sqrt(2 pi)).
  EXPECT_NEAR(LdqGaussianCount(1.0), 3.0 / std::sqrt(2.0 * M_PI), 1e-12);
  // Smaller sigma -> harder function.
  EXPECT_GT(LdqGaussianCount(0.1), LdqGaussianCount(0.5));
}

TEST(LdqTest, GmmBoundIsWeightedCombination) {
  const double b =
      LdqGmmCountBound({0.5, 0.5}, {0.1, 0.2});
  EXPECT_NEAR(b, 0.5 * LdqGaussianCount(0.1) + 0.5 * LdqGaussianCount(0.2),
              1e-12);
  // A GMM with small sigmas is harder than a single wide Gaussian.
  EXPECT_GT(LdqGmmCountBound({0.5, 0.5}, {0.05, 0.05}),
            LdqGaussianCount(0.5));
}

TEST(LdqTest, EstimateOrdersDistributionsCorrectly) {
  // Empirical LDQ of the normalized COUNT query function should rank
  // uniform < Gaussian(0.1), matching the closed forms.
  const size_t n = 20000;
  Table uni = MakeUniformTable(n, 1, 70);
  Table gauss = MakeGaussianTable(n, 1, 0.5, 0.1, 71);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.5;
  wc.seed = 72;

  auto estimate = [&](const Table& t) {
    ExactEngine engine(&t);
    WorkloadGenerator gen(1, wc);
    auto queries = gen.GenerateMany(400);
    auto answers = engine.AnswerBatch(spec, queries);
    for (auto& a : answers) a /= static_cast<double>(n);  // normalize by n
    return EstimateLdq(queries, answers, 20000, 73);
  };
  EXPECT_LT(estimate(uni), estimate(gauss));
}

TEST(LdqTest, EstimateDegenerateInputs) {
  EXPECT_DOUBLE_EQ(EstimateLdq({}, {}, 100, 1), 0.0);
  std::vector<QueryInstance> one = {QueryInstance(std::vector<double>{0.5})};
  EXPECT_DOUBLE_EQ(EstimateLdq(one, {1.0}, 100, 1), 0.0);
}

TEST(DqdTest, GridResolutionClosedForm) {
  // t = ceil(3 rho d / eps1).
  EXPECT_EQ(RequiredGridResolution(1.0, 2, 0.5), 12u);
  EXPECT_EQ(RequiredGridResolution(1.0, 1, 3.0), 1u);
  // Harder functions need finer grids.
  EXPECT_GT(RequiredGridResolution(10.0, 2, 0.5),
            RequiredGridResolution(1.0, 2, 0.5));
}

TEST(DqdTest, ConstructionUnitsGrowAsErrorShrinks) {
  const size_t loose = ConstructionUnits(1.0, 2, 0.5);
  const size_t tight = ConstructionUnits(1.0, 2, 0.05);
  EXPECT_GT(tight, loose);
  // k = (t+1)^d exactly.
  EXPECT_EQ(loose, (RequiredGridResolution(1.0, 2, 0.5) + 1) *
                       (RequiredGridResolution(1.0, 2, 0.5) + 1));
}

TEST(DqdTest, ApproximationBoundsScale) {
  EXPECT_DOUBLE_EQ(ApproximationErrorBound(2.0, 3, 10), 3.0 * 2.0 * 3 / 10.0);
  EXPECT_DOUBLE_EQ(ApproximationErrorBoundInf(1.0, 2, 10),
                   37.0 * 2.0 / 10.0);
  // Doubling the grid halves the bound.
  EXPECT_NEAR(ApproximationErrorBound(1.0, 2, 20),
              ApproximationErrorBound(1.0, 2, 10) / 2.0, 1e-12);
}

TEST(DqdTest, VcProbabilityMonotoneInN) {
  // Theorem 3.5 / "Faster on Larger Databases": for fixed eps, the failure
  // probability decreases with data size.
  double prev = 1.1;
  for (size_t n : {1000u, 10000u, 100000u, 1000000u}) {
    const double p = SamplingErrorProbability(0.05, n, 2);
    EXPECT_LE(p, prev);
    prev = p;
  }
  EXPECT_LT(prev, 1e-6);
}

TEST(DqdTest, VcProbabilityMonotoneInEps) {
  const size_t n = 100000;
  EXPECT_GE(SamplingErrorProbability(0.01, n, 2),
            SamplingErrorProbability(0.05, n, 2));
  EXPECT_GE(SamplingErrorProbability(0.05, n, 2),
            SamplingErrorProbability(0.2, n, 2));
}

TEST(DqdTest, VcProbabilityClampedToOne) {
  EXPECT_DOUBLE_EQ(SamplingErrorProbability(0.001, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(VcDeviationProbability(0.0, 100, 2), 1.0);
}

TEST(DqdTest, HigherDimensionIsHarder) {
  const size_t n = 1000000;
  EXPECT_LT(SamplingErrorProbability(0.05, n, 1),
            SamplingErrorProbability(0.05, n, 10));
}

TEST(DqdTest, ConfidenceInversionConsistent) {
  // eps found by bisection must achieve the requested confidence, and a
  // slightly smaller eps must not.
  const size_t n = 500000, d = 2;
  const double delta = 1e-3;
  const double eps = SamplingErrorForConfidence(delta, n, d);
  EXPECT_LE(SamplingErrorProbability(eps, n, d), delta * 1.001);
  EXPECT_GT(SamplingErrorProbability(eps * 0.9, n, d), delta);
}

TEST(DqdTest, ConfidenceErrorShrinksWithN) {
  // The headline DQD implication: for fixed confidence, bigger data means
  // smaller achievable error.
  const double e1 = SamplingErrorForConfidence(1e-3, 100000, 2);
  const double e2 = SamplingErrorForConfidence(1e-3, 10000000, 2);
  EXPECT_LT(e2, e1);
}

TEST(DqdTest, AvgBoundMonotoneInXi) {
  // Lemma 3.6 / "More Accurate on Larger Ranges": larger xi (bigger
  // ranges) lowers the failure probability. The bound only becomes
  // non-vacuous at large n for small xi, so test there.
  const size_t n = 50000000, d = 2;
  EXPECT_GT(AvgErrorProbability(0.1, 0.01, n, d),
            AvgErrorProbability(0.1, 0.2, n, d));
  EXPECT_LT(AvgErrorProbability(0.1, 0.2, n, d), 1e-6);
}

TEST(DqdTest, AvgBoundMonotoneInN) {
  EXPECT_GE(AvgErrorProbability(0.1, 0.1, 10000, 2),
            AvgErrorProbability(0.1, 0.1, 1000000, 2));
}

TEST(DqdTest, AvgBoundDegenerateInputs) {
  EXPECT_DOUBLE_EQ(AvgErrorProbability(0.0, 0.5, 1000, 2), 1.0);
  EXPECT_DOUBLE_EQ(AvgErrorProbability(0.1, 0.0, 1000, 2), 1.0);
}

TEST(DqdTest, DqdFailureEqualsSamplingTail) {
  EXPECT_DOUBLE_EQ(DqdFailureProbability(0.05, 100000, 3),
                   SamplingErrorProbability(0.05, 100000, 3));
}

}  // namespace
}  // namespace theory
}  // namespace neurosketch
