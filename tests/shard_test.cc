// Tests for the shard-per-core serving engine: the wait-free MPSC
// submission ring, the stable key->shard router, and the cross-shard
// behavior of ServeEngine (burst routing, stats resets under traffic,
// and a multi-threaded hammer that doubles as the TSan workload).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/mpsc_queue.h"
#include "util/shard_router.h"

namespace neurosketch {
namespace {

using serve::ServeEngine;
using serve::ServeKey;
using serve::ServeOptions;
using serve::ServeResult;
using serve::SketchStore;

// ---------------------------------------------------------------------
// MpscRing
// ---------------------------------------------------------------------

TEST(MpscRingTest, FifoSingleThread) {
  MpscRing<int> ring(8);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.Push(i));
  EXPECT_FALSE(ring.Empty());
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);  // strict FIFO
  }
  EXPECT_TRUE(ring.Empty());
  EXPECT_FALSE(ring.TryPop(&v));
}

TEST(MpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(MpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(MpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(MpscRing<int>(64).capacity(), 64u);
}

TEST(MpscRingTest, ConcurrentProducersDeliverEveryItemExactlyOnce) {
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;
  MpscRing<int> ring(64);  // smaller than the traffic: exercises wrap
  std::vector<int> seen;
  seen.reserve(kProducers * kPerProducer);
  std::thread consumer([&] {
    int v;
    while (seen.size() < kProducers * kPerProducer) {
      if (ring.TryPop(&v)) {
        seen.push_back(v);
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ring.Push(p * kPerProducer + i);
      }
    });
  }
  for (auto& t : producers) t.join();
  consumer.join();
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[i], i);  // every item exactly once, none invented
  }
}

TEST(MpscRingTest, FullRingSignalsBackpressureAndLosesNothing) {
  constexpr int kItems = 64;
  MpscRing<int> ring(4);
  std::atomic<int> backpressured{0};
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      if (!ring.Push(i)) backpressured.fetch_add(1);
    }
  });
  // Let the producer hit the full ring before draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<int> seen;
  int v;
  while (seen.size() < kItems) {
    if (ring.TryPop(&v)) seen.push_back(v);
  }
  producer.join();
  EXPECT_GT(backpressured.load(), 0);  // the ring really filled up
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(seen[i], i);  // single producer: order also survives
  }
}

// ---------------------------------------------------------------------
// ShardRouter / ServeKey::Hash
// ---------------------------------------------------------------------

TEST(ShardRouterTest, RoutesAreStableInRangeAndSpread) {
  ShardRouter router(4);
  std::set<size_t> used;
  for (uint64_t k = 0; k < 256; ++k) {
    const uint64_t h = Fnv1a64(k);
    const size_t s = router.ShardOf(h);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(s, router.ShardOf(h));  // pure function
    used.insert(s);
  }
  // 256 distinct hashes over 4 shards: every shard gets traffic.
  EXPECT_EQ(used.size(), 4u);
}

TEST(ShardRouterTest, ZeroOrOneShardAlwaysRoutesToZero) {
  ShardRouter one(1), zero(0);
  for (uint64_t k = 0; k < 32; ++k) {
    EXPECT_EQ(one.ShardOf(Fnv1a64(k)), 0u);
    EXPECT_EQ(zero.ShardOf(Fnv1a64(k)), 0u);
  }
}

TEST(ServeKeyHashTest, PureFunctionOfKeyFields) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 2;
  const ServeKey a = ServeKey::From("ds", spec);
  const ServeKey b = ServeKey::From("ds", spec);
  EXPECT_EQ(a.Hash(), b.Hash());

  EXPECT_NE(ServeKey::From("ds2", spec).Hash(), a.Hash());
  QueryFunctionSpec other_col = spec;
  other_col.measure_col = 3;
  EXPECT_NE(ServeKey::From("ds", other_col).Hash(), a.Hash());
  QueryFunctionSpec other_agg = spec;
  other_agg.agg = Aggregate::kSum;
  EXPECT_NE(ServeKey::From("ds", other_agg).Hash(), a.Hash());
}

// ---------------------------------------------------------------------
// ServeEngine cross-shard behavior
// ---------------------------------------------------------------------

QueryFunctionSpec AvgSpec(size_t measure_col) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = measure_col;
  return spec;
}

/// Shared fixture: a normalized GMM table, its query spec, a workload,
/// and a quickly trained sketch (held by shared_ptr so several dataset
/// names can serve the same sketch from different shards).
struct ShardFixture {
  Table table;
  QueryFunctionSpec spec;
  std::vector<QueryInstance> queries;
  std::shared_ptr<const NeuroSketch> sketch;
  std::vector<double> expected;  // serial sketch answers for `queries`

  static ShardFixture Make(size_t n_queries) {
    ShardFixture f;
    Dataset ds = MakeGmmDataset(2000, 3, 3, /*seed=*/5);
    f.table = Normalizer::Fit(ds.table).Transform(ds.table);
    f.spec = AvgSpec(ds.measure_col);
    ExactEngine engine(&f.table);
    WorkloadConfig wc;
    wc.seed = 99;
    WorkloadGenerator gen(f.table.num_columns(), wc);
    f.queries = gen.GenerateMany(n_queries, &engine, &f.spec);

    WorkloadConfig train_wc;
    train_wc.seed = 7;
    WorkloadGenerator train_gen(f.table.num_columns(), train_wc);
    auto train_q = train_gen.GenerateMany(400, &engine, &f.spec);
    auto train_a = engine.AnswerBatch(f.spec, train_q);
    NeuroSketchConfig cfg;
    cfg.tree_height = 2;
    cfg.target_partitions = 2;
    cfg.n_layers = 3;
    cfg.l_first = 16;
    cfg.l_rest = 8;
    cfg.train.epochs = 25;
    auto sk = NeuroSketch::Train(train_q, train_a, cfg);
    EXPECT_TRUE(sk.ok()) << sk.status().ToString();
    f.sketch = std::make_shared<const NeuroSketch>(std::move(sk).value());
    f.expected = f.sketch->AnswerBatch(f.queries);
    return f;
  }
};

TEST(ShardEngineTest, KeyToShardPinningStableAcrossStoreChurn) {
  ShardFixture f = ShardFixture::Make(32);
  ExactEngine engine(&f.table);
  SketchStore store;
  ServeOptions opts;
  opts.num_shards = 4;
  ServeEngine serve(&store, opts);
  ASSERT_EQ(serve.num_shards(), 4u);

  // Record where every key routes while the store is still empty.
  std::vector<std::string> names;
  std::vector<size_t> before;
  for (int i = 0; i < 16; ++i) {
    names.push_back("ds" + std::to_string(i));
    before.push_back(serve.ShardOf(names.back(), f.spec));
    EXPECT_LT(before.back(), 4u);
  }

  // Churn the store: register everything, then unregister half of it.
  for (const auto& name : names) {
    ASSERT_TRUE(store.RegisterDataset(name, &engine).ok());
    ASSERT_TRUE(store.Register(name, f.spec, f.sketch).ok());
  }
  for (size_t i = 0; i < names.size(); i += 2) {
    EXPECT_GT(store.Unregister(ServeKey::From(names[i], f.spec)), 0u);
  }

  // Routing is a pure function of the key: churn must not move anything
  // (AddStore/RemoveStore never reshuffles another store's queues).
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(serve.ShardOf(names[i], f.spec), before[i]) << names[i];
  }

  // And traffic really lands on the advertised shard.
  const std::string target = names[1];  // still registered
  const size_t shard = serve.ShardOf(target, f.spec);
  auto r = serve.SubmitMany(target, f.spec, f.queries).get();
  ASSERT_EQ(r.size(), f.queries.size());
  const auto stats = serve.Snapshot();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  EXPECT_EQ(stats.per_shard[shard].queries, f.queries.size());
  EXPECT_EQ(stats.queries, f.queries.size());
}

TEST(ShardEngineTest, CrossShardBurstsBitIdenticalAndSummable) {
  constexpr size_t kDatasets = 6;
  ShardFixture f = ShardFixture::Make(128);
  ExactEngine engine(&f.table);
  SketchStore store;
  std::vector<std::string> names;
  for (size_t i = 0; i < kDatasets; ++i) {
    names.push_back("ds" + std::to_string(i));
    ASSERT_TRUE(store.RegisterDataset(names.back(), &engine).ok());
    ASSERT_TRUE(store.Register(names.back(), f.spec, f.sketch).ok());
  }

  ServeOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 32;
  ServeEngine serve(&store, opts);

  // One concurrent burst per dataset, each from its own client thread.
  std::vector<std::future<std::vector<ServeResult>>> futs(kDatasets);
  std::vector<std::thread> clients;
  for (size_t d = 0; d < kDatasets; ++d) {
    clients.emplace_back([&, d] {
      futs[d] = serve.SubmitMany(names[d], f.spec, f.queries);
    });
  }
  for (auto& t : clients) t.join();
  for (size_t d = 0; d < kDatasets; ++d) {
    const auto results = futs[d].get();
    ASSERT_EQ(results.size(), f.queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].used_sketch);
      // Bit-identical regardless of which shard served the burst.
      EXPECT_EQ(results[i].value, f.expected[i]) << names[d] << " q" << i;
    }
  }

  const auto stats = serve.Snapshot();
  const size_t total = kDatasets * f.queries.size();
  EXPECT_EQ(stats.queries, total);
  ASSERT_EQ(stats.per_shard.size(), 4u);
  uint64_t shard_queries = 0, shard_batches = 0;
  size_t resident = 0;
  for (const auto& sd : stats.per_shard) {
    shard_queries += sd.queries;
    shard_batches += sd.batches;
    resident += sd.resident_keys;
    // Each dataset's traffic lands wholly on its advertised shard.
    uint64_t want = 0;
    for (size_t d = 0; d < kDatasets; ++d) {
      if (serve.ShardOf(names[d], f.spec) == sd.shard) {
        want += f.queries.size();
      }
    }
    EXPECT_EQ(sd.queries, want) << "shard " << sd.shard;
  }
  EXPECT_EQ(shard_queries, total);  // engine totals == sum of shards
  EXPECT_EQ(shard_batches, stats.batches);
  EXPECT_EQ(resident, kDatasets);
}

TEST(ShardEngineTest, ResetStatsDuringTrafficKeepsAWellFormedWindow) {
  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 300;
  ShardFixture f = ShardFixture::Make(kClients * kPerClient);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, f.sketch).ok());

  ServeOptions opts;
  opts.num_shards = 3;
  opts.max_batch = 16;
  opts.batch_window_us = 50.0;
  ServeEngine serve(&store, opts);

  // Hammer the engine while the main thread restarts the stats window:
  // answers must stay bit-identical and nothing may deadlock or tear.
  std::vector<std::thread> clients;
  std::atomic<bool> done{false};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t qi = c * kPerClient + i;
        const ServeResult r = serve.Answer("gmm", f.spec, f.queries[qi]);
        EXPECT_TRUE(r.used_sketch);
        EXPECT_EQ(r.value, f.expected[qi]);
      }
    });
  }
  std::thread resetter([&] {
    while (!done.load()) {
      serve.ResetStats();
      (void)serve.Snapshot();  // concurrent reads must also be safe
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  resetter.join();

  // A clean window after the storm: exact accounting must hold again.
  serve.ResetStats();
  auto results = serve.SubmitMany("gmm", f.spec, f.queries).get();
  ASSERT_EQ(results.size(), f.queries.size());
  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries, f.queries.size());
  EXPECT_EQ(stats.queries,
            stats.sketch_answers + stats.fallback_answers +
                stats.failed_answers);
  uint64_t shard_sum = 0;
  for (const auto& sd : stats.per_shard) shard_sum += sd.queries;
  EXPECT_EQ(shard_sum, stats.queries);
}

// The TSan workload: 8 client threads mixing Submit and SubmitMany
// across sketch-backed and fallback-only stores, through a deliberately
// tiny submission ring so the wait-free claim path, the backpressure
// path, and the sleep/wake handshake all run under contention.
TEST(ShardEngineTest, EightThreadHammerAcrossShardsAndPaths) {
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 150;
  ShardFixture f = ShardFixture::Make(kClients * kPerClient);
  ExactEngine engine(&f.table);
  const std::vector<double> exact =
      engine.AnswerBatch(f.spec, f.queries);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("fast", &engine).ok());
  ASSERT_TRUE(store.Register("fast", f.spec, f.sketch).ok());
  ASSERT_TRUE(store.RegisterDataset("slow", &engine).ok());
  // "slow" has no sketch: every query is an exact-engine fallback.

  ServeOptions opts;
  opts.num_shards = 4;
  opts.max_batch = 16;
  opts.batch_window_us = 100.0;
  opts.submit_queue_capacity = 8;  // force ring-full backpressure
  ServeEngine serve(&store, opts);

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = 0; i < kPerClient; ++i) {
        const size_t qi = c * kPerClient + i;
        if (i % 3 == 0) {
          // Burst of 3 to the sketch-backed store.
          const size_t n = std::min<size_t>(3, kPerClient - i);
          std::vector<QueryInstance> burst(f.queries.begin() + qi,
                                           f.queries.begin() + qi + n);
          auto results = serve.SubmitMany("fast", f.spec, burst).get();
          ASSERT_EQ(results.size(), n);
          for (size_t j = 0; j < n; ++j) {
            EXPECT_TRUE(results[j].used_sketch);
            EXPECT_EQ(results[j].value, f.expected[qi + j]);
          }
        } else if (i % 3 == 1) {
          const ServeResult r = serve.Answer("fast", f.spec, f.queries[qi]);
          EXPECT_TRUE(r.used_sketch);
          EXPECT_EQ(r.value, f.expected[qi]);
        } else {
          const ServeResult r = serve.Answer("slow", f.spec, f.queries[qi]);
          EXPECT_FALSE(r.used_sketch);
          EXPECT_EQ(r.value, exact[qi]);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries,
            stats.sketch_answers + stats.fallback_answers +
                stats.failed_answers);
  EXPECT_EQ(stats.failed_answers, 0u);
  EXPECT_GT(stats.fallback_answers, 0u);
  uint64_t shard_sum = 0;
  for (const auto& sd : stats.per_shard) shard_sum += sd.queries;
  EXPECT_EQ(shard_sum, stats.queries);
}

}  // namespace
}  // namespace neurosketch
