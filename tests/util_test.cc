// Unit tests for util: Status/Result, Rng, stats, CSV, strings.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>

#include "util/csv.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/string_util.h"

namespace neurosketch {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad thing");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_NE(Status::OutOfRange("x").ToString().find("OutOfRange"),
            std::string::npos);
  EXPECT_NE(Status::IOError("x").ToString().find("IOError"),
            std::string::npos);
  EXPECT_NE(Status::NotImplemented("x").ToString().find("NotImplemented"),
            std::string::npos);
  EXPECT_NE(
      Status::FailedPrecondition("x").ToString().find("FailedPrecondition"),
      std::string::npos);
  EXPECT_NE(Status::Unknown("x").ToString().find("Unknown"),
            std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::IOError("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NS_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> bad = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(bad.ok());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, IntInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.Int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all values hit
}

TEST(RngTest, NormalMoments) {
  Rng rng(3);
  stats::Welford w;
  for (int i = 0; i < 50000; ++i) w.Add(rng.Normal(1.0, 2.0));
  EXPECT_NEAR(w.mean(), 1.0, 0.05);
  EXPECT_NEAR(w.stddev(), 2.0, 0.05);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(4);
  auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsK) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(s.size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(6);
  std::vector<double> w = {1.0, 0.0, 3.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 20000.0, 0.75, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StatsTest, MeanAndVariance) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(stats::Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(stats::Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stats::Stddev(v), std::sqrt(1.25));
}

TEST(StatsTest, EmptyInputs) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(stats::Mean(v), 0.0);
  EXPECT_DOUBLE_EQ(stats::Median(v), 0.0);
  EXPECT_DOUBLE_EQ(stats::Sum(v), 0.0);
}

TEST(StatsTest, MedianOddEven) {
  EXPECT_DOUBLE_EQ(stats::Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(stats::Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(stats::Median({5}), 5.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(stats::Percentile(v, 25), 20.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4}, y = {2, 4, 6, 8};
  EXPECT_NEAR(stats::PearsonCorrelation(x, y), 1.0, 1e-12);
  std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(stats::PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSeriesIsZero) {
  std::vector<double> x = {1, 2, 3}, c = {5, 5, 5};
  EXPECT_DOUBLE_EQ(stats::PearsonCorrelation(x, c), 0.0);
}

TEST(StatsTest, WelfordMatchesDirect) {
  Rng rng(8);
  std::vector<double> v;
  stats::Welford w;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-5, 5);
    v.push_back(x);
    w.Add(x);
  }
  EXPECT_NEAR(w.mean(), stats::Mean(v), 1e-10);
  EXPECT_NEAR(w.variance(), stats::Variance(v), 1e-9);
}

TEST(StatsTest, NormalizedMae) {
  std::vector<double> truth = {10, 20}, pred = {11, 19};
  // MAE = 1, mean |truth| = 15 -> 1/15.
  EXPECT_NEAR(stats::NormalizedMae(truth, pred), 1.0 / 15.0, 1e-12);
}

TEST(StatsTest, NormalizedMaeZeroTruthFallsBackToMae) {
  std::vector<double> truth = {0, 0}, pred = {1, -1};
  EXPECT_DOUBLE_EQ(stats::NormalizedMae(truth, pred), 1.0);
}

TEST(StringTest, SplitAndTrimAndJoin) {
  auto parts = str::Split("a, b ,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(str::Trim(parts[1]), "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(str::Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(str::Trim("  hi\t"), "hi");
  EXPECT_EQ(str::Trim(""), "");
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(str::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(str::FormatDouble(1.0, 0), "1");
}

TEST(CsvTest, RoundTrip) {
  const std::string path = testing::TempDir() + "/ns_csv_test.csv";
  Status st = csv::WriteNumeric(path, {"a", "b"}, {{1.5, 2.5}, {3.0, -4.0}});
  ASSERT_TRUE(st.ok()) << st.ToString();
  auto r = csv::ReadNumeric(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(r.value().rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.value().rows[1][1], -4.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsIOError) {
  auto r = csv::ReadNumeric("/nonexistent/file.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, NonNumericFieldRejected) {
  const std::string path = testing::TempDir() + "/ns_csv_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a,b\n1,hello\n", f);
    fclose(f);
  }
  auto r = csv::ReadNumeric(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, RaggedRowRejected) {
  const std::string path = testing::TempDir() + "/ns_csv_ragged.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a,b\n1,2\n3\n", f);
    fclose(f);
  }
  auto r = csv::ReadNumeric(path);
  ASSERT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace neurosketch
