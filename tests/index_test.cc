// Tests for the index substrates: query-space kd-tree (Alg. 2/3/5) and the
// R-tree used by TREE-AGG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "index/kdtree.h"
#include "index/rtree.h"
#include "query/workload.h"
#include "util/random.h"

namespace neurosketch {
namespace {

std::vector<QueryInstance> RandomQueries(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<QueryInstance> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> v(dim);
    for (auto& x : v) x = rng.Uniform();
    out.emplace_back(std::move(v));
  }
  return out;
}

TEST(KdTreeTest, HeightControlsLeafCount) {
  auto queries = RandomQueries(256, 4, 1);
  for (size_t h : {0u, 1u, 2u, 3u, 4u}) {
    auto tree = QuerySpaceKdTree::Build(queries, h);
    EXPECT_EQ(tree.NumLeaves(), static_cast<size_t>(1) << h) << "h=" << h;
  }
}

TEST(KdTreeTest, LeavesPartitionQuerySet) {
  auto queries = RandomQueries(200, 3, 2);
  auto tree = QuerySpaceKdTree::Build(queries, 3);
  std::multiset<size_t> seen;
  for (const auto* leaf : static_cast<const QuerySpaceKdTree&>(tree).Leaves()) {
    for (size_t id : leaf->query_ids) seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 200u);
  std::set<size_t> uniq(seen.begin(), seen.end());
  EXPECT_EQ(uniq.size(), 200u);  // no duplicates
}

TEST(KdTreeTest, MedianSplitsAreBalanced) {
  auto queries = RandomQueries(512, 2, 3);
  auto tree = QuerySpaceKdTree::Build(queries, 4);
  for (auto* leaf : tree.Leaves()) {
    // 512 / 16 = 32 per leaf, median splits keep it within ±50%.
    EXPECT_GE(leaf->query_ids.size(), 16u);
    EXPECT_LE(leaf->query_ids.size(), 48u);
  }
}

TEST(KdTreeTest, RoutingIsConsistentWithBuild) {
  auto queries = RandomQueries(300, 3, 4);
  auto tree = QuerySpaceKdTree::Build(queries, 3);
  // Every training query must route to the leaf that owns it.
  for (auto* leaf : tree.Leaves()) {
    for (size_t id : leaf->query_ids) {
      EXPECT_EQ(tree.Route(queries[id]), leaf) << "query " << id;
    }
  }
}

TEST(KdTreeTest, LeafIdsAreDense) {
  auto queries = RandomQueries(128, 2, 5);
  auto tree = QuerySpaceKdTree::Build(queries, 3);
  std::set<int> ids;
  for (auto* leaf : tree.Leaves()) ids.insert(leaf->leaf_id);
  EXPECT_EQ(ids.size(), tree.NumLeaves());
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int>(tree.NumLeaves()) - 1);
}

TEST(KdTreeTest, DegenerateDuplicatesStopSplitting) {
  std::vector<QueryInstance> queries(
      64, QueryInstance(std::vector<double>{0.5, 0.5}));
  auto tree = QuerySpaceKdTree::Build(queries, 4);
  // All coordinates identical: no valid split exists.
  EXPECT_EQ(tree.NumLeaves(), 1u);
}

TEST(KdTreeTest, MergeChildrenCollapsesLeafPair) {
  auto queries = RandomQueries(64, 2, 6);
  auto tree = QuerySpaceKdTree::Build(queries, 2);
  ASSERT_EQ(tree.NumLeaves(), 4u);
  // Find a parent of two leaves and merge.
  QuerySpaceKdTree::Node* parent = tree.root()->left.get();
  ASSERT_FALSE(parent->is_leaf());
  const size_t expected =
      parent->left->query_ids.size() + parent->right->query_ids.size();
  ASSERT_TRUE(tree.MergeChildren(parent).ok());
  EXPECT_TRUE(parent->is_leaf());
  EXPECT_EQ(parent->query_ids.size(), expected);
  EXPECT_EQ(tree.NumLeaves(), 3u);
}

TEST(KdTreeTest, MergePreconditionsEnforced) {
  auto queries = RandomQueries(64, 2, 7);
  auto tree = QuerySpaceKdTree::Build(queries, 3);
  EXPECT_FALSE(tree.MergeChildren(nullptr).ok());
  // Root's children are internal at height 3.
  EXPECT_FALSE(tree.MergeChildren(tree.root()).ok());
  // A leaf is rejected too.
  EXPECT_FALSE(tree.MergeChildren(tree.Leaves()[0]).ok());
}

TEST(KdTreeTest, EncodeDecodeRoutesIdentically) {
  auto queries = RandomQueries(200, 4, 8);
  auto tree = QuerySpaceKdTree::Build(queries, 3);
  auto encoded = tree.EncodeRouting();
  auto decoded = QuerySpaceKdTree::DecodeRouting(encoded, 4);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto probes = RandomQueries(100, 4, 9);
  for (const auto& q : probes) {
    EXPECT_EQ(tree.Route(q)->leaf_id, decoded.value().Route(q)->leaf_id);
  }
}

TEST(KdTreeTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(QuerySpaceKdTree::DecodeRouting({}, 2).ok());
  EXPECT_FALSE(QuerySpaceKdTree::DecodeRouting({0.0}, 2).ok());
  // Internal node with missing children.
  EXPECT_FALSE(QuerySpaceKdTree::DecodeRouting({1.0, 0.5}, 2).ok());
}

TEST(BoundingBoxTest, ExpandMergeIntersect) {
  BoundingBox box = BoundingBox::Empty(2);
  double p1[2] = {0.2, 0.3}, p2[2] = {0.5, 0.1};
  box.Expand(p1, 2);
  box.Expand(p2, 2);
  EXPECT_DOUBLE_EQ(box.lo[0], 0.2);
  EXPECT_DOUBLE_EQ(box.hi[0], 0.5);
  EXPECT_DOUBLE_EQ(box.lo[1], 0.1);
  EXPECT_TRUE(box.Intersects({0.4, 0.0}, {0.6, 0.2}));
  EXPECT_FALSE(box.Intersects({0.6, 0.0}, {0.9, 0.05}));
  EXPECT_TRUE(box.ContainedIn({0.0, 0.0}, {1.0, 1.0}));
  EXPECT_FALSE(box.ContainedIn({0.3, 0.0}, {1.0, 1.0}));
}

// Property sweep: R-tree range queries must agree with a linear scan for
// random boxes across dimensions and data sizes.
class RTreeEquivalenceTest
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RTreeEquivalenceTest, MatchesLinearScan) {
  auto [dim, n] = GetParam();
  Rng rng(dim * 1000 + n);
  std::vector<std::vector<double>> points(n, std::vector<double>(dim));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  RTree tree = RTree::BulkLoad(points, /*leaf_capacity=*/8, /*fanout=*/4);
  EXPECT_EQ(tree.num_points(), n);

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> lo(dim), hi(dim);
    for (size_t d = 0; d < dim; ++d) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lo[d] = std::min(a, b);
      hi[d] = std::max(a, b);
    }
    auto got = tree.RangeQuery(lo, hi);
    std::set<size_t> got_set(got.begin(), got.end());
    std::set<size_t> want;
    for (size_t i = 0; i < n; ++i) {
      bool inside = true;
      for (size_t d = 0; d < dim; ++d) {
        if (points[i][d] < lo[d] || points[i][d] > hi[d]) {
          inside = false;
          break;
        }
      }
      if (inside) want.insert(i);
    }
    EXPECT_EQ(got_set, want) << "dim=" << dim << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RTreeEquivalenceTest,
    testing::Combine(testing::Values<size_t>(1, 2, 3, 5),
                     testing::Values<size_t>(1, 17, 256, 1000)));

TEST(RTreeTest, EmptyTree) {
  RTree tree = RTree::BulkLoad({});
  EXPECT_EQ(tree.num_points(), 0u);
  EXPECT_TRUE(tree.RangeQuery({0.0}, {1.0}).empty());
}

TEST(RTreeTest, FullDomainReturnsAll) {
  Rng rng(99);
  std::vector<std::vector<double>> points(500, std::vector<double>(3));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  RTree tree = RTree::BulkLoad(points);
  auto got = tree.RangeQuery({0, 0, 0}, {1, 1, 1});
  EXPECT_EQ(got.size(), 500u);
}

TEST(RTreeTest, SizeBytesPositiveAndGrowing) {
  std::vector<std::vector<double>> small(10, std::vector<double>(2, 0.5));
  std::vector<std::vector<double>> large(1000, std::vector<double>(2, 0.5));
  EXPECT_GT(RTree::BulkLoad(small).SizeBytes(), 0u);
  EXPECT_GT(RTree::BulkLoad(large).SizeBytes(),
            RTree::BulkLoad(small).SizeBytes());
}

TEST(RTreeTest, ForEachVisitsEachPointOnce) {
  Rng rng(100);
  std::vector<std::vector<double>> points(300, std::vector<double>(2));
  for (auto& p : points) {
    for (auto& v : p) v = rng.Uniform();
  }
  RTree tree = RTree::BulkLoad(points, 16);
  std::multiset<size_t> visited;
  tree.ForEachInBox({0, 0}, {1, 1},
                    [&](size_t id, const double*) { visited.insert(id); });
  EXPECT_EQ(visited.size(), 300u);
  std::set<size_t> uniq(visited.begin(), visited.end());
  EXPECT_EQ(uniq.size(), 300u);
}

}  // namespace
}  // namespace neurosketch
