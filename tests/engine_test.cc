// Tests for the exact scan engine (ground truth provider).
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

Table SmallTable() {
  Schema s;
  s.columns = {"x", "y", "m"};
  Table t(s);
  // x, y in [0,1]; m is the measure.
  EXPECT_TRUE(t.AppendRow({0.1, 0.1, 10}).ok());
  EXPECT_TRUE(t.AppendRow({0.2, 0.8, 20}).ok());
  EXPECT_TRUE(t.AppendRow({0.5, 0.5, 30}).ok());
  EXPECT_TRUE(t.AppendRow({0.9, 0.2, 40}).ok());
  EXPECT_TRUE(t.AppendRow({0.95, 0.95, 50}).ok());
  return t;
}

QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure;
  return spec;
}

TEST(EngineTest, CountOnKnownTable) {
  Table t = SmallTable();
  ExactEngine engine(&t);
  // x in [0, 0.6); y and the measure column unconstrained.
  QueryInstance q =
      QueryInstance::AxisRange({0.0, 0.0, 0.0}, {0.6, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kCount, 2), q), 3.0);
  EXPECT_EQ(engine.CountMatches(AxisSpec(Aggregate::kCount, 2), q), 3u);
}

TEST(EngineTest, SumAvgOnKnownTable) {
  Table t = SmallTable();
  ExactEngine engine(&t);
  QueryInstance q =
      QueryInstance::AxisRange({0.0, 0.0, 0.0}, {0.6, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kSum, 2), q), 60.0);
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kAvg, 2), q), 20.0);
}

TEST(EngineTest, MedianStdMinMax) {
  Table t = SmallTable();
  ExactEngine engine(&t);
  QueryInstance all =
      QueryInstance::AxisRange({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kMedian, 2), all), 30.0);
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kMin, 2), all), 10.0);
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kMax, 2), all), 50.0);
  EXPECT_NEAR(engine.Answer(AxisSpec(Aggregate::kStd, 2), all),
              stats::Stddev({10, 20, 30, 40, 50}), 1e-9);
}

TEST(EngineTest, EmptyRangeSemantics) {
  Table t = SmallTable();
  ExactEngine engine(&t);
  QueryInstance q =
      QueryInstance::AxisRange({0.3, 0.3, 0.0}, {0.05, 0.05, 1.0});
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kCount, 2), q), 0.0);
  EXPECT_DOUBLE_EQ(engine.Answer(AxisSpec(Aggregate::kSum, 2), q), 0.0);
  EXPECT_TRUE(std::isnan(engine.Answer(AxisSpec(Aggregate::kAvg, 2), q)));
}

TEST(EngineTest, MeasureCanBeActiveAttribute) {
  // Query restricting the measure column itself.
  Table t = MakeUniformTable(5000, 2, 60);
  ExactEngine engine(&t);
  QueryInstance q = QueryInstance::AxisRange({0.0, 0.25}, {1.0, 0.5});
  const double avg = engine.Answer(AxisSpec(Aggregate::kAvg, 1), q);
  EXPECT_NEAR(avg, 0.5, 0.02);  // mean of U(0.25, 0.75)
  const double count = engine.Answer(AxisSpec(Aggregate::kCount, 1), q);
  EXPECT_NEAR(count / 5000.0, 0.5, 0.03);
}

TEST(EngineTest, BatchMatchesSingle) {
  Table t = MakeUniformTable(2000, 3, 61);
  ExactEngine engine(&t);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 2);
  WorkloadConfig cfg;
  cfg.num_active = 2;
  cfg.seed = 62;
  WorkloadGenerator gen(3, cfg);
  auto queries = gen.GenerateMany(50);
  auto batch = engine.AnswerBatch(spec, queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const double single = engine.Answer(spec, queries[i]);
    if (std::isnan(single)) {
      EXPECT_TRUE(std::isnan(batch[i]));
    } else {
      EXPECT_DOUBLE_EQ(batch[i], single);
    }
  }
}

TEST(EngineTest, ParallelBatchMatchesSerial) {
  Table t = MakeUniformTable(3000, 3, 63);
  ExactEngine engine(&t);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kSum, 1);
  WorkloadConfig cfg;
  cfg.seed = 64;
  WorkloadGenerator gen(3, cfg);
  auto queries = gen.GenerateMany(64);
  auto serial = engine.AnswerBatch(spec, queries, 1);
  auto parallel = engine.AnswerBatch(spec, queries, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], parallel[i]);
  }
}

TEST(EngineTest, UniformCountMatchesExpectation) {
  // On uniform data, COUNT(c, r) ~ n * prod(r) (Sec. 3.3.3's g-hat model).
  Table t = MakeUniformTable(50000, 2, 65);
  ExactEngine engine(&t);
  QueryInstance q = QueryInstance::AxisRange({0.2, 0.3}, {0.4, 0.5});
  const double count = engine.Answer(AxisSpec(Aggregate::kCount, 0), q);
  EXPECT_NEAR(count / 50000.0, 0.4 * 0.5, 0.01);
}

TEST(EngineTest, RotatedRectPredicateWorks) {
  Table t = MakeUniformTable(20000, 2, 66);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = RotatedRectPredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  // Area w*h = 0.3*0.2 = 0.06 regardless of rotation (fully inside).
  const double phi = M_PI / 6;
  const double px = 0.4, py = 0.3, w = 0.3, h = 0.2;
  const double qx = px + std::cos(phi) * w - std::sin(phi) * h;
  const double qy = py + std::sin(phi) * w + std::cos(phi) * h;
  QueryInstance q(std::vector<double>{px, py, qx, qy, phi});
  const double count = engine.Answer(spec, q);
  EXPECT_NEAR(count / 20000.0, 0.06, 0.01);
}

}  // namespace
}  // namespace neurosketch
