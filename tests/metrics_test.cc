// Tests for the observability primitives (util/metrics.h, util/
// trace_ring.h): counter/gauge/histogram semantics, the interpolated
// percentile error bound checked property-style against exact sorted
// quantiles, the Prometheus text exposition golden format, the JSON
// writer, and the slow-query ring's exact top-K invariant under
// concurrent producers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/random.h"
#include "util/trace_ring.h"

namespace neurosketch {
namespace {

using metrics::Counter;
using metrics::Gauge;
using metrics::LogHistogram;
using metrics::MetricsRegistry;
using metrics::SlowQueryRing;
using metrics::SlowQueryTrace;

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("requests_total");
  ASSERT_NE(c, nullptr);
  c->Inc();
  c->Inc(4);
  EXPECT_EQ(c->Value(), 5u);
  // Same name returns the same object.
  EXPECT_EQ(reg.GetCounter("requests_total"), c);

  Gauge* g = reg.GetGauge("temperature");
  ASSERT_NE(g, nullptr);
  g->Set(36.5);
  EXPECT_DOUBLE_EQ(g->Value(), 36.5);
  EXPECT_EQ(reg.NumMetrics(), 2u);
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
}

// The golden format test: exact text exposition for a registry holding
// one of each kind. Histogram bucket edges are irrational powers of
// 2^(1/4), so the expected strings are built through the same public
// BucketHiUs + %.10g path the writer uses — the golden part is the line
// structure, ordering, and cumulative counts.
TEST(MetricsRegistryTest, TextExpositionGolden) {
  MetricsRegistry reg;
  reg.GetCounter("demo_requests_total", "Requests served")->Inc(3);
  reg.SetGauge("demo_temperature", 36.5);
  LogHistogram* h = reg.GetHistogram("demo_latency_us", "Answer latency");
  h->Add(10.0);
  h->Add(10.0);
  h->Add(100.0);

  const size_t b10 = 13;   // floor(4 * log2(10))
  const size_t b100 = 26;  // floor(4 * log2(100))
  const double sum = 2.0 * 0.5 *
                         (LogHistogram::BucketLoUs(b10) +
                          LogHistogram::BucketHiUs(b10)) +
                     0.5 * (LogHistogram::BucketLoUs(b100) +
                            LogHistogram::BucketHiUs(b100));
  const std::string expected =
      "# HELP demo_latency_us Answer latency\n"
      "# TYPE demo_latency_us histogram\n"
      "demo_latency_us_bucket{le=\"" +
      Num(LogHistogram::BucketHiUs(b10)) +
      "\"} 2\n"
      "demo_latency_us_bucket{le=\"" +
      Num(LogHistogram::BucketHiUs(b100)) +
      "\"} 3\n"
      "demo_latency_us_bucket{le=\"+Inf\"} 3\n"
      "demo_latency_us_sum " +
      Num(sum) +
      "\n"
      "demo_latency_us_count 3\n"
      "# HELP demo_requests_total Requests served\n"
      "# TYPE demo_requests_total counter\n"
      "demo_requests_total 3\n"
      "# TYPE demo_temperature gauge\n"
      "demo_temperature 36.5\n";
  EXPECT_EQ(reg.TextExposition(), expected);
}

TEST(MetricsRegistryTest, LabeledHistogramMergesLeIntoLabelSet) {
  MetricsRegistry reg;
  reg.GetHistogram("stage_us{stage=\"queue\"}")->Add(4.0);
  reg.GetHistogram("stage_us{stage=\"infer\"}")->Add(4.0);
  const std::string text = reg.TextExposition();
  // One TYPE header for the family, labels merged ahead of le.
  EXPECT_EQ(text.find("# TYPE stage_us histogram"),
            text.rfind("# TYPE stage_us histogram"));
  EXPECT_NE(text.find("stage_us_bucket{stage=\"queue\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("stage_us_bucket{stage=\"infer\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_us_count{stage=\"queue\"} 1"),
            std::string::npos);
}

TEST(MetricsRegistryTest, JsonCoversEveryKind) {
  MetricsRegistry reg;
  reg.GetCounter("a_total")->Inc(7);
  reg.SetGauge("b_value", 2.25);
  reg.GetHistogram("c_us")->Add(100.0);
  const std::string json = reg.Json();
  EXPECT_NE(json.find("\"a_total\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"b_value\": 2.25"), std::string::npos);
  EXPECT_NE(json.find("\"c_us\": {\"count\": 1, \"p50_us\": "),
            std::string::npos);
  EXPECT_NE(json.find("\"p999_us\": "), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, ResetAllZeroesEveryMetric) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(5);
  reg.SetGauge("g", 1.5);
  reg.GetHistogram("h")->Add(10.0);
  reg.ResetAll();
  EXPECT_EQ(reg.GetCounter("c")->Value(), 0u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("g")->Value(), 0.0);
  EXPECT_EQ(reg.GetHistogram("h")->TotalCount(), 0u);
}

TEST(LogHistogramTest, EmptyAndSingleSample) {
  LogHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.PercentileUs(50), 0.0);
  h.Add(50.0);
  // One sample: every percentile lands in its bucket.
  for (double p : {1.0, 50.0, 99.0, 99.9}) {
    const double v = h.PercentileUs(p);
    EXPECT_GE(v, LogHistogram::BucketLoUs(22));  // floor(4*log2(50)) = 22
    EXPECT_LE(v, LogHistogram::BucketHiUs(22));
  }
}

// Pins the branch-free exponent/mantissa bucketing to the formula it
// replaces: floor(kBucketsPerOctave * log2(us)), clamped to the last
// bucket, with everything <= 1 in bucket 0. Sweeps log-spaced values
// across the full range plus the sub-1 / overflow / non-finite edges
// (exact 2^(k/4) edge doubles are skipped — there the two forms may
// legitimately differ by the 1-ulp rounding of the edge constants).
TEST(LogHistogramTest, BucketIndexMatchesLog2Reference) {
  auto reference = [](double us) -> size_t {
    if (!(us > 1.0)) return 0;
    const double idx = LogHistogram::kBucketsPerOctave * std::log2(us);
    if (idx >= static_cast<double>(LogHistogram::kNumBuckets - 1)) {
      return LogHistogram::kNumBuckets - 1;
    }
    return static_cast<size_t>(idx);
  };
  auto bucket_of = [](double us) -> size_t {
    LogHistogram h;
    h.Add(us);
    for (size_t i = 0; i < LogHistogram::kNumBuckets; ++i) {
      if (h.BucketCount(i) == 1) return i;
    }
    return LogHistogram::kNumBuckets;  // unreachable: Add always lands
  };
  std::vector<double> probes = {0.0,   -3.0,  0.5,    1.0,   1.0000001,
                                1.5,   2.0,   50.0,   1e6,   1.67e7,
                                1.7e7, 1e9,   1e300,  std::nan(""),
                                std::numeric_limits<double>::infinity()};
  // 40 log-spaced probes per octave sit well clear of the 2^(k/4) edges.
  for (double exp = 0.0125; exp < 25.0; exp += 0.6125) {
    probes.push_back(std::exp2(exp));
  }
  for (double us : probes) {
    EXPECT_EQ(bucket_of(us), reference(us)) << "us = " << us;
  }
}

TEST(LogHistogramTest, CopyFromOverwrites) {
  LogHistogram a, b;
  a.Add(10.0);
  a.Add(1000.0);
  b.Add(5.0);
  b.CopyFrom(a);
  EXPECT_EQ(b.TotalCount(), 2u);
  EXPECT_NEAR(b.PercentileUs(99), a.PercentileUs(99), 1e-12);
}

// The documented error bound: with intra-bucket linear interpolation the
// reported quantile stays within one bucket of the exact sorted-sample
// quantile, i.e. within a factor 2^(1/4) — a <= ~18.9% relative error
// (down from the ~19% midpoint rule which also quantized all ranks in a
// bucket to one value). Property-checked on randomized log-uniform
// samples across four orders of magnitude.
TEST(LogHistogramTest, PercentilesMatchExactQuantilesWithinBucketError) {
  Rng rng(20260808);
  const double kMaxRelErr = std::exp2(0.25) - 1.0 + 1e-9;
  for (int trial = 0; trial < 20; ++trial) {
    LogHistogram h;
    std::vector<double> samples;
    const size_t n = 200 + static_cast<size_t>(rng.Uniform(0.0, 5000.0));
    samples.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Log-uniform over [2, 2e5]: clears the <=1us catch-all bucket.
      const double v = 2.0 * std::pow(10.0, rng.Uniform(0.0, 5.0));
      samples.push_back(v);
      h.Add(v);
    }
    std::sort(samples.begin(), samples.end());
    for (double p : {10.0, 50.0, 90.0, 95.0, 99.0, 99.9}) {
      const double rank = p / 100.0 * static_cast<double>(n);
      size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(std::ceil(rank)) - 1;
      if (idx >= n) idx = n - 1;
      const double exact = samples[idx];
      const double est = h.PercentileUs(p);
      EXPECT_LE(std::abs(est - exact) / exact, kMaxRelErr)
          << "trial " << trial << " p" << p << ": est " << est << " exact "
          << exact;
    }
  }
}

TEST(LogHistogramTest, InterpolationRecoversSubBucketResolution) {
  // 1000 identical values: every rank interpolates across the one bucket,
  // and the median lands within half a bucket of the true value — the
  // midpoint rule could do no better, but ranks now spread linearly.
  LogHistogram h;
  for (int i = 0; i < 1000; ++i) h.Add(100.0);
  EXPECT_LT(h.PercentileUs(1), h.PercentileUs(99));  // strictly increasing
  EXPECT_NEAR(h.PercentileUs(50), 100.0, 10.0);
}

TEST(SlowQueryRingTest, KeepsExactTopKSingleThreaded) {
  SlowQueryRing ring(4);
  for (int v = 1; v <= 100; ++v) {
    SlowQueryTrace t;
    t.total_us = static_cast<double>(v);
    t.store = "s";
    ring.Offer(std::move(t));
  }
  const auto kept = ring.SlowestFirst();
  ASSERT_EQ(kept.size(), 4u);
  EXPECT_DOUBLE_EQ(kept[0].total_us, 100.0);
  EXPECT_DOUBLE_EQ(kept[1].total_us, 99.0);
  EXPECT_DOUBLE_EQ(kept[2].total_us, 98.0);
  EXPECT_DOUBLE_EQ(kept[3].total_us, 97.0);
  EXPECT_DOUBLE_EQ(ring.min_kept_us(), 97.0);
}

TEST(SlowQueryRingTest, TraceFieldsSurviveIntact) {
  SlowQueryRing ring(2);
  SlowQueryTrace t;
  t.total_us = 500.0;
  t.queue_us = 300.0;
  t.assembly_us = 50.0;
  t.inference_us = 100.0;
  t.fulfill_us = 50.0;
  t.store = "taxi/avg(col 2)";
  t.tier = "int8";
  t.batch_size = 64;
  EXPECT_TRUE(ring.Offer(t));
  const auto kept = ring.SlowestFirst();
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].store, "taxi/avg(col 2)");
  EXPECT_EQ(kept[0].tier, "int8");
  EXPECT_EQ(kept[0].batch_size, 64u);
  EXPECT_DOUBLE_EQ(kept[0].queue_us + kept[0].assembly_us +
                       kept[0].inference_us + kept[0].fulfill_us,
                   kept[0].total_us);
}

TEST(SlowQueryRingTest, ZeroCapacityRejectsWithoutKeeping) {
  SlowQueryRing ring(0);
  SlowQueryTrace t;
  t.total_us = 1e9;
  EXPECT_FALSE(ring.Offer(t));
  EXPECT_EQ(ring.size(), 0u);
  // The admission threshold reads +inf, so hot paths skip trace building.
  EXPECT_GT(ring.min_kept_us(), 1e18);
}

TEST(SlowQueryRingTest, ClearRestartsAdmission) {
  SlowQueryRing ring(2);
  for (int v = 1; v <= 10; ++v) {
    SlowQueryTrace t;
    t.total_us = static_cast<double>(v);
    ring.Offer(std::move(t));
  }
  EXPECT_DOUBLE_EQ(ring.min_kept_us(), 9.0);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  SlowQueryTrace t;
  t.total_us = 1.0;  // would have been rejected before the Clear
  EXPECT_TRUE(ring.Offer(std::move(t)));
}

// The concurrency invariant the serve path depends on: with many
// producers racing distinct latencies into a capped ring, the final
// contents are EXACTLY the K slowest ever offered — the lock-free
// admission gate may only reject losers, never evict a slower entry for
// a faster one.
TEST(SlowQueryRingTest, ConcurrentProducersKeepExactTopK) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  constexpr size_t kCapacity = 16;
  const size_t total = kThreads * kPerThread;
  SlowQueryRing ring(kCapacity);
  std::vector<std::thread> producers;
  for (size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      // Thread t offers the distinct values {t+1, t+1+kThreads, ...}, so
      // the top-K is spread across producers.
      for (size_t i = 0; i < kPerThread; ++i) {
        SlowQueryTrace tr;
        tr.total_us = static_cast<double>(t + 1 + i * kThreads);
        tr.store = "s" + std::to_string(t);
        ring.Offer(std::move(tr));
      }
    });
  }
  for (auto& p : producers) p.join();

  const auto kept = ring.SlowestFirst();
  ASSERT_EQ(kept.size(), kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    EXPECT_DOUBLE_EQ(kept[i].total_us, static_cast<double>(total - i))
        << "slot " << i;
  }
}

}  // namespace
}  // namespace neurosketch
