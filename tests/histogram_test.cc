// Tests for the grid-histogram synopsis baseline.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/histogram.h"
#include "data/generators.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure;
  return spec;
}

TEST(GridHistogramTest, BuildValidation) {
  Table t = MakeUniformTable(100, 3, 1);
  EXPECT_FALSE(GridHistogram::Build(t, 9, {}).ok());  // bad measure col
  GridHistogramConfig big;
  big.bins_per_dim = 4096;  // 4096^2 = 16.7M cells > limit
  EXPECT_FALSE(GridHistogram::Build(t, 2, big).ok());
}

TEST(GridHistogramTest, CellCountAndSize) {
  Table t = MakeUniformTable(1000, 3, 2);
  GridHistogramConfig cfg;
  cfg.bins_per_dim = 8;
  auto h = GridHistogram::Build(t, 2, cfg);  // dims = {0, 1}
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h.value().num_cells(), 64u);
  EXPECT_EQ(h.value().SizeBytes(), 64u * 16);
}

TEST(GridHistogramTest, ExactOnBinAlignedRanges) {
  // Ranges aligned to bin boundaries incur no interpolation error.
  Table t = MakeUniformTable(20000, 2, 3);
  ExactEngine engine(&t);
  GridHistogramConfig cfg;
  cfg.bins_per_dim = 8;
  cfg.dims = {0};
  auto h = GridHistogram::Build(t, 1, cfg);
  ASSERT_TRUE(h.ok());
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 1);
  // [0.25, 0.75) aligns with 8-bin boundaries.
  QueryInstance q = QueryInstance::AxisRange({0.25, 0.0}, {0.5, 1.0});
  auto r = h.value().Answer(spec, q);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), engine.Answer(spec, q), 1.0);
}

TEST(GridHistogramTest, InterpolatedRangesApproximate) {
  Table t = MakeUniformTable(20000, 2, 4);
  ExactEngine engine(&t);
  GridHistogramConfig cfg;
  cfg.bins_per_dim = 32;
  auto h = GridHistogram::Build(t, 1, cfg);  // dims = {0}
  ASSERT_TRUE(h.ok());
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.candidate_attrs = {0};
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.5;
  wc.seed = 5;
  WorkloadGenerator gen(2, wc);
  for (Aggregate agg : {Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg}) {
    QueryFunctionSpec spec = AxisSpec(agg, 1);
    auto queries = gen.GenerateMany(30, &engine, &spec);
    std::vector<double> truth, pred;
    for (const auto& q : queries) {
      auto r = h.value().Answer(spec, q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      truth.push_back(engine.Answer(spec, q));
      pred.push_back(r.value());
    }
    EXPECT_LT(stats::NormalizedMae(truth, pred), 0.05) << AggregateName(agg);
  }
}

TEST(GridHistogramTest, MultiDimQueries) {
  Table t = MakeUniformTable(40000, 3, 6);
  ExactEngine engine(&t);
  GridHistogramConfig cfg;
  cfg.bins_per_dim = 16;
  auto h = GridHistogram::Build(t, 2, cfg);  // dims = {0, 1}
  ASSERT_TRUE(h.ok());
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 2);
  QueryInstance q =
      QueryInstance::AxisRange({0.2, 0.3, 0.0}, {0.4, 0.5, 1.0});
  auto r = h.value().Answer(spec, q);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value() / engine.Answer(spec, q), 1.0, 0.05);
}

TEST(GridHistogramTest, RejectsConstraintOnMeasure) {
  Table t = MakeUniformTable(1000, 2, 7);
  auto h = GridHistogram::Build(t, 1, {});  // dims = {0}
  ASSERT_TRUE(h.ok());
  // Constraining the measure column (not histogrammed) is unanswerable.
  QueryInstance q = QueryInstance::AxisRange({0.0, 0.2}, {1.0, 0.3});
  auto r = h.value().Answer(AxisSpec(Aggregate::kCount, 1), q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(GridHistogramTest, RejectsUnsupported) {
  Table t = MakeUniformTable(1000, 2, 8);
  auto h = GridHistogram::Build(t, 1, {});
  ASSERT_TRUE(h.ok());
  QueryInstance q = QueryInstance::AxisRange({0.1, 0.0}, {0.5, 1.0});
  EXPECT_FALSE(h.value().Answer(AxisSpec(Aggregate::kMedian, 1), q).ok());
  QueryFunctionSpec rot;
  rot.predicate = RotatedRectPredicate::Make();
  rot.agg = Aggregate::kCount;
  rot.measure_col = 1;
  EXPECT_FALSE(
      h.value()
          .Answer(rot, QueryInstance(std::vector<double>{0, 0, 1, 1, 0}))
          .ok());
}

TEST(GridHistogramTest, EmptyRangeSemantics) {
  Table t = MakeGaussianTable(5000, 2, 0.5, 0.05, 9);
  auto h = GridHistogram::Build(t, 1, {});
  ASSERT_TRUE(h.ok());
  // Far corner with no data: COUNT 0, AVG undefined.
  QueryInstance q = QueryInstance::AxisRange({0.95, 0.0}, {0.04, 1.0});
  auto rc = h.value().Answer(AxisSpec(Aggregate::kCount, 1), q);
  ASSERT_TRUE(rc.ok());
  EXPECT_NEAR(rc.value(), 0.0, 1.0);
  auto ra = h.value().Answer(AxisSpec(Aggregate::kAvg, 1), q);
  EXPECT_FALSE(ra.ok());
}

TEST(GridHistogramTest, FullDomainMatchesTotals) {
  Table t = MakeUniformTable(12345, 2, 10);
  auto h = GridHistogram::Build(t, 1, {});
  ASSERT_TRUE(h.ok());
  QueryInstance all = QueryInstance::AxisRange({0.0, 0.0}, {1.0, 1.0});
  auto r = h.value().Answer(AxisSpec(Aggregate::kCount, 1), all);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 12345.0, 1e-6);
  auto rs = h.value().Answer(AxisSpec(Aggregate::kSum, 1), all);
  ASSERT_TRUE(rs.ok());
  EXPECT_NEAR(rs.value(), stats::Sum(t.column(1)), 1e-6);
}

}  // namespace
}  // namespace neurosketch
