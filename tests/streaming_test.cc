// Streaming ingest + drift-driven online refresh: the concurrency/fault
// battery. Covers the DeltaBuffer publish/snapshot/trim contract, exact
// delta composition against a from-scratch scan for every aggregate, the
// RetrainLeaves bit-identity contract, leaf-granular drift attribution,
// fault-injected refreshes (exception and out-of-bound validation), the
// int8->f32->f64 tier chain during retrain, stale-calibration tier
// demotion in the refresh validation gate, NaN-probe accounting in
// DriftMonitor, base-table compaction (StreamingTable swap atomicity, the
// safe fold watermark, controller-triggered folds, bit-identity across a
// compaction), and multi-thread serve+append+refresh+compact races (run
// under TSan in CI next to shard_test/paging_test).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/drift.h"
#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "data/streaming_table.h"
#include "data/table.h"
#include "serve/delta_buffer.h"
#include "serve/refresh.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/random.h"

namespace neurosketch {
namespace {

using serve::DeltaBuffer;
using serve::RefreshController;
using serve::RefreshOptions;
using serve::RefreshOutcome;
using serve::RefreshTarget;
using serve::ServeEngine;
using serve::ServeKey;
using serve::ServeOptions;
using serve::ServeResult;
using serve::SketchStore;

QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure;
  return spec;
}

NeuroSketchConfig SmallConfig() {
  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 4;
  cfg.n_layers = 3;
  cfg.l_first = 16;
  cfg.l_rest = 8;
  cfg.train.epochs = 30;
  return cfg;
}

/// Bit-exact clone through the serialization round-trip (NeuroSketch is
/// move-only).
NeuroSketch CloneSketch(const NeuroSketch& s) {
  std::stringstream buf;
  Status st = s.SaveTo(&buf);
  EXPECT_TRUE(st.ok()) << st.ToString();
  auto loaded = NeuroSketch::LoadFrom(&buf);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  return std::move(loaded).value();
}

/// Count of `rows` matching (spec, q) — the reference delta correction.
size_t MatchCount(const std::vector<std::vector<double>>& rows,
                  const QueryFunctionSpec& spec, const QueryInstance& q) {
  size_t n = 0;
  for (const auto& r : rows) {
    if (spec.predicate->Matches(q, r.data(), r.size())) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------
// DeltaBuffer unit contract.

TEST(DeltaBufferTest, AppendSnapshotTrimKeepLogicalIndicesStable) {
  DeltaBuffer buf(2, /*chunk_rows=*/4);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.Snap().empty());
  for (int i = 0; i < 10; ++i) {
    buf.Append({static_cast<double>(i), 0.5 * i});
  }
  EXPECT_EQ(buf.size(), 10u);

  DeltaBuffer::Snapshot snap = buf.Snap();
  EXPECT_EQ(snap.begin(), 0u);
  EXPECT_EQ(snap.end(), 10u);
  size_t seen = 0;
  snap.ForEachRow(0, 100, [&](const double* row) {
    EXPECT_DOUBLE_EQ(row[0], static_cast<double>(seen));
    EXPECT_DOUBLE_EQ(row[1], 0.5 * seen);
    ++seen;
  });
  EXPECT_EQ(seen, 10u);

  // Trim drops whole chunks strictly below the watermark (chunk_rows=4):
  // upto=6 drops exactly rows [0,4).
  EXPECT_EQ(buf.Trim(6), 4u);
  EXPECT_EQ(buf.trimmed(), 4u);
  EXPECT_EQ(buf.size(), 10u);  // logical count is monotone
  DeltaBuffer::Snapshot after = buf.Snap();
  EXPECT_EQ(after.begin(), 4u);
  size_t idx = 4;
  after.ForEachRow(0, 100, [&](const double* row) {
    EXPECT_DOUBLE_EQ(row[0], static_cast<double>(idx));
    ++idx;
  });
  EXPECT_EQ(idx, 10u);

  // The pre-trim snapshot pins its chunks: trimmed rows stay readable.
  seen = 0;
  snap.ForEachRow(0, 10, [&](const double*) { ++seen; });
  EXPECT_EQ(seen, 10u);

  const auto stats = buf.Stats();
  EXPECT_EQ(stats.rows, 6u);
  EXPECT_EQ(stats.trimmed_rows, 4u);
  EXPECT_EQ(stats.appends, 10u);
}

TEST(DeltaBufferTest, ConcurrentAppendersPublishOnlyWholeRows) {
  DeltaBuffer buf(3, /*chunk_rows=*/8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&buf, w] {
      for (int i = 0; i < 400; ++i) {
        const double v = 1.0 + w * 1000 + i;
        buf.Append({v, 2.0 * v, 3.0 * v});
      }
    });
  }
  // Readers must never observe a half-written row: every published row is
  // internally consistent (release/acquire on the size).
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      DeltaBuffer::Snapshot snap = buf.Snap();
      snap.ForEachRow(snap.begin(), snap.end(), [](const double* row) {
        ASSERT_GT(row[0], 0.0);
        ASSERT_DOUBLE_EQ(row[1], 2.0 * row[0]);
        ASSERT_DOUBLE_EQ(row[2], 3.0 * row[0]);
      });
    }
  });
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(buf.size(), 1200u);
}

// ---------------------------------------------------------------------
// Composition exactness, exact path: with no sketch registered, every
// served answer over a streaming dataset must be BIT-IDENTICAL to a
// from-scratch exact scan of the appended table, for every aggregate —
// including the order-dependent ones (Welford STD, MEDIAN).

class StreamingExactSweep : public testing::TestWithParam<Aggregate> {};

TEST_P(StreamingExactSweep, ServeEqualsFromScratchScanOfAppendedTable) {
  const Aggregate agg = GetParam();
  Dataset ds = MakeGmmDataset(1200, 3, 3, /*seed=*/41);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const QueryFunctionSpec spec = AxisSpec(agg, ds.measure_col);
  ExactEngine engine(&base);

  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.4;
  wc.seed = 611 + static_cast<uint64_t>(agg);
  WorkloadGenerator gen(base.num_columns(), wc);
  const auto queries = gen.GenerateMany(30, &engine, &spec);

  // Appended rows: jittered copies of base rows, so predicates match a
  // healthy share of them.
  Rng rng(77);
  std::vector<std::vector<double>> appended;
  for (int i = 0; i < 250; ++i) {
    std::vector<double> row(base.num_columns());
    const size_t src = rng.Index(base.num_rows());
    for (size_t c = 0; c < base.num_columns(); ++c) {
      row[c] = std::clamp(base.at(src, c) + rng.Uniform(-0.05, 0.05), 0.0, 1.0);
    }
    appended.push_back(std::move(row));
  }

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", appended).ok());

  Table merged = base;
  for (const auto& r : appended) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  ServeEngine serve(&store, so);
  size_t with_delta_effect = 0;
  for (const auto& q : queries) {
    const ServeResult got = serve.Answer("gmm", spec, q);
    const double want = merged_engine.Answer(spec, q);
    EXPECT_FALSE(got.used_sketch);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got.value));
    } else {
      EXPECT_EQ(got.value, want) << AggregateName(agg);
    }
    if (want != engine.Answer(spec, q)) ++with_delta_effect;
  }
  // The sweep must actually exercise the delta, not vacuously pass.
  EXPECT_GT(with_delta_effect, 0u) << AggregateName(agg);
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, StreamingExactSweep,
    testing::Values(Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                    Aggregate::kStd, Aggregate::kMedian, Aggregate::kMin,
                    Aggregate::kMax),
    [](const testing::TestParamInfo<Aggregate>& info) {
      return AggregateName(info.param);
    });

// ---------------------------------------------------------------------
// Composition on the sketch path: decomposable aggregates stay on the
// sketch and gain an exact scalar correction; non-decomposable aggregates
// with matching unfolded rows are recomputed exactly; queries the delta
// does not touch serve the untouched sketch answer bit-for-bit.

TEST(StreamingSketchPathTest, DecomposableCorrectedNonDecomposableExact) {
  Dataset ds = MakeGmmDataset(1500, 3, 3, /*seed=*/52);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  ExactEngine engine(&base);
  const QueryFunctionSpec count_spec = AxisSpec(Aggregate::kCount, ds.measure_col);
  const QueryFunctionSpec avg_spec = AxisSpec(Aggregate::kAvg, ds.measure_col);

  NeuroSketchConfig cfg = SmallConfig();
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.seed = 7;
  WorkloadGenerator gen(base.num_columns(), wc);
  const auto train_q = gen.GenerateMany(400, &engine, &count_spec);

  auto count_sketch = NeuroSketch::Train(
      train_q, engine.AnswerBatch(count_spec, train_q), cfg);
  ASSERT_TRUE(count_sketch.ok()) << count_sketch.status().ToString();
  auto avg_sketch =
      NeuroSketch::Train(train_q, engine.AnswerBatch(avg_spec, train_q), cfg);
  ASSERT_TRUE(avg_sketch.ok()) << avg_sketch.status().ToString();

  auto count_sp = std::make_shared<const NeuroSketch>(
      std::move(count_sketch).value());
  auto avg_sp =
      std::make_shared<const NeuroSketch>(std::move(avg_sketch).value());

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", count_spec, count_sp).ok());
  ASSERT_TRUE(store.Register("gmm", avg_spec, avg_sp).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", base.num_columns()).ok());

  // Appends clustered in the middle of the domain so some queries match
  // delta rows and others provably match none.
  Rng rng(88);
  std::vector<std::vector<double>> appended;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(base.num_columns());
    for (size_t c = 0; c < base.num_columns(); ++c) {
      row[c] = rng.Uniform(0.45, 0.55);
    }
    appended.push_back(std::move(row));
  }
  ASSERT_TRUE(store.AppendRows("gmm", appended).ok());

  Table merged = base;
  for (const auto& r : appended) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);

  WorkloadConfig qc = wc;
  qc.seed = 901;
  WorkloadGenerator qgen(base.num_columns(), qc);
  const auto queries = qgen.GenerateMany(40, &engine, &count_spec);

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  ServeEngine serve(&store, so);

  size_t corrected = 0, exact_recomputed = 0, untouched = 0;
  for (const auto& q : queries) {
    const size_t matched = MatchCount(appended, count_spec, q);
    // COUNT (decomposable): serve answer == sketch answer + exact delta
    // match count, bit-for-bit, and the answer stays a sketch answer.
    const ServeResult c = serve.Answer("gmm", count_spec, q);
    EXPECT_TRUE(c.used_sketch);
    EXPECT_EQ(c.value,
              count_sp->Answer(q) + static_cast<double>(matched));
    // AVG (non-decomposable): with matching delta rows the serve answer
    // is recomputed exactly over base+delta; with none it is the sketch
    // answer untouched.
    const ServeResult a = serve.Answer("gmm", avg_spec, q);
    if (matched > 0) {
      EXPECT_FALSE(a.used_sketch);
      EXPECT_EQ(a.value, merged_engine.Answer(avg_spec, q));
      ++exact_recomputed;
      ++corrected;
    } else {
      EXPECT_TRUE(a.used_sketch);
      EXPECT_EQ(a.value, avg_sp->Answer(q));
      ++untouched;
    }
  }
  EXPECT_GT(corrected, 0u);
  EXPECT_GT(exact_recomputed, 0u);
  EXPECT_GT(untouched, 0u);

  const auto stats = serve.Snapshot();
  EXPECT_GT(stats.delta_corrected_answers, 0u);
  EXPECT_EQ(stats.delta_exact_answers, exact_recomputed);
}

// Tier coverage: the composition contract holds regardless of the active
// precision tier — the correction applies to whatever the tier answered.
TEST(StreamingSketchPathTest, CompositionHoldsOnNarrowTiers) {
  Dataset ds = MakeGmmDataset(1200, 3, 3, /*seed=*/53);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  ExactEngine engine(&base);
  const QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, ds.measure_col);

  WorkloadConfig wc;
  wc.num_active = 2;
  wc.seed = 8;
  WorkloadGenerator gen(base.num_columns(), wc);
  const auto train_q = gen.GenerateMany(400, &engine, &spec);
  const auto train_a = engine.AnswerBatch(spec, train_q);

  for (PlanPrecision req : {PlanPrecision::kF32, PlanPrecision::kInt8}) {
    NeuroSketchConfig cfg = SmallConfig();
    cfg.plan_precision = req;
    auto sk = NeuroSketch::Train(train_q, train_a, cfg);
    ASSERT_TRUE(sk.ok()) << sk.status().ToString();
    auto sp = std::make_shared<const NeuroSketch>(std::move(sk).value());

    SketchStore store;
    ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
    ASSERT_TRUE(store.Register("gmm", spec, sp).ok());
    ASSERT_TRUE(store.EnableStreaming("gmm", base.num_columns()).ok());
    std::vector<std::vector<double>> appended;
    Rng rng(99);
    for (int i = 0; i < 120; ++i) {
      std::vector<double> row(base.num_columns());
      for (size_t c = 0; c < base.num_columns(); ++c) {
        row[c] = rng.Uniform(0.4, 0.6);
      }
      appended.push_back(std::move(row));
    }
    ASSERT_TRUE(store.AppendRows("gmm", appended).ok());

    ServeOptions so;
    so.num_shards = 1;
    so.batch_window_us = 0.0;
    ServeEngine serve(&store, so);
    WorkloadConfig qc = wc;
    qc.seed = 902;
    WorkloadGenerator qgen(base.num_columns(), qc);
    for (const auto& q : qgen.GenerateMany(20, &engine, &spec)) {
      const ServeResult got = serve.Answer("gmm", spec, q);
      EXPECT_TRUE(got.used_sketch);
      EXPECT_EQ(got.value,
                sp->Answer(q) + static_cast<double>(
                                    MatchCount(appended, spec, q)))
          << "tier=" << PlanPrecisionName(sp->plan_precision());
    }
  }
}

// ---------------------------------------------------------------------
// RetrainLeaves bit-identity: retraining leaf L alone must produce exactly
// the parameters a retrain of ALL leaves (same fixed partition, same data)
// produces for L, and must leave every other leaf's answers untouched
// bit-for-bit. SizeBytes() == Save() stays pinned.

TEST(RetrainLeavesTest, PartialRetrainBitIdenticalAndPreservesUntouched) {
  Dataset ds = MakeGmmDataset(1500, 3, 3, /*seed=*/61);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  ExactEngine engine(&base);
  const QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, ds.measure_col);
  NeuroSketchConfig cfg = SmallConfig();

  WorkloadConfig wc;
  wc.num_active = 2;
  wc.seed = 9;
  WorkloadGenerator gen(base.num_columns(), wc);
  const auto train_q = gen.GenerateMany(400, &engine, &spec);
  auto trained =
      NeuroSketch::Train(train_q, engine.AnswerBatch(spec, train_q), cfg);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  NeuroSketch original = std::move(trained).value();
  ASSERT_GE(original.num_partitions(), 2u);

  // New data: append shifted rows, rebuild the training answers.
  Table merged = base;
  Rng rng(62);
  for (int i = 0; i < 400; ++i) {
    std::vector<double> row(base.num_columns());
    for (size_t c = 0; c < base.num_columns(); ++c) row[c] = rng.Uniform();
    ASSERT_TRUE(merged.AppendRow(row).ok());
  }
  ExactEngine merged_engine(&merged);
  const auto new_a = merged_engine.AnswerBatch(spec, train_q);

  NeuroSketch partial = CloneSketch(original);
  NeuroSketch full = CloneSketch(original);
  std::vector<int> all_leaves;
  for (size_t i = 0; i < original.num_partitions(); ++i) {
    all_leaves.push_back(static_cast<int>(i));
  }
  const std::vector<int> subset = {all_leaves.front()};
  ASSERT_TRUE(partial.RetrainLeaves(subset, train_q, new_a, cfg).ok());
  ASSERT_TRUE(full.RetrainLeaves(all_leaves, train_q, new_a, cfg).ok());

  WorkloadConfig pc = wc;
  pc.seed = 63;
  WorkloadGenerator pgen(base.num_columns(), pc);
  size_t on_subset = 0, off_subset = 0;
  for (const auto& q : pgen.GenerateMany(200, &engine, &spec)) {
    const auto* leaf = original.tree().Route(q);
    ASSERT_NE(leaf, nullptr);
    if (leaf->leaf_id == subset.front()) {
      // Retrained leaf: bit-identical to the all-leaves retrain (per-leaf
      // training is independent given the fixed partition).
      EXPECT_EQ(partial.Answer(q), full.Answer(q));
      ++on_subset;
    } else {
      // Untouched leaf: bit-identical to the original.
      EXPECT_EQ(partial.Answer(q), original.Answer(q));
      ++off_subset;
    }
  }
  EXPECT_GT(on_subset, 0u);
  EXPECT_GT(off_subset, 0u);

  // Storage-accounting invariant survives the partial retrain.
  const std::string path = "streaming_retrain_size_check.nsk";
  ASSERT_TRUE(partial.Save(path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ASSERT_TRUE(in.good());
  EXPECT_EQ(static_cast<size_t>(in.tellg()), partial.SizeBytes());
  in.close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Drift scenario shared by the attribution and fault-injection tests: a
// trained COUNT sketch plus appended rows constructed to match probes of
// exactly ONE kd-tree leaf.

struct DriftScenario {
  Table base;
  std::unique_ptr<ExactEngine> engine;
  QueryFunctionSpec spec;
  NeuroSketchConfig cfg;
  std::vector<QueryInstance> train_q;
  std::vector<QueryInstance> probes;
  std::shared_ptr<const NeuroSketch> sketch;
  DriftPolicy policy;
  int target_leaf = -1;
  std::vector<std::vector<double>> drift_rows;  // expanded (with copies)

  /// Built once and shared read-only: training the sketch is the
  /// expensive step and five tests consume the same scenario (each builds
  /// its own store / serve engine / controller on top).
  static const DriftScenario& Shared() {
    static std::unique_ptr<DriftScenario> s = Make();
    return *s;
  }

  static std::unique_ptr<DriftScenario> Make() {
    auto s = std::make_unique<DriftScenario>();
    Dataset ds = MakeGmmDataset(1500, 3, 3, /*seed=*/91);
    s->base = Normalizer::Fit(ds.table).Transform(ds.table);
    s->engine = std::make_unique<ExactEngine>(&s->base);
    s->spec = AxisSpec(Aggregate::kCount, ds.measure_col);
    s->cfg = SmallConfig();
    s->cfg.n_layers = 4;
    s->cfg.l_first = 32;
    s->cfg.l_rest = 16;
    s->cfg.train.epochs = 150;

    WorkloadConfig wc;
    wc.num_active = 3;  // every attribute active: probe boxes are compact
    wc.range_frac_lo = 0.3;
    wc.range_frac_hi = 0.6;
    wc.seed = 17;
    WorkloadGenerator gen(s->base.num_columns(), wc);
    s->train_q = gen.GenerateMany(800, s->engine.get(), &s->spec);
    auto trained = NeuroSketch::Train(
        s->train_q, s->engine->AnswerBatch(s->spec, s->train_q), s->cfg);
    EXPECT_TRUE(trained.ok()) << trained.status().ToString();
    s->sketch =
        std::make_shared<const NeuroSketch>(std::move(trained).value());
    EXPECT_GE(s->sketch->num_partitions(), 2u);

    WorkloadConfig pc = wc;
    pc.seed = 29;
    WorkloadGenerator pgen(s->base.num_columns(), pc);
    s->probes = pgen.GenerateMany(120, s->engine.get(), &s->spec);

    // Route the probes; pick the best-covered leaf as the drift target.
    std::map<int, std::vector<size_t>> by_leaf;
    for (size_t i = 0; i < s->probes.size(); ++i) {
      const auto* leaf = s->sketch->tree().Route(s->probes[i]);
      if (leaf != nullptr) by_leaf[leaf->leaf_id].push_back(i);
    }
    for (const auto& [id, members] : by_leaf) {
      if (s->target_leaf < 0 ||
          members.size() > by_leaf[s->target_leaf].size()) {
        s->target_leaf = id;
      }
    }
    EXPECT_GE(by_leaf[s->target_leaf].size(), 3u);

    // Policy: bound well above the trained baseline, well below the
    // injected drift. The scenario is only valid if the fresh sketch
    // clears the bound with margin on every leaf — assert it loudly so a
    // training regression fails here, not in a downstream refresh test.
    s->policy.max_normalized_mae = 0.5;
    s->policy.min_probes = 10;
    s->policy.min_leaf_probes = 3;
    const std::vector<double> base_truth =
        s->engine->AnswerBatch(s->spec, s->probes);
    const DriftReport baseline =
        DriftMonitor(s->spec, s->probes, s->policy)
            .CheckAgainst(*s->sketch, base_truth);
    EXPECT_LT(baseline.normalized_mae, 0.3)
        << "fresh sketch too inaccurate for a drift scenario";
    for (const LeafDrift& l : baseline.per_leaf) {
      EXPECT_LT(l.normalized_mae, 0.4) << "leaf " << l.leaf_id;
    }

    // Drift rows: a smooth distribution shift confined to ONE leaf. Seed
    // points are centers of target-leaf probe boxes; the appended cloud is
    // Gaussian noise around them, reject-sampled so no row matches a probe
    // routed to any other leaf — drift attribution has a unique ground
    // truth, and the drifted count surface stays smooth enough for the
    // partial retrain to fit back inside the policy bound. The cloud is
    // sized by accumulated match mass: when the added matches reach 3x the
    // baseline truth mass S, the post-drift normalized MAE is at least
    // 3S / (S + 3S) = 0.75 against the 0.5 bound, by construction.
    double truth_mass = 0.0;
    for (double t : base_truth) {
      if (!std::isnan(t)) truth_mass += std::abs(t);
    }
    const size_t d = s->base.num_columns();
    std::vector<std::vector<double>> centers;
    for (const size_t pi : by_leaf[s->target_leaf]) {
      const QueryInstance& p = s->probes[pi];
      std::vector<double> row(d);
      for (size_t c = 0; c < d; ++c) {
        row[c] = std::clamp(p.q[c] + 0.5 * p.q[d + c], 0.0, 1.0);
      }
      bool clean = true;
      for (const auto& [id, members] : by_leaf) {
        if (id == s->target_leaf) continue;
        for (const size_t oi : members) {
          if (s->spec.predicate->Matches(s->probes[oi], row.data(), d)) {
            clean = false;
            break;
          }
        }
        if (!clean) break;
      }
      if (clean) centers.push_back(std::move(row));
      if (centers.size() >= 3) break;
    }
    EXPECT_FALSE(centers.empty()) << "no isolatable drift row found";
    if (centers.empty()) return s;
    const std::vector<size_t>& target_probes = by_leaf[s->target_leaf];
    Rng noise(777);
    double added_mass = 0.0;
    const double goal = 3.0 * std::max(truth_mass, 1.0);
    for (size_t iter = 0; added_mass < goal && iter < 2000000; ++iter) {
      const std::vector<double>& center = centers[iter % centers.size()];
      std::vector<double> row(d);
      for (size_t c = 0; c < d; ++c) {
        row[c] = std::clamp(center[c] + noise.Normal(0.0, 0.08), 0.0, 1.0);
      }
      bool clean = true;
      for (const auto& [id, members] : by_leaf) {
        if (id == s->target_leaf) continue;
        for (const size_t oi : members) {
          if (s->spec.predicate->Matches(s->probes[oi], row.data(), d)) {
            clean = false;
            break;
          }
        }
        if (!clean) break;
      }
      if (!clean) continue;
      size_t matched = 0;
      for (const size_t pi : target_probes) {
        if (s->spec.predicate->Matches(s->probes[pi], row.data(), d)) {
          ++matched;
        }
      }
      if (matched == 0) continue;  // harmless but useless: skip
      added_mass += static_cast<double>(matched);
      s->drift_rows.push_back(std::move(row));
    }
    EXPECT_GE(added_mass, goal) << "drift cloud could not reach the "
                                   "target match mass";
    return s;
  }

  RefreshTarget Target() const {
    // Train queries include the probes so a retrained leaf can actually
    // fit the drifted targets the validation gate re-checks.
    std::vector<QueryInstance> tq = train_q;
    tq.insert(tq.end(), probes.begin(), probes.end());
    return RefreshTarget{"gmm", DriftMonitor(spec, probes, policy), cfg,
                         std::move(tq)};
  }
};

TEST(DriftAttributionTest, InjectedShiftFlagsOnlyTheTouchedLeaf) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());

  // Baseline: no drift recommended on the unchanged data.
  DriftMonitor monitor(s->spec, s->probes, s->policy);
  const DriftReport before = monitor.Check(*s->sketch, *s->engine);
  EXPECT_TRUE(before.conclusive);
  EXPECT_FALSE(before.retrain_recommended)
      << "baseline normalized MAE " << before.normalized_mae;

  Table merged = s->base;
  for (const auto& r : s->drift_rows) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);
  const DriftReport after = monitor.Check(*s->sketch, merged_engine);
  EXPECT_TRUE(after.conclusive);
  EXPECT_TRUE(after.retrain_recommended);
  EXPECT_GT(after.normalized_mae, s->policy.max_normalized_mae);
  const std::vector<int> stale = after.StaleLeaves();
  ASSERT_EQ(stale.size(), 1u) << "drift bled outside the injected leaf";
  EXPECT_EQ(stale.front(), s->target_leaf);
}

TEST(RefreshTest, RefreshRetrainsOnlyFlaggedLeafAndSwapsAtomically) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", s->drift_rows).ok());

  RefreshOptions ro;
  ro.probe_threads = 0;  // hardware concurrency; batch results are thread-count invariant
  RefreshController ctrl(&store, nullptr, ro);
  ctrl.AddTarget(s->Target());

  const ServeKey key = ServeKey::From("gmm", s->spec);
  const auto old_sketch = store.Lookup(key);
  auto res = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  const RefreshOutcome out = res.value();
  EXPECT_TRUE(out.probed);
  EXPECT_TRUE(out.retrained);
  EXPECT_TRUE(out.swapped) << out.message;
  EXPECT_FALSE(out.failed);
  ASSERT_EQ(out.stale_leaves.size(), 1u);
  EXPECT_EQ(out.stale_leaves.front(), s->target_leaf);
  EXPECT_EQ(out.retrained_leaves, 1u);
  EXPECT_GT(out.pre_mae, s->policy.max_normalized_mae);
  EXPECT_LE(out.post_mae, s->policy.max_normalized_mae);

  // The swap landed: a new version serves, the old one is still pinned
  // and usable by in-flight readers.
  const auto view = store.LookupServed(key);
  ASSERT_NE(view.sketch, nullptr);
  EXPECT_NE(view.sketch.get(), old_sketch.get());
  ASSERT_NE(view.leaf_folded, nullptr);
  ASSERT_EQ(view.leaf_folded->size(), view.sketch->num_partitions());
  for (size_t i = 0; i < view.leaf_folded->size(); ++i) {
    if (static_cast<int>(i) == s->target_leaf) {
      EXPECT_EQ((*view.leaf_folded)[i], s->drift_rows.size());
    } else {
      EXPECT_EQ((*view.leaf_folded)[i], 0u);
    }
  }

  // Only the flagged leaf changed: probes routed elsewhere answer
  // bit-identically on old and new versions.
  size_t checked = 0;
  for (const auto& p : s->probes) {
    const auto* leaf = old_sketch->tree().Route(p);
    ASSERT_NE(leaf, nullptr);
    if (leaf->leaf_id == s->target_leaf) continue;
    if (view.sketch->plan_precision() == PlanPrecision::kF64) {
      EXPECT_EQ(view.sketch->Answer(p), old_sketch->Answer(p));
    } else {
      // Env-forced narrow tiers re-calibrate/re-validate the whole
      // sketch over the refresh workload, so compiled narrow answers
      // may shift on every leaf; the untouched leaves' trainable f64
      // parameters must not — the scalar path pins that.
      EXPECT_EQ(view.sketch->AnswerScalar(p), old_sketch->AnswerScalar(p));
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);

  const auto stats = ctrl.Stats();
  EXPECT_EQ(stats.runs, 1u);
  EXPECT_EQ(stats.swaps, 1u);
  EXPECT_EQ(stats.retrained_leaves, 1u);
  EXPECT_EQ(stats.failures, 0u);
}

// ---------------------------------------------------------------------
// Fault injection: a refresh that throws must leave the old version
// serving and count a failure; a streak demotes the store to exact.

TEST(RefreshTest, ThrowingRefreshLeavesOldVersionServingThenDemotes) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", s->drift_rows).ok());

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  ServeEngine serve(&store, so);

  RefreshOptions ro;
  ro.probe_threads = 0;  // hardware concurrency; batch results are thread-count invariant
  ro.max_failures_before_demote = 2;
  RefreshController ctrl(&store, &serve, ro);
  ctrl.AddTarget(s->Target());
  ctrl.SetFaultHook(
      [](NeuroSketch*) { throw std::runtime_error("injected fault"); });

  const ServeKey key = ServeKey::From("gmm", s->spec);
  const auto old_sketch = store.Lookup(key);

  auto r1 = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1.value().failed);
  EXPECT_FALSE(r1.value().swapped);
  EXPECT_FALSE(r1.value().demoted);
  EXPECT_EQ(ctrl.Stats().failures, 1u);
  // Old version still serving, answers unchanged.
  EXPECT_EQ(store.Lookup(key).get(), old_sketch.get());
  {
    const ServeResult got = serve.Answer("gmm", s->spec, s->probes.front());
    EXPECT_TRUE(got.used_sketch);
    EXPECT_EQ(got.value,
              old_sketch->Answer(s->probes.front()) +
                  static_cast<double>(MatchCount(s->drift_rows, s->spec,
                                                 s->probes.front())));
  }

  // Second failure crosses the streak: the store demotes to exact.
  auto r2 = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE(r2.value().failed);
  EXPECT_TRUE(r2.value().demoted);
  EXPECT_EQ(ctrl.Stats().failures, 2u);
  EXPECT_EQ(ctrl.Stats().demotions, 1u);

  // Demoted serving is exact over base+delta (fresh answers, no sketch).
  Table merged = s->base;
  for (const auto& r : s->drift_rows) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);
  for (size_t i = 0; i < 5; ++i) {
    const ServeResult got = serve.Answer("gmm", s->spec, s->probes[i]);
    EXPECT_FALSE(got.used_sketch);
    EXPECT_EQ(got.value, merged_engine.Answer(s->spec, s->probes[i]));
  }
  const auto stats = serve.Snapshot();
  EXPECT_GE(stats.budget_trips, 1u);
  bool found = false;
  for (const auto& ss : stats.per_store) {
    if (ss.store.rfind("gmm/", 0) == 0) {
      EXPECT_TRUE(ss.demoted);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RefreshTest, OutOfBoundRetrainIsRejectedNotSwapped) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", s->drift_rows).ok());

  RefreshOptions ro;
  ro.probe_threads = 0;  // hardware concurrency; batch results are thread-count invariant
  RefreshController ctrl(&store, nullptr, ro);
  ctrl.AddTarget(s->Target());
  // The hook corrupts the retrained copy: every leaf re-fit against
  // garbage targets, so the validation gate must reject the swap.
  ctrl.SetFaultHook([s](NeuroSketch* sk) {
    std::vector<int> all;
    for (size_t i = 0; i < sk->num_partitions(); ++i) {
      all.push_back(static_cast<int>(i));
    }
    std::vector<double> garbage(s->train_q.size(), 1e9);
    const Status st = sk->RetrainLeaves(all, s->train_q, garbage, s->cfg);
    ASSERT_TRUE(st.ok()) << st.ToString();
  });

  const ServeKey key = ServeKey::From("gmm", s->spec);
  const auto old_sketch = store.Lookup(key);
  auto res = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().retrained);
  EXPECT_TRUE(res.value().failed);
  EXPECT_FALSE(res.value().swapped);
  EXPECT_GT(res.value().post_mae, s->policy.max_normalized_mae);
  EXPECT_NE(res.value().message.find("out of bound"), std::string::npos)
      << res.value().message;
  EXPECT_EQ(store.Lookup(key).get(), old_sketch.get());
  EXPECT_EQ(ctrl.Stats().failures, 1u);
  EXPECT_EQ(ctrl.Stats().swaps, 0u);
}

// The int8 -> f32 -> f64 validation chain during retrain: impossible
// narrow-tier bounds must fall back down the chain, not fail the refresh.
TEST(RefreshTest, RetrainTierChainFallsBackWithoutFailing) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());

  // Rebuild the deployed sketch with an int8 request so it carries a
  // narrow tier into the refresh.
  NeuroSketchConfig cfg = s->cfg;
  cfg.plan_precision = PlanPrecision::kInt8;
  auto trained = NeuroSketch::Train(
      s->train_q, s->engine->AnswerBatch(s->spec, s->train_q), cfg);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  auto sp = std::make_shared<const NeuroSketch>(std::move(trained).value());

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, sp).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", s->drift_rows).ok());

  RefreshOptions ro;
  ro.probe_threads = 0;  // hardware concurrency; batch results are thread-count invariant
  RefreshController ctrl(&store, nullptr, ro);
  RefreshTarget target = s->Target();
  // Unachievable narrow-tier bounds: the retrain's re-validation must
  // chain int8 -> f32 -> f64 and still swap successfully.
  target.config.plan_precision = PlanPrecision::kInt8;
  target.config.int8_error_bound = 0.0;
  target.config.f32_error_bound = 0.0;
  ctrl.AddTarget(std::move(target));

  auto res = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().swapped) << res.value().message;
  EXPECT_FALSE(res.value().failed);
  const auto view = store.LookupServed(ServeKey::From("gmm", s->spec));
  ASSERT_NE(view.sketch, nullptr);
  EXPECT_EQ(view.sketch->plan_precision(), PlanPrecision::kF64);
  EXPECT_FALSE(view.sketch->has_f32_plans());
  EXPECT_FALSE(view.sketch->has_int8_plans());
}

// ---------------------------------------------------------------------
// DriftMonitor NaN accounting: probes whose exact answer is undefined are
// counted, not silently dropped, and an all-NaN probe set must yield an
// inconclusive report with no retrain recommendation.

TEST(DriftMonitorTest, AllNaNProbesAreCountedAndInconclusive) {
  const DriftScenario* s = &DriftScenario::Shared();
  DriftMonitor monitor(s->spec, s->probes, s->policy);

  // Degenerate truth: every probe undefined.
  const std::vector<double> all_nan(s->probes.size(),
                                    std::nan(""));
  const DriftReport r = monitor.CheckAgainst(*s->sketch, all_nan);
  EXPECT_EQ(r.probes_used, 0u);
  EXPECT_EQ(r.probes_skipped, s->probes.size());
  EXPECT_FALSE(r.conclusive);
  EXPECT_FALSE(r.retrain_recommended);
  EXPECT_TRUE(r.per_leaf.empty());
  EXPECT_TRUE(r.StaleLeaves().empty());

  // Same through the engine path: AVG over an empty table is NaN for
  // every probe.
  Table empty(s->base.schema());
  ExactEngine empty_engine(&empty);
  const QueryFunctionSpec avg = AxisSpec(Aggregate::kAvg, s->spec.measure_col);
  DriftMonitor avg_monitor(avg, s->probes, s->policy);
  const DriftReport re = avg_monitor.Check(*s->sketch, empty_engine);
  EXPECT_EQ(re.probes_used, 0u);
  EXPECT_EQ(re.probes_skipped, s->probes.size());
  EXPECT_FALSE(re.conclusive);
  EXPECT_FALSE(re.retrain_recommended);
}

// ---------------------------------------------------------------------
// The 8-thread race: concurrent submitters, appenders, a background
// refresh loop, and a stats scraper. Run under TSan in CI. Correctness
// here is absence of data races plus conservation of the counters.

TEST(StreamingRaceTest, ServeAppendRefreshSnapshotConcurrently) {
  const DriftScenario* s = &DriftScenario::Shared();
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  const QueryFunctionSpec avg = AxisSpec(Aggregate::kAvg, s->spec.measure_col);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.seed = 404;
  WorkloadGenerator gen(s->base.num_columns(), wc);
  const auto avg_train = gen.GenerateMany(300, s->engine.get(), &avg);
  auto avg_trained = NeuroSketch::Train(
      avg_train, s->engine->AnswerBatch(avg, avg_train), s->cfg);
  ASSERT_TRUE(avg_trained.ok());
  ASSERT_TRUE(store
                  .Register("gmm", avg,
                            std::make_shared<const NeuroSketch>(
                                std::move(avg_trained).value()))
                  .ok());

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 20.0;
  ServeEngine serve(&store, so);

  RefreshOptions ro;
  ro.interval_ms = 5;
  ro.probe_threads = 0;  // hardware concurrency; batch results are thread-count invariant
  RefreshController ctrl(&store, &serve, ro);
  ctrl.AddTarget(s->Target());
  ctrl.Start();

  constexpr int kQueriesPerThread = 150;
  std::atomic<size_t> submitted{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  // 4 submitters (2 per spec): answers must always be finite — the delta
  // path composes exactly, so no NaN can appear for COUNT, and AVG
  // queries were generated with min_matches >= 1 on the base table.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const QueryFunctionSpec& spec = (t % 2 == 0) ? s->spec : avg;
      WorkloadConfig qc;
      qc.num_active = 2;
      qc.seed = 500 + t;
      WorkloadGenerator qgen(s->base.num_columns(), qc);
      auto qs = qgen.GenerateMany(kQueriesPerThread, s->engine.get(), &spec);
      for (auto& q : qs) {
        const ServeResult r = serve.Answer("gmm", spec, std::move(q));
        ASSERT_TRUE(std::isfinite(r.value));
        submitted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // 2 appenders: drift rows plus benign jittered rows.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(600 + t);
      for (int i = 0; i < 400; ++i) {
        if (t == 0 && !s->drift_rows.empty()) {
          ASSERT_TRUE(
              store.Append("gmm", s->drift_rows[i % s->drift_rows.size()])
                  .ok());
        } else {
          std::vector<double> row(s->base.num_columns());
          for (auto& v : row) v = rng.Uniform();
          ASSERT_TRUE(store.Append("gmm", row).ok());
        }
      }
    });
  }
  // 1 old-version pinner: holds the original shared_ptr across swaps and
  // keeps answering on it — refresh must never invalidate it.
  threads.emplace_back([&] {
    const auto pinned = s->sketch;
    size_t i = 0;
    while (!done.load(std::memory_order_acquire)) {
      const double v = pinned->Answer(s->probes[i % s->probes.size()]);
      ASSERT_TRUE(std::isfinite(v));
      ++i;
    }
  });
  // 1 scraper: snapshots, delta stats, refresh stats, metric export.
  threads.emplace_back([&] {
    metrics::MetricsRegistry registry;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = serve.Snapshot();
      ASSERT_LE(snap.fallback_answers + snap.sketch_answers +
                    snap.failed_answers,
                snap.queries + so.num_shards * so.max_batch);
      (void)store.DeltaStats();
      (void)ctrl.Stats();
      serve.ExportMetrics(&registry);
      ctrl.ExportMetrics(&registry);
      std::this_thread::yield();
    }
  });

  for (size_t t = 0; t < 6; ++t) threads[t].join();  // submitters+appenders
  done.store(true, std::memory_order_release);
  threads[6].join();
  threads[7].join();
  ctrl.Stop();

  EXPECT_EQ(submitted.load(), 4u * kQueriesPerThread);
  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries, 4u * kQueriesPerThread);
  EXPECT_EQ(stats.queries,
            stats.sketch_answers + stats.fallback_answers +
                stats.failed_answers);
  EXPECT_EQ(stats.failed_answers, 0u);
  const auto dstats = store.DeltaStats();
  ASSERT_EQ(dstats.size(), 1u);
  EXPECT_EQ(dstats[0].second.rows, 800u);
  EXPECT_GE(ctrl.Stats().runs, 1u);
}

// ---------------------------------------------------------------------
// DeltaBuffer counter semantics: `appends` counts writer CALLS (one per
// Append and one per AppendRows regardless of batch size) and
// `rows_appended` counts rows accepted across all calls. The two used to
// disagree (Append bumped per row, AppendRows per batch); this pins the
// contract.

TEST(DeltaBufferTest, AppendCountersCountCallsAndRowsSeparately) {
  DeltaBuffer buf(2, /*chunk_rows=*/4);
  for (int i = 0; i < 3; ++i) buf.Append({1.0 * i, 2.0 * i});
  auto stats = buf.Stats();
  EXPECT_EQ(stats.appends, 3u);
  EXPECT_EQ(stats.rows_appended, 3u);

  buf.AppendRows({{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}});
  stats = buf.Stats();
  EXPECT_EQ(stats.appends, 4u);  // one call, five rows
  EXPECT_EQ(stats.rows_appended, 8u);
  EXPECT_EQ(stats.rows, 8u);

  buf.AppendRows({});  // an empty batch is still one call
  stats = buf.Stats();
  EXPECT_EQ(stats.appends, 5u);
  EXPECT_EQ(stats.rows_appended, 8u);
  EXPECT_EQ(buf.size(), 8u);
}

// Trim(upto) is a logical watermark, not a keep-count: whole chunks
// strictly below it drop, anything it lands inside survives. Boundary
// cases: exactly ON a chunk edge drops the chunk; one PAST the edge does
// not touch the next chunk.
TEST(DeltaBufferTest, TrimBoundariesAreChunkGranular) {
  DeltaBuffer buf(1, /*chunk_rows=*/4);
  for (int i = 0; i < 8; ++i) buf.Append({static_cast<double>(i)});

  EXPECT_EQ(buf.Trim(3), 0u);  // watermark inside chunk [0,4): keep it
  EXPECT_EQ(buf.trimmed(), 0u);
  EXPECT_EQ(buf.Trim(4), 4u);  // exactly on the edge: [0,4) drops
  EXPECT_EQ(buf.trimmed(), 4u);
  EXPECT_EQ(buf.Trim(5), 0u);  // one past the edge: [4,8) survives whole
  EXPECT_EQ(buf.trimmed(), 4u);

  DeltaBuffer::Snapshot snap = buf.Snap();
  EXPECT_EQ(snap.begin(), 4u);
  EXPECT_EQ(snap.end(), 8u);
  size_t idx = 4;
  snap.ForEachRow(snap.begin(), snap.end(), [&](const double* row) {
    EXPECT_DOUBLE_EQ(row[0], static_cast<double>(idx));
    ++idx;
  });
  EXPECT_EQ(idx, 8u);

  EXPECT_EQ(buf.Trim(100), 4u);  // clamped to the published size
  EXPECT_EQ(buf.trimmed(), 8u);
  EXPECT_EQ(buf.Stats().rows, 0u);
}

// ---------------------------------------------------------------------
// StreamingTable: the swappable (table, fold watermark) pair compaction
// publishes through.

TEST(StreamingTableTest, PinSwapEnforcesPrefixExtension) {
  Schema schema;
  schema.columns = {"a", "b"};
  Table base(schema);
  ASSERT_TRUE(base.AppendRow({1, 2}).ok());
  ASSERT_TRUE(base.AppendRow({3, 4}).ok());
  StreamingTable table(base);
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.folded(), 0u);

  const auto v0 = table.Pin();
  EXPECT_EQ(v0->table.num_rows(), 2u);
  EXPECT_EQ(v0->folded, 0u);

  Table next = v0->table;
  ASSERT_TRUE(next.AppendRow({5, 6}).ok());
  ASSERT_TRUE(table.Swap(next, 1).ok());
  EXPECT_EQ(table.folded(), 1u);
  const auto v1 = table.Pin();
  EXPECT_EQ(v1->table.num_rows(), 3u);
  EXPECT_EQ(v1->folded, 1u);
  // The pre-swap pin stays alive and untouched across the swap.
  EXPECT_EQ(v0->table.num_rows(), 2u);
  EXPECT_EQ(v0->folded, 0u);

  // The fold watermark can never move backwards...
  EXPECT_FALSE(table.Swap(v1->table, 0).ok());
  // ...the column count can never change...
  Schema narrow;
  narrow.columns = {"a"};
  EXPECT_FALSE(table.Swap(Table(narrow), 2).ok());
  // ...but republishing at the same watermark is legal.
  EXPECT_TRUE(table.Swap(v1->table, 1).ok());
  EXPECT_EQ(table.folded(), 1u);
}

// ---------------------------------------------------------------------
// Compaction, exact path: with no sketches registered the safe watermark
// is the whole delta, so Compact folds every row into the table and trims.
// Every served answer must be bit-identical to a from-scratch scan of the
// full logical table before, across, and after the compaction — for every
// aggregate, including the order-dependent ones.

class CompactionExactSweep : public testing::TestWithParam<Aggregate> {};

TEST_P(CompactionExactSweep, AnswersBitIdenticalAcrossCompaction) {
  const Aggregate agg = GetParam();
  Dataset ds = MakeGmmDataset(1000, 3, 3, /*seed=*/43);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const QueryFunctionSpec spec = AxisSpec(agg, ds.measure_col);
  StreamingTable table(base);
  ExactEngine engine(&table);

  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.4;
  wc.seed = 711 + static_cast<uint64_t>(agg);
  WorkloadGenerator gen(base.num_columns(), wc);
  const auto queries = gen.GenerateMany(25, &engine, &spec);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(
      store.EnableStreaming("gmm", base.num_columns(), /*chunk_rows=*/64)
          .ok());
  ASSERT_TRUE(store.AttachStreamingTable("gmm", &table).ok());

  Rng rng(78);
  auto jittered_row = [&] {
    std::vector<double> row(base.num_columns());
    const size_t src = rng.Index(base.num_rows());
    for (size_t c = 0; c < base.num_columns(); ++c) {
      row[c] = std::clamp(base.at(src, c) + rng.Uniform(-0.05, 0.05), 0.0, 1.0);
    }
    return row;
  };
  std::vector<std::vector<double>> first_batch;
  for (int i = 0; i < 256; ++i) first_batch.push_back(jittered_row());
  ASSERT_TRUE(store.AppendRows("gmm", first_batch).ok());

  Table merged = base;
  for (const auto& r : first_batch) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  ServeEngine serve(&store, so);

  std::vector<double> before;
  for (const auto& q : queries) {
    const ServeResult got = serve.Answer("gmm", spec, q);
    EXPECT_FALSE(got.used_sketch);
    before.push_back(got.value);
  }

  // Exact-only dataset: everything folds, and 256 is chunk-aligned so
  // everything trims too.
  auto res = store.Compact("gmm");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res.value().compacted);
  EXPECT_EQ(res.value().safe, first_batch.size());
  EXPECT_EQ(res.value().folded_rows, first_batch.size());
  EXPECT_EQ(res.value().trimmed_rows, first_batch.size());
  EXPECT_EQ(table.folded(), first_batch.size());
  EXPECT_EQ(store.Delta("gmm")->Stats().rows, 0u);
  EXPECT_EQ(table.Pin()->table.num_rows(),
            base.num_rows() + first_batch.size());

  for (size_t i = 0; i < queries.size(); ++i) {
    const ServeResult got = serve.Answer("gmm", spec, queries[i]);
    const double want = merged_engine.Answer(spec, queries[i]);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(before[i]));
      EXPECT_TRUE(std::isnan(got.value));
    } else {
      EXPECT_EQ(got.value, before[i]) << AggregateName(agg) << " query " << i;
      EXPECT_EQ(got.value, want) << AggregateName(agg) << " query " << i;
    }
  }

  // A second, non-chunk-aligned wave: rows appended after the fold are
  // served from the delta on top of the new base, still bit-identically.
  std::vector<std::vector<double>> second_batch;
  for (int i = 0; i < 100; ++i) second_batch.push_back(jittered_row());
  ASSERT_TRUE(store.AppendRows("gmm", second_batch).ok());
  for (const auto& r : second_batch) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged2(&merged);
  for (const auto& q : queries) {
    const ServeResult got = serve.Answer("gmm", spec, q);
    const double want = merged2.Answer(spec, q);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(got.value));
    } else {
      EXPECT_EQ(got.value, want) << AggregateName(agg);
    }
  }
  auto res2 = store.Compact("gmm");
  ASSERT_TRUE(res2.ok());
  EXPECT_TRUE(res2.value().compacted);
  EXPECT_EQ(res2.value().folded_rows, second_batch.size());
  EXPECT_EQ(res2.value().trimmed_rows, 64u);  // 100 rows: one whole chunk
  EXPECT_EQ(store.Delta("gmm")->Stats().rows, 36u);
  for (const auto& q : queries) {
    const ServeResult got = serve.Answer("gmm", spec, q);
    const double want = merged2.Answer(spec, q);
    if (!std::isnan(want)) EXPECT_EQ(got.value, want) << AggregateName(agg);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, CompactionExactSweep,
    testing::Values(Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                    Aggregate::kStd, Aggregate::kMedian, Aggregate::kMin,
                    Aggregate::kMax),
    [](const testing::TestParamInfo<Aggregate>& info) {
      return AggregateName(info.param);
    });

// ---------------------------------------------------------------------
// The safe fold watermark: Compact may never fold past the minimum leaf
// watermark of ANY registered version of ANY key sharing the dataset. A
// nullptr watermark vector counts as 0 and pins compaction entirely;
// version retention unpins it; Register's default fill adopts the table's
// current fold watermark so a freshly trained sketch doesn't reset it.

TEST(CompactionTest, SafeWatermarkHonorsEveryRegisteredVersion) {
  const DriftScenario* s = &DriftScenario::Shared();
  StreamingTable table(s->base);
  ExactEngine engine(&table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  ASSERT_TRUE(
      store.EnableStreaming("gmm", s->base.num_columns(), /*chunk_rows=*/4)
          .ok());
  ASSERT_TRUE(store.AttachStreamingTable("gmm", &table).ok());

  Rng rng(79);
  std::vector<std::vector<double>> appended;
  for (int i = 0; i < 20; ++i) {
    std::vector<double> row(s->base.num_columns());
    for (auto& v : row) v = rng.Uniform();
    appended.push_back(std::move(row));
  }
  ASSERT_TRUE(store.AppendRows("gmm", appended).ok());
  const size_t parts = s->sketch->num_partitions();

  // v1 carries nullptr watermarks (registered before any fold): safe = 0.
  auto r0 = store.Compact("gmm");
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_FALSE(r0.value().compacted);
  EXPECT_EQ(r0.value().safe, 0u);
  EXPECT_EQ(table.folded(), 0u);

  // Retention 1 + v2 with explicit watermarks (min 6): v1 is pruned, so
  // the safe watermark is 6 — Compact folds [0,6) and trims the one whole
  // chunk below it.
  store.SetVersionRetention(1);
  auto wm = std::make_shared<std::vector<uint64_t>>(parts, appended.size());
  (*wm)[0] = 6;
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch, 0, wm).ok());
  auto r1 = store.Compact("gmm");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE(r1.value().compacted);
  EXPECT_EQ(r1.value().safe, 6u);
  EXPECT_EQ(r1.value().folded_rows, 6u);
  EXPECT_EQ(r1.value().trimmed_rows, 4u);  // chunk granularity
  EXPECT_EQ(table.folded(), 6u);
  // The folded rows are the logical delta prefix, appended in order.
  const auto v = table.Pin();
  ASSERT_EQ(v->table.num_rows(), s->base.num_rows() + 6);
  for (size_t r = 0; r < 6; ++r) {
    for (size_t c = 0; c < s->base.num_columns(); ++c) {
      EXPECT_EQ(v->table.at(s->base.num_rows() + r, c), appended[r][c]);
    }
  }

  // Register with nullptr watermarks now default-fills to the table's
  // fold watermark (6) — it must not drag the safe watermark back to 0.
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch).ok());
  const auto view = store.LookupServed(ServeKey::From("gmm", s->spec));
  ASSERT_NE(view.leaf_folded, nullptr);
  ASSERT_EQ(view.leaf_folded->size(), parts);
  for (uint64_t w : *view.leaf_folded) EXPECT_EQ(w, 6u);
  auto r2 = store.Compact("gmm");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().compacted);  // safe == folded: nothing new
  EXPECT_EQ(r2.value().safe, 6u);

  // A version whose watermarks cover the whole delta releases the rest.
  auto full = std::make_shared<std::vector<uint64_t>>(parts, appended.size());
  ASSERT_TRUE(store.Register("gmm", s->spec, s->sketch, 0, full).ok());
  auto r3 = store.Compact("gmm");
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3.value().compacted);
  EXPECT_EQ(r3.value().safe, appended.size());
  EXPECT_EQ(r3.value().folded_rows, appended.size() - 6);
  EXPECT_EQ(table.folded(), appended.size());
  EXPECT_EQ(store.Delta("gmm")->Stats().rows, 0u);

  const auto cstats = store.CompactionStats();
  ASSERT_EQ(cstats.size(), 1u);
  EXPECT_EQ(cstats[0].first, "gmm");
  EXPECT_EQ(cstats[0].second.compactions, 2u);
  EXPECT_EQ(cstats[0].second.folded_rows, appended.size());
}

// ---------------------------------------------------------------------
// The RefreshController's compaction trigger: after each pass, every
// streaming dataset at or above the byte/row threshold is compacted.

TEST(CompactionTest, RefreshControllerSweepsAndCompactsByThreshold) {
  Dataset ds = MakeGmmDataset(600, 3, 3, /*seed=*/44);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  StreamingTable table(base);
  ExactEngine engine(&table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(
      store.EnableStreaming("gmm", base.num_columns(), /*chunk_rows=*/32)
          .ok());
  ASSERT_TRUE(store.AttachStreamingTable("gmm", &table).ok());

  RefreshOptions ro;
  ro.compact_min_rows = 64;
  RefreshController ctrl(&store, nullptr, ro);

  Rng rng(80);
  auto append_n = [&](int n) {
    for (int i = 0; i < n; ++i) {
      std::vector<double> row(base.num_columns());
      for (auto& v : row) v = rng.Uniform();
      ASSERT_TRUE(store.Append("gmm", row).ok());
    }
  };

  append_n(50);  // below threshold: the sweep must not compact
  ctrl.RefreshAll();
  EXPECT_EQ(ctrl.Stats().compactions, 0u);
  EXPECT_EQ(table.folded(), 0u);

  append_n(50);  // 100 resident rows >= 64: the sweep compacts
  ctrl.RefreshAll();
  const auto stats = ctrl.Stats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.compaction_folded_rows, 100u);
  EXPECT_EQ(table.folded(), 100u);
  EXPECT_EQ(store.Delta("gmm")->Stats().rows, 4u);  // 100 mod 32

  metrics::MetricsRegistry registry;
  ctrl.ExportMetrics(&registry);  // new counters export without crashing
}

// ---------------------------------------------------------------------
// Satellite of the validation-gate fix: a refresh whose f64 retrain is
// fine but whose surviving int8 tier serves through STALE calibration
// must demote the tier (int8 -> f32 -> f64) inside the gate and swap,
// not discard the refresh.

TEST(RefreshTest, StaleInt8CalibrationDemotesTierInsteadOfFailing) {
  const DriftScenario* s = &DriftScenario::Shared();
  ASSERT_FALSE(s->drift_rows.empty());

  NeuroSketchConfig cfg = s->cfg;
  cfg.plan_precision = PlanPrecision::kInt8;
  auto trained = NeuroSketch::Train(
      s->train_q, s->engine->AnswerBatch(s->spec, s->train_q), cfg);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  if (trained.value().plan_precision() != PlanPrecision::kInt8) {
    GTEST_SKIP() << "int8 tier not active (forced-tier build or validation "
                    "dropped it)";
  }
  auto sp = std::make_shared<const NeuroSketch>(std::move(trained).value());

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", s->engine.get()).ok());
  ASSERT_TRUE(store.Register("gmm", s->spec, sp).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", s->base.num_columns()).ok());
  ASSERT_TRUE(store.AppendRows("gmm", s->drift_rows).ok());

  RefreshOptions ro;
  ro.probe_threads = 0;
  RefreshController ctrl(&store, nullptr, ro);
  RefreshTarget target = s->Target();
  target.config.plan_precision = PlanPrecision::kInt8;
  ctrl.AddTarget(std::move(target));
  // The hook models drifted-away calibration: scales captured on the old
  // distribution, wildly wrong for the data the tier now serves. The f64
  // parameters underneath are freshly retrained and in bound.
  std::atomic<bool> rescaled{false};
  ctrl.SetFaultHook([&rescaled](NeuroSketch* sk) {
    rescaled.store(sk->RescaleInt8Calibration(1e4).ok());
  });

  auto res = ctrl.RefreshNow("gmm", s->spec);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  if (!rescaled.load()) {
    GTEST_SKIP() << "retrain re-validation dropped the int8 tier before the "
                    "hook could stale it";
  }
  EXPECT_TRUE(res.value().swapped) << res.value().message;
  EXPECT_FALSE(res.value().failed);
  EXPECT_GE(res.value().tier_fallbacks, 1u);
  EXPECT_LE(res.value().post_mae, s->policy.max_normalized_mae);
  EXPECT_GE(ctrl.Stats().tier_fallbacks, 1u);

  const auto view = store.LookupServed(ServeKey::From("gmm", s->spec));
  ASSERT_NE(view.sketch, nullptr);
  EXPECT_NE(view.sketch->plan_precision(), PlanPrecision::kInt8);
}

// ---------------------------------------------------------------------
// The compaction race: appenders, exact servers, a dedicated compactor,
// and the controller's threshold sweep all running together. During the
// race the full-domain COUNT must be monotone (a lost row across a table
// swap would break it); after quiescing, every aggregate must be
// bit-identical to a from-scratch scan of the full logical history.

TEST(CompactionRaceTest, AppendServeCompactRefreshStayExact) {
  Dataset ds = MakeGmmDataset(800, 3, 3, /*seed=*/47);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const size_t d = base.num_columns();
  StreamingTable table(base);
  ExactEngine engine(&table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", d, /*chunk_rows=*/64).ok());
  ASSERT_TRUE(store.AttachStreamingTable("gmm", &table).ok());

  ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 20.0;
  ServeEngine serve(&store, so);

  RefreshOptions ro;
  ro.interval_ms = 2;
  ro.compact_min_rows = 128;
  RefreshController ctrl(&store, &serve, ro);  // no targets: pure sweeps
  ctrl.Start();

  const QueryFunctionSpec count = AxisSpec(Aggregate::kCount, ds.measure_col);
  const QueryInstance everything =
      QueryInstance::AxisRange({0.0, 0.0, 0.0}, {1.0, 1.0, 1.0});
  constexpr int kRowsPerAppender = 300;
  constexpr int kAppenders = 2;

  // The mirror records the exact logical append order (one mutex orders
  // Append + record atomically); the oracle below scans it from scratch.
  std::mutex order_mu;
  std::vector<std::vector<double>> mirror;
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kAppenders; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(700 + t);
      for (int i = 0; i < kRowsPerAppender; ++i) {
        std::vector<double> row(d);
        for (auto& v : row) v = rng.Uniform();
        std::lock_guard<std::mutex> lock(order_mu);
        ASSERT_TRUE(store.Append("gmm", row).ok());
        mirror.push_back(std::move(row));
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      double last = 0.0;
      while (!done.load(std::memory_order_acquire)) {
        const ServeResult r = serve.Answer("gmm", count, everything);
        ASSERT_FALSE(r.used_sketch);
        // Monotone and bounded: a compaction swap that lost or doubled
        // rows would show up here immediately.
        ASSERT_GE(r.value, last);
        ASSERT_GE(r.value, static_cast<double>(base.num_rows()));
        ASSERT_LE(r.value, static_cast<double>(
                               base.num_rows() +
                               kAppenders * kRowsPerAppender));
        last = r.value;
      }
    });
  }
  threads.emplace_back([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto res = store.Compact("gmm");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      std::this_thread::yield();
    }
  });

  for (int t = 0; t < kAppenders; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kAppenders; t < threads.size(); ++t) threads[t].join();
  ctrl.Stop();

  // Quiesce: one final fold, then the from-scratch oracle.
  auto fin = store.Compact("gmm");
  ASSERT_TRUE(fin.ok()) << fin.status().ToString();
  EXPECT_EQ(table.folded(), mirror.size());

  const auto cstats = store.CompactionStats();
  ASSERT_EQ(cstats.size(), 1u);
  EXPECT_GE(cstats[0].second.compactions, 1u);
  EXPECT_EQ(cstats[0].second.folded_rows, mirror.size());
  const auto dstats = store.DeltaStats();
  ASSERT_EQ(dstats.size(), 1u);
  EXPECT_GT(dstats[0].second.trimmed_rows, 0u);
  // Everything folded; at most one partial chunk stays resident (600 rows
  // are not 64-aligned).
  EXPECT_LT(dstats[0].second.rows, 64u);

  Table merged = base;
  for (const auto& r : mirror) ASSERT_TRUE(merged.AppendRow(r).ok());
  ExactEngine merged_engine(&merged);
  WorkloadConfig qc;
  qc.num_active = 2;
  qc.range_frac_lo = 0.1;
  qc.range_frac_hi = 0.5;
  qc.seed = 4711;
  WorkloadGenerator qgen(d, qc);
  for (Aggregate agg :
       {Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg, Aggregate::kStd,
        Aggregate::kMedian, Aggregate::kMin, Aggregate::kMax}) {
    const QueryFunctionSpec spec = AxisSpec(agg, ds.measure_col);
    for (const auto& q : qgen.GenerateMany(10, &merged_engine, &spec)) {
      const ServeResult got = serve.Answer("gmm", spec, q);
      const double want = merged_engine.Answer(spec, q);
      if (std::isnan(want)) {
        EXPECT_TRUE(std::isnan(got.value)) << AggregateName(agg);
      } else {
        EXPECT_EQ(got.value, want) << AggregateName(agg);
      }
    }
  }
  EXPECT_EQ(serve.Answer("gmm", count, everything).value,
            static_cast<double>(base.num_rows() + mirror.size()));
}

}  // namespace
}  // namespace neurosketch
