// Tests for the neural-network substrate: activations, analytic-vs-
// numerical gradients, optimizers, the training loop, and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "nn/activation.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "util/random.h"

namespace neurosketch {
namespace nn {
namespace {

TEST(ActivationTest, ReluValues) {
  Matrix in = Matrix::FromRows({{-1.0, 0.0, 2.5}});
  Matrix out;
  ApplyActivation(Activation::kRelu, in, &out);
  EXPECT_DOUBLE_EQ(out(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out(0, 2), 2.5);
}

TEST(ActivationTest, ReluGrad) {
  Matrix z = Matrix::FromRows({{-1.0, 0.0, 2.5}});
  Matrix g;
  ActivationGrad(Activation::kRelu, z, &g);
  EXPECT_DOUBLE_EQ(g(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(g(0, 1), 0.0);  // derivative at 0 taken as 0
  EXPECT_DOUBLE_EQ(g(0, 2), 1.0);
}

TEST(ActivationTest, IdentityPassThrough) {
  Matrix in = Matrix::FromRows({{-3.0, 4.0}});
  Matrix out;
  ApplyActivation(Activation::kIdentity, in, &out);
  EXPECT_DOUBLE_EQ(out(0, 0), -3.0);
  Matrix g;
  ActivationGrad(Activation::kIdentity, in, &g);
  EXPECT_DOUBLE_EQ(g(0, 1), 1.0);
}

TEST(ActivationTest, TanhSigmoidGradsMatchNumerical) {
  for (Activation act : {Activation::kTanh, Activation::kSigmoid}) {
    for (double x : {-1.5, -0.2, 0.3, 2.0}) {
      Matrix z(1, 1);
      z(0, 0) = x;
      Matrix g;
      ActivationGrad(act, z, &g);
      const double h = 1e-6;
      Matrix zp(1, 1), zm(1, 1), op, om;
      zp(0, 0) = x + h;
      zm(0, 0) = x - h;
      ApplyActivation(act, zp, &op);
      ApplyActivation(act, zm, &om);
      const double numeric = (op(0, 0) - om(0, 0)) / (2 * h);
      EXPECT_NEAR(g(0, 0), numeric, 1e-6);
    }
  }
}

TEST(ActivationTest, NameRoundTrip) {
  for (Activation a : {Activation::kIdentity, Activation::kRelu,
                       Activation::kTanh, Activation::kSigmoid}) {
    EXPECT_EQ(ActivationFromName(ActivationName(a)), a);
  }
  EXPECT_THROW(ActivationFromName("bogus"), std::invalid_argument);
}

TEST(LossTest, MseValueAndGrad) {
  Matrix pred = Matrix::FromRows({{1.0, 3.0}});
  Matrix target = Matrix::FromRows({{0.0, 1.0}});
  Matrix grad;
  const double loss = MseLoss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 2.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), 2.0 * 2.0 / 2.0);
}

TEST(LossTest, MaeValueAndGrad) {
  Matrix pred = Matrix::FromRows({{1.0, -3.0, 5.0}});
  Matrix target = Matrix::FromRows({{0.0, 1.0, 5.0}});
  Matrix grad;
  const double loss = MaeLoss(pred, target, &grad);
  EXPECT_DOUBLE_EQ(loss, (1.0 + 4.0 + 0.0) / 3.0);
  EXPECT_DOUBLE_EQ(grad(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(grad(0, 1), -1.0 / 3.0);
  EXPECT_DOUBLE_EQ(grad(0, 2), 0.0);
}

// Central-difference gradient check over all parameters of an MLP with a
// smooth activation (tanh avoids ReLU's kink at 0 for exact comparison).
TEST(GradCheckTest, MlpParameterGradientsMatchNumerical) {
  MlpConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden = {5, 4};
  cfg.out_dim = 2;
  cfg.hidden_act = Activation::kTanh;
  Mlp model(cfg, /*seed=*/9);

  Rng rng(10);
  Matrix x(4, 3), target(4, 2);
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = rng.Uniform(-1, 1);
  for (size_t i = 0; i < target.size(); ++i) {
    target.data()[i] = rng.Uniform(-1, 1);
  }

  auto loss_fn = [&]() {
    Matrix pred, grad;
    model.Forward(x, &pred);
    return MseLoss(pred, target, &grad);
  };

  // Analytic gradients.
  Matrix pred, grad;
  model.Forward(x, &pred);
  MseLoss(pred, target, &grad);
  model.ZeroGrad();
  model.Backward(grad);

  const double h = 1e-6;
  size_t checked = 0;
  for (auto& p : model.Params()) {
    for (size_t j = 0; j < p.size; j += 3) {  // sample every 3rd param
      const double orig = p.value[j];
      p.value[j] = orig + h;
      const double lp = loss_fn();
      p.value[j] = orig - h;
      const double lm = loss_fn();
      p.value[j] = orig;
      const double numeric = (lp - lm) / (2 * h);
      EXPECT_NEAR(p.grad[j], numeric, 1e-5)
          << "param block size " << p.size << " index " << j;
      ++checked;
    }
  }
  EXPECT_GE(checked, 20u);
}

TEST(GradCheckTest, ReluMlpGradientsMatchAwayFromKink) {
  MlpConfig cfg;
  cfg.in_dim = 2;
  cfg.hidden = {8};
  cfg.out_dim = 1;
  cfg.hidden_act = Activation::kRelu;
  Mlp model(cfg, 11);
  Matrix x = Matrix::FromRows({{0.3, -0.7}});
  Matrix target = Matrix::FromRows({{0.5}});

  Matrix pred, grad;
  model.Forward(x, &pred);
  MseLoss(pred, target, &grad);
  model.ZeroGrad();
  model.Backward(grad);

  const double h = 1e-7;
  auto loss_fn = [&]() {
    Matrix p2, g2;
    model.Forward(x, &p2);
    return MseLoss(p2, target, &g2);
  };
  for (auto& p : model.Params()) {
    for (size_t j = 0; j < p.size; j += 2) {
      const double orig = p.value[j];
      p.value[j] = orig + h;
      const double lp = loss_fn();
      p.value[j] = orig - h;
      const double lm = loss_fn();
      p.value[j] = orig;
      EXPECT_NEAR(p.grad[j], (lp - lm) / (2 * h), 1e-4);
    }
  }
}

TEST(MlpTest, PaperConfigShapes) {
  MlpConfig cfg = MlpConfig::Paper(/*in_dim=*/6, /*n_layers=*/5,
                                   /*l_first=*/60, /*l_rest=*/30);
  EXPECT_EQ(cfg.in_dim, 6u);
  ASSERT_EQ(cfg.hidden.size(), 3u);  // 60, 30, 30 + output layer = 5 layers
  EXPECT_EQ(cfg.hidden[0], 60u);
  EXPECT_EQ(cfg.hidden[1], 30u);
  EXPECT_EQ(cfg.hidden[2], 30u);
  Mlp model(cfg);
  // Params: 6*60+60 + 60*30+30 + 30*30+30 + 30*1+1.
  EXPECT_EQ(model.num_params(),
            6u * 60 + 60 + 60 * 30 + 30 + 30 * 30 + 30 + 30 + 1);
  EXPECT_EQ(model.SizeBytes(), model.num_params() * 8);
}

TEST(MlpTest, PredictMatchesForward) {
  Mlp model(MlpConfig::Paper(2, 3, 8, 8), 5);
  Matrix x = Matrix::FromRows({{0.25, 0.75}});
  Matrix train_out, infer_out;
  model.Forward(x, &train_out);
  model.Predict(x, &infer_out);
  EXPECT_DOUBLE_EQ(train_out(0, 0), infer_out(0, 0));
  EXPECT_DOUBLE_EQ(model.PredictOne({0.25, 0.75}), infer_out(0, 0));
}

TEST(MlpTest, DeterministicInit) {
  Mlp a(MlpConfig::Paper(2), 42), b(MlpConfig::Paper(2), 42);
  EXPECT_DOUBLE_EQ(a.PredictOne({0.5, 0.5}), b.PredictOne({0.5, 0.5}));
  Mlp c(MlpConfig::Paper(2), 43);
  EXPECT_NE(a.PredictOne({0.5, 0.5}), c.PredictOne({0.5, 0.5}));
}

TEST(OptimizerTest, SgdStepMovesAgainstGradient) {
  double value = 1.0, grad = 2.0;
  Sgd sgd(0.1);
  sgd.Attach({{&value, &grad, 1}});
  sgd.Step();
  EXPECT_DOUBLE_EQ(value, 1.0 - 0.1 * 2.0);
}

TEST(OptimizerTest, SgdMomentumAccumulates) {
  double value = 0.0, grad = 1.0;
  Sgd sgd(0.1, 0.9);
  sgd.Attach({{&value, &grad, 1}});
  sgd.Step();  // v = -0.1
  EXPECT_DOUBLE_EQ(value, -0.1);
  sgd.Step();  // v = 0.9*-0.1 - 0.1 = -0.19
  EXPECT_NEAR(value, -0.29, 1e-12);
}

TEST(OptimizerTest, AdamFirstStepIsLrSized) {
  double value = 0.0, grad = 123.0;  // Adam normalizes the magnitude away
  Adam adam(0.01);
  adam.Attach({{&value, &grad, 1}});
  adam.Step();
  EXPECT_NEAR(value, -0.01, 1e-6);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  // Minimize (w - 3)^2.
  double w = 0.0, g = 0.0;
  Adam adam(0.05);
  adam.Attach({{&w, &g, 1}});
  for (int i = 0; i < 2000; ++i) {
    g = 2.0 * (w - 3.0);
    adam.Step();
  }
  EXPECT_NEAR(w, 3.0, 1e-3);
}

TEST(TrainerTest, LearnsLinearFunction) {
  // y = 2 x0 - x1 + 0.5, trivially learnable.
  Rng rng(21);
  const size_t n = 256;
  Matrix x(n, 2), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y(i, 0) = 2.0 * x(i, 0) - x(i, 1) + 0.5;
  }
  Mlp model(MlpConfig::Paper(2, 3, 16, 16), 3);
  TrainConfig tc;
  tc.epochs = 150;
  tc.learning_rate = 3e-3;
  TrainReport report = TrainRegressor(&model, x, y, tc);
  EXPECT_LT(report.final_loss, 1e-3);
  EXPECT_LT(report.final_loss, report.epoch_losses.front());
  EXPECT_NEAR(model.PredictOne({0.5, 0.5}), 1.0, 0.1);
}

TEST(TrainerTest, EarlyStoppingHalts) {
  // Pure-noise targets: the loss plateaus at the noise floor, so a
  // patience-based stop must fire well before the epoch budget.
  Rng rng(22);
  Matrix x(64, 1), y(64, 1);
  for (size_t i = 0; i < 64; ++i) {
    x(i, 0) = rng.Uniform();
    y(i, 0) = rng.Normal(0.0, 1.0);
  }
  Mlp model(MlpConfig::Paper(1, 3, 4, 4), 4);
  TrainConfig tc;
  tc.epochs = 2000;
  tc.patience = 10;
  tc.min_delta = 0.01;  // require 1% relative improvement
  TrainReport report = TrainRegressor(&model, x, y, tc);
  EXPECT_LT(report.epochs_run, 2000u);
}

TEST(TrainerTest, EmptyInputIsNoOp) {
  Mlp model(MlpConfig::Paper(2, 3, 4, 4), 1);
  Matrix x(0, 2), y(0, 1);
  TrainReport report = TrainRegressor(&model, x, y, TrainConfig{});
  EXPECT_EQ(report.epochs_run, 0u);
}

TEST(TrainerTest, LrDecayReducesRate) {
  // Indirect check: training with heavy decay changes the loss trajectory
  // but still decreases loss.
  Rng rng(23);
  Matrix x(128, 1), y(128, 1);
  for (size_t i = 0; i < 128; ++i) {
    x(i, 0) = rng.Uniform();
    y(i, 0) = std::sin(6.0 * x(i, 0));
  }
  Mlp model(MlpConfig::Paper(1, 4, 24, 24), 6);
  TrainConfig tc;
  tc.epochs = 120;
  tc.lr_decay = 0.5;
  tc.decay_every = 30;
  TrainReport report = TrainRegressor(&model, x, y, tc);
  EXPECT_LT(report.final_loss, report.epoch_losses.front());
}

TEST(SerializeTest, RoundTripBitExact) {
  Mlp model(MlpConfig::Paper(4, 5, 12, 6), 31);
  std::stringstream buf;
  ASSERT_TRUE(SaveMlp(model, &buf).ok());
  auto loaded = LoadMlp(&buf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Rng rng(32);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform(), rng.Uniform(),
                             rng.Uniform()};
    EXPECT_DOUBLE_EQ(model.PredictOne(x), loaded.value().PredictOne(x));
  }
  EXPECT_EQ(model.num_params(), loaded.value().num_params());
}

TEST(SerializeTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/ns_model.bin";
  Mlp model(MlpConfig::Paper(2, 3, 8, 8), 33);
  ASSERT_TRUE(SaveMlpFile(model, path).ok());
  auto loaded = LoadMlpFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(model.PredictOne({0.1, 0.9}),
                   loaded.value().PredictOne({0.1, 0.9}));
  std::remove(path.c_str());
}

TEST(SerializeTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "garbage data here";
  auto loaded = LoadMlp(&buf);
  ASSERT_FALSE(loaded.ok());
}

TEST(SerializeTest, TruncatedStreamRejected) {
  Mlp model(MlpConfig::Paper(2, 3, 8, 8), 34);
  std::stringstream buf;
  ASSERT_TRUE(SaveMlp(model, &buf).ok());
  std::string bytes = buf.str();
  std::stringstream cut;
  cut << bytes.substr(0, bytes.size() / 2);
  auto loaded = LoadMlp(&cut);
  ASSERT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace nn
}  // namespace neurosketch
