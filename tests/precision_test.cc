// Tests for the opt-in narrow compiled-plan tiers (f32 and int8):
// activation under the error bound, automatic fallback chaining
// (int8 -> f32 -> f64) when bounds are blown, bitwise f64 golden behavior
// at the default precision, precision + calibration surviving
// serialization, tier switching, serialized-size accounting (SizeBytes()
// == bytes Save() writes), and int8 calibration edge cases (zero-range
// layers, saturating outliers).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/neurosketch.h"
#include "data/generators.h"
#include "nn/inference_plan.h"
#include "nn/mlp.h"
#include "query/predicate.h"
#include "serve/sketch_store.h"
#include "util/random.h"

namespace neurosketch {
namespace {

struct Bench {
  std::vector<QueryInstance> train_q;
  std::vector<double> train_a;
  std::vector<QueryInstance> probes;
  NeuroSketchConfig cfg;
};

Bench MakeBench(uint64_t seed) {
  Bench b;
  Table t = MakeUniformTable(4000, 2, seed);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = seed + 1;
  WorkloadGenerator gen(2, wc);
  b.train_q = gen.GenerateMany(500, &engine, &spec);
  b.train_a = engine.AnswerBatch(spec, b.train_q);

  WorkloadConfig pc = wc;
  pc.seed = seed + 3;
  WorkloadGenerator pgen(2, pc);
  b.probes = pgen.GenerateMany(200, &engine, &spec);

  b.cfg.tree_height = 2;
  b.cfg.target_partitions = 4;
  b.cfg.n_layers = 4;
  b.cfg.l_first = 24;
  b.cfg.l_rest = 16;
  b.cfg.train.epochs = 40;
  b.cfg.seed = seed + 2;
  return b;
}

size_t FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

TEST(PrecisionTest, F32ActivatesWithinBoundAndStaysCloseToF64) {
  Bench b = MakeBench(91);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  const NeuroSketch& ns = sketch.value();

  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kF32)
      << "f32 tier should activate under the default bound (measured "
      << ns.f32_max_divergence() << ")";
  EXPECT_TRUE(ns.has_f32_plans());
  EXPECT_GT(ns.f32_max_divergence(), 0.0);
  EXPECT_LE(ns.f32_max_divergence(), ns.f32_error_bound());
  // The f32 tier halves the resident flat-buffer footprint.
  EXPECT_EQ(ns.PlanBytes(PlanPrecision::kF32),
            ns.PlanBytes(PlanPrecision::kF64) / 2);

  // Every batch surface serves the same f32 bits as single-query Answer,
  // and all of them stay close to the f64 scalar reference. The bound is
  // in standardized units; scale it into answer space by the workload's
  // max |answer|, an upper proxy for any leaf's target stddev.
  const auto serial = ns.AnswerBatch(b.probes);
  const auto vectorized = ns.AnswerBatchVectorized(b.probes);
  double max_abs = 0.0;
  for (const auto& q : b.probes) {
    max_abs = std::max(max_abs, std::fabs(ns.AnswerScalar(q)));
  }
  const double tol = ns.f32_error_bound() * (1.0 + max_abs);
  for (size_t i = 0; i < b.probes.size(); ++i) {
    const double f32_answer = ns.Answer(b.probes[i]);
    const double f64_answer = ns.AnswerScalar(b.probes[i]);
    EXPECT_EQ(f32_answer, serial[i]) << "probe " << i;
    EXPECT_EQ(f32_answer, vectorized[i]) << "probe " << i;
    EXPECT_NEAR(f32_answer, f64_answer, tol) << "probe " << i;
  }
}

TEST(PrecisionTest, BlownErrorBoundFallsBackToF64) {
  Bench b = MakeBench(92);
  b.cfg.plan_precision = PlanPrecision::kF32;
  b.cfg.f32_error_bound = 0.0;  // nothing passes: force the fallback
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  const NeuroSketch& ns = sketch.value();

  EXPECT_EQ(ns.plan_precision(), PlanPrecision::kF64);
  EXPECT_FALSE(ns.has_f32_plans());
  EXPECT_GT(ns.f32_max_divergence(), 0.0);  // measured, then rejected
  // Fallback means the golden contract holds: bit-identical to scalar.
  for (const auto& q : b.probes) {
    EXPECT_EQ(ns.Answer(q), ns.AnswerScalar(q));
  }
}

TEST(PrecisionTest, DefaultPrecisionIsBitwiseGolden) {
  if (ForceF32PlansFromEnv() || ForceInt8PlansFromEnv()) {
    GTEST_SKIP() << "NEUROSKETCH_FORCE_*_PLANS upgrades the default tier";
  }
  Bench b = MakeBench(93);
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  EXPECT_EQ(sketch.value().plan_precision(), PlanPrecision::kF64);
  for (const auto& q : b.probes) {
    EXPECT_EQ(sketch.value().Answer(q), sketch.value().AnswerScalar(q));
  }
}

TEST(PrecisionTest, SelectPrecisionSwitchesTiers) {
  Bench b = MakeBench(94);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  NeuroSketch& ns = sketch.value();
  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kF32);
  const double f32_answer = ns.Answer(b.probes[0]);

  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF64).ok());
  EXPECT_EQ(ns.Answer(b.probes[0]), ns.AnswerScalar(b.probes[0]));
  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF32).ok());
  EXPECT_EQ(ns.Answer(b.probes[0]), f32_answer);

  // A sketch without f32 plans refuses the f32 tier.
  Bench b64 = MakeBench(95);
  b64.cfg.plan_precision = PlanPrecision::kF64;
  auto plain = NeuroSketch::Train(b64.train_q, b64.train_a, b64.cfg);
  ASSERT_TRUE(plain.ok());
  if (!plain.value().has_f32_plans()) {
    EXPECT_FALSE(plain.value().SelectPrecision(PlanPrecision::kF32).ok());
  }
  // EnableF32 compiles the tier after the fact.
  EXPECT_TRUE(plain.value().EnableF32(b64.train_q,
                                      NeuroSketchConfig().f32_error_bound));
  EXPECT_EQ(plain.value().plan_precision(), PlanPrecision::kF32);
}

TEST(PrecisionTest, EnableF32RefusesEmptyValidation) {
  Bench b = MakeBench(99);
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  // No validation coverage -> f32 must not activate: it is never served
  // blind.
  EXPECT_FALSE(sketch.value().EnableF32(
      {}, NeuroSketchConfig().f32_error_bound));
  EXPECT_EQ(sketch.value().plan_precision(), PlanPrecision::kF64);
  EXPECT_FALSE(sketch.value().has_f32_plans());
}

TEST(PrecisionTest, PrecisionSurvivesSaveLoadBitExactly) {
  Bench b = MakeBench(96);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  ASSERT_EQ(sketch.value().plan_precision(), PlanPrecision::kF32);

  const std::string path = testing::TempDir() + "/ns_precision_roundtrip.bin";
  ASSERT_TRUE(sketch.value().Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded.value().plan_precision(), PlanPrecision::kF32);
  EXPECT_TRUE(loaded.value().has_f32_plans());
  EXPECT_EQ(loaded.value().f32_max_divergence(),
            sketch.value().f32_max_divergence());
  EXPECT_EQ(loaded.value().f32_error_bound(),
            sketch.value().f32_error_bound());
  for (const auto& q : b.probes) {
    // The f32 narrowing is deterministic, so the loaded sketch serves the
    // exact same f32 bits, and its f64 reference is untouched.
    EXPECT_EQ(loaded.value().Answer(q), sketch.value().Answer(q));
    EXPECT_EQ(loaded.value().AnswerScalar(q), sketch.value().AnswerScalar(q));
  }
}

TEST(PrecisionTest, InactiveF32TierSurvivesSaveLoad) {
  Bench b = MakeBench(90);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  NeuroSketch& ns = sketch.value();
  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kF32);
  const double f32_answer = ns.Answer(b.probes[0]);

  // Serve the reference tier for a while, then Save: the validated f32
  // plans must not be lost across the round-trip.
  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF64).ok());
  const std::string path = testing::TempDir() + "/ns_inactive_f32.bin";
  ASSERT_TRUE(ns.Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded.value().plan_precision(), PlanPrecision::kF64);
  EXPECT_TRUE(loaded.value().has_f32_plans());
  ASSERT_TRUE(loaded.value().SelectPrecision(PlanPrecision::kF32).ok());
  EXPECT_EQ(loaded.value().Answer(b.probes[0]), f32_answer);
}

TEST(PrecisionTest, SizeBytesMatchesSaveOutputExactly) {
  for (PlanPrecision p :
       {PlanPrecision::kF64, PlanPrecision::kF32, PlanPrecision::kInt8}) {
    Bench b = MakeBench(97);
    b.cfg.plan_precision = p;
    auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
    ASSERT_TRUE(sketch.ok());
    const std::string path = testing::TempDir() + "/ns_sizebytes.bin";
    ASSERT_TRUE(sketch.value().Save(path).ok());
    EXPECT_EQ(sketch.value().SizeBytes(), FileBytes(path))
        << "precision " << PlanPrecisionName(sketch.value().plan_precision());
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------- int8

TEST(PrecisionTest, Int8ActivatesWithinBoundAndShrinksFootprint) {
  Bench b = MakeBench(81);
  b.cfg.plan_precision = PlanPrecision::kInt8;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  const NeuroSketch& ns = sketch.value();

  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kInt8)
      << "int8 tier should activate under the default bound (measured "
      << ns.int8_max_divergence() << ")";
  EXPECT_TRUE(ns.has_int8_plans());
  EXPECT_GT(ns.int8_max_divergence(), 0.0);
  EXPECT_LE(ns.int8_max_divergence(), ns.int8_error_bound());
  // The headline footprint claim: the int8 tier's resident plan bytes are
  // at most a quarter of the f64 tier's (int8 weights are 1/8; the f32
  // bias/dequant epilogue and calibration record eat some of that back).
  EXPECT_LE(ns.PlanBytes(PlanPrecision::kInt8),
            ns.PlanBytes(PlanPrecision::kF64) / 4);

  // Every batch surface serves the same int8 bits as single-query Answer,
  // and all stay within the standardized bound of the f64 reference.
  const auto serial = ns.AnswerBatch(b.probes);
  const auto vectorized = ns.AnswerBatchVectorized(b.probes);
  double max_abs = 0.0;
  for (const auto& q : b.probes) {
    max_abs = std::max(max_abs, std::fabs(ns.AnswerScalar(q)));
  }
  const double tol = ns.int8_error_bound() * (1.0 + max_abs);
  for (size_t i = 0; i < b.probes.size(); ++i) {
    const double int8_answer = ns.Answer(b.probes[i]);
    const double f64_answer = ns.AnswerScalar(b.probes[i]);
    EXPECT_EQ(int8_answer, serial[i]) << "probe " << i;
    EXPECT_EQ(int8_answer, vectorized[i]) << "probe " << i;
    EXPECT_NEAR(int8_answer, f64_answer, tol) << "probe " << i;
  }
}

TEST(PrecisionTest, Int8BlownBoundChainsToF32ThenF64) {
  {
    // Int8 bound blown, f32 bound fine: the chain lands on f32.
    Bench b = MakeBench(82);
    b.cfg.plan_precision = PlanPrecision::kInt8;
    b.cfg.int8_error_bound = 0.0;  // nothing passes: force the demotion
    auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
    ASSERT_TRUE(sketch.ok());
    EXPECT_EQ(sketch.value().plan_precision(), PlanPrecision::kF32);
    EXPECT_FALSE(sketch.value().has_int8_plans());
    EXPECT_TRUE(sketch.value().has_f32_plans());
    EXPECT_GT(sketch.value().int8_max_divergence(), 0.0);  // measured
  }
  {
    // Both narrow bounds blown: the chain bottoms out on the f64 golden
    // reference, bit-identical to the scalar path.
    Bench b = MakeBench(82);
    b.cfg.plan_precision = PlanPrecision::kInt8;
    b.cfg.int8_error_bound = 0.0;
    b.cfg.f32_error_bound = 0.0;
    auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
    ASSERT_TRUE(sketch.ok());
    const NeuroSketch& ns = sketch.value();
    EXPECT_EQ(ns.plan_precision(), PlanPrecision::kF64);
    EXPECT_FALSE(ns.has_int8_plans());
    EXPECT_FALSE(ns.has_f32_plans());
    for (const auto& q : b.probes) {
      EXPECT_EQ(ns.Answer(q), ns.AnswerScalar(q));
    }
  }
}

TEST(PrecisionTest, EnableInt8RefusesEmptyValidation) {
  Bench b = MakeBench(83);
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  // No calibration coverage at all -> int8 must not activate. A non-int8
  // serving tier (f64, or the tier a forced CI matrix trained) is left
  // untouched; a previously active int8 tier is dropped rather than kept
  // serving bits the failed re-validation no longer vouches for.
  const PlanPrecision before = sketch.value().plan_precision();
  EXPECT_FALSE(sketch.value().EnableInt8(
      {}, NeuroSketchConfig().int8_error_bound));
  EXPECT_NE(sketch.value().plan_precision(), PlanPrecision::kInt8);
  if (before != PlanPrecision::kInt8) {
    EXPECT_EQ(sketch.value().plan_precision(), before);
  }
  EXPECT_FALSE(sketch.value().has_int8_plans());
}

// A layer whose input is identically zero (dead first layer) has a
// zero-range calibration: its activations quantize to all zeros and the
// layer degenerates to act(bias), matching the f64 reference up to the
// f32 bias cast.
TEST(PrecisionTest, Int8ZeroRangeLayerDegeneratesToBias) {
  nn::MlpConfig cfg;
  cfg.in_dim = 3;
  cfg.hidden = {8, 4};
  nn::Mlp model(cfg, 7);
  // Kill layer 0: zero weights and bias -> its ReLU output is exactly 0,
  // so layer 1 calibrates a zero range.
  model.layers()[0].weight().Zero();
  model.layers()[0].bias().Zero();
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);

  nn::Workspace ws;
  std::vector<double> absmax(plan.layers().size(), 0.0);
  Rng rng(19);
  std::vector<std::vector<double>> calib;
  for (int i = 0; i < 32; ++i) {
    std::vector<double> x(3);
    for (double& v : x) v = rng.Uniform(-1.0, 1.0);
    plan.CalibrateOne(x.data(), &ws, absmax.data());
    calib.push_back(std::move(x));
  }
  ASSERT_GT(absmax[0], 0.0);
  EXPECT_EQ(absmax[1], 0.0) << "dead layer must calibrate a zero range";

  nn::CompiledMlpI8 i8 = nn::CompiledMlpI8::FromPlan(plan, absmax);
  for (const auto& x : calib) {
    const double got = i8.PredictOne(x.data(), &ws);
    const double want = plan.PredictOne(x.data(), &ws);
    EXPECT_TRUE(std::isfinite(got));
    // Everything downstream of the dead layer is a bias chain; the only
    // divergence left is the f64 -> f32 bias narrowing.
    EXPECT_NEAR(got, want, 1e-5);
  }
}

// Serve-time activations beyond the calibrated range saturate at the
// +/-127 quantization boundary instead of wrapping: an outlier input
// answers exactly what the boundary input answers.
TEST(PrecisionTest, Int8SaturatingOutliersClampAtCalibrationBoundary) {
  nn::MlpConfig cfg;
  cfg.in_dim = 1;
  cfg.hidden = {};  // single linear output layer
  nn::Mlp model(cfg, 3);
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);

  nn::Workspace ws;
  std::vector<double> absmax(plan.layers().size(), 0.0);
  for (double x : {-1.0, 0.25, 1.0}) {
    plan.CalibrateOne(&x, &ws, absmax.data());
  }
  ASSERT_EQ(absmax[0], 1.0);

  nn::CompiledMlpI8 i8 = nn::CompiledMlpI8::FromPlan(plan, absmax);
  const double boundary = 1.0, outlier = 10.0, far_outlier = 1e6;
  const double at_boundary = i8.PredictOne(&boundary, &ws);
  EXPECT_TRUE(std::isfinite(at_boundary));
  EXPECT_EQ(i8.PredictOne(&outlier, &ws), at_boundary);
  EXPECT_EQ(i8.PredictOne(&far_outlier, &ws), at_boundary);
  const double neg = -5.0;
  const double neg_boundary = -1.0;
  EXPECT_EQ(i8.PredictOne(&neg, &ws), i8.PredictOne(&neg_boundary, &ws));
}

// Pins the current *signed* symmetric activation-quantization scheme
// (127 levels per side, step = absmax/127) — including for ReLU layers
// whose activations are non-negative and would fit an unsigned 0..255
// grid with half the step (the deferred ROADMAP item: unsigned ReLU
// activation quantization would roughly halve measured divergence at the
// same width). If that scheme lands, this test is the one that must
// change: the pinned step below halves, and the zero-range / saturating
// behavior must be re-pinned under the new grid (today those edges are
// covered by Int8ZeroRangeLayerDegeneratesToBias and
// Int8SaturatingOutliersClampAtCalibrationBoundary, both of which are
// grid-agnostic on the negative side only for signed grids).
TEST(PrecisionTest, Int8ActivationQuantizationPinnedToSignedGrid) {
  // Identity network: 1 input, single linear layer, weight 1, bias 0.
  // With absmax = 127 the activation multiplier is exactly 127/127 = 1,
  // so PredictOne(x) == round(x) exposes the quantization grid directly.
  nn::MlpConfig cfg;
  cfg.in_dim = 1;
  cfg.hidden = {};
  nn::Mlp model(cfg, 5);
  model.layers()[0].weight()(0, 0) = 1.0;
  model.layers()[0].bias()(0, 0) = 0.0;
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);
  nn::CompiledMlpI8 i8 = nn::CompiledMlpI8::FromPlan(plan, {127.0});

  nn::Workspace ws;
  // Signed grid: step = absmax/127 = 1.0, symmetric about zero. An
  // unsigned 0..255 grid for the same range would have step 127/255 and
  // these expectations would fail (e.g. 2.4 would quantize near 2.49; the
  // 1e-4 tolerance absorbs only the f32 dequant-multiplier rounding, not
  // a grid change).
  const struct { double in, out; } pinned[] = {
      {0.0, 0.0},  {0.4, 0.0},  {0.6, 1.0},  {2.4, 2.0},   {2.6, 3.0},
      {-0.4, 0.0}, {-0.6, -1.0}, {-2.6, -3.0}, {126.4, 126.0},
  };
  for (const auto& c : pinned) {
    EXPECT_NEAR(i8.PredictOne(&c.in, &ws), c.out, 1e-4) << "input " << c.in;
  }
  // The worst-case rounding error of the signed grid is half a step,
  // absmax/254 — twice what the deferred unsigned scheme would measure on
  // non-negative (ReLU-range) inputs. Pin it from above *and* below so a
  // silent scheme change in either direction trips here.
  double max_err = 0.0;
  for (double x = 0.0; x <= 127.0; x += 0.01) {
    max_err = std::max(max_err, std::fabs(i8.PredictOne(&x, &ws) - x));
  }
  EXPECT_NEAR(max_err, 127.0 / 254.0, 1e-2);
  EXPECT_GT(max_err, 127.0 / 510.0) << "unsigned-grid error bound reached: "
                                       "re-pin this test to the new scheme";
}

TEST(PrecisionTest, Int8PrecisionAndCalibrationSurviveSaveLoad) {
  Bench b = MakeBench(84);
  b.cfg.plan_precision = PlanPrecision::kInt8;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  ASSERT_EQ(sketch.value().plan_precision(), PlanPrecision::kInt8);

  const std::string path = testing::TempDir() + "/ns_int8_roundtrip.bin";
  ASSERT_TRUE(sketch.value().Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded.value().plan_precision(), PlanPrecision::kInt8);
  EXPECT_TRUE(loaded.value().has_int8_plans());
  EXPECT_EQ(loaded.value().int8_max_divergence(),
            sketch.value().int8_max_divergence());
  EXPECT_EQ(loaded.value().int8_error_bound(),
            sketch.value().int8_error_bound());
  for (const auto& q : b.probes) {
    // Re-quantizing the saved f64 parameters with the saved calibration
    // scales is deterministic: the loaded sketch serves the exact same
    // int8 bits, and the f64 reference is untouched.
    EXPECT_EQ(loaded.value().Answer(q), sketch.value().Answer(q));
    EXPECT_EQ(loaded.value().AnswerScalar(q), sketch.value().AnswerScalar(q));
  }
}

TEST(PrecisionTest, InactiveInt8TierSurvivesSaveLoad) {
  Bench b = MakeBench(85);
  b.cfg.plan_precision = PlanPrecision::kInt8;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  NeuroSketch& ns = sketch.value();
  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kInt8);
  const double int8_answer = ns.Answer(b.probes[0]);

  // Serve the reference tier for a while, then Save: the validated int8
  // plans (and their calibration) must survive the round-trip.
  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF64).ok());
  const std::string path = testing::TempDir() + "/ns_inactive_int8.bin";
  ASSERT_TRUE(ns.Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_EQ(loaded.value().plan_precision(), PlanPrecision::kF64);
  EXPECT_TRUE(loaded.value().has_int8_plans());
  EXPECT_EQ(loaded.value().Answer(b.probes[0]),
            loaded.value().AnswerScalar(b.probes[0]));
  ASSERT_TRUE(loaded.value().SelectPrecision(PlanPrecision::kInt8).ok());
  EXPECT_EQ(loaded.value().Answer(b.probes[0]), int8_answer);
}

TEST(PrecisionTest, StoreListingReportsInt8Precision) {
  Bench b = MakeBench(86);
  b.cfg.plan_precision = PlanPrecision::kInt8;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  ASSERT_EQ(sketch.value().plan_precision(), PlanPrecision::kInt8);

  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  serve::SketchStore store;
  ASSERT_TRUE(store.Register("uni", spec, std::move(sketch).value()).ok());
  const auto listings = store.List();
  ASSERT_EQ(listings.size(), 1u);
  EXPECT_EQ(listings[0].precision, PlanPrecision::kInt8);
  EXPECT_TRUE(listings[0].compiled);
}

TEST(PrecisionTest, StoreListingReportsPrecision) {
  Bench b = MakeBench(98);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sketch = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sketch.ok());
  ASSERT_EQ(sketch.value().plan_precision(), PlanPrecision::kF32);

  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  serve::SketchStore store;
  ASSERT_TRUE(store.Register("uni", spec, std::move(sketch).value()).ok());
  const auto listings = store.List();
  ASSERT_EQ(listings.size(), 1u);
  EXPECT_EQ(listings[0].precision, PlanPrecision::kF32);
  EXPECT_TRUE(listings[0].compiled);
}

}  // namespace
}  // namespace neurosketch
