// Tests for the query model: predicates, aggregates, workload generation.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "query/aggregate.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/query.h"
#include "query/workload.h"
#include "util/random.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

TEST(QueryInstanceTest, AxisRangeLayout) {
  QueryInstance q = QueryInstance::AxisRange({0.1, 0.2}, {0.3, 0.4});
  ASSERT_EQ(q.dim(), 4u);
  EXPECT_DOUBLE_EQ(q[0], 0.1);
  EXPECT_DOUBLE_EQ(q[3], 0.4);
}

TEST(QueryTest, AggregateNames) {
  EXPECT_EQ(AggregateName(Aggregate::kCount), "COUNT");
  EXPECT_EQ(AggregateName(Aggregate::kMedian), "MEDIAN");
}

TEST(QueryTest, SpecToString) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 2;
  EXPECT_NE(spec.ToString().find("AVG"), std::string::npos);
  EXPECT_NE(spec.ToString().find("axis_range"), std::string::npos);
}

TEST(AxisRangeTest, BasicMatching) {
  AxisRangePredicate pred;
  QueryInstance q = QueryInstance::AxisRange({0.2, 0.0}, {0.3, 1.0});
  double in_row[2] = {0.3, 0.9};
  double below[2] = {0.1, 0.5};
  double at_upper[2] = {0.5, 0.5};  // c + r boundary is exclusive
  double at_lower[2] = {0.2, 0.5};  // c boundary is inclusive
  EXPECT_TRUE(pred.Matches(q, in_row, 2));
  EXPECT_FALSE(pred.Matches(q, below, 2));
  EXPECT_FALSE(pred.Matches(q, at_upper, 2));
  EXPECT_TRUE(pred.Matches(q, at_lower, 2));
}

TEST(AxisRangeTest, InactiveAttributeUnconstrained) {
  AxisRangePredicate pred;
  QueryInstance q = QueryInstance::AxisRange({0.0, 0.4}, {1.0, 0.2});
  // Attribute 0 is inactive (0, 1): a value of exactly 1.0 must match.
  double row[2] = {1.0, 0.5};
  EXPECT_TRUE(pred.Matches(q, row, 2));
}

TEST(AxisRangeTest, QueryDimAndBox) {
  AxisRangePredicate pred;
  EXPECT_EQ(pred.QueryDim(3), 6u);
  QueryInstance q = QueryInstance::AxisRange({0.1, 0.2}, {0.3, 0.4});
  std::vector<double> lo, hi;
  pred.QueryBox(q, 2, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo[0], 0.1);
  EXPECT_DOUBLE_EQ(hi[0], 0.4);
  EXPECT_DOUBLE_EQ(hi[1], 0.6);
}

TEST(RotatedRectTest, ZeroAngleMatchesAxisRect) {
  RotatedRectPredicate rot;
  // p = (0.2, 0.3), p' = (0.6, 0.5), phi = 0.
  QueryInstance q(std::vector<double>{0.2, 0.3, 0.6, 0.5, 0.0});
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    double row[2] = {rng.Uniform(), rng.Uniform()};
    const bool in_axis = row[0] >= 0.2 && row[0] <= 0.6 && row[1] >= 0.3 &&
                         row[1] <= 0.5;
    EXPECT_EQ(rot.Matches(q, row, 2), in_axis)
        << row[0] << "," << row[1];
  }
}

TEST(RotatedRectTest, RotatedContainsCenterExcludesAxisCorner) {
  RotatedRectPredicate rot;
  // A thin rectangle rotated 45 degrees around p.
  const double phi = M_PI / 4.0;
  const double w = 0.4, h = 0.1;
  const double px = 0.3, py = 0.3;
  const double qx = px + std::cos(phi) * w - std::sin(phi) * h;
  const double qy = py + std::sin(phi) * w + std::cos(phi) * h;
  QueryInstance q(std::vector<double>{px, py, qx, qy, phi});
  // Midpoint of the diagonal is always inside.
  double center[2] = {(px + qx) / 2, (py + qy) / 2};
  EXPECT_TRUE(rot.Matches(q, center, 2));
  // The axis-aligned corner (qx, py) lies outside the rotated rectangle.
  double corner[2] = {qx, py};
  EXPECT_FALSE(rot.Matches(q, corner, 2));
}

TEST(RotatedRectTest, BoundingBoxCoversMatches) {
  RotatedRectPredicate rot;
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const double phi = rng.Uniform(0, M_PI / 2);
    const double px = rng.Uniform(0.1, 0.5), py = rng.Uniform(0.1, 0.5);
    const double w = rng.Uniform(0.05, 0.3), h = rng.Uniform(0.05, 0.3);
    const double qx = px + std::cos(phi) * w - std::sin(phi) * h;
    const double qy = py + std::sin(phi) * w + std::cos(phi) * h;
    QueryInstance q(std::vector<double>{px, py, qx, qy, phi});
    std::vector<double> lo, hi;
    rot.QueryBox(q, 2, &lo, &hi);
    for (int i = 0; i < 100; ++i) {
      double row[2] = {rng.Uniform(), rng.Uniform()};
      if (rot.Matches(q, row, 2)) {
        EXPECT_GE(row[0], lo[0] - 1e-9);
        EXPECT_LE(row[0], hi[0] + 1e-9);
        EXPECT_GE(row[1], lo[1] - 1e-9);
        EXPECT_LE(row[1], hi[1] + 1e-9);
      }
    }
  }
}

TEST(HalfSpaceTest, AboveLine) {
  HalfSpacePredicate pred;
  // x[1] > 2 x[0] + 0.1
  QueryInstance q(std::vector<double>{2.0, 0.1});
  double above[2] = {0.1, 0.5};
  double below[2] = {0.3, 0.5};
  EXPECT_TRUE(pred.Matches(q, above, 2));
  EXPECT_FALSE(pred.Matches(q, below, 2));
  EXPECT_EQ(pred.QueryDim(7), 2u);
}

TEST(CircularTest, InsideOutsideAndBox) {
  CircularPredicate pred(2);
  QueryInstance q(std::vector<double>{0.5, 0.5, 0.2});
  double inside[2] = {0.6, 0.6};
  double outside[2] = {0.8, 0.8};
  double boundary[2] = {0.7, 0.5};
  EXPECT_TRUE(pred.Matches(q, inside, 2));
  EXPECT_FALSE(pred.Matches(q, outside, 2));
  EXPECT_TRUE(pred.Matches(q, boundary, 2));  // closed ball
  std::vector<double> lo, hi;
  pred.QueryBox(q, 2, &lo, &hi);
  EXPECT_DOUBLE_EQ(lo[0], 0.3);
  EXPECT_DOUBLE_EQ(hi[1], 0.7);
}

// Aggregate accumulators must match the reference implementations in
// util/stats over random inputs.
class AggregateTest : public testing::TestWithParam<Aggregate> {};

TEST_P(AggregateTest, MatchesReference) {
  const Aggregate agg = GetParam();
  Rng rng(static_cast<uint64_t>(agg) + 1);
  std::vector<double> values;
  AggregateAccumulator acc(agg);
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Uniform(-10, 10);
    values.push_back(v);
    acc.Add(v);
  }
  double expected = 0.0;
  switch (agg) {
    case Aggregate::kCount: expected = 500.0; break;
    case Aggregate::kSum: expected = stats::Sum(values); break;
    case Aggregate::kAvg: expected = stats::Mean(values); break;
    case Aggregate::kStd: expected = stats::Stddev(values); break;
    case Aggregate::kMedian: expected = stats::Median(values); break;
    case Aggregate::kMin: expected = stats::Min(values); break;
    case Aggregate::kMax: expected = stats::Max(values); break;
  }
  EXPECT_NEAR(acc.Finalize(), expected, 1e-9) << AggregateName(agg);
  EXPECT_EQ(acc.count(), 500u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, AggregateTest,
    testing::Values(Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                    Aggregate::kStd, Aggregate::kMedian, Aggregate::kMin,
                    Aggregate::kMax),
    [](const testing::TestParamInfo<Aggregate>& info) {
      return AggregateName(info.param);
    });

TEST(AggregateTest, EmptySemantics) {
  EXPECT_DOUBLE_EQ(AggregateAccumulator::Evaluate(Aggregate::kCount, {}), 0.0);
  EXPECT_DOUBLE_EQ(AggregateAccumulator::Evaluate(Aggregate::kSum, {}), 0.0);
  EXPECT_TRUE(
      std::isnan(AggregateAccumulator::Evaluate(Aggregate::kAvg, {})));
  EXPECT_TRUE(
      std::isnan(AggregateAccumulator::Evaluate(Aggregate::kMedian, {})));
  EXPECT_TRUE(std::isnan(AggregateAccumulator::Evaluate(Aggregate::kMin, {})));
}

TEST(WorkloadTest, ActiveAttributeCount) {
  WorkloadConfig cfg;
  cfg.num_active = 2;
  cfg.seed = 5;
  WorkloadGenerator gen(5, cfg);
  for (int i = 0; i < 100; ++i) {
    QueryInstance q = gen.Generate();
    ASSERT_EQ(q.dim(), 10u);
    size_t active = 0;
    for (size_t a = 0; a < 5; ++a) {
      if (!(q[a] == 0.0 && q[5 + a] >= 1.0)) ++active;
    }
    EXPECT_EQ(active, 2u);
  }
}

TEST(WorkloadTest, RangesStayInDomain) {
  WorkloadConfig cfg;
  cfg.num_active = 3;
  cfg.range_frac_lo = 0.01;
  cfg.range_frac_hi = 0.9;
  cfg.seed = 6;
  WorkloadGenerator gen(4, cfg);
  for (int i = 0; i < 200; ++i) {
    QueryInstance q = gen.Generate();
    for (size_t a = 0; a < 4; ++a) {
      EXPECT_GE(q[a], 0.0);
      EXPECT_LE(q[a] + q[4 + a], 1.0 + 1e-12);
    }
  }
}

TEST(WorkloadTest, FixedAttrsAlwaysActive) {
  WorkloadConfig cfg;
  cfg.num_active = 2;
  cfg.fixed_attrs = {0, 1};
  cfg.seed = 7;
  WorkloadGenerator gen(3, cfg);
  for (int i = 0; i < 50; ++i) {
    QueryInstance q = gen.Generate();
    EXPECT_LT(q[3 + 0], 1.0);  // attr 0 has a real range
    EXPECT_LT(q[3 + 1], 1.0);
    EXPECT_DOUBLE_EQ(q[2], 0.0);  // attr 2 inactive
    EXPECT_DOUBLE_EQ(q[3 + 2], 1.0);
  }
}

TEST(WorkloadTest, FixedRangeFraction) {
  WorkloadConfig cfg;
  cfg.num_active = 1;
  cfg.range_frac_lo = cfg.range_frac_hi = 0.05;
  cfg.seed = 8;
  WorkloadGenerator gen(2, cfg);
  for (int i = 0; i < 50; ++i) {
    QueryInstance q = gen.Generate();
    for (size_t a = 0; a < 2; ++a) {
      if (q[2 + a] < 1.0) {
        EXPECT_NEAR(q[2 + a], 0.05, 1e-12);
      }
    }
  }
}

TEST(WorkloadTest, CandidateAttrsRestrictChoice) {
  WorkloadConfig cfg;
  cfg.num_active = 1;
  cfg.candidate_attrs = {2};
  cfg.seed = 9;
  WorkloadGenerator gen(4, cfg);
  for (int i = 0; i < 50; ++i) {
    QueryInstance q = gen.Generate();
    for (size_t a = 0; a < 4; ++a) {
      const bool active = !(q[a] == 0.0 && q[4 + a] >= 1.0);
      EXPECT_EQ(active, a == 2);
    }
  }
}

TEST(WorkloadTest, MinMatchesResamples) {
  // A tiny table with all data in a corner: unconstrained generation would
  // often produce empty queries; with min_matches the answers are defined.
  Table t = MakeGaussianTable(200, 2, 0.1, 0.02, 10);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 1;
  WorkloadConfig cfg;
  cfg.num_active = 1;
  cfg.range_frac_lo = cfg.range_frac_hi = 0.1;
  cfg.min_matches = 3;
  cfg.seed = 11;
  WorkloadGenerator gen(2, cfg);
  auto queries = gen.GenerateMany(30, &engine, &spec);
  for (const auto& q : queries) {
    EXPECT_GE(engine.CountMatches(spec, q), 3u);
  }
}

TEST(WorkloadTest, RotatedRectGeneration) {
  WorkloadConfig cfg;
  cfg.range_frac_lo = 0.1;
  cfg.range_frac_hi = 0.3;
  cfg.seed = 12;
  WorkloadGenerator gen(2, cfg);
  auto rects = gen.GenerateRotatedRects(40);
  for (const auto& q : rects) {
    ASSERT_EQ(q.dim(), 5u);
    EXPECT_GE(q[4], 0.0);
    EXPECT_LT(q[4], M_PI / 2);
  }
}

TEST(WorkloadTest, DeterministicBySeed) {
  WorkloadConfig cfg;
  cfg.seed = 13;
  WorkloadGenerator a(3, cfg), b(3, cfg);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a.Generate().q, b.Generate().q);
  }
}

}  // namespace
}  // namespace neurosketch
