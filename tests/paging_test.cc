// Tests for the paged sketch catalog (ISSUE 8): the bounded buffer pool
// (pin refcounts block eviction, budget is never exceeded, single-load of
// concurrent faults), the packed catalog file format, the three-state
// sketch lifecycle (ResidentBytes moves with Release/Ensure, Load comes
// up lean), bit-identical answers across evict -> fault-in round trips on
// every plan tier, and the serve-path integration (listings report both
// sizes, registered versions shadow cold entries, paged metrics export,
// 8-thread serve with concurrent eviction — the TSan battery).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/neurosketch.h"
#include "data/generators.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/buffer_pool.h"
#include "util/metrics.h"

namespace neurosketch {
namespace {

using serve::PagedCatalogOptions;
using serve::ServeEngine;
using serve::ServeKey;
using serve::SketchStore;

// ---------------------------------------------------------------------------
// BufferPool: synthetic values with exact byte accounting.

using BytePool = BufferPool<int, std::vector<char>>;

Result<BufferPoolLoaded<std::vector<char>>> MakeBlob(size_t bytes) {
  BufferPoolLoaded<std::vector<char>> out;
  out.value = std::make_shared<const std::vector<char>>(bytes, 'x');
  out.bytes = bytes;
  return out;
}

TEST(BufferPoolTest, FaultsInOnceThenHits) {
  BytePool pool(1024);
  int loads = 0;
  auto loader = [&] {
    ++loads;
    return MakeBlob(100);
  };
  for (int i = 0; i < 5; ++i) {
    auto h = pool.Pin(7, loader);
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(h.value()->size(), 100u);
  }
  EXPECT_EQ(loads, 1);
  const BufferPoolStats s = pool.Stats();
  EXPECT_EQ(s.faultins, 1u);
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.resident_bytes, 100u);
  EXPECT_EQ(s.evictions, 0u);
}

TEST(BufferPoolTest, BudgetNeverExceededProperty) {
  // 64 keys of 100 bytes against a 350-byte budget: at most 3 resident at
  // any instant. The peak is checked after EVERY operation — this is the
  // exactness property the serve-side budget gate leans on.
  BytePool pool(350);
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < 64; ++k) {
      auto h = pool.Pin(k, [] { return MakeBlob(100); });
      ASSERT_TRUE(h.ok());
      const BufferPoolStats s = pool.Stats();
      EXPECT_LE(s.resident_bytes, 350u);
      EXPECT_LE(s.peak_resident_bytes, 350u);
      EXPECT_LE(s.resident_entries, 3u);
    }
  }
  EXPECT_GT(pool.Stats().evictions, 0u);
}

TEST(BufferPoolTest, PinBlocksEvictionUntilHandleDrops) {
  // Budget fits one blob. While key 0's handle is held, faulting key 1
  // must wait on the unpin instead of evicting a pinned frame.
  BytePool pool(150);
  auto held = pool.Pin(0, [] { return MakeBlob(100); });
  ASSERT_TRUE(held.ok());

  std::atomic<bool> second_done{false};
  std::future<Status> second = std::async(std::launch::async, [&] {
    auto h = pool.Pin(1, [] { return MakeBlob(100); });
    second_done.store(true);
    return h.ok() ? Status::OK() : h.status();
  });
  // The faulting thread must be parked in admission, not completed: give
  // it ample time to (wrongly) finish if pinning were broken.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(second_done.load());
  // The pinned frame must still be resident and intact.
  EXPECT_EQ(pool.Stats().resident_bytes, 100u);
  ASSERT_NE(held.value(), nullptr);
  EXPECT_EQ(held.value()->size(), 100u);

  held.value().reset();  // unpin -> the waiter evicts key 0 and admits
  ASSERT_EQ(second.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_TRUE(second.get().ok());
  EXPECT_TRUE(second_done.load());
  const BufferPoolStats s = pool.Stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_LE(s.peak_resident_bytes, 150u);
}

TEST(BufferPoolTest, EntryLargerThanBudgetFails) {
  BytePool pool(100);
  auto h = pool.Pin(0, [] { return MakeBlob(200); });
  EXPECT_FALSE(h.ok());
  // The failed frame must not wedge the key: a fitting retry succeeds.
  auto h2 = pool.Pin(0, [] { return MakeBlob(50); });
  EXPECT_TRUE(h2.ok());
}

TEST(BufferPoolTest, ConcurrentPinsOfOneKeySingleLoad) {
  BytePool pool(0);  // unbounded: isolate the loading-latch behavior
  std::atomic<int> loads{0};
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto h = pool.Pin(42, [&] {
        loads.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return MakeBlob(64);
      });
      if (h.ok() && h.value()->size() == 64) ok.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(loads.load(), 1);
  EXPECT_EQ(ok.load(), 8);
  EXPECT_EQ(pool.Stats().faultins, 1u);
}

TEST(BufferPoolTest, PenalizedFrameIsPreferredVictim) {
  // Three 100-byte keys, budget 250: admitting key 2 needs one eviction.
  // Key 0 is far hotter than key 1, but penalized — it must go first.
  BytePool pool(250);
  { auto h = pool.Pin(0, [] { return MakeBlob(100); }); }
  { auto h = pool.Pin(1, [] { return MakeBlob(100); }); }
  pool.Touch(0, 1000.0);
  pool.Penalize(0);
  { auto h = pool.Pin(2, [] { return MakeBlob(100); }); }
  EXPECT_EQ(pool.Peek(0), nullptr);   // evicted despite its traffic
  EXPECT_NE(pool.Peek(1), nullptr);
  EXPECT_NE(pool.Peek(2), nullptr);
}

// ---------------------------------------------------------------------------
// Sketch fixtures.

struct Bench {
  std::vector<QueryInstance> train_q;
  std::vector<double> train_a;
  std::vector<QueryInstance> probes;
  NeuroSketchConfig cfg;
};

// Same shape as precision_test's bench: big enough that f32/int8 tiers
// validate, small enough to train in well under a second.
Bench MakeBench(uint64_t seed) {
  Bench b;
  Table t = MakeUniformTable(4000, 2, seed);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = seed + 1;
  WorkloadGenerator gen(2, wc);
  b.train_q = gen.GenerateMany(500, &engine, &spec);
  b.train_a = engine.AnswerBatch(spec, b.train_q);

  WorkloadConfig pc = wc;
  pc.seed = seed + 3;
  WorkloadGenerator pgen(2, pc);
  b.probes = pgen.GenerateMany(120, &engine, &spec);

  b.cfg.tree_height = 2;
  b.cfg.target_partitions = 4;
  b.cfg.n_layers = 4;
  b.cfg.l_first = 24;
  b.cfg.l_rest = 16;
  b.cfg.train.epochs = 40;
  b.cfg.seed = seed + 2;
  return b;
}

// A deliberately tiny sketch for the many-entry catalog tests.
Bench MakeTinyBench(uint64_t seed) {
  Bench b = MakeBench(seed);
  b.cfg.tree_height = 1;
  b.cfg.target_partitions = 1;
  b.cfg.n_layers = 2;
  b.cfg.l_first = 8;
  b.cfg.l_rest = 8;
  b.cfg.train.epochs = 10;
  return b;
}

QueryFunctionKey KeyFor(size_t i) {
  QueryFunctionKey key;
  key.predicate_name = AxisRangePredicate::Make()->name();
  key.agg = Aggregate::kCount;
  key.measure_col = i;  // distinct measure columns make distinct keys
  return key;
}

// Bit-identical, NaN-safe: the paging layer must never perturb a single
// answer bit, so compare representations rather than values.
void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << "answers diverge at " << i << ": " << a[i] << " vs " << b[i];
  }
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Lifecycle: ResidentBytes moves with Release/Ensure; Load comes up lean.

TEST(ResidentBytesTest, ReleaseTrainerFreesExactlyTheDelta) {
  Bench b = MakeBench(501);
  auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  NeuroSketch& ns = sk.value();

  const std::vector<double> before = ns.AnswerBatch(b.probes);
  const double scalar_before = ns.AnswerScalar(b.probes.front());
  ASSERT_TRUE(ns.trainer_resident());
  const size_t full = ns.ResidentBytes();
  const size_t disk = ns.SizeBytes();
  const size_t freed = ns.ReleaseTrainer();
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(ns.trainer_resident());
  EXPECT_EQ(ns.ResidentBytes(), full - freed);
  // Serialized size is a property of the model, not of materialization.
  EXPECT_EQ(ns.SizeBytes(), disk);
  // Answers are served from compiled plans: bit-identical without the
  // trainer, and the scalar path lazily rebuilds it on demand.
  ExpectBitIdentical(before, ns.AnswerBatch(b.probes));
  const double scalar = ns.AnswerScalar(b.probes.front());
  EXPECT_TRUE(ns.trainer_resident());  // lazy rebuild happened
  // The rebuilt trainer reproduces the pre-release scalar answer
  // bit-exactly in every tier (scalar == compiled only holds for f64,
  // where inference_plan_test already pins it).
  EXPECT_EQ(std::memcmp(&scalar, &scalar_before, sizeof(double)), 0);
}

TEST(ResidentBytesTest, ReleaseAndEnsureTierRoundTrip) {
  Bench b = MakeBench(502);
  b.cfg.plan_precision = PlanPrecision::kF32;
  auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  NeuroSketch& ns = sk.value();
  ASSERT_EQ(ns.plan_precision(), PlanPrecision::kF32);
  const std::vector<double> f32_answers = ns.AnswerBatch(b.probes);

  // The active tier is not releasable; the trainer and nothing else is
  // droppable here, so Release of the ACTIVE tier must refuse.
  EXPECT_EQ(ns.ReleaseTier(PlanPrecision::kF32), 0u);
  EXPECT_TRUE(ns.TierResident(PlanPrecision::kF32));

  // Switch to f64, drop f32, rebuild it on demand: the rebuilt tier is
  // deterministic from the f64 params, so answers come back bit-equal.
  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF64).ok());
  const size_t resident = ns.ResidentBytes();
  const size_t freed = ns.ReleaseTier(PlanPrecision::kF32);
  EXPECT_GT(freed, 0u);
  EXPECT_FALSE(ns.TierResident(PlanPrecision::kF32));
  EXPECT_TRUE(ns.has_f32_plans());  // still carried, just not resident
  EXPECT_EQ(ns.ResidentBytes(), resident - freed);
  ASSERT_TRUE(ns.SelectPrecision(PlanPrecision::kF32).ok());
  EXPECT_TRUE(ns.TierResident(PlanPrecision::kF32));
  ExpectBitIdentical(f32_answers, ns.AnswerBatch(b.probes));
}

TEST(ResidentBytesTest, LoadComesUpLean) {
  Bench b = MakeBench(503);
  auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  const std::string path = TempPath("lean.sketch");
  ASSERT_TRUE(sk.value().Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Warm-and-lean: active tier resident, trainer cold, same answers.
  EXPECT_FALSE(loaded.value().trainer_resident());
  EXPECT_TRUE(loaded.value().TierResident(loaded.value().plan_precision()));
  EXPECT_LT(loaded.value().ResidentBytes(), sk.value().ResidentBytes());
  EXPECT_EQ(loaded.value().SizeBytes(), sk.value().SizeBytes());
  ExpectBitIdentical(sk.value().AnswerBatch(b.probes),
                     loaded.value().AnswerBatch(b.probes));
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Paged catalog file format.

TEST(PagedCatalogTest, PackOpenLoadRoundTrip) {
  Bench b = MakeTinyBench(504);
  auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sk.ok()) << sk.status().ToString();
  auto shared = std::make_shared<const NeuroSketch>(std::move(sk).value());
  const std::vector<double> reference = shared->AnswerBatch(b.probes);

  std::vector<std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
      entries;
  for (size_t i = 0; i < 5; ++i) entries.emplace_back(KeyFor(i), shared);
  const std::string path = TempPath("roundtrip.cat");
  ASSERT_TRUE(WritePagedCatalog(path, entries).ok());

  auto reader = PagedCatalogReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  ASSERT_EQ(reader.value().entries().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    const PagedCatalogEntry& e = reader.value().entries()[i];
    EXPECT_EQ(e.key.measure_col, i);
    EXPECT_EQ(e.key.predicate_name, KeyFor(i).predicate_name);
    EXPECT_EQ(e.size_bytes, shared->SizeBytes());
    auto loaded = reader.value().LoadEntry(e);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectBitIdentical(reference, loaded.value().AnswerBatch(b.probes));
  }
  std::remove(path.c_str());
}

TEST(PagedCatalogTest, OpenRejectsGarbage) {
  const std::string path = TempPath("garbage.cat");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("definitely not a paged catalog", f);
    std::fclose(f);
  }
  EXPECT_FALSE(PagedCatalogReader::Open(path).ok());
  EXPECT_FALSE(PagedCatalogReader::Open(TempPath("missing.cat")).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serve-path paging.

struct PagedServeRig {
  Table table;
  std::unique_ptr<ExactEngine> engine;
  // Heap-held: SketchStore owns a shared_mutex, so the rig could not be
  // returned from Make() by value otherwise.
  std::unique_ptr<SketchStore> store = std::make_unique<SketchStore>();
  std::vector<QueryInstance> probes;
  std::vector<double> reference;  // fully-resident answers
  std::string catalog_path;
  size_t resident_one = 0;  // one faulted-in sketch's ResidentBytes
  size_t num_keys = 0;

  // Packs `num_keys` copies of one tiny trained sketch under distinct
  // keys and attaches them cold under `budget_fraction` of the
  // fully-resident footprint.
  static PagedServeRig Make(size_t num_keys, double budget_fraction,
                            const std::string& name,
                            PlanPrecision precision = PlanPrecision::kF64) {
    PagedServeRig r;
    r.num_keys = num_keys;
    Bench b = MakeTinyBench(505);
    b.cfg.plan_precision = precision;
    auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
    EXPECT_TRUE(sk.ok()) << sk.status().ToString();
    auto shared = std::make_shared<const NeuroSketch>(std::move(sk).value());
    // Keep only probes the sketch genuinely answers: a NaN answer is
    // repaired by the exact engine on the serve path, which would make
    // the bit-identity comparison meaningless for that slot.
    const std::vector<double> all = shared->AnswerBatch(b.probes);
    for (size_t i = 0; i < all.size(); ++i) {
      if (std::isnan(all[i])) continue;
      r.probes.push_back(b.probes[i]);
      r.reference.push_back(all[i]);
    }
    EXPECT_GE(r.probes.size(), 32u);

    std::vector<
        std::pair<QueryFunctionKey, std::shared_ptr<const NeuroSketch>>>
        entries;
    for (size_t i = 0; i < num_keys; ++i) {
      entries.emplace_back(KeyFor(i), shared);
    }
    r.catalog_path = TempPath(name);
    EXPECT_TRUE(WritePagedCatalog(r.catalog_path, entries).ok());

    r.table = MakeUniformTable(512, 2, 505);
    r.engine = std::make_unique<ExactEngine>(&r.table);
    EXPECT_TRUE(r.store->RegisterDataset("ds", r.engine.get()).ok());

    // Budget in units of what a faulted-in sketch ACTUALLY occupies.
    auto probe_reader = PagedCatalogReader::Open(r.catalog_path);
    EXPECT_TRUE(probe_reader.ok());
    auto probe = probe_reader.value().LoadEntry(
        probe_reader.value().entries().front());
    EXPECT_TRUE(probe.ok());
    r.resident_one = probe.value().ResidentBytes();
    PagedCatalogOptions opts;
    opts.max_resident_bytes = static_cast<size_t>(
        budget_fraction * static_cast<double>(r.resident_one * num_keys));
    EXPECT_TRUE(
        r.store->AttachPagedCatalog("ds", r.catalog_path, opts).ok());
    return r;
  }

  ServeKey Key(size_t i) const { return ServeKey{"ds", KeyFor(i)}; }

  PagedServeRig() = default;
  PagedServeRig(PagedServeRig&&) = default;
  PagedServeRig& operator=(PagedServeRig&&) = default;
  ~PagedServeRig() {
    if (!catalog_path.empty()) std::remove(catalog_path.c_str());
  }
};

TEST(PagedServeTest, CatalogOf256ServesBitIdenticalAtQuarterBudget) {
  // The ISSUE acceptance property: >= 256 cold sketches, budget capped at
  // 25% of the fully-resident footprint, answers bit-identical to the
  // fully-resident run, peak residency never above budget.
  PagedServeRig r = PagedServeRig::Make(256, 0.25, "budget256.cat");
  ASSERT_EQ(r.store->num_paged(), 256u);
  for (size_t i = 0; i < 256; ++i) {
    auto sketch = r.store->Lookup(r.Key(i));
    ASSERT_NE(sketch, nullptr) << "fault-in failed for key " << i;
    ExpectBitIdentical(r.reference, sketch->AnswerBatch(r.probes));
  }
  const BufferPoolStats s = r.store->PagedStats();
  EXPECT_GT(s.max_bytes, 0u);
  EXPECT_LE(s.peak_resident_bytes, s.max_bytes);
  EXPECT_GE(s.faultins, 256u);
  EXPECT_GT(s.evictions, 0u);  // 25% budget forces turnover
}

TEST(PagedServeTest, EvictFaultInRoundTripsBitIdenticalOnEveryTier) {
  for (PlanPrecision tier : {PlanPrecision::kF64, PlanPrecision::kF32,
                             PlanPrecision::kInt8}) {
    SCOPED_TRACE(PlanPrecisionName(tier));
    // Budget fits ~1.2 sketches: every alternation between the three
    // keys evicts the previous one, so each Lookup below is a fresh
    // evict -> fault-in round trip of the same on-disk image.
    PagedServeRig r = PagedServeRig::Make(3, 0.4, "tiertrip.cat", tier);
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < 3; ++i) {
        auto sketch = r.store->Lookup(r.Key(i));
        ASSERT_NE(sketch, nullptr);
        ExpectBitIdentical(r.reference, sketch->AnswerBatch(r.probes));
      }
    }
    const BufferPoolStats s = r.store->PagedStats();
    EXPECT_GT(s.evictions, 0u);
    EXPECT_LE(s.peak_resident_bytes, s.max_bytes);
  }
}

TEST(PagedServeTest, ListingsReportBothSizesAndColdness) {
  PagedServeRig r = PagedServeRig::Make(4, 0.5, "listing.cat");
  // All cold: on-disk size known, nothing resident.
  for (const auto& l : r.store->List()) {
    EXPECT_TRUE(l.paged);
    EXPECT_GT(l.size_bytes, 0u);
    EXPECT_EQ(l.resident_bytes, 0u);
  }
  // Fault one in: its listing now reports a genuine resident footprint
  // alongside the serialized size (two independent quantities).
  auto sketch = r.store->Lookup(r.Key(0));
  ASSERT_NE(sketch, nullptr);
  bool saw_resident = false;
  for (const auto& l : r.store->List()) {
    if (l.key.fn.measure_col != 0) continue;
    saw_resident = true;
    EXPECT_GT(l.resident_bytes, 0u);
    EXPECT_GT(l.size_bytes, 0u);
    EXPECT_TRUE(l.compiled);
  }
  EXPECT_TRUE(saw_resident);
}

TEST(PagedServeTest, RegisteredVersionShadowsColdEntry) {
  PagedServeRig r = PagedServeRig::Make(2, 1.0, "shadow.cat");
  Bench b = MakeTinyBench(777);  // a DIFFERENT model under the same key
  auto sk = NeuroSketch::Train(b.train_q, b.train_a, b.cfg);
  ASSERT_TRUE(sk.ok());
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  auto replacement =
      std::make_shared<const NeuroSketch>(std::move(sk).value());
  ASSERT_TRUE(r.store->Register("ds", spec, replacement).ok());
  // The hot swap: lookups now see the registered version, not the cold
  // catalog entry; the untouched key still faults in from disk.
  EXPECT_EQ(r.store->Lookup(r.Key(0)).get(), replacement.get());
  EXPECT_NE(r.store->Lookup(r.Key(1)), nullptr);
}

TEST(PagedServeTest, ExportMetricsCarriesPagedSeries) {
  PagedServeRig r = PagedServeRig::Make(4, 0.3, "metrics.cat");
  ServeEngine serving(r.store.get());
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 1;
  std::vector<QueryInstance> burst(r.probes.begin(), r.probes.begin() + 32);
  serving.SubmitMany("ds", spec, std::move(burst)).get();

  metrics::MetricsRegistry reg;
  serving.ExportMetrics(&reg);
  const std::string text = reg.TextExposition();
  EXPECT_NE(text.find("nsketch_serve_resident_bytes"), std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_faultins_total"), std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_evictions_total"), std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_faultin_latency_us"), std::string::npos);
  // The serve path actually faulted the store in.
  const BufferPoolStats s = r.store->PagedStats();
  EXPECT_GE(s.faultins, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
}

TEST(PagedServeTest, EightThreadServeWithConcurrentEviction) {
  // The TSan battery: 8 client threads hammer 12 paged keys through the
  // serve engine under a budget that fits only ~3 sketches, so fault-ins,
  // evictions, pins and answers all race; meanwhile observers scrape
  // listings and stats. Every answer must still be bit-identical to the
  // fully-resident reference.
  PagedServeRig r = PagedServeRig::Make(12, 0.27, "tsan.cat");
  serve::ServeOptions opts;
  opts.num_shards = 4;
  ServeEngine serving(r.store.get(), opts);

  std::atomic<bool> stop{false};
  std::thread observer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)r.store->List();
      (void)r.store->PagedStats();
      metrics::MetricsRegistry reg;
      serving.ExportMetrics(&reg);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  constexpr size_t kPerThread = 24;
  std::vector<std::thread> clients;
  std::atomic<size_t> mismatches{0};
  for (size_t t = 0; t < 8; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        const size_t key_i = (t * 5 + i) % r.num_keys;
        QueryFunctionSpec spec;
        spec.predicate = AxisRangePredicate::Make();
        spec.agg = Aggregate::kCount;
        spec.measure_col = key_i;
        std::vector<QueryInstance> burst(r.probes.begin(),
                                         r.probes.begin() + 16);
        auto results = serving.SubmitMany("ds", spec, std::move(burst)).get();
        for (size_t j = 0; j < results.size(); ++j) {
          if (std::memcmp(&results[j].value, &r.reference[j],
                          sizeof(double)) != 0) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  stop.store(true);
  observer.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const BufferPoolStats s = r.store->PagedStats();
  EXPECT_LE(s.peak_resident_bytes, s.max_bytes);
  EXPECT_GT(s.evictions, 0u);
  const auto stats = serving.Snapshot();
  EXPECT_EQ(stats.queries, 8u * kPerThread * 16u);
  EXPECT_EQ(stats.failed_answers, 0u);
}

}  // namespace
}  // namespace neurosketch
