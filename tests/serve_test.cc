// Tests for the serving subsystem: thread pool, sketch store, and the
// micro-batching serve engine (concurrency smoke, fallback routing, error
// budget) plus the serve-side metrics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "nn/inference_plan.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/thread_pool.h"

namespace neurosketch {
namespace {

using serve::ServeEngine;
using serve::ServeKey;
using serve::ServeOptions;
using serve::ServeResult;
using serve::SketchStore;

QueryFunctionSpec AvgSpec(size_t measure_col) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = measure_col;
  return spec;
}

/// Small shared fixture: a normalized GMM table, its exact engine, a
/// workload, and a quickly trained sketch.
struct ServeFixture {
  Table table;
  QueryFunctionSpec spec;
  std::vector<QueryInstance> queries;
  NeuroSketch sketch;

  static ServeFixture Make(size_t n_queries = 256) {
    ServeFixture f;
    Dataset ds = MakeGmmDataset(2000, 3, 3, /*seed=*/5);
    f.table = Normalizer::Fit(ds.table).Transform(ds.table);
    f.spec = AvgSpec(ds.measure_col);
    ExactEngine engine(&f.table);
    WorkloadConfig wc;
    wc.seed = 99;
    WorkloadGenerator gen(f.table.num_columns(), wc);
    f.queries = gen.GenerateMany(n_queries, &engine, &f.spec);

    WorkloadConfig train_wc;
    train_wc.seed = 7;
    WorkloadGenerator train_gen(f.table.num_columns(), train_wc);
    auto train_q = train_gen.GenerateMany(400, &engine, &f.spec);
    auto train_a = engine.AnswerBatch(f.spec, train_q);
    NeuroSketchConfig cfg;
    cfg.tree_height = 2;
    cfg.target_partitions = 2;
    cfg.n_layers = 3;
    cfg.l_first = 16;
    cfg.l_rest = 8;
    cfg.train.epochs = 25;
    auto sk = NeuroSketch::Train(train_q, train_a, cfg);
    EXPECT_TRUE(sk.ok()) << sk.status().ToString();
    f.sketch = std::move(sk).value();
    return f;
  }
};

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), 0,
                   [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSerialWhenParallelismOne) {
  ThreadPool pool(4);
  size_t sum = 0;  // unsynchronized on purpose: must run on caller thread
  pool.ParallelFor(100, 1, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, NestedParallelForFromPoolWorkersDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  std::atomic<int> outer_done{0};
  // Saturate every worker with a task that itself calls ParallelFor: the
  // callers must steal their helpers from the queue instead of waiting on
  // workers that are all busy doing exactly the same thing.
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&] {
      pool.ParallelFor(100, 0, [&](size_t) { total.fetch_add(1); });
      outer_done.fetch_add(1);
    });
  }
  while (outer_done.load() < 4) std::this_thread::yield();
  EXPECT_EQ(total.load(), 400u);
}

TEST(ThreadPoolTest, ParallelForFromManyClientThreads) {
  ThreadPool pool(2);
  std::vector<std::thread> clients;
  std::atomic<size_t> total{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      pool.ParallelFor(50, 0, [&](size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(total.load(), 200u);
}

TEST(ExactEngineTest, BatchThreadCountsAgree) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  const auto serial = engine.AnswerBatch(f.spec, f.queries, 1);
  const auto pooled = engine.AnswerBatch(f.spec, f.queries, 4);
  const auto hw = engine.AnswerBatch(f.spec, f.queries, 0);
  ASSERT_EQ(serial.size(), pooled.size());
  ASSERT_EQ(serial.size(), hw.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i], pooled[i]);
    EXPECT_DOUBLE_EQ(serial[i], hw[i]);
  }
}

TEST(SketchStoreTest, VersioningAndLookup) {
  ServeFixture f = ServeFixture::Make(8);
  SketchStore store;
  const ServeKey key = ServeKey::From("gmm", f.spec);
  EXPECT_EQ(store.Lookup(key), nullptr);

  auto v1 = store.Register("gmm", f.spec, std::move(f.sketch));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1.value(), 1u);
  auto latest = store.Lookup(key);
  ASSERT_NE(latest, nullptr);

  // Auto-versioning appends; Lookup returns the newest.
  auto v2 = store.Register("gmm", f.spec, latest);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2.value(), 2u);
  EXPECT_EQ(store.num_sketches(), 2u);
  EXPECT_NE(store.Lookup(key, 1), nullptr);
  EXPECT_EQ(store.Lookup(key, 3), nullptr);

  auto listings = store.List();
  ASSERT_EQ(listings.size(), 2u);
  EXPECT_EQ(listings[0].version, 2u);  // latest first per key

  EXPECT_EQ(store.Unregister(key), 2u);
  EXPECT_EQ(store.Lookup(key), nullptr);
}

TEST(SketchStoreTest, ImportFromCatalogSharesSketches) {
  ServeFixture f = ServeFixture::Make(8);
  ExactEngine engine(&f.table);
  AdvisorConfig ac;
  ac.max_buildable_aqc = 1e9;  // always build
  NeuroSketchConfig cfg;
  cfg.tree_height = 1;
  cfg.target_partitions = 1;
  cfg.n_layers = 3;
  cfg.l_first = 8;
  cfg.l_rest = 8;
  cfg.train.epochs = 5;
  SketchCatalog catalog(&engine, Advisor(ac), cfg);
  WorkloadConfig wc;
  WorkloadGenerator gen(f.table.num_columns(), wc);
  auto info = catalog.Register(f.spec, &gen, 100);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  ASSERT_TRUE(info.value().built);

  SketchStore store;
  EXPECT_EQ(store.ImportFromCatalog("gmm", catalog), 1u);
  auto served = store.Lookup(ServeKey::From("gmm", f.spec));
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served.get(), catalog.Find(f.spec).get());  // shared, not copied
}

// The headline concurrency smoke test: N client threads submit M queries
// each through the micro-batching engine; every answer must be
// bit-identical to the serial NeuroSketch::AnswerBatch result.
TEST(ServeEngineTest, ConcurrentClientsBitIdenticalToSerial) {
  constexpr size_t kClients = 8;
  constexpr size_t kPerClient = 200;
  ServeFixture f = ServeFixture::Make(kClients * kPerClient);
  const std::vector<double> expected = f.sketch.AnswerBatch(f.queries);

  SketchStore store;
  ExactEngine engine(&f.table);
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());

  ServeOptions opts;
  opts.max_batch = 64;
  opts.batch_window_us = 300.0;
  ServeEngine serve(&store, opts);

  std::vector<std::vector<double>> got(kClients,
                                       std::vector<double>(kPerClient));
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<ServeResult>> futs;
      futs.reserve(kPerClient);
      for (size_t i = 0; i < kPerClient; ++i) {
        futs.push_back(
            serve.Submit("gmm", f.spec, f.queries[c * kPerClient + i]));
      }
      for (size_t i = 0; i < kPerClient; ++i) {
        const ServeResult r = futs[i].get();
        EXPECT_TRUE(r.used_sketch);
        got[c][i] = r.value;
      }
    });
  }
  for (auto& t : clients) t.join();

  for (size_t c = 0; c < kClients; ++c) {
    for (size_t i = 0; i < kPerClient; ++i) {
      const double want = expected[c * kPerClient + i];
      // Bit-identical: the serving path must run the very same forward
      // pass math as the serial API.
      EXPECT_EQ(got[c][i], want) << "client " << c << " query " << i;
    }
  }

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries, kClients * kPerClient);
  EXPECT_EQ(stats.sketch_answers, kClients * kPerClient);
  EXPECT_EQ(stats.fallback_answers, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.mean_batch_size, 1.0);  // batching actually happened
  EXPECT_GT(stats.p50_us, 0.0);
  EXPECT_LE(stats.p50_us, stats.p99_us);
  EXPECT_LE(stats.p99_us, stats.p999_us);
}

// Fallback path: no sketch registered for the query function -> every
// query routes to the exact engine and is reported as a fallback.
TEST(ServeEngineTest, UnregisteredSketchFallsBackToExact) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  const auto expected = engine.AnswerBatch(f.spec, f.queries);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  // Note: no sketch registered.
  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 100.0;
  ServeEngine serve(&store, opts);

  std::vector<std::future<ServeResult>> futs;
  for (const auto& q : f.queries) futs.push_back(serve.Submit("gmm", f.spec, q));
  for (size_t i = 0; i < futs.size(); ++i) {
    const ServeResult r = futs[i].get();
    EXPECT_FALSE(r.used_sketch);
    EXPECT_DOUBLE_EQ(r.value, expected[i]);
  }

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries, f.queries.size());
  EXPECT_EQ(stats.fallback_answers, f.queries.size());
  EXPECT_EQ(stats.sketch_answers, 0u);
  EXPECT_DOUBLE_EQ(stats.fallback_rate, 1.0);
}

// A dataset with neither sketch nor exact engine answers NaN (rather than
// hanging the client).
TEST(ServeEngineTest, UnknownDatasetAnswersNan) {
  ServeFixture f = ServeFixture::Make(4);
  SketchStore store;
  ServeOptions opts;
  opts.batch_window_us = 0.0;
  ServeEngine serve(&store, opts);
  const ServeResult r = serve.Answer("nope", f.spec, f.queries[0]);
  EXPECT_TRUE(std::isnan(r.value));
  EXPECT_FALSE(r.used_sketch);
  EXPECT_EQ(serve.Snapshot().failed_answers, 1u);
}

/// Write a loadable sketch file whose routing is a single leaf but which
/// carries zero models: every Answer is NaN, exercising the error budget.
std::string WriteBrokenSketchFile(size_t qdim) {
  const std::string path = testing::TempDir() + "/ns_broken.sketch";
  std::ofstream out(path, std::ios::binary);
  const uint64_t dim = qdim;
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  const std::vector<double> routing = {-1.0, 0.0};  // single leaf, id 0
  const uint64_t rsize = routing.size();
  out.write(reinterpret_cast<const char*>(&rsize), sizeof(rsize));
  out.write(reinterpret_cast<const char*>(routing.data()),
            static_cast<std::streamsize>(rsize * sizeof(double)));
  const uint64_t nmodels = 0;  // leaf id 0 has no model -> NaN answers
  out.write(reinterpret_cast<const char*>(&nmodels), sizeof(nmodels));
  return path;
}

// Error budget: a sketch that cannot answer anything gets demoted after
// budget_min_samples failures and the store entry serves exact-only, while
// every individual answer is still repaired by the exact engine.
TEST(ServeEngineTest, ErrorBudgetDemotesFailingSketch) {
  ServeFixture f = ServeFixture::Make(128);
  ExactEngine engine(&f.table);
  const auto expected = engine.AnswerBatch(f.spec, f.queries);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  const std::string path = WriteBrokenSketchFile(2 * f.table.num_columns());
  auto ver = store.RegisterFromFile("gmm", f.spec, path);
  ASSERT_TRUE(ver.ok()) << ver.status().ToString();
  std::remove(path.c_str());

  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 50.0;
  opts.budget_min_samples = 32;
  opts.max_sketch_failure_rate = 0.5;
  ServeEngine serve(&store, opts);

  std::vector<std::future<ServeResult>> futs;
  for (const auto& q : f.queries) futs.push_back(serve.Submit("gmm", f.spec, q));
  for (size_t i = 0; i < futs.size(); ++i) {
    const ServeResult r = futs[i].get();
    EXPECT_FALSE(r.used_sketch);
    EXPECT_DOUBLE_EQ(r.value, expected[i]);  // repaired per query
  }

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.queries, f.queries.size());
  EXPECT_EQ(stats.fallback_answers, f.queries.size());
  EXPECT_EQ(stats.budget_trips, 1u);  // demoted exactly once
}

/// Write a loadable sketch whose routing splits dimension 0 at 0.5: the
/// left leaf has a real (untrained but finite) model, the right leaf id is
/// out of range, so a deterministic fraction of the workload NaNs — a NaN
/// storm that exercises the error-budget math with mixed traffic.
std::string WriteHalfBrokenSketchFile(size_t qdim) {
  const std::string path = testing::TempDir() + "/ns_half_broken.sketch";
  std::ofstream out(path, std::ios::binary);
  const uint64_t dim = qdim;
  out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  // Pre-order: internal (dim 0, split 0.5), leaf 0, leaf 1.
  const std::vector<double> routing = {0.0, 0.5, -1.0, 0.0, -1.0, 1.0};
  const uint64_t rsize = routing.size();
  out.write(reinterpret_cast<const char*>(&rsize), sizeof(rsize));
  out.write(reinterpret_cast<const char*>(routing.data()),
            static_cast<std::streamsize>(rsize * sizeof(double)));
  const uint64_t nmodels = 1;  // leaf 1 has no model -> NaN answers
  out.write(reinterpret_cast<const char*>(&nmodels), sizeof(nmodels));
  const double mean = 0.0, scale = 1.0;
  out.write(reinterpret_cast<const char*>(&mean), sizeof(mean));
  out.write(reinterpret_cast<const char*>(&scale), sizeof(scale));
  nn::MlpConfig cfg;
  cfg.in_dim = qdim;
  cfg.hidden = {4};
  nn::Mlp model(cfg, /*seed=*/321);
  EXPECT_TRUE(
      nn::SaveCompiledMlp(nn::CompiledMlp::FromMlp(model), &out).ok());
  return path;
}

// Corrected error-budget math: repaired (NaN) queries must not count as
// sketch answers. With a sketch that NaNs on a fixed fraction of traffic,
// a failure rate between nans/attempts (the old, diluted denominator) and
// nans/genuine must still demote — under the old accounting it never
// would.
TEST(ServeEngineTest, BudgetCountsOnlyGenuineSketchAnswers) {
  ServeFixture f = ServeFixture::Make(256);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  const std::string path =
      WriteHalfBrokenSketchFile(2 * f.table.num_columns());
  ASSERT_TRUE(store.RegisterFromFile("gmm", f.spec, path).ok());
  std::remove(path.c_str());

  // Ground truth for this workload straight from the registered sketch.
  auto sketch = store.Lookup(ServeKey::From("gmm", f.spec));
  ASSERT_NE(sketch, nullptr);
  const auto direct = sketch->AnswerBatch(f.queries);
  size_t nans = 0;
  for (double a : direct) nans += std::isnan(a) ? 1 : 0;
  const size_t genuine = f.queries.size() - nans;
  ASSERT_GT(nans, 0u) << "workload never hits the broken leaf";
  ASSERT_GT(genuine, 0u) << "workload never hits the healthy leaf";

  const double diluted =
      static_cast<double>(nans) / static_cast<double>(f.queries.size());
  const double corrected =
      static_cast<double>(nans) / static_cast<double>(genuine);
  ASSERT_LT(diluted, corrected);

  ServeOptions opts;
  opts.max_batch = f.queries.size();  // one batch, one budget update
  opts.batch_window_us = 10000.0;
  opts.budget_min_samples = f.queries.size();
  opts.max_sketch_failure_rate = 0.5 * (diluted + corrected);
  {
    ServeEngine serve(&store, opts);
    (void)serve.SubmitMany("gmm", f.spec, f.queries).get();
    const auto stats = serve.Snapshot();
    EXPECT_EQ(stats.sketch_answers, genuine);  // repairs excluded
    EXPECT_EQ(stats.fallback_answers + stats.failed_answers, nans);
    EXPECT_EQ(stats.budget_trips, 1u)
        << "rate above nans/attempts but below nans/genuine must demote";
    // Demoted: the next wave is answered exact-only.
    auto repaired = serve.SubmitMany("gmm", f.spec, f.queries).get();
    for (const auto& r : repaired) EXPECT_FALSE(r.used_sketch);
  }
  {
    // Just above the corrected threshold: the budget must hold.
    ServeOptions lax = opts;
    lax.max_sketch_failure_rate = corrected * 1.05;
    ServeEngine serve(&store, lax);
    (void)serve.SubmitMany("gmm", f.spec, f.queries).get();
    EXPECT_EQ(serve.Snapshot().budget_trips, 0u);
  }
}

// f32-tier serving: a sketch trained with f32 plans reports its tier in
// the store listing and the engine counts its answers as f32.
TEST(ServeEngineTest, F32SketchAnswersAreCounted) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  ASSERT_TRUE(f.sketch.EnableF32(
      f.queries, NeuroSketchConfig().f32_error_bound));
  ASSERT_EQ(f.sketch.plan_precision(), PlanPrecision::kF32);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  const auto listings = store.List();
  ASSERT_EQ(listings.size(), 1u);
  EXPECT_EQ(listings[0].precision, PlanPrecision::kF32);

  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 100.0;
  ServeEngine serve(&store, opts);
  auto results = serve.SubmitMany("gmm", f.spec, f.queries).get();
  size_t sketch_answered = 0;
  for (const auto& r : results) sketch_answered += r.used_sketch ? 1 : 0;

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.sketch_answers, sketch_answered);
  EXPECT_EQ(stats.f32_sketch_answers, sketch_answered);
  EXPECT_GT(stats.f32_sketch_answers, 0u);
}

// int8-tier serving: a sketch with an activated int8 tier reports it in
// the store listing and the engine counts its answers as int8 (and not as
// f32 — the per-tier counters are disjoint subsets of sketch_answers).
TEST(ServeEngineTest, Int8SketchAnswersAreCounted) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  if (!f.sketch.EnableInt8(f.queries, NeuroSketchConfig().int8_error_bound)) {
    GTEST_SKIP() << "int8 out of bound on this fixture (measured "
                 << f.sketch.int8_max_divergence() << ")";
  }
  ASSERT_EQ(f.sketch.plan_precision(), PlanPrecision::kInt8);

  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  const auto listings = store.List();
  ASSERT_EQ(listings.size(), 1u);
  EXPECT_EQ(listings[0].precision, PlanPrecision::kInt8);

  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 100.0;
  ServeEngine serve(&store, opts);
  auto results = serve.SubmitMany("gmm", f.spec, f.queries).get();
  size_t sketch_answered = 0;
  for (const auto& r : results) sketch_answered += r.used_sketch ? 1 : 0;

  const auto stats = serve.Snapshot();
  EXPECT_EQ(stats.sketch_answers, sketch_answered);
  EXPECT_EQ(stats.int8_sketch_answers, sketch_answered);
  EXPECT_GT(stats.int8_sketch_answers, 0u);
  EXPECT_EQ(stats.f32_sketch_answers, 0u);
}

// Per-store accounting: traffic split across two datasets — one with a
// sketch, one exact-only — must come back attributed per store, with the
// per-store counters summing to the engine totals.
TEST(ServeEngineTest, PerStoreStatsAttributeTrafficByKey) {
  ServeFixture f = ServeFixture::Make(96);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("hot", &engine).ok());
  ASSERT_TRUE(store.RegisterDataset("cold", &engine).ok());
  ASSERT_TRUE(store.Register("hot", f.spec, std::move(f.sketch)).ok());
  // No sketch for "cold": exact fallback only.

  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 100.0;
  ServeEngine serve(&store, opts);
  // Skewed load: 2/3 of the traffic on the hot store.
  std::vector<QueryInstance> hot_q(f.queries.begin(), f.queries.begin() + 64);
  std::vector<QueryInstance> cold_q(f.queries.begin() + 64, f.queries.end());
  auto hot_fut = serve.SubmitMany("hot", f.spec, hot_q);
  auto cold_fut = serve.SubmitMany("cold", f.spec, cold_q);
  const auto hot_res = hot_fut.get();
  const auto cold_res = cold_fut.get();
  ASSERT_EQ(hot_res.size(), 64u);
  ASSERT_EQ(cold_res.size(), 32u);

  const auto stats = serve.Snapshot();
  ASSERT_EQ(stats.per_store.size(), 2u);  // sorted by display key
  const auto& cold = stats.per_store[0];
  const auto& hot = stats.per_store[1];
  EXPECT_EQ(cold.store.rfind("cold/", 0), 0u) << cold.store;
  EXPECT_EQ(hot.store.rfind("hot/", 0), 0u) << hot.store;

  EXPECT_EQ(hot.queries, 64u);
  EXPECT_EQ(cold.queries, 32u);
  EXPECT_EQ(cold.sketch_answers, 0u);
  EXPECT_EQ(cold.fallback_answers, 32u);
  EXPECT_DOUBLE_EQ(cold.fallback_rate, 1.0);
  EXPECT_FALSE(cold.demoted);
  size_t hot_sketch = 0;
  for (const auto& r : hot_res) hot_sketch += r.used_sketch ? 1 : 0;
  EXPECT_EQ(hot.sketch_answers, hot_sketch);
  EXPECT_GT(hot.sketch_answers, 0u);

  // Per-store counters must sum to the engine-wide totals (all futures
  // resolved => all Fulfills landed).
  EXPECT_EQ(hot.queries + cold.queries, stats.queries);
  EXPECT_EQ(hot.sketch_answers + cold.sketch_answers, stats.sketch_answers);
  EXPECT_EQ(hot.fallback_answers + cold.fallback_answers,
            stats.fallback_answers);
  EXPECT_EQ(hot.latency.count, hot.queries);
  EXPECT_GT(hot.latency.p99_us, 0.0);
  EXPECT_LE(hot.latency.p99_us, hot.latency.p999_us);
}

// ResetStats restarts the whole stats window as one operation: counters,
// histograms (engine, stage, per-store), the slow-query ring, and the
// elapsed clock all restart together.
TEST(ServeEngineTest, ResetStatsRestartsTheWindowAtomically) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 50.0;
  ServeEngine serve(&store, opts);

  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();
  const auto before = serve.Snapshot();
  EXPECT_EQ(before.queries, f.queries.size());
  EXPECT_GT(before.p50_us, 0.0);

  serve.ResetStats();
  const auto after = serve.Snapshot();
  EXPECT_EQ(after.queries, 0u);
  EXPECT_EQ(after.batches, 0u);
  EXPECT_DOUBLE_EQ(after.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(after.p999_us, 0.0);
  EXPECT_EQ(after.stage_queue.count, 0u);
  EXPECT_EQ(after.stage_inference.count, 0u);
  EXPECT_LT(after.elapsed_seconds, before.elapsed_seconds);
  for (const auto& ss : after.per_store) {
    EXPECT_EQ(ss.queries, 0u);
    EXPECT_EQ(ss.latency.count, 0u);
  }
  EXPECT_TRUE(serve.SlowQueries().empty());

  // The window is live again: new traffic counts from zero.
  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();
  EXPECT_EQ(serve.Snapshot().queries, f.queries.size());
}

/// Polls Snapshot until the trailing stage-histogram adds of the final
/// in-flight batch land (they happen after the last promise resolves).
serve::ServeStats SettledSnapshot(const ServeEngine& serve) {
  serve::ServeStats s = serve.Snapshot();
  for (int spin = 0; spin < 2000; ++spin) {
    if (s.batches > 0 && s.stage_fulfill.count >= s.batches &&
        s.stage_queue.count >= s.queries) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    s = serve.Snapshot();
  }
  return s;
}

// Stage tracing splits submit->answer into queue / assembly / inference /
// fulfill: queue counts requests, the other stages count micro-batches.
TEST(ServeEngineTest, StageTracingRecordsPerStageHistograms) {
  ServeFixture f = ServeFixture::Make(128);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  ServeOptions opts;
  opts.max_batch = 32;
  opts.batch_window_us = 100.0;
  ASSERT_TRUE(opts.stage_tracing);  // tracing is the default
  ServeEngine serve(&store, opts);
  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();

  const auto stats = SettledSnapshot(serve);
  EXPECT_TRUE(stats.stage_tracing);
  EXPECT_EQ(stats.stage_queue.count, stats.queries);
  EXPECT_EQ(stats.stage_assembly.count, stats.batches);
  EXPECT_EQ(stats.stage_inference.count, stats.batches);
  EXPECT_EQ(stats.stage_fulfill.count, stats.batches);
  // Queue wait dominates under a 100us window; inference is live too.
  EXPECT_GT(stats.stage_queue.p50_us, 0.0);
  EXPECT_LE(stats.stage_queue.p50_us, stats.stage_queue.p999_us);
}

TEST(ServeEngineTest, TracingOffSkipsStagesAndRing) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 50.0;
  opts.stage_tracing = false;
  ServeEngine serve(&store, opts);
  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();

  const auto stats = serve.Snapshot();
  EXPECT_FALSE(stats.stage_tracing);
  EXPECT_EQ(stats.stage_queue.count, 0u);
  EXPECT_EQ(stats.stage_inference.count, 0u);
  EXPECT_TRUE(serve.SlowQueries().empty());
  // The always-on aggregate view still works.
  EXPECT_EQ(stats.queries, f.queries.size());
  EXPECT_GT(stats.p50_us, 0.0);
  ASSERT_EQ(stats.per_store.size(), 1u);
  EXPECT_EQ(stats.per_store[0].queries, f.queries.size());
}

// The slow-query ring holds the K slowest answers with a stage breakdown
// that sums back to the total.
TEST(ServeEngineTest, SlowQueryRingCapturesStageBreakdown) {
  ServeFixture f = ServeFixture::Make(256);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  ServeOptions opts;
  opts.max_batch = 32;
  opts.batch_window_us = 100.0;
  opts.slow_query_capacity = 4;
  ServeEngine serve(&store, opts);
  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();
  (void)SettledSnapshot(serve);

  const auto slow = serve.SlowQueries();
  ASSERT_GE(slow.size(), 1u);
  ASSERT_LE(slow.size(), 4u);
  for (size_t i = 1; i < slow.size(); ++i) {
    EXPECT_GE(slow[i - 1].total_us, slow[i].total_us);  // slowest first
  }
  for (const auto& t : slow) {
    EXPECT_GT(t.total_us, 0.0);
    EXPECT_GE(t.queue_us, 0.0);
    EXPECT_GE(t.assembly_us, 0.0);
    EXPECT_GE(t.inference_us, 0.0);
    EXPECT_GE(t.fulfill_us, 0.0);
    // Stages partition the total (fulfill is the clamped residual).
    EXPECT_LE(t.queue_us + t.assembly_us + t.inference_us, t.total_us + 1e-6);
    EXPECT_EQ(t.store, slow.front().store);
    EXPECT_FALSE(t.tier.empty());
    EXPECT_GT(t.batch_size, 0u);
  }
}

// ExportMetrics mirrors serve counters + histograms into a registry whose
// text exposition is then one uniform document.
TEST(ServeEngineTest, ExportMetricsProducesExposition) {
  ServeFixture f = ServeFixture::Make(64);
  ExactEngine engine(&f.table);
  SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store.Register("gmm", f.spec, std::move(f.sketch)).ok());
  ServeOptions opts;
  opts.max_batch = 16;
  opts.batch_window_us = 50.0;
  ServeEngine serve(&store, opts);
  (void)serve.SubmitMany("gmm", f.spec, f.queries).get();

  metrics::MetricsRegistry reg;
  serve.ExportMetrics(&reg);
  const std::string text = reg.TextExposition();
  EXPECT_NE(text.find("# TYPE nsketch_serve_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_queries_total " +
                      std::to_string(f.queries.size())),
            std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_latency_us_bucket{le=\""),
            std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_stage_us_bucket{stage=\"queue\",le=\""),
            std::string::npos);
  EXPECT_NE(text.find("nsketch_serve_store_queries_total{store=\"gmm/"),
            std::string::npos);
  const std::string json = reg.Json();
  EXPECT_NE(json.find("\"nsketch_serve_queries_total\": "), std::string::npos);
}

TEST(LatencyHistogramTest, PercentilesLandInBucketTolerance) {
  serve::LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.Add(100.0);
  EXPECT_EQ(h.TotalCount(), 1000u);
  // Log-bucketed: the midpoint is within ~19% of the true value.
  EXPECT_NEAR(h.PercentileUs(50), 100.0, 20.0);
  for (int i = 0; i < 9000; ++i) h.Add(10.0);
  EXPECT_NEAR(h.PercentileUs(50), 10.0, 2.0);
  EXPECT_NEAR(h.PercentileUs(99), 100.0, 20.0);
}

}  // namespace
}  // namespace neurosketch
