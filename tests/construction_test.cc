// Tests for the Theorem 3.4 / Algorithm 1 constructive network: exact
// memorization at grid vertices (Lemma A.1), constant behaviour inside the
// inner cell region (Lemma A.2a), the 1-norm error bound (Eq. 7), and the
// CS+SGD trainable variant (Appendix A.5) — plus the NeuroSketch
// construction-pipeline phase accounting (BuildStats).
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/neurosketch.h"
#include "nn/construction.h"
#include "util/random.h"

namespace neurosketch {
namespace nn {
namespace {

TEST(VertexDigitsTest, MatchesPaperExample) {
  // Paper: t = 3, pi^6 = (1, 2) since 6 = 1*(t+1) + 2.
  auto digits = GUnitNetwork::VertexDigits(6, /*d=*/2, /*t=*/3);
  ASSERT_EQ(digits.size(), 2u);
  EXPECT_EQ(digits[0], 1u);
  EXPECT_EQ(digits[1], 2u);
}

TEST(VertexDigitsTest, EnumeratesAllVertices) {
  const size_t d = 3, t = 2;
  std::set<std::vector<size_t>> seen;
  for (size_t i = 0; i < 27; ++i) {
    seen.insert(GUnitNetwork::VertexDigits(i, d, t));
  }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(ConstructTest, RejectsBadArguments) {
  auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(GUnitNetwork::Construct(f, 0, 3).ok());
  EXPECT_FALSE(GUnitNetwork::Construct(f, 2, 0).ok());
  EXPECT_FALSE(GUnitNetwork::Construct(f, 2, 3, 0.5).ok());
  // (t+1)^d unit blow-up guard.
  EXPECT_FALSE(GUnitNetwork::Construct(f, 10, 10).ok());
}

// Lemma A.1 (memorization): f(p) == f̂(p) for all grid vertices, across
// dimensions and resolutions.
class MemorizationTest
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(MemorizationTest, AllVerticesExact) {
  auto [d, t] = GetParam();
  // A non-trivial smooth target.
  auto f = [](const std::vector<double>& x) {
    double acc = 0.3;
    for (size_t i = 0; i < x.size(); ++i) {
      acc += std::sin(3.0 * x[i] + static_cast<double>(i));
    }
    return acc;
  };
  auto net = GUnitNetwork::Construct(f, d, t, /*big_m=*/1.0);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  const size_t k = static_cast<size_t>(
      std::pow(static_cast<double>(t + 1), static_cast<double>(d)));
  for (size_t i = 0; i < k; ++i) {
    auto digits = GUnitNetwork::VertexDigits(i, d, t);
    std::vector<double> x(d);
    for (size_t r = 0; r < d; ++r) {
      x[r] = static_cast<double>(digits[r]) / static_cast<double>(t);
    }
    EXPECT_NEAR(net.value().Evaluate(x), f(x), 1e-9)
        << "vertex " << i << " d=" << d << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(
    GridSweep, MemorizationTest,
    testing::Combine(testing::Values<size_t>(1, 2, 3),
                     testing::Values<size_t>(1, 2, 3, 4, 6)));

// Lemma A.2 (a): with M > 1, f̂ is constant on the sub-cell
// C_i = { pi/t + z, z in [0, 1/t - 1/(Mt)]^d } and equals f(pi/t).
TEST(BoundedChangeTest, ConstantInsideInnerCell) {
  const size_t d = 2, t = 4;
  const double M = 4.0;
  auto f = [](const std::vector<double>& x) {
    return x[0] * x[0] + 0.5 * x[1];
  };
  auto net = GUnitNetwork::Construct(f, d, t, M);
  ASSERT_TRUE(net.ok());
  Rng rng(77);
  const double inner = 1.0 / t - 1.0 / (M * t);
  for (int cell = 0; cell < 16; ++cell) {
    const size_t cx = rng.Index(t), cy = rng.Index(t);
    const std::vector<double> vertex = {static_cast<double>(cx) / t,
                                        static_cast<double>(cy) / t};
    const double at_vertex = net.value().Evaluate(vertex);
    EXPECT_NEAR(at_vertex, f(vertex), 1e-9);
    for (int s = 0; s < 8; ++s) {
      std::vector<double> x = {vertex[0] + rng.Uniform(0.0, inner),
                               vertex[1] + rng.Uniform(0.0, inner)};
      EXPECT_NEAR(net.value().Evaluate(x), at_vertex, 1e-9)
          << "cell (" << cx << "," << cy << ")";
    }
  }
}

// Eq. 7: the 1-norm error is bounded by ~3 rho d / t for Lipschitz f.
// Monte-Carlo integrate the error and compare against the bound.
class ErrorBoundTest : public testing::TestWithParam<size_t> {};

TEST_P(ErrorBoundTest, OneNormErrorWithinTheoremBound) {
  const size_t t = GetParam();
  const size_t d = 2;
  const double rho = 2.0;  // f below is rho-Lipschitz in the 1-norm
  auto f = [](const std::vector<double>& x) {
    return std::fabs(x[0] - 0.4) + std::fabs(x[1] - 0.6);
  };
  auto net_r = GUnitNetwork::Construct(f, d, t, 1.0);
  ASSERT_TRUE(net_r.ok());
  const auto& net = net_r.value();
  Rng rng(t);
  double acc = 0.0;
  const int samples = 4000;
  for (int i = 0; i < samples; ++i) {
    std::vector<double> x = {rng.Uniform(), rng.Uniform()};
    acc += std::fabs(net.Evaluate(x) - f(x));
  }
  const double mc_error = acc / samples;
  const double bound =
      3.0 * rho * static_cast<double>(d) / static_cast<double>(t);
  EXPECT_LE(mc_error, bound) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, ErrorBoundTest,
                         testing::Values<size_t>(2, 4, 8, 16));

TEST(ErrorBoundTest, ErrorShrinksWithResolution) {
  const size_t d = 1;
  auto f = [](const std::vector<double>& x) { return std::sin(4.0 * x[0]); };
  double prev = 1e9;
  for (size_t t : {2, 4, 8, 16, 32}) {
    auto net = GUnitNetwork::Construct(f, d, t, 1.0);
    ASSERT_TRUE(net.ok());
    Rng rng(t);
    double acc = 0.0;
    for (int i = 0; i < 2000; ++i) {
      std::vector<double> x = {rng.Uniform()};
      acc += std::fabs(net.value().Evaluate(x) - f(x));
    }
    const double err = acc / 2000.0;
    EXPECT_LT(err, prev * 1.05);  // monotone up to MC noise
    prev = err;
  }
  EXPECT_LT(prev, 0.05);
}

TEST(ParamCountTest, MatchesClosedForm) {
  auto f = [](const std::vector<double>&) { return 1.0; };
  auto net = GUnitNetwork::Construct(f, 2, 3, 1.0);
  ASSERT_TRUE(net.ok());
  // k = (t+1)^d - 1 = 15 g-units; params = k(d+1) + 1.
  EXPECT_EQ(net.value().num_units(), 15u);
  EXPECT_EQ(net.value().num_params(), 15u * 3 + 1);
}

TEST(ConstantFunctionTest, AllUnitScalesZero) {
  auto f = [](const std::vector<double>&) { return 7.5; };
  auto net = GUnitNetwork::Construct(f, 2, 3, 1.0);
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net.value().output_bias(), 7.5);
  for (double a : net.value().unit_scales()) EXPECT_NEAR(a, 0.0, 1e-12);
  EXPECT_NEAR(net.value().Evaluate({0.123, 0.456}), 7.5, 1e-12);
}

TEST(CsSgdTest, SgdReducesLossFromConstructionInit) {
  // CS+SGD (Appendix A.5): construction as initialization, then SGD.
  const size_t d = 2, t = 3;
  auto f = [](const std::vector<double>& x) {
    return std::sin(5.0 * x[0]) * std::cos(3.0 * x[1]);
  };
  auto net_r = GUnitNetwork::Construct(f, d, t, 1.0);
  ASSERT_TRUE(net_r.ok());
  GUnitNetwork net = std::move(net_r).value();

  Rng rng(55);
  const size_t n = 400;
  Matrix inputs(n, d), targets(n, 1);
  for (size_t i = 0; i < n; ++i) {
    inputs(i, 0) = rng.Uniform();
    inputs(i, 1) = rng.Uniform();
    targets(i, 0) = f({inputs(i, 0), inputs(i, 1)});
  }
  auto eval_loss = [&]() {
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double y = net.Evaluate({inputs(i, 0), inputs(i, 1)});
      acc += (y - targets(i, 0)) * (y - targets(i, 0));
    }
    return acc / n;
  };
  const double before = eval_loss();
  net.TrainSgd(inputs, targets, /*epochs=*/60, /*batch=*/32, /*lr=*/0.05,
               /*seed=*/56);
  const double after = eval_loss();
  EXPECT_LT(after, before);
}

TEST(CsSgdTest, TrainOnMismatchedDimsIsNoOp) {
  auto f = [](const std::vector<double>&) { return 0.0; };
  auto net = GUnitNetwork::Construct(f, 2, 2, 1.0);
  ASSERT_TRUE(net.ok());
  Matrix inputs(4, 3), targets(4, 1);  // wrong input dim
  EXPECT_DOUBLE_EQ(
      net.value().TrainSgd(inputs, targets, 5, 2, 0.01, 1), 0.0);
}

// BuildStats splits the construction pipeline into per-phase wall times:
// partition (kd-tree + AQC merge), train (per-leaf MLPs + plans), and
// calibrate (narrow-tier validate/calibrate replays). A narrow-tier build
// must populate all three; a default f64 build performs no calibration
// replay and must report exactly 0 for that phase.
TEST(BuildStatsTest, AllThreePhaseTimesPopulated) {
  Rng rng(4100);
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  for (int i = 0; i < 800; ++i) {
    const double c = rng.Uniform(), r = rng.Uniform(0.0, 0.5);
    queries.push_back(QueryInstance(std::vector<double>{c, r}));
    answers.push_back(std::cos(3.0 * c) + 2.0 * r);
  }
  NeuroSketchConfig cfg;
  cfg.tree_height = 3;
  cfg.target_partitions = 4;
  cfg.n_layers = 3;
  cfg.l_first = 12;
  cfg.l_rest = 8;
  cfg.train.epochs = 10;
  cfg.seed = 4101;
  cfg.plan_precision = PlanPrecision::kInt8;
  auto sketch = NeuroSketch::Train(queries, answers, cfg);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  const auto& stats = sketch.value().stats();
  EXPECT_GT(stats.partition_seconds, 0.0);
  EXPECT_GT(stats.train_seconds, 0.0);
  EXPECT_GT(stats.calibrate_seconds, 0.0);

  if (!ForceF32PlansFromEnv() && !ForceInt8PlansFromEnv()) {
    cfg.plan_precision = PlanPrecision::kF64;
    auto plain = NeuroSketch::Train(queries, answers, cfg);
    ASSERT_TRUE(plain.ok());
    EXPECT_GT(plain.value().stats().partition_seconds, 0.0);
    EXPECT_GT(plain.value().stats().train_seconds, 0.0);
    EXPECT_EQ(plain.value().stats().calibrate_seconds, 0.0)
        << "f64 builds run no calibrate/validate replay";
  }
}

}  // namespace
}  // namespace nn
}  // namespace neurosketch
