// Tests for the parametric-query front end (Sec. 4.3 parametric WHERE
// clauses -> query functions).
#include <gtest/gtest.h>

#include "data/generators.h"
#include "query/engine.h"
#include "query/parametric.h"
#include "query/predicate.h"

namespace neurosketch {
namespace {

Schema ThreeCols() {
  Schema s;
  s.columns = {"price", "quantity", "profit"};
  return s;
}

TEST(ParametricTest, ParsesBetween) {
  auto pq = ParametricQuery::Parse(
      "SELECT AVG(profit) FROM sales WHERE price BETWEEN ?lo AND ?hi",
      ThreeCols());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq.value().spec().agg, Aggregate::kAvg);
  EXPECT_EQ(pq.value().spec().measure_col, 2u);
  EXPECT_EQ(pq.value().parameter_names(),
            (std::vector<std::string>{"lo", "hi"}));
  auto q = pq.value().Bind({0.2, 0.6});
  ASSERT_TRUE(q.ok());
  // (c, r) encoding: price in [0.2, 0.6), others unconstrained.
  EXPECT_DOUBLE_EQ(q.value()[0], 0.2);
  EXPECT_DOUBLE_EQ(q.value()[3 + 0], 0.4);
  EXPECT_DOUBLE_EQ(q.value()[1], 0.0);
  EXPECT_DOUBLE_EQ(q.value()[3 + 1], 1.0);
}

TEST(ParametricTest, ParsesOneSidedBounds) {
  auto pq = ParametricQuery::Parse(
      "SELECT SUM(profit) FROM t WHERE quantity >= ?q AND price < ?p",
      ThreeCols());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto q = pq.value().Bind({0.3, 0.8});
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q.value()[1], 0.3);            // quantity lower
  EXPECT_DOUBLE_EQ(q.value()[3 + 1], 0.7);        // up to 1.0
  EXPECT_DOUBLE_EQ(q.value()[0], 0.0);            // price lower default
  EXPECT_DOUBLE_EQ(q.value()[3 + 0], 0.8);        // price upper bound
}

TEST(ParametricTest, CountStar) {
  auto pq = ParametricQuery::Parse(
      "SELECT COUNT(*) FROM t WHERE price > ?x", ThreeCols());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq.value().spec().agg, Aggregate::kCount);
  auto bad = ParametricQuery::Parse("SELECT AVG(*) FROM t", ThreeCols());
  EXPECT_FALSE(bad.ok());
}

TEST(ParametricTest, NoWhereClauseMeansFullDomain) {
  auto pq = ParametricQuery::Parse("SELECT MEDIAN(profit) FROM t",
                                   ThreeCols());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_TRUE(pq.value().parameter_names().empty());
  auto q = pq.value().Bind({});
  ASSERT_TRUE(q.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(q.value()[i], 0.0);
    EXPECT_DOUBLE_EQ(q.value()[3 + i], 1.0);
  }
}

TEST(ParametricTest, CaseInsensitiveKeywords) {
  auto pq = ParametricQuery::Parse(
      "select avg(profit) from t where price between ?a and ?b",
      ThreeCols());
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  EXPECT_EQ(pq.value().aggregate_name(), "AVG");
}

TEST(ParametricTest, StddevAliases) {
  for (const char* agg : {"STD", "STDDEV", "STDEV"}) {
    auto pq = ParametricQuery::Parse(
        std::string("SELECT ") + agg + "(profit) FROM t", ThreeCols());
    ASSERT_TRUE(pq.ok()) << agg;
    EXPECT_EQ(pq.value().spec().agg, Aggregate::kStd);
  }
}

TEST(ParametricTest, RejectsBadInput) {
  Schema s = ThreeCols();
  EXPECT_FALSE(ParametricQuery::Parse("", s).ok());
  EXPECT_FALSE(ParametricQuery::Parse("SELECT FOO(profit) FROM t", s).ok());
  EXPECT_FALSE(
      ParametricQuery::Parse("SELECT AVG(nope) FROM t", s).ok());
  EXPECT_FALSE(ParametricQuery::Parse(
                   "SELECT AVG(profit) FROM t WHERE nope > ?x", s)
                   .ok());
  EXPECT_FALSE(ParametricQuery::Parse(
                   "SELECT AVG(profit) FROM t WHERE price = ?x", s)
                   .ok());
  // Reused parameter.
  EXPECT_FALSE(ParametricQuery::Parse(
                   "SELECT AVG(profit) FROM t WHERE price > ?x AND "
                   "quantity > ?x",
                   s)
                   .ok());
}

TEST(ParametricTest, BindValidation) {
  auto pq = ParametricQuery::Parse(
      "SELECT AVG(profit) FROM t WHERE price BETWEEN ?lo AND ?hi",
      ThreeCols());
  ASSERT_TRUE(pq.ok());
  EXPECT_FALSE(pq.value().Bind({0.5}).ok());          // wrong count
  EXPECT_FALSE(pq.value().Bind({0.8, 0.2}).ok());     // hi < lo
  auto named = pq.value().BindNamed({{"lo", 0.1}, {"hi", 0.9}});
  ASSERT_TRUE(named.ok());
  EXPECT_DOUBLE_EQ(named.value()[0], 0.1);
  EXPECT_FALSE(pq.value().BindNamed({{"lo", 0.1}}).ok());  // missing hi
}

TEST(ParametricTest, EndToEndAgainstEngine) {
  // Bind a parsed template and answer it exactly; must match a manually
  // constructed query instance.
  Table t = MakeUniformTable(5000, 3, 99);
  Schema s = ThreeCols();
  Table named(s);
  ASSERT_TRUE(named.SetColumns({t.column(0), t.column(1), t.column(2)}).ok());
  ExactEngine engine(&named);
  auto pq = ParametricQuery::Parse(
      "SELECT AVG(profit) FROM t WHERE price BETWEEN ?lo AND ?hi "
      "AND quantity >= ?q",
      s);
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();
  auto q = pq.value().Bind({0.2, 0.7, 0.4});
  ASSERT_TRUE(q.ok());
  QueryInstance manual =
      QueryInstance::AxisRange({0.2, 0.4, 0.0}, {0.5, 0.6, 1.0});
  EXPECT_DOUBLE_EQ(engine.Answer(pq.value().spec(), q.value()),
                   engine.Answer(pq.value().spec(), manual));
}

}  // namespace
}  // namespace neurosketch
