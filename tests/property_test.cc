// Cross-module property sweeps (TEST_P): invariants that must hold over
// wide parameter ranges rather than single hand-picked cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <tuple>

#include "baselines/spn.h"
#include "baselines/tree_agg.h"
#include "core/drift.h"
#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/generators.h"
#include "data/normalizer.h"
#include "data/streaming_table.h"
#include "index/kdtree.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "serve/delta_buffer.h"
#include "serve/refresh.h"
#include "serve/serve_engine.h"
#include "serve/sketch_store.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure;
  return spec;
}

// ---------------------------------------------------------------------
// SPN COUNT must approximate the exact engine across dimensionalities and
// RDC thresholds on independent data (where the product decomposition is
// exact up to histogram resolution).
class SpnCountSweep
    : public testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(SpnCountSweep, CountNearExactOnUniform) {
  auto [dim, rdc] = GetParam();
  Table t = MakeUniformTable(15000, dim, 2000 + dim);
  ExactEngine engine(&t);
  SpnConfig cfg;
  cfg.rdc_threshold = rdc;
  Spn spn = Spn::Build(t, cfg);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, dim - 1);
  WorkloadConfig wc;
  wc.num_active = std::min<size_t>(2, dim);
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.6;
  wc.seed = 2100 + dim;
  WorkloadGenerator gen(dim, wc);
  auto queries = gen.GenerateMany(25, &engine, &spec);
  std::vector<double> truth, pred;
  for (const auto& q : queries) {
    auto r = spn.Answer(spec, q);
    ASSERT_TRUE(r.ok());
    truth.push_back(engine.Answer(spec, q));
    pred.push_back(r.value());
  }
  EXPECT_LT(stats::NormalizedMae(truth, pred), 0.06)
      << "dim=" << dim << " rdc=" << rdc;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpnCountSweep,
    testing::Combine(testing::Values<size_t>(2, 3, 5),
                     testing::Values(0.1, 0.3, 1.01)));

// ---------------------------------------------------------------------
// TREE-AGG with a 100% sample must equal the exact engine for every
// aggregate and for each predicate family with a bounding box.
class TreeAggExactSweep : public testing::TestWithParam<Aggregate> {};

TEST_P(TreeAggExactSweep, FullSampleEqualsEngine) {
  const Aggregate agg = GetParam();
  Table t = MakeGmmDataset(3000, 3, 5, 2200).table;
  ExactEngine engine(&t);
  TreeAggConfig cfg;
  cfg.sample_size = t.num_rows();
  TreeAgg ta = TreeAgg::Build(t, cfg);
  QueryFunctionSpec spec = AxisSpec(agg, 2);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.6;
  wc.min_matches = 1;
  wc.seed = 2300 + static_cast<uint64_t>(agg);
  WorkloadGenerator gen(3, wc);
  for (const auto& q : gen.GenerateMany(15, &engine, &spec)) {
    EXPECT_NEAR(ta.Answer(spec, q), engine.Answer(spec, q), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, TreeAggExactSweep,
    testing::Values(Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                    Aggregate::kStd, Aggregate::kMedian, Aggregate::kMin,
                    Aggregate::kMax),
    [](const testing::TestParamInfo<Aggregate>& info) {
      return AggregateName(info.param);
    });

// ---------------------------------------------------------------------
// kd-tree invariants over heights and query dimensionalities: leaf count,
// routing consistency, partition completeness.
class KdTreeSweep
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(KdTreeSweep, StructuralInvariants) {
  auto [height, dim] = GetParam();
  Rng rng(2400 + height * 10 + dim);
  std::vector<QueryInstance> queries;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> v(dim);
    for (auto& x : v) x = rng.Uniform();
    queries.emplace_back(std::move(v));
  }
  auto tree = QuerySpaceKdTree::Build(queries, height);
  EXPECT_EQ(tree.NumLeaves(), static_cast<size_t>(1) << height);
  size_t total = 0;
  for (auto* leaf : tree.Leaves()) {
    total += leaf->query_ids.size();
    for (size_t id : leaf->query_ids) {
      EXPECT_EQ(tree.Route(queries[id]), leaf);
    }
  }
  EXPECT_EQ(total, queries.size());
  // Round-trip through the routing encoding.
  auto decoded = QuerySpaceKdTree::DecodeRouting(tree.EncodeRouting(), dim);
  ASSERT_TRUE(decoded.ok());
  for (int i = 0; i < 50; ++i) {
    std::vector<double> v(dim);
    for (auto& x : v) x = rng.Uniform();
    QueryInstance q(v);
    EXPECT_EQ(tree.Route(q)->leaf_id, decoded.value().Route(q)->leaf_id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeSweep,
    testing::Combine(testing::Values<size_t>(1, 2, 3, 4, 5),
                     testing::Values<size_t>(1, 2, 4, 6)));

// ---------------------------------------------------------------------
// Parallel construction determinism, randomized: over seeded random
// tables/workloads, the parallel kd-tree build must yield the exact same
// leaf boundaries as the serial build, and a sketch trained with hw
// threads must serialize to the same SizeBytes() as the serial build.
// (construction_parallel_test pins one configuration exhaustively; this
// sweeps 20 random shapes.)
TEST(ParallelConstructionSweep, ParallelKdTreeMatchesSerialAcrossTrials) {
  for (uint64_t trial = 0; trial < 20; ++trial) {
    Rng rng(3000 + trial);
    const size_t dim = 1 + rng.Index(4);          // 1..4
    const size_t height = 2 + rng.Index(4);       // 2..5
    const size_t n = 2500 + rng.Index(4000);      // straddles the cutoff
    std::vector<QueryInstance> queries;
    std::vector<double> answers;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> v(dim);
      for (double& x : v) x = rng.Uniform();
      // A few duplicate coordinates so degenerate splits get exercised.
      if (rng.Index(10) == 0 && i > 0) v[0] = queries[i - 1].q[0];
      double a = 0.0;
      for (double x : v) a += std::sin(3.0 * x);
      queries.emplace_back(std::move(v));
      answers.push_back(a);
    }
    auto serial = QuerySpaceKdTree::Build(queries, height, 1);
    auto parallel = QuerySpaceKdTree::Build(queries, height, 0);
    EXPECT_EQ(parallel.EncodeRouting(), serial.EncodeRouting())
        << "trial " << trial << " dim=" << dim << " height=" << height;
    const auto serial_leaves = serial.Leaves();
    const auto parallel_leaves = parallel.Leaves();
    ASSERT_EQ(parallel_leaves.size(), serial_leaves.size()) << "trial "
                                                            << trial;
    for (size_t l = 0; l < serial_leaves.size(); ++l) {
      EXPECT_EQ(parallel_leaves[l]->query_ids, serial_leaves[l]->query_ids)
          << "trial " << trial << " leaf " << l;
    }

    // Every few trials, carry the same workload through a full (tiny)
    // sketch build and demand identical serialized size.
    if (trial % 4 == 0) {
      NeuroSketchConfig cfg;
      cfg.tree_height = std::min<size_t>(height, 3);
      cfg.target_partitions = 4;
      cfg.n_layers = 2;
      cfg.l_first = 8;
      cfg.l_rest = 8;
      cfg.train.epochs = 3;
      cfg.seed = 3100 + trial;
      cfg.train_threads = 1;
      auto s = NeuroSketch::Train(queries, answers, cfg);
      cfg.train_threads = 0;
      auto p = NeuroSketch::Train(queries, answers, cfg);
      ASSERT_TRUE(s.ok() && p.ok()) << "trial " << trial;
      EXPECT_EQ(p.value().SizeBytes(), s.value().SizeBytes())
          << "trial " << trial;
      EXPECT_EQ(p.value().tree().EncodeRouting(),
                s.value().tree().EncodeRouting())
          << "trial " << trial;
    }
  }
}

// ---------------------------------------------------------------------
// Workload generator: for every (num_active, range) combination, the
// generated instance has exactly num_active active attributes, each with
// the requested width, and the (c, r) encoding stays in the simplex.
class WorkloadSweep
    : public testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(WorkloadSweep, EncodingInvariants) {
  auto [active, frac] = GetParam();
  const size_t dim = 5;
  WorkloadConfig wc;
  wc.num_active = active;
  wc.range_frac_lo = wc.range_frac_hi = frac;
  wc.seed = 2500 + active;
  WorkloadGenerator gen(dim, wc);
  for (int i = 0; i < 60; ++i) {
    QueryInstance q = gen.Generate();
    ASSERT_EQ(q.dim(), 2 * dim);
    size_t found = 0;
    for (size_t a = 0; a < dim; ++a) {
      const double c = q[a], r = q[dim + a];
      EXPECT_GE(c, 0.0);
      EXPECT_LE(c + r, 1.0 + 1e-12);
      if (!(c == 0.0 && r >= 1.0)) {
        EXPECT_NEAR(r, frac, 1e-12);
        ++found;
      }
    }
    EXPECT_EQ(found, active);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadSweep,
    testing::Combine(testing::Values<size_t>(1, 2, 3, 5),
                     testing::Values(0.01, 0.1, 0.4)));

// ---------------------------------------------------------------------
// Vectorized batch answering must agree exactly with the scalar path.
class VectorizedBatchSweep : public testing::TestWithParam<size_t> {};

TEST_P(VectorizedBatchSweep, MatchesScalarPath) {
  const size_t partitions = GetParam();
  Rng rng(2600 + partitions);
  std::vector<QueryInstance> train_q;
  std::vector<double> train_a;
  for (int i = 0; i < 600; ++i) {
    const double c = rng.Uniform(), r = rng.Uniform(0.0, 0.5);
    train_q.push_back(QueryInstance(std::vector<double>{c, r}));
    train_a.push_back(std::sin(4.0 * c) + r);
  }
  NeuroSketchConfig cfg;
  cfg.tree_height = partitions > 1 ? 3 : 0;
  cfg.target_partitions = partitions;
  cfg.n_layers = 3;
  cfg.l_first = 16;
  cfg.l_rest = 16;
  cfg.train.epochs = 30;
  auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
  ASSERT_TRUE(sketch.ok());
  std::vector<QueryInstance> probes;
  for (int i = 0; i < 150; ++i) {
    probes.push_back(QueryInstance(
        std::vector<double>{rng.Uniform(), rng.Uniform(0.0, 0.5)}));
  }
  auto scalar = sketch.value().AnswerBatch(probes);
  auto vectorized = sketch.value().AnswerBatchVectorized(probes);
  ASSERT_EQ(scalar.size(), vectorized.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    EXPECT_DOUBLE_EQ(scalar[i], vectorized[i]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Partitions, VectorizedBatchSweep,
                         testing::Values<size_t>(1, 2, 4, 8));

// ---------------------------------------------------------------------
// Aggregate monotonicity: enlarging an axis range can only grow COUNT and
// keep MIN non-increasing / MAX non-decreasing.
TEST(RangeMonotonicityTest, CountGrowsWithRange) {
  Table t = MakeGmmDataset(8000, 2, 6, 2700).table;
  ExactEngine engine(&t);
  QueryFunctionSpec count = AxisSpec(Aggregate::kCount, 1);
  QueryFunctionSpec mins = AxisSpec(Aggregate::kMin, 1);
  QueryFunctionSpec maxs = AxisSpec(Aggregate::kMax, 1);
  Rng rng(2701);
  for (int trial = 0; trial < 25; ++trial) {
    const double c = rng.Uniform(0.0, 0.5);
    const double r1 = rng.Uniform(0.05, 0.2);
    const double r2 = r1 + rng.Uniform(0.05, 0.3);
    QueryInstance small = QueryInstance::AxisRange({c, 0.0}, {r1, 1.0});
    QueryInstance large = QueryInstance::AxisRange({c, 0.0}, {r2, 1.0});
    EXPECT_LE(engine.Answer(count, small), engine.Answer(count, large));
    const double min_s = engine.Answer(mins, small);
    const double min_l = engine.Answer(mins, large);
    if (!std::isnan(min_s) && !std::isnan(min_l)) {
      EXPECT_GE(min_s, min_l);
    }
    const double max_s = engine.Answer(maxs, small);
    const double max_l = engine.Answer(maxs, large);
    if (!std::isnan(max_s) && !std::isnan(max_l)) {
      EXPECT_LE(max_s, max_l);
    }
  }
}

// ---------------------------------------------------------------------
// Randomized streaming trial: over seeded random append batches and
// refresh points, every served answer must equal the composition contract
// recomputed independently from the store's own served view — COUNT is
// the sketch answer plus the exact match count of the UNFOLDED delta rows
// (per-leaf fold watermarks honored), AVG is the exact merged answer when
// any unfolded row matches and the untouched sketch answer otherwise.
// After each refresh pass the served sketch must keep SizeBytes() equal
// to its serialized size (partial retrains don't break the accounting).
class StreamingTrialSweep : public testing::TestWithParam<int> {};

TEST_P(StreamingTrialSweep, ServeMatchesRecomputedComposition) {
  const int trial = GetParam();
  Rng rng(4000 + trial);
  Dataset ds = MakeGmmDataset(900 + rng.Index(600), 3, 3, 4100 + trial);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const size_t d = base.num_columns();
  ExactEngine engine(&base);
  const QueryFunctionSpec count = AxisSpec(Aggregate::kCount, ds.measure_col);
  const QueryFunctionSpec avg = AxisSpec(Aggregate::kAvg, ds.measure_col);

  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.5;
  wc.seed = 4200 + trial;
  WorkloadGenerator gen(d, wc);
  const auto train_q = gen.GenerateMany(400, &engine, &count);
  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 4;
  cfg.n_layers = 4;
  cfg.l_first = 32;
  cfg.l_rest = 16;
  cfg.train.epochs = 120;
  auto count_sk =
      NeuroSketch::Train(train_q, engine.AnswerBatch(count, train_q), cfg);
  auto avg_sk =
      NeuroSketch::Train(train_q, engine.AnswerBatch(avg, train_q), cfg);
  ASSERT_TRUE(count_sk.ok() && avg_sk.ok());

  serve::SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("gmm", &engine).ok());
  ASSERT_TRUE(store
                  .Register("gmm", count,
                            std::make_shared<const NeuroSketch>(
                                std::move(count_sk).value()))
                  .ok());
  ASSERT_TRUE(store
                  .Register("gmm", avg,
                            std::make_shared<const NeuroSketch>(
                                std::move(avg_sk).value()))
                  .ok());
  ASSERT_TRUE(store.EnableStreaming("gmm", d).ok());

  serve::ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  serve::ServeEngine serve(&store, so);

  // Refresh managed for the COUNT store only; no serve engine attached so
  // a failure streak never demotes (serving state stays sketch-backed and
  // the expected composition below is well-defined all trial long).
  WorkloadConfig pc = wc;
  pc.seed = 4300 + trial;
  WorkloadGenerator pgen(d, pc);
  DriftPolicy policy;
  policy.max_normalized_mae = 0.3;
  serve::RefreshController ctrl(&store, nullptr);
  const auto probes = pgen.GenerateMany(60, &engine, &count);
  // Retrain on the train set plus the probes: the validation gate
  // re-checks the probes, and a retrained leaf must be able to fit them.
  std::vector<QueryInstance> retrain_q = train_q;
  retrain_q.insert(retrain_q.end(), probes.begin(), probes.end());
  ctrl.AddTarget({"gmm", DriftMonitor(count, probes, policy), cfg,
                  std::move(retrain_q)});

  // Mirror of everything appended, in order: the independent ground truth.
  Table merged = base;
  const serve::ServeKey count_key = serve::ServeKey::From("gmm", count);
  const serve::ServeKey avg_key = serve::ServeKey::From("gmm", avg);

  // Unfolded exact match count for `q` against the served view of `key`.
  const auto unfolded_matches = [&](const serve::ServeKey& key,
                                    const QueryInstance& q) {
    const serve::ServedView view = store.LookupServed(key);
    const serve::DeltaBuffer::Snapshot snap = view.delta->Snap();
    size_t from = snap.begin();
    const auto* leaf = view.sketch->tree().Route(q);
    if (view.leaf_folded != nullptr && leaf != nullptr && leaf->leaf_id >= 0 &&
        static_cast<size_t>(leaf->leaf_id) < view.leaf_folded->size()) {
      from = std::max(from,
                      static_cast<size_t>((*view.leaf_folded)[leaf->leaf_id]));
    }
    size_t matched = 0;
    snap.ForEachRow(from, snap.end(), [&](const double* row) {
      if (count.predicate->Matches(q, row, d)) ++matched;
    });
    return matched;
  };

  WorkloadConfig qc = wc;
  qc.seed = 4400 + trial;
  WorkloadGenerator qgen(d, qc);
  size_t swaps_seen = 0;
  for (int round = 0; round < 5; ++round) {
    // Random append batch: a concentrated cluster (real drift, so refresh
    // passes genuinely swap) mixed with jittered copies of base rows.
    const size_t batch = 100 + rng.Index(200);
    for (size_t i = 0; i < batch; ++i) {
      std::vector<double> row(d);
      if (rng.Bernoulli(0.7)) {
        for (size_t c = 0; c < d; ++c) row[c] = rng.Uniform(0.25, 0.75);
      } else {
        const size_t src = rng.Index(base.num_rows());
        for (size_t c = 0; c < d; ++c) {
          row[c] = std::min(
              1.0, std::max(0.0, base.at(src, c) + rng.Uniform(-0.15, 0.15)));
        }
      }
      ASSERT_TRUE(store.Append("gmm", row).ok());
      ASSERT_TRUE(merged.AppendRow(row).ok());
    }

    // Random refresh point: the pass may skip, swap, or fail validation —
    // the serve contract must hold identically in every case.
    if (rng.Bernoulli(0.6)) {
      auto out = ctrl.RefreshNow("gmm", count);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      if (out.value().swapped) ++swaps_seen;
      GTEST_LOG_(INFO) << "trial " << trial << " round " << round
                       << " refresh: pre=" << out.value().pre_mae
                       << " post=" << out.value().post_mae
                       << " retrained=" << out.value().retrained
                       << " swapped=" << out.value().swapped
                       << " failed=" << out.value().failed << " "
                       << out.value().message;
    }

    ExactEngine merged_engine(&merged);
    for (const auto& q : qgen.GenerateMany(10, &engine, &count)) {
      const serve::ServedView cview = store.LookupServed(count_key);
      const size_t cm = unfolded_matches(count_key, q);
      const double count_got = serve.Answer("gmm", count, q).value;
      EXPECT_EQ(count_got,
                cview.sketch->Answer(q) + static_cast<double>(cm))
          << "trial " << trial << " round " << round;
      const serve::ServedView aview = store.LookupServed(avg_key);
      const size_t am = unfolded_matches(avg_key, q);
      const serve::ServeResult avg_got = serve.Answer("gmm", avg, q);
      if (am > 0) {
        EXPECT_FALSE(avg_got.used_sketch);
        EXPECT_EQ(avg_got.value, merged_engine.Answer(avg, q))
            << "trial " << trial << " round " << round;
      } else {
        EXPECT_TRUE(avg_got.used_sketch);
        EXPECT_EQ(avg_got.value, aview.sketch->Answer(q))
            << "trial " << trial << " round " << round;
      }
    }

    // The served sketch's storage accounting survives partial retrains.
    const auto served = store.Lookup(count_key);
    ASSERT_NE(served, nullptr);
    std::stringstream buf;
    ASSERT_TRUE(served->SaveTo(&buf).ok());
    EXPECT_EQ(buf.str().size(), served->SizeBytes())
        << "trial " << trial << " round " << round;
  }
  // Not asserted (drift is random), but useful when a sweep goes quiet.
  if (swaps_seen == 0) {
    GTEST_LOG_(INFO) << "trial " << trial << ": no refresh pass swapped";
  }
}

INSTANTIATE_TEST_SUITE_P(Trials, StreamingTrialSweep,
                         testing::Values(0, 1, 2));

// ---------------------------------------------------------------------
// Randomized compaction trial: seeded random interleavings of appends,
// refresh-sweep passes (which trigger threshold compaction), explicit
// Compact calls, and serving — against an oracle that rebuilds the full
// logical history from scratch each round. Two invariants: (1) every
// served answer over the exact-only streaming dataset is bit-identical to
// the oracle for every aggregate, at every point in the interleaving;
// (2) delta residency is bounded — right after a sweep, resident rows
// never exceed the compaction threshold plus one chunk.
class CompactionTrialSweep : public testing::TestWithParam<int> {};

TEST_P(CompactionTrialSweep, ServeBitIdenticalAndDeltaBounded) {
  const int trial = GetParam();
  Rng rng(5000 + trial);
  Dataset ds = MakeGmmDataset(700 + rng.Index(500), 3, 3, 5100 + trial);
  Table base = Normalizer::Fit(ds.table).Transform(ds.table);
  const size_t d = base.num_columns();
  StreamingTable table(base);
  ExactEngine engine(&table);

  constexpr size_t kChunkRows = 32;
  constexpr size_t kCompactMinRows = 96;
  serve::SketchStore store;
  ASSERT_TRUE(store.RegisterDataset("hot", &engine).ok());
  ASSERT_TRUE(store.EnableStreaming("hot", d, kChunkRows).ok());
  ASSERT_TRUE(store.AttachStreamingTable("hot", &table).ok());

  serve::ServeOptions so;
  so.num_shards = 2;
  so.batch_window_us = 0.0;
  serve::ServeEngine serve(&store, so);

  serve::RefreshOptions ro;
  ro.compact_min_rows = kCompactMinRows;
  serve::RefreshController ctrl(&store, nullptr, ro);

  const std::vector<Aggregate> aggs = {
      Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg, Aggregate::kStd,
      Aggregate::kMedian, Aggregate::kMin, Aggregate::kMax};

  // Full logical history, in order — rebuilt into an oracle each round.
  Table merged = base;
  size_t compactions_seen = 0;
  for (int round = 0; round < 12; ++round) {
    const size_t batch = 10 + rng.Index(70);
    std::vector<std::vector<double>> rows;
    for (size_t i = 0; i < batch; ++i) {
      std::vector<double> row(d);
      if (rng.Bernoulli(0.5)) {
        for (auto& v : row) v = rng.Uniform();
      } else {
        const size_t src = rng.Index(base.num_rows());
        for (size_t c = 0; c < d; ++c) {
          row[c] = std::min(
              1.0, std::max(0.0, base.at(src, c) + rng.Uniform(-0.1, 0.1)));
        }
      }
      ASSERT_TRUE(merged.AppendRow(row).ok());
      rows.push_back(std::move(row));
    }
    if (rng.Bernoulli(0.5)) {
      ASSERT_TRUE(store.AppendRows("hot", rows).ok());
    } else {
      for (const auto& r : rows) ASSERT_TRUE(store.Append("hot", r).ok());
    }

    // Random maintenance point: a refresh sweep (threshold compaction), an
    // explicit fold, or nothing this round.
    const uint64_t action = rng.Index(3);
    if (action == 0) {
      ctrl.RefreshAll();
      // The bound the trial exists to pin: a sweep leaves at most
      // (threshold - 1) untriggered rows, or a fold's sub-chunk remainder.
      const auto stats = store.Delta("hot")->Stats();
      EXPECT_LE(stats.rows, kCompactMinRows + kChunkRows)
          << "trial " << trial << " round " << round;
    } else if (action == 1) {
      auto res = store.Compact("hot");
      ASSERT_TRUE(res.ok()) << res.status().ToString();
      if (res.value().compacted) ++compactions_seen;
    }

    ExactEngine oracle(&merged);
    for (Aggregate agg : aggs) {
      const QueryFunctionSpec spec = AxisSpec(agg, ds.measure_col);
      WorkloadConfig qc;
      qc.num_active = 2;
      qc.range_frac_lo = 0.15;
      qc.range_frac_hi = 0.5;
      qc.seed = 5200 + trial * 100 + round;
      WorkloadGenerator qgen(d, qc);
      for (const auto& q : qgen.GenerateMany(4, &oracle, &spec)) {
        const serve::ServeResult got = serve.Answer("hot", spec, q);
        const double want = oracle.Answer(spec, q);
        EXPECT_FALSE(got.used_sketch);
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got.value)) << AggregateName(agg);
        } else {
          EXPECT_EQ(got.value, want)
              << AggregateName(agg) << " trial " << trial << " round "
              << round;
        }
      }
    }
  }
  compactions_seen += ctrl.Stats().compactions;
  EXPECT_GT(compactions_seen, 0u) << "trial " << trial
                                  << ": interleaving never compacted";
  // Accounting closes: trim never passes the fold watermark, the fold
  // never passes the logical history, and every untrimmed row is resident.
  const size_t appended_total = merged.num_rows() - base.num_rows();
  const auto final_stats = store.Delta("hot")->Stats();
  EXPECT_LE(store.Delta("hot")->trimmed(), table.folded());
  EXPECT_LE(table.folded(), appended_total);
  EXPECT_EQ(final_stats.rows,
            appended_total - store.Delta("hot")->trimmed());
}

INSTANTIATE_TEST_SUITE_P(Trials, CompactionTrialSweep,
                         testing::Values(0, 1, 2, 3));

// COUNT of a range equals the sum of COUNTs of a partition of that range.
TEST(RangeAdditivityTest, CountIsAdditiveOverSplits) {
  Table t = MakeUniformTable(10000, 2, 2800);
  ExactEngine engine(&t);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 1);
  Rng rng(2801);
  for (int trial = 0; trial < 25; ++trial) {
    const double c = rng.Uniform(0.0, 0.4);
    const double r = rng.Uniform(0.1, 0.5);
    const double mid = rng.Uniform(0.1, 0.9) * r;
    QueryInstance whole = QueryInstance::AxisRange({c, 0.0}, {r, 1.0});
    QueryInstance left = QueryInstance::AxisRange({c, 0.0}, {mid, 1.0});
    QueryInstance right =
        QueryInstance::AxisRange({c + mid, 0.0}, {r - mid, 1.0});
    EXPECT_DOUBLE_EQ(
        engine.Answer(spec, whole),
        engine.Answer(spec, left) + engine.Answer(spec, right));
  }
}

}  // namespace
}  // namespace neurosketch
