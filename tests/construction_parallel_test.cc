// The construction determinism contract: every phase of NeuroSketch::Train
// — kd-tree partition/merge, per-leaf training, and the narrow-tier
// calibrate/validate replays — runs on the shared pool under
// NeuroSketchConfig::train_threads, and the resulting sketch must be
// bit-identical for every thread count. This battery builds at
// train_threads ∈ {1, 2, hw} and pins partitions (routing encoding and
// leaf query sets), per-leaf model parameters (serialized bytes),
// per-leaf AQC, the f32 validation record, the int8 calibration scales
// and validation record, and every served answer, against the serial
// build. It extends the seeded-determinism pattern of
// inference_plan_test.cc from the training phase to the whole pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/neurosketch.h"
#include "core/partitioner.h"
#include "index/kdtree.h"
#include "util/random.h"

namespace neurosketch {
namespace {

// hw concurrency is spelled 0 throughout the config surface.
constexpr unsigned kHardware = 0;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string SaveToBytes(const NeuroSketch& sketch, const char* tag) {
  const std::string path =
      testing::TempDir() + "/ns_ctor_parallel_" + tag + ".bin";
  EXPECT_TRUE(sketch.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  std::remove(path.c_str());
  return bytes;
}

// A synthetic training set large enough (> the kd-tree sequential-build
// cutoff of 2048) that the parallel tree path actually engages, with a
// closed-form target so no exact engine is needed.
void MakeTrainingSet(uint64_t seed, size_t n,
                     std::vector<QueryInstance>* queries,
                     std::vector<double>* answers) {
  Rng rng(seed);
  queries->clear();
  answers->clear();
  for (size_t i = 0; i < n; ++i) {
    const double c = rng.Uniform();
    const double r = rng.Uniform(0.0, 0.5);
    queries->push_back(QueryInstance(std::vector<double>{c, r}));
    answers->push_back(std::sin(5.0 * c) * (1.0 + r) + 0.3 * c * c);
  }
}

NeuroSketchConfig MakeConfig(uint64_t seed, size_t train_threads,
                             PlanPrecision precision) {
  NeuroSketchConfig cfg;
  cfg.tree_height = 4;       // 16 initial leaves...
  cfg.target_partitions = 8; // ...so the AQC merge loop engages
  cfg.n_layers = 3;
  cfg.l_first = 16;
  cfg.l_rest = 12;
  cfg.train.epochs = 8;
  cfg.seed = seed;
  cfg.train_threads = train_threads;
  cfg.plan_precision = precision;
  return cfg;
}

// ---------------------------------------------------------------- kd-tree

TEST(ConstructionParallelTest, KdTreeParallelBuildBitIdentical) {
  for (size_t dim : {2u, 4u}) {
    Rng rng(600 + dim);
    std::vector<QueryInstance> queries;
    for (int i = 0; i < 6000; ++i) {
      std::vector<double> v(dim);
      for (double& x : v) x = rng.Uniform();
      queries.emplace_back(std::move(v));
    }
    for (size_t height : {3u, 5u}) {
      auto serial = QuerySpaceKdTree::Build(queries, height, 1);
      const auto serial_routing = serial.EncodeRouting();
      const auto serial_leaves = serial.Leaves();
      for (size_t parallelism : {2u, 3u, kHardware}) {
        auto parallel = QuerySpaceKdTree::Build(queries, height, parallelism);
        // Same split dims/values and leaf ids, in the same pre-order.
        EXPECT_EQ(parallel.EncodeRouting(), serial_routing)
            << "dim=" << dim << " height=" << height
            << " parallelism=" << parallelism;
        // Same leaf boundaries: each leaf owns the identical ordered set
        // of training-query ids.
        const auto leaves = parallel.Leaves();
        ASSERT_EQ(leaves.size(), serial_leaves.size());
        for (size_t l = 0; l < leaves.size(); ++l) {
          EXPECT_EQ(leaves[l]->query_ids, serial_leaves[l]->query_ids)
              << "leaf " << l << " parallelism " << parallelism;
        }
      }
    }
  }
}

TEST(ConstructionParallelTest, PartitionMergeBitIdenticalAcrossThreads) {
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  MakeTrainingSet(610, 4000, &queries, &answers);
  PartitionConfig pc;
  pc.tree_height = 4;
  pc.target_leaves = 6;  // forces several AQC-guided merge rounds
  pc.num_threads = 1;
  PartitionResult serial = PartitionQuerySpace(queries, answers, pc);
  const auto serial_routing = serial.tree.EncodeRouting();
  for (size_t threads : {2u, kHardware}) {
    pc.num_threads = threads;
    PartitionResult parallel = PartitionQuerySpace(queries, answers, pc);
    EXPECT_EQ(parallel.tree.EncodeRouting(), serial_routing)
        << "threads=" << threads;
    ASSERT_EQ(parallel.leaf_aqc.size(), serial.leaf_aqc.size());
    for (size_t i = 0; i < serial.leaf_aqc.size(); ++i) {
      // Bitwise: the AQC pair sums are computed per leaf in query order
      // regardless of which pool thread runs the leaf.
      EXPECT_EQ(parallel.leaf_aqc[i], serial.leaf_aqc[i]) << "leaf " << i;
    }
  }
}

// ------------------------------------------------------------ full builds

// End-to-end: serial reference build at train_threads = 1, then the same
// build at 2 and hw threads must reproduce every observable bit.
void ExpectBitIdenticalBuilds(PlanPrecision precision, uint64_t seed) {
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  MakeTrainingSet(seed, 3000, &queries, &answers);
  std::vector<QueryInstance> probes;
  std::vector<double> probe_answers_unused;
  MakeTrainingSet(seed + 1, 300, &probes, &probe_answers_unused);

  auto serial = NeuroSketch::Train(queries, answers,
                                   MakeConfig(seed, 1, precision));
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  const std::string serial_bytes = SaveToBytes(serial.value(), "serial");
  const auto serial_routing = serial.value().tree().EncodeRouting();
  const auto serial_scales = serial.value().Int8CalibrationScales();

  for (size_t threads : {2u, kHardware}) {
    auto parallel = NeuroSketch::Train(queries, answers,
                                       MakeConfig(seed, threads, precision));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    const NeuroSketch& p = parallel.value();
    const NeuroSketch& s = serial.value();

    // Partition: identical routing tree and per-leaf AQC.
    EXPECT_EQ(p.tree().EncodeRouting(), serial_routing)
        << "threads=" << threads;
    EXPECT_EQ(p.num_partitions(), s.num_partitions());
    ASSERT_EQ(p.stats().leaf_aqc.size(), s.stats().leaf_aqc.size());
    for (size_t i = 0; i < s.stats().leaf_aqc.size(); ++i) {
      EXPECT_EQ(p.stats().leaf_aqc[i], s.stats().leaf_aqc[i]) << "leaf " << i;
    }

    // Tier selection and validation records: bitwise.
    EXPECT_EQ(p.plan_precision(), s.plan_precision());
    EXPECT_EQ(p.f32_max_divergence(), s.f32_max_divergence());
    EXPECT_EQ(p.f32_error_bound(), s.f32_error_bound());
    EXPECT_EQ(p.int8_max_divergence(), s.int8_max_divergence());
    EXPECT_EQ(p.int8_error_bound(), s.int8_error_bound());

    // Int8 calibration scales: the sharded absmax reduction must land on
    // the exact doubles the serial replay produced.
    EXPECT_EQ(p.Int8CalibrationScales(), serial_scales);

    // Per-leaf parameters, scales, routing, trailer: the serialized form
    // captures all of them — demand byte equality.
    EXPECT_EQ(p.SizeBytes(), s.SizeBytes());
    EXPECT_EQ(SaveToBytes(p, "parallel"), serial_bytes)
        << "threads=" << threads;

    // And the sketch serves the same bits.
    for (const auto& q : probes) {
      EXPECT_EQ(p.Answer(q), s.Answer(q));
      EXPECT_EQ(p.AnswerScalar(q), s.AnswerScalar(q));
    }
  }
}

TEST(ConstructionParallelTest, F64BuildBitIdenticalAcrossThreadCounts) {
  ExpectBitIdenticalBuilds(PlanPrecision::kF64, 620);
}

TEST(ConstructionParallelTest, F32BuildBitIdenticalAcrossThreadCounts) {
  ExpectBitIdenticalBuilds(PlanPrecision::kF32, 630);
}

TEST(ConstructionParallelTest, Int8BuildBitIdenticalAcrossThreadCounts) {
  ExpectBitIdenticalBuilds(PlanPrecision::kInt8, 640);
}

// ------------------------------------------------- post-hoc Enable passes

// EnableF32 / EnableInt8 on an already-trained sketch: the sharded
// validation and calibrate-then-validate replays must reproduce the
// serial records bit-for-bit. Training is deterministic, so two builds of
// the same config are interchangeable serial/parallel subjects.
TEST(ConstructionParallelTest, EnableTiersParallelMatchesSerial) {
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  MakeTrainingSet(650, 3000, &queries, &answers);
  const NeuroSketchConfig cfg = MakeConfig(650, 1, PlanPrecision::kF64);

  for (size_t threads : {2u, kHardware}) {
    auto a = NeuroSketch::Train(queries, answers, cfg);
    auto b = NeuroSketch::Train(queries, answers, cfg);
    ASSERT_TRUE(a.ok() && b.ok());

    const double bound_f32 = NeuroSketchConfig().f32_error_bound;
    ASSERT_TRUE(a.value().EnableF32(queries, bound_f32, /*num_threads=*/1));
    ASSERT_TRUE(b.value().EnableF32(queries, bound_f32, threads));
    EXPECT_EQ(b.value().f32_max_divergence(), a.value().f32_max_divergence())
        << "threads=" << threads;

    const double bound_i8 = NeuroSketchConfig().int8_error_bound;
    ASSERT_TRUE(a.value().EnableInt8(queries, bound_i8, /*num_threads=*/1));
    ASSERT_TRUE(b.value().EnableInt8(queries, bound_i8, threads));
    EXPECT_EQ(b.value().int8_max_divergence(), a.value().int8_max_divergence())
        << "threads=" << threads;
    EXPECT_EQ(b.value().Int8CalibrationScales(),
              a.value().Int8CalibrationScales())
        << "threads=" << threads;
    EXPECT_EQ(SaveToBytes(b.value(), "enable_b"),
              SaveToBytes(a.value(), "enable_a"))
        << "threads=" << threads;
  }
}

// ------------------------------------------------------------ build stats

TEST(ConstructionParallelTest, PhaseWallTimesPopulatedAtEveryThreadCount) {
  std::vector<QueryInstance> queries;
  std::vector<double> answers;
  MakeTrainingSet(660, 2500, &queries, &answers);
  for (size_t threads : {1u, 2u, kHardware}) {
    auto sketch = NeuroSketch::Train(
        queries, answers, MakeConfig(660, threads, PlanPrecision::kInt8));
    ASSERT_TRUE(sketch.ok());
    const auto& stats = sketch.value().stats();
    EXPECT_GT(stats.partition_seconds, 0.0) << "threads=" << threads;
    EXPECT_GT(stats.train_seconds, 0.0) << "threads=" << threads;
    EXPECT_GT(stats.calibrate_seconds, 0.0) << "threads=" << threads;
    EXPECT_EQ(stats.training_queries, queries.size());
  }
}

}  // namespace
}  // namespace neurosketch
