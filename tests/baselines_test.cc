// Tests for the four baselines: TREE-AGG, Verdict (sampling), SPN
// (DeepDB-like) and DBEst-like.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dbest.h"
#include "baselines/spn.h"
#include "baselines/tree_agg.h"
#include "baselines/verdict.h"
#include "data/generators.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "query/workload.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

QueryFunctionSpec AxisSpec(Aggregate agg, size_t measure) {
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = agg;
  spec.measure_col = measure;
  return spec;
}

TEST(TreeAggTest, FullSampleIsExact) {
  Table t = MakeUniformTable(2000, 3, 10);
  ExactEngine engine(&t);
  TreeAggConfig cfg;
  cfg.sample_size = 2000;  // 100%
  TreeAgg agg = TreeAgg::Build(t, cfg);
  EXPECT_EQ(agg.sample_size(), 2000u);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.seed = 11;
  WorkloadGenerator gen(3, wc);
  for (Aggregate a : {Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg,
                      Aggregate::kStd, Aggregate::kMedian}) {
    QueryFunctionSpec spec = AxisSpec(a, 2);
    for (const auto& q : gen.GenerateMany(20, &engine, &spec)) {
      EXPECT_NEAR(agg.Answer(spec, q), engine.Answer(spec, q), 1e-9)
          << AggregateName(a);
    }
  }
}

TEST(TreeAggTest, SamplingErrorShrinksWithSampleSize) {
  Table t = MakeUniformTable(20000, 2, 12);
  ExactEngine engine(&t);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 1);
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = wc.range_frac_hi = 0.3;
  wc.seed = 13;
  WorkloadGenerator gen(2, wc);
  auto queries = gen.GenerateMany(40, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, queries);

  double errs[2];
  size_t sizes[2] = {200, 8000};
  for (int s = 0; s < 2; ++s) {
    TreeAggConfig cfg;
    cfg.sample_size = sizes[s];
    TreeAgg agg = TreeAgg::Build(t, cfg);
    std::vector<double> pred;
    for (const auto& q : queries) pred.push_back(agg.Answer(spec, q));
    errs[s] = stats::NormalizedMae(truth, pred);
  }
  EXPECT_LT(errs[1], errs[0]);
}

TEST(TreeAggTest, RotatedRectSupported) {
  Table t = MakeUniformTable(5000, 2, 14);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = RotatedRectPredicate::Make();
  spec.agg = Aggregate::kMedian;
  spec.measure_col = 1;
  TreeAggConfig cfg;
  cfg.sample_size = 5000;
  TreeAgg agg = TreeAgg::Build(t, cfg);
  WorkloadConfig wc;
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.4;
  wc.seed = 15;
  WorkloadGenerator gen(2, wc);
  for (const auto& q : gen.GenerateRotatedRects(10, &engine, &spec)) {
    EXPECT_NEAR(agg.Answer(spec, q), engine.Answer(spec, q), 1e-9);
  }
}

TEST(VerdictTest, SupportsOnlyBasicAggregates) {
  EXPECT_TRUE(Verdict::Supports(Aggregate::kCount));
  EXPECT_TRUE(Verdict::Supports(Aggregate::kSum));
  EXPECT_TRUE(Verdict::Supports(Aggregate::kAvg));
  EXPECT_FALSE(Verdict::Supports(Aggregate::kStd));
  EXPECT_FALSE(Verdict::Supports(Aggregate::kMedian));
}

TEST(VerdictTest, UnsupportedAggregateReturnsStatus) {
  Table t = MakeUniformTable(100, 2, 16);
  Verdict v = Verdict::Build(t, {});
  auto r = v.Answer(AxisSpec(Aggregate::kStd, 1),
                    QueryInstance::AxisRange({0, 0}, {1, 1}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(VerdictTest, FullSampleCountExact) {
  Table t = MakeUniformTable(3000, 2, 17);
  ExactEngine engine(&t);
  VerdictConfig cfg;
  cfg.sample_size = 3000;
  Verdict v = Verdict::Build(t, cfg);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 1);
  QueryInstance q = QueryInstance::AxisRange({0.1, 0.2}, {0.5, 0.6});
  auto r = v.Answer(spec, q);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), engine.Answer(spec, q), 1e-9);
}

TEST(VerdictTest, SampledEstimatesReasonable) {
  Table t = MakeUniformTable(20000, 2, 18);
  ExactEngine engine(&t);
  VerdictConfig cfg;
  cfg.sample_size = 4000;
  Verdict v = Verdict::Build(t, cfg);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 1);
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = wc.range_frac_hi = 0.3;
  wc.seed = 19;
  WorkloadGenerator gen(2, wc);
  auto queries = gen.GenerateMany(30, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, queries);
  std::vector<double> pred;
  for (const auto& q : queries) pred.push_back(v.Answer(spec, q).ValueOr(0));
  EXPECT_LT(stats::NormalizedMae(truth, pred), 0.05);
}

TEST(SpnTest, CountAccurateOnIndependentUniform) {
  Table t = MakeUniformTable(20000, 3, 20);
  ExactEngine engine(&t);
  SpnConfig cfg;
  Spn spn = Spn::Build(t, cfg);
  EXPECT_GT(spn.num_nodes(), 0u);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kCount, 2);
  WorkloadConfig wc;
  wc.num_active = 2;
  wc.range_frac_lo = 0.2;
  wc.range_frac_hi = 0.5;
  wc.seed = 21;
  WorkloadGenerator gen(3, wc);
  auto queries = gen.GenerateMany(30, &engine, &spec);
  auto truth = engine.AnswerBatch(spec, queries);
  std::vector<double> pred;
  for (const auto& q : queries) {
    auto r = spn.Answer(spec, q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    pred.push_back(r.value());
  }
  EXPECT_LT(stats::NormalizedMae(truth, pred), 0.05);
}

TEST(SpnTest, SumAndAvgOnCorrelatedData) {
  // y strongly depends on x; sum nodes must capture the joint structure.
  Schema s;
  s.columns = {"x", "y"};
  Table t(s);
  Rng rng(22);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform();
    const double y =
        std::clamp(x * 0.8 + rng.Normal(0, 0.03), 0.0, 1.0);
    ASSERT_TRUE(t.AppendRow({x, y}).ok());
  }
  ExactEngine engine(&t);
  SpnConfig cfg;
  cfg.rdc_threshold = 0.3;
  Spn spn = Spn::Build(t, cfg);
  QueryFunctionSpec spec = AxisSpec(Aggregate::kAvg, 1);
  // AVG(y) over x in [0.6, 0.9) should be near 0.8 * 0.75 = 0.6.
  QueryInstance q = QueryInstance::AxisRange({0.6, 0.0}, {0.3, 1.0});
  auto r = spn.Answer(spec, q);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), engine.Answer(spec, q), 0.05);

  QueryFunctionSpec sum_spec = AxisSpec(Aggregate::kSum, 1);
  auto rs = spn.Answer(sum_spec, q);
  ASSERT_TRUE(rs.ok());
  const double truth = engine.Answer(sum_spec, q);
  EXPECT_NEAR(rs.value() / truth, 1.0, 0.12);
}

TEST(SpnTest, RangeProbabilityFullDomainIsOne) {
  Table t = MakeUniformTable(5000, 2, 23);
  Spn spn = Spn::Build(t, {});
  EXPECT_NEAR(spn.RangeProbability({0, 0}, {1.0 + 1e-12, 1.0 + 1e-12}), 1.0,
              1e-6);
  EXPECT_NEAR(spn.RangeProbability({0, 0}, {0, 0}), 0.0, 1e-9);
}

TEST(SpnTest, RejectsUnsupported) {
  Table t = MakeUniformTable(500, 2, 24);
  Spn spn = Spn::Build(t, {});
  QueryFunctionSpec med = AxisSpec(Aggregate::kMedian, 1);
  EXPECT_FALSE(spn.Answer(med, QueryInstance::AxisRange({0, 0}, {1, 1})).ok());
  QueryFunctionSpec rot;
  rot.predicate = RotatedRectPredicate::Make();
  rot.agg = Aggregate::kCount;
  rot.measure_col = 1;
  EXPECT_FALSE(
      spn.Answer(rot, QueryInstance(std::vector<double>{0, 0, 1, 1, 0})).ok());
}

TEST(SpnTest, RdcThresholdChangesStructure) {
  Schema s;
  s.columns = {"x", "y"};
  Table t(s);
  Rng rng(25);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.Uniform();
    ASSERT_TRUE(
        t.AppendRow({x, std::clamp(x + rng.Normal(0, 0.05), 0.0, 1.0)}).ok());
  }
  SpnConfig strict;  // low threshold: correlation detected, deeper structure
  strict.rdc_threshold = 0.1;
  SpnConfig loose;  // threshold 1.0: nothing is "correlated", factorizes
  loose.rdc_threshold = 1.01;
  Spn a = Spn::Build(t, strict);
  Spn b = Spn::Build(t, loose);
  EXPECT_GT(a.num_nodes(), b.num_nodes());
}

TEST(SpnTest, SizeBytesPositive) {
  Table t = MakeUniformTable(1000, 2, 26);
  Spn spn = Spn::Build(t, {});
  EXPECT_GT(spn.SizeBytes(), 0u);
}

TEST(GaussianMixtureTest, FitsBimodalData) {
  Rng rng(27);
  std::vector<double> samples;
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(rng.Bernoulli(0.5) ? rng.Normal(0.25, 0.05)
                                         : rng.Normal(0.75, 0.05));
  }
  auto gmm = GaussianMixture1D::Fit(samples, 2, 60, 28);
  // Mass on each side of 0.5 should be ~0.5.
  EXPECT_NEAR(gmm.Cdf(0.5), 0.5, 0.05);
  EXPECT_GT(gmm.Pdf(0.25), gmm.Pdf(0.5));
  EXPECT_GT(gmm.Pdf(0.75), gmm.Pdf(0.5));
  EXPECT_NEAR(gmm.MassIn(-1.0, 2.0), 1.0, 1e-6);
}

TEST(GaussianMixtureTest, EmptyInputSafe) {
  auto gmm = GaussianMixture1D::Fit({}, 3, 10, 29);
  EXPECT_EQ(gmm.num_components(), 0u);
  EXPECT_DOUBLE_EQ(gmm.Pdf(0.5), 0.0);
}

TEST(DbestTest, CountSumAvgOnSmoothData) {
  // x ~ clipped Gaussian; measure = smooth function of x plus noise.
  Schema s;
  s.columns = {"x", "m"};
  Table t(s);
  Rng rng(30);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::clamp(rng.Normal(0.5, 0.15), 0.0, 1.0);
    const double m = std::clamp(0.3 + 0.4 * x + rng.Normal(0, 0.02), 0.0, 1.0);
    ASSERT_TRUE(t.AppendRow({x, m}).ok());
  }
  ExactEngine engine(&t);
  DbestConfig cfg;
  auto model = Dbest::Build(t, /*predicate_col=*/0, /*measure_col=*/1, cfg);
  ASSERT_TRUE(model.ok()) << model.status().ToString();

  QueryInstance q = QueryInstance::AxisRange({0.3, 0.0}, {0.4, 1.0});
  for (Aggregate a : {Aggregate::kCount, Aggregate::kSum, Aggregate::kAvg}) {
    QueryFunctionSpec spec = AxisSpec(a, 1);
    auto r = model.value().Answer(spec, q);
    ASSERT_TRUE(r.ok()) << AggregateName(a);
    const double truth = engine.Answer(spec, q);
    EXPECT_NEAR(r.value() / truth, 1.0, 0.1) << AggregateName(a);
  }
}

TEST(DbestTest, RejectsMultipleActiveAttributes) {
  Table t = MakeUniformTable(1000, 3, 31);
  DbestConfig cfg;
  cfg.train_sample = 500;
  cfg.regressor_epochs = 5;
  auto model = Dbest::Build(t, 0, 2, cfg);
  ASSERT_TRUE(model.ok());
  // Two active attributes.
  QueryInstance q = QueryInstance::AxisRange({0.1, 0.1, 0.0}, {0.5, 0.5, 1.0});
  auto r = model.value().Answer(AxisSpec(Aggregate::kAvg, 2), q);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotImplemented);
}

TEST(DbestTest, RejectsWrongPredicateColumn) {
  Table t = MakeUniformTable(1000, 3, 32);
  DbestConfig cfg;
  cfg.train_sample = 500;
  cfg.regressor_epochs = 5;
  auto model = Dbest::Build(t, 0, 2, cfg);
  ASSERT_TRUE(model.ok());
  // Active attribute is column 1, model was built for column 0.
  QueryInstance q = QueryInstance::AxisRange({0.0, 0.2, 0.0}, {1.0, 0.5, 1.0});
  EXPECT_FALSE(model.value().Answer(AxisSpec(Aggregate::kAvg, 2), q).ok());
}

TEST(DbestTest, RejectsUnsupportedAggAndBadColumns) {
  Table t = MakeUniformTable(100, 2, 33);
  EXPECT_FALSE(Dbest::Build(t, 5, 1, {}).ok());
  DbestConfig cfg;
  cfg.train_sample = 100;
  cfg.regressor_epochs = 2;
  auto model = Dbest::Build(t, 0, 1, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().AnswerRange(Aggregate::kMedian, 0.1, 0.5).ok());
}

TEST(DbestTest, SizeSmallerThanData) {
  Table t = MakeUniformTable(20000, 2, 34);
  DbestConfig cfg;
  cfg.regressor_epochs = 2;
  auto model = Dbest::Build(t, 0, 1, cfg);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model.value().SizeBytes(), t.SizeBytes());
}

}  // namespace
}  // namespace neurosketch
