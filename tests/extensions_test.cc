// Tests for the Sec. 7 extension features: magnitude pruning, the drift
// monitor / retraining policy, and the sketch catalog.
#include <gtest/gtest.h>

#include <cmath>

#include "core/catalog.h"
#include "core/drift.h"
#include "core/neurosketch.h"
#include "data/generators.h"
#include "nn/pruning.h"
#include "nn/trainer.h"
#include "query/predicate.h"
#include "util/stats.h"

namespace neurosketch {
namespace {

TEST(PruningTest, SparsityTargetHit) {
  nn::Mlp model(nn::MlpConfig::Paper(4, 5, 32, 16), 1);
  const size_t weights = [&] {
    size_t n = 0;
    for (const auto& l : model.layers()) n += l.weight().size();
    return n;
  }();
  auto report = nn::PruneByMagnitude(&model, 0.5);
  EXPECT_EQ(report.total_weights, weights);
  EXPECT_NEAR(report.sparsity(), 0.5, 0.02);
  EXPECT_GE(nn::CountZeroWeights(model), report.pruned_weights);
}

TEST(PruningTest, ZeroSparsityIsNoOp) {
  nn::Mlp model(nn::MlpConfig::Paper(2, 3, 8, 8), 2);
  auto report = nn::PruneByMagnitude(&model, 0.0);
  EXPECT_EQ(report.pruned_weights, 0u);
  EXPECT_EQ(nn::CountZeroWeights(model), 0u);  // random init has no zeros
}

TEST(PruningTest, PrunesSmallestWeightsFirst) {
  nn::Mlp model(nn::MlpConfig::Paper(2, 3, 8, 8), 3);
  // After pruning 30%, every surviving weight must exceed the threshold.
  auto report = nn::PruneByMagnitude(&model, 0.3);
  for (const auto& layer : model.layers()) {
    const Matrix& w = layer.weight();
    for (size_t i = 0; i < w.size(); ++i) {
      if (w.data()[i] != 0.0) {
        EXPECT_GE(std::fabs(w.data()[i]), report.threshold);
      }
    }
  }
}

TEST(PruningTest, ModeratePruningPreservesAccuracy) {
  // Train on a simple function; prune 30%; fine-tune; error should stay
  // in the same ballpark as unpruned.
  Rng rng(4);
  const size_t n = 512;
  Matrix x(n, 2), y(n, 1);
  for (size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.Uniform();
    x(i, 1) = rng.Uniform();
    y(i, 0) = std::sin(3.0 * x(i, 0)) + 0.5 * x(i, 1);
  }
  nn::Mlp model(nn::MlpConfig::Paper(2, 4, 24, 24), 5);
  nn::TrainConfig tc;
  tc.epochs = 150;
  const double base_loss = nn::TrainRegressor(&model, x, y, tc).final_loss;

  nn::PruneByMagnitude(&model, 0.3);
  nn::TrainConfig ft;
  ft.epochs = 40;
  ft.learning_rate = 5e-4;
  const double tuned_loss = nn::FineTunePruned(&model, x, y, ft);
  EXPECT_LT(tuned_loss, base_loss * 10.0 + 1e-3);
  // Mask held: zeros stayed zero through fine-tuning.
  EXPECT_GT(nn::CountZeroWeights(model),
            model.num_params() / 5);
}

TEST(PruningTest, FineTuneWithoutFreezeRegrowsWeights) {
  Rng rng(6);
  Matrix x(128, 1), y(128, 1);
  for (size_t i = 0; i < 128; ++i) {
    x(i, 0) = rng.Uniform();
    y(i, 0) = x(i, 0);
  }
  nn::Mlp model(nn::MlpConfig::Paper(1, 3, 16, 16), 7);
  nn::TrainConfig tc;
  tc.epochs = 30;
  nn::TrainRegressor(&model, x, y, tc);
  nn::PruneByMagnitude(&model, 0.5);
  const size_t zeros_before = nn::CountZeroWeights(model);
  nn::FineTunePruned(&model, x, y, tc, /*freeze_zeros=*/false);
  EXPECT_LT(nn::CountZeroWeights(model), zeros_before);
}

// --- Drift monitoring -----------------------------------------------

struct DriftFixture {
  Table table;
  QueryFunctionSpec spec;
  NeuroSketch sketch;
  std::vector<QueryInstance> probes;

  static DriftFixture Make() {
    DriftFixture f;
    f.table = MakeGaussianTable(15000, 1, 0.5, 0.15, 10);
    f.spec.predicate = AxisRangePredicate::Make();
    f.spec.agg = Aggregate::kCount;
    f.spec.measure_col = 0;
    ExactEngine engine(&f.table);
    WorkloadConfig wc;
    wc.num_active = 1;
    wc.range_frac_lo = 0.2;
    wc.range_frac_hi = 0.6;
    wc.min_matches = 0;
    wc.seed = 11;
    WorkloadGenerator gen(1, wc);
    auto train_q = gen.GenerateMany(1200);
    auto train_a = engine.AnswerBatch(f.spec, train_q);
    NeuroSketchConfig cfg;
    cfg.tree_height = 1;
    cfg.target_partitions = 2;
    cfg.n_layers = 4;
    cfg.l_first = 32;
    cfg.l_rest = 16;
    cfg.train.epochs = 200;
    auto sketch = NeuroSketch::Train(train_q, train_a, cfg);
    EXPECT_TRUE(sketch.ok());
    f.sketch = std::move(sketch).value();
    wc.seed = 12;
    WorkloadGenerator pg(1, wc);
    f.probes = pg.GenerateMany(80);
    return f;
  }
};

TEST(DriftTest, FreshSketchPassesCheck) {
  DriftFixture f = DriftFixture::Make();
  ExactEngine engine(&f.table);
  DriftPolicy policy;
  policy.max_normalized_mae = 0.1;
  DriftMonitor monitor(f.spec, f.probes, policy);
  DriftReport report = monitor.Check(f.sketch, engine);
  EXPECT_GE(report.probes_used, policy.min_probes);
  EXPECT_LT(report.normalized_mae, 0.1);
  EXPECT_FALSE(report.retrain_recommended);
}

TEST(DriftTest, DistributionShiftTriggersRetrain) {
  DriftFixture f = DriftFixture::Make();
  // The data drifts: distribution moves from N(0.5) to N(0.2).
  Table drifted = MakeGaussianTable(15000, 1, 0.2, 0.1, 13);
  ExactEngine engine(&drifted);
  DriftMonitor monitor(f.spec, f.probes, {});
  DriftReport report = monitor.Check(f.sketch, engine);
  EXPECT_TRUE(report.retrain_recommended);
  EXPECT_GT(report.normalized_mae, 0.1);
}

TEST(DriftTest, TooFewProbesNeverRecommends) {
  DriftFixture f = DriftFixture::Make();
  Table drifted = MakeGaussianTable(5000, 1, 0.1, 0.05, 14);
  ExactEngine engine(&drifted);
  DriftPolicy policy;
  policy.min_probes = 1000;  // more than available
  DriftMonitor monitor(f.spec, f.probes, policy);
  EXPECT_FALSE(monitor.Check(f.sketch, engine).retrain_recommended);
}

// --- Sketch catalog ---------------------------------------------------

TEST(CatalogTest, KeyOrderingAndIdentity) {
  QueryFunctionSpec a;
  a.predicate = AxisRangePredicate::Make();
  a.agg = Aggregate::kAvg;
  a.measure_col = 1;
  QueryFunctionSpec b = a;
  b.agg = Aggregate::kSum;
  auto ka = QueryFunctionKey::From(a), kb = QueryFunctionKey::From(b);
  EXPECT_TRUE(ka < kb || kb < ka);
  EXPECT_FALSE(ka < ka);
}

TEST(CatalogTest, RegisterBuildsAndDispatches) {
  Table table = MakeUniformTable(10000, 2, 15);
  ExactEngine engine(&table);
  AdvisorConfig acfg;
  acfg.max_buildable_aqc = 100.0;  // accept everything
  acfg.min_range_frac = 0.02;
  NeuroSketchConfig cfg;
  cfg.tree_height = 1;
  cfg.target_partitions = 2;
  cfg.n_layers = 4;
  cfg.l_first = 24;
  cfg.l_rest = 16;
  cfg.train.epochs = 100;
  SketchCatalog catalog(&engine, Advisor(acfg), cfg);

  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 1;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.candidate_attrs = {0};
  wc.range_frac_lo = 0.1;
  wc.range_frac_hi = 0.5;
  wc.min_matches = 3;
  wc.seed = 16;
  WorkloadGenerator gen(2, wc);
  auto info = catalog.Register(spec, &gen, 700);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info.value().built);
  EXPECT_TRUE(catalog.Has(spec));
  EXPECT_EQ(catalog.num_sketches(), 1u);
  EXPECT_GT(catalog.TotalSizeBytes(), 0u);

  // Wide query: sketch; narrow: engine.
  auto wide = catalog.Execute(
      spec, QueryInstance::AxisRange({0.2, 0.0}, {0.4, 1.0}));
  EXPECT_TRUE(wide.used_sketch);
  auto narrow = catalog.Execute(
      spec, QueryInstance::AxisRange({0.2, 0.0}, {0.005, 1.0}));
  EXPECT_FALSE(narrow.used_sketch);
  // Unregistered spec: always engine.
  QueryFunctionSpec other = spec;
  other.agg = Aggregate::kSum;
  auto miss = catalog.Execute(
      other, QueryInstance::AxisRange({0.2, 0.0}, {0.4, 1.0}));
  EXPECT_FALSE(miss.used_sketch);
}

TEST(CatalogTest, AdvisorRejectsHardFunctions) {
  Table table = MakeUniformTable(5000, 2, 17);
  ExactEngine engine(&table);
  AdvisorConfig acfg;
  acfg.max_buildable_aqc = 1e-9;  // reject everything
  SketchCatalog catalog(&engine, Advisor(acfg), {});
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kAvg;
  spec.measure_col = 1;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = 18;
  WorkloadGenerator gen(2, wc);
  auto info = catalog.Register(spec, &gen, 300);
  ASSERT_TRUE(info.ok());
  EXPECT_FALSE(info.value().built);
  EXPECT_FALSE(catalog.Has(spec));
  ASSERT_EQ(catalog.Entries().size(), 1u);
  EXPECT_FALSE(catalog.Entries()[0].built);
}

TEST(CatalogTest, RejectsSpecWithoutPredicate) {
  Table table = MakeUniformTable(100, 2, 19);
  ExactEngine engine(&table);
  SketchCatalog catalog(&engine, Advisor(), {});
  QueryFunctionSpec spec;  // no predicate
  WorkloadConfig wc;
  wc.seed = 20;
  WorkloadGenerator gen(2, wc);
  EXPECT_FALSE(catalog.Register(spec, &gen, 10).ok());
}

}  // namespace
}  // namespace neurosketch
