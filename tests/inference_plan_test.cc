// Golden equivalence tests for the compiled inference-plan layer: the
// CompiledMlp flat-buffer path must be bit-identical to the Matrix-based
// scalar path on every surface (PredictOne, batches, sketch Answer*,
// serialization), parallel construction must reproduce the sequential
// build exactly, and the serve hot path must not allocate per query.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <sstream>
#include <vector>

#include "core/neurosketch.h"
#include "data/generators.h"
#include "nn/inference_plan.h"
#include "nn/serialize.h"
#include "query/predicate.h"
#include "util/random.h"

// Global allocation counter for the zero-allocation test. Counting every
// operator new in the binary is coarse but exact: a hot path that performs
// zero allocations leaves the counter untouched.
namespace {
std::atomic<size_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t sz) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(sz == 0 ? 1 : sz);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t sz) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(sz == 0 ? 1 : sz);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace neurosketch {
namespace {

std::vector<double> RandomInput(Rng* rng, size_t dim) {
  std::vector<double> x(dim);
  for (double& v : x) v = rng->Uniform(-1.0, 1.0);
  return x;
}

// Compare a compiled-plan answer against the f64 scalar reference. At the
// default precision the contract is bitwise equality; when the CI matrix
// forces a narrow tier (NEUROSKETCH_FORCE_F32_PLANS=1 /
// NEUROSKETCH_FORCE_INT8_PLANS=1) the compiled path legitimately diverges
// within that tier's validated error bound, so compare with an
// answer-space tolerance instead. The bound is in standardized units;
// answer-space divergence is bound x the leaf's target scale, so callers
// pass `answer_scale` = 1 + the workload's max |answer| (an upper proxy
// for any leaf's target stddev).
void ExpectMatchesScalar(const NeuroSketch& sketch, double compiled,
                         double scalar, double answer_scale) {
  if (sketch.plan_precision() == PlanPrecision::kF32) {
    EXPECT_NEAR(compiled, scalar, sketch.f32_error_bound() * answer_scale);
  } else if (sketch.plan_precision() == PlanPrecision::kInt8) {
    EXPECT_NEAR(compiled, scalar, sketch.int8_error_bound() * answer_scale);
  } else {
    EXPECT_EQ(compiled, scalar);
  }
}

double AnswerScale(const NeuroSketch& sketch,
                   const std::vector<QueryInstance>& probes) {
  double max_abs = 0.0;
  for (const auto& q : probes) {
    const double a = sketch.AnswerScalar(q);
    if (std::isfinite(a)) max_abs = std::max(max_abs, std::fabs(a));
  }
  return 1.0 + max_abs;
}

TEST(CompiledMlpTest, PredictOneBitIdenticalAcrossActivations) {
  Rng rng(101);
  for (nn::Activation act : {nn::Activation::kRelu, nn::Activation::kTanh,
                             nn::Activation::kSigmoid}) {
    for (size_t in_dim : {1u, 3u, 7u}) {
      nn::MlpConfig cfg;
      cfg.in_dim = in_dim;
      cfg.hidden = {13, 5};
      cfg.hidden_act = act;
      nn::Mlp model(cfg, /*seed=*/900 + in_dim);
      nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);
      EXPECT_EQ(plan.num_params(), model.num_params());
      nn::Workspace ws;
      for (int trial = 0; trial < 20; ++trial) {
        const std::vector<double> x = RandomInput(&rng, in_dim);
        // EXPECT_EQ, not EXPECT_DOUBLE_EQ: the claim is bitwise equality.
        EXPECT_EQ(plan.PredictOne(x.data(), &ws), model.PredictOne(x));
      }
    }
  }
}

TEST(CompiledMlpTest, PredictBatchBitIdenticalToMlpPredict) {
  Rng rng(202);
  nn::Mlp model(nn::MlpConfig::Paper(4, 5, 32, 16), 7);
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);
  nn::Workspace ws;
  for (size_t rows : {1u, 2u, 17u, 64u}) {
    Matrix inputs(rows, 4);
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < 4; ++c) inputs(r, c) = rng.Uniform();
    }
    Matrix expect;
    model.Predict(inputs, &expect);
    std::vector<double> got(rows);
    plan.PredictBatch(inputs.data(), rows, &ws, got.data());
    for (size_t r = 0; r < rows; ++r) EXPECT_EQ(got[r], expect(r, 0));
  }
}

TEST(CompiledMlpTest, SerializationMatchesMlpByteForByte) {
  nn::Mlp model(nn::MlpConfig::Paper(3, 4, 20, 10), 55);
  nn::CompiledMlp plan = nn::CompiledMlp::FromMlp(model);

  std::ostringstream via_mlp, via_plan;
  ASSERT_TRUE(nn::SaveMlp(model, &via_mlp).ok());
  ASSERT_TRUE(nn::SaveCompiledMlp(plan, &via_plan).ok());
  EXPECT_EQ(via_mlp.str(), via_plan.str());

  std::istringstream in(via_plan.str());
  auto loaded = nn::LoadCompiledMlp(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().params(), plan.params());

  // ToMlp rehydrates the trainable form bit-exactly.
  nn::Mlp back = loaded.value().ToMlp();
  Rng rng(66);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<double> x = RandomInput(&rng, 3);
    EXPECT_EQ(back.PredictOne(x), model.PredictOne(x));
  }
}

// Build a sketch over a real (synthetic-data) query function, as the
// serving path would.
Result<NeuroSketch> BuildSketch(uint64_t seed, size_t train_threads,
                                std::vector<QueryInstance>* probes) {
  Table t = MakeUniformTable(4000, 2, seed);
  ExactEngine engine(&t);
  QueryFunctionSpec spec;
  spec.predicate = AxisRangePredicate::Make();
  spec.agg = Aggregate::kCount;
  spec.measure_col = 0;
  WorkloadConfig wc;
  wc.num_active = 1;
  wc.seed = seed + 1;
  WorkloadGenerator gen(2, wc);
  auto queries = gen.GenerateMany(500, &engine, &spec);
  auto answers = engine.AnswerBatch(spec, queries);

  NeuroSketchConfig cfg;
  cfg.tree_height = 2;
  cfg.target_partitions = 4;
  cfg.n_layers = 4;
  cfg.l_first = 24;
  cfg.l_rest = 16;
  cfg.train.epochs = 40;
  cfg.seed = seed + 2;
  cfg.train_threads = train_threads;

  if (probes != nullptr) {
    WorkloadConfig pc = wc;
    pc.seed = seed + 3;
    WorkloadGenerator pgen(2, pc);
    *probes = pgen.GenerateMany(200, &engine, &spec);
  }
  return NeuroSketch::Train(queries, answers, cfg);
}

TEST(InferencePlanGoldenTest, AnswerSurfacesBitIdentical) {
  // Several randomly-built sketches: every answering surface (compiled
  // Answer, scalar reference, serial batch, vectorized batch) must return
  // the exact same doubles.
  for (uint64_t seed : {11u, 223u, 4999u}) {
    std::vector<QueryInstance> probes;
    auto sketch = BuildSketch(seed, /*train_threads=*/0, &probes);
    ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
    EXPECT_TRUE(sketch.value().compiled());

    const auto serial = sketch.value().AnswerBatch(probes);
    const auto vectorized = sketch.value().AnswerBatchVectorized(probes);
    ASSERT_EQ(serial.size(), probes.size());
    ASSERT_EQ(vectorized.size(), probes.size());
    const double scale = AnswerScale(sketch.value(), probes);
    for (size_t i = 0; i < probes.size(); ++i) {
      const double compiled = sketch.value().Answer(probes[i]);
      const double scalar = sketch.value().AnswerScalar(probes[i]);
      // All compiled surfaces serve the same bits as Answer regardless of
      // tier; only the scalar-reference comparison is precision-aware.
      ExpectMatchesScalar(sketch.value(), compiled, scalar, scale);
      EXPECT_EQ(compiled, serial[i]) << "probe " << i << " seed " << seed;
      EXPECT_EQ(compiled, vectorized[i]) << "probe " << i << " seed " << seed;
    }
  }
}

TEST(InferencePlanGoldenTest, ParallelConstructionReproducesSequential) {
  std::vector<QueryInstance> probes;
  auto sequential = BuildSketch(31, /*train_threads=*/1, &probes);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : {0u, 2u, 5u}) {
    auto parallel = BuildSketch(31, threads, nullptr);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().SizeBytes(), sequential.value().SizeBytes());
    EXPECT_EQ(parallel.value().num_partitions(),
              sequential.value().num_partitions());
    for (const auto& q : probes) {
      EXPECT_EQ(parallel.value().Answer(q), sequential.value().Answer(q));
    }
  }
}

TEST(InferencePlanGoldenTest, SaveLoadServesIdenticalAnswers) {
  std::vector<QueryInstance> probes;
  auto sketch = BuildSketch(77, 0, &probes);
  ASSERT_TRUE(sketch.ok());

  const std::string path = "/tmp/ns_plan_roundtrip.sketch";
  ASSERT_TRUE(sketch.value().Save(path).ok());
  auto loaded = NeuroSketch::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  EXPECT_TRUE(loaded.value().compiled());
  EXPECT_EQ(loaded.value().SizeBytes(), sketch.value().SizeBytes());
  const double scale = AnswerScale(loaded.value(), probes);
  for (const auto& q : probes) {
    EXPECT_EQ(loaded.value().Answer(q), sketch.value().Answer(q));
    ExpectMatchesScalar(loaded.value(), sketch.value().Answer(q),
                        loaded.value().AnswerScalar(q), scale);
  }
}

TEST(InferencePlanGoldenTest, AnswerIsZeroAllocationWhenWarm) {
  std::vector<QueryInstance> probes;
  auto sketch = BuildSketch(55, 0, &probes);
  ASSERT_TRUE(sketch.ok());

  // Warm the calling thread's workspace, then demand allocation silence.
  double sink = 0.0;
  for (const auto& q : probes) sink += sketch.value().Answer(q);

  const size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 10; ++rep) {
    for (const auto& q : probes) sink += sketch.value().Answer(q);
  }
  const size_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "Answer allocated on the hot path";
  // Keep `sink` observable so the loop cannot be optimized away.
  EXPECT_TRUE(std::isfinite(sink));
}

TEST(InferencePlanGoldenTest, BatchVectorizedIsZeroAllocationWhenWarm) {
  std::vector<QueryInstance> probes;
  auto sketch = BuildSketch(56, 0, &probes);
  ASSERT_TRUE(sketch.ok());

  // The allocation-free surface takes a caller-owned output buffer; the
  // bucketing scratch and all model math live in the thread-local arena.
  std::vector<double> out(probes.size());
  for (int rep = 0; rep < 3; ++rep) {
    sketch.value().AnswerBatchVectorizedTo(probes, out.data());
  }

  const size_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 10; ++rep) {
    sketch.value().AnswerBatchVectorizedTo(probes, out.data());
  }
  const size_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "AnswerBatchVectorizedTo allocated on the warm batch path";

  // And it answers exactly what the serial surface answers.
  const auto serial = sketch.value().AnswerBatch(probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_EQ(out[i], serial[i]) << "probe " << i;
  }
}

}  // namespace
}  // namespace neurosketch
