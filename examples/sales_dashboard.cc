// Sales-dashboard scenario (TPC-like store_sales): an interactive BI tool
// fires range aggregates (SUM / AVG / STD of net_profit over parameterized
// WHERE clauses) and needs millisecond answers. One NeuroSketch is trained
// per query function (query specialization, Sec. 4.3); the dashboard then
// serves each aggregate from its specialized model.
//
// Build & run:  ./build/examples/sales_dashboard
#include <cmath>
#include <cstdio>
#include <map>

#include "core/neurosketch.h"
#include "data/datasets.h"
#include "data/normalizer.h"
#include "query/predicate.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace neurosketch;

int main() {
  Dataset dataset = MakeTpcLike(30000, 21);
  Normalizer norm = Normalizer::Fit(dataset.table);
  Table table = norm.Transform(dataset.table);
  ExactEngine engine(&table);
  std::printf("store_sales: %zu rows x %zu columns\n", table.num_rows(),
              table.num_columns());

  WorkloadConfig wc;
  wc.num_active = 1;
  wc.range_frac_lo = 0.05;
  wc.range_frac_hi = 0.5;
  wc.min_matches = 5;
  wc.seed = 22;

  // One sketch per dashboard widget (query function).
  std::map<Aggregate, NeuroSketch> sketches;
  for (Aggregate agg : {Aggregate::kSum, Aggregate::kAvg, Aggregate::kStd}) {
    QueryFunctionSpec spec;
    spec.predicate = AxisRangePredicate::Make();
    spec.agg = agg;
    spec.measure_col = dataset.measure_col;  // net_profit
    WorkloadGenerator gen(table.num_columns(), wc);
    NeuroSketchConfig config;
    config.train.epochs = 120;
    Timer t;
    auto sketch = NeuroSketch::TrainFromEngine(engine, spec, &gen, 1500,
                                               config);
    if (!sketch.ok()) {
      std::fprintf(stderr, "%s\n", sketch.status().ToString().c_str());
      return 1;
    }
    std::printf("built %s(net_profit) sketch in %.1fs (%zu partitions)\n",
                AggregateName(agg).c_str(), t.ElapsedSeconds(),
                sketch.value().num_partitions());
    sketches.emplace(agg, std::move(sketch).value());
  }

  // Dashboard refresh: each widget fires 100 parameterized queries
  // ("WHERE list_price BETWEEN ?p1 AND ?p2", etc.).
  for (auto& [agg, sketch] : sketches) {
    QueryFunctionSpec spec;
    spec.predicate = AxisRangePredicate::Make();
    spec.agg = agg;
    spec.measure_col = dataset.measure_col;
    WorkloadConfig twc = wc;
    twc.seed = 23 + static_cast<uint64_t>(agg);
    WorkloadGenerator tg(table.num_columns(), twc);
    auto queries = tg.GenerateMany(100, &engine, &spec);

    Timer sketch_t;
    auto approx = sketch.AnswerBatch(queries);
    const double sketch_us = sketch_t.ElapsedMicros() / queries.size();
    Timer exact_t;
    auto truth = engine.AnswerBatch(spec, queries);
    const double exact_us = exact_t.ElapsedMicros() / queries.size();

    std::vector<double> t2, p2;
    for (size_t i = 0; i < truth.size(); ++i) {
      if (std::isnan(truth[i])) continue;
      t2.push_back(truth[i]);
      p2.push_back(approx[i]);
    }
    std::printf(
        "%-6s widget: norm MAE %.4f | sketch %8.2f us/q vs exact %10.2f "
        "us/q (%.0fx faster)\n",
        AggregateName(agg).c_str(), stats::NormalizedMae(t2, p2), sketch_us,
        exact_us, exact_us / sketch_us);
  }
  return 0;
}
